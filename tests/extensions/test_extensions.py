"""Python-style extension activation (§4.2)."""

import json
import os

import pytest

from repro.extensions.activation import ExtensionConflictError, activated_extensions
from repro.extensions.manager import ExtensionError, ExtensionManager
from repro.spec.spec import Spec


@pytest.fixture
def python_session(session):
    """Session with python + py-setuptools + py-nose installed."""
    session.install("python@2.7.9")
    session.install("py-setuptools@11.3 ^python@2.7.9")
    session.install("py-nose ^python@2.7.9")
    return session


def python_prefix(session):
    return session.store.layout.path_for_spec(session.find("python")[0])


class TestActivate:
    def test_activate_symlinks_files(self, python_session):
        manager = ExtensionManager(python_session)
        manager.activate("py-nose")
        prefix = python_prefix(python_session)
        module_dir = os.path.join(prefix, "lib", "site-packages", "nose")
        assert os.path.isdir(module_dir)
        init = os.path.join(module_dir, "__init__.py")
        assert os.path.islink(init)

    def test_activation_recorded(self, python_session):
        manager = ExtensionManager(python_session)
        manager.activate("py-nose")
        active = activated_extensions(python_prefix(python_session))
        assert "py-nose" in active
        assert active["py-nose"]["version"] == "1.3.4"

    def test_double_activation_rejected(self, python_session):
        manager = ExtensionManager(python_session)
        manager.activate("py-nose")
        with pytest.raises(ExtensionError, match="already activated"):
            manager.activate("py-nose")

    def test_two_versions_rejected(self, python_session):
        newer, _ = python_session.install("py-setuptools@11.3.1 ^python@2.7.9")
        # note: a query spec "@11.3" matches BOTH (family semantics), so
        # resolve by exact concrete specs here
        older = python_session.find("py-setuptools@11.3.0:11.3.0")  # no match: point
        manager = ExtensionManager(python_session)
        older_spec = next(
            s for s in python_session.find("py-setuptools") if str(s.version) == "11.3"
        )
        manager.activate(older_spec)
        with pytest.raises(ExtensionError, match="Another version"):
            manager.activate(newer)

    def test_pth_files_merged_not_conflicting(self, python_session):
        """The package-specialized activation: easy-install.pth would
        conflict; Python's activate merges it instead (§4.2)."""
        manager = ExtensionManager(python_session)
        manager.activate("py-nose")
        manager.activate("py-setuptools")  # would conflict on the .pth
        pth = os.path.join(
            python_prefix(python_session), "lib", "site-packages", "easy-install.pth"
        )
        lines = open(pth).read().splitlines()
        assert "./nose" in lines and "./setuptools" in lines

    def test_not_an_extension(self, python_session):
        python_session.install("libelf")
        with pytest.raises(ExtensionError, match="does not extend"):
            ExtensionManager(python_session).activate("libelf")

    def test_not_installed(self, session):
        session.install("python@2.7.9")
        with pytest.raises(ExtensionError, match="not installed"):
            ExtensionManager(session).activate("py-nose")

    def test_genuine_conflict_fails(self, python_session):
        """Two extensions shipping the same real file must refuse."""
        manager = ExtensionManager(python_session)
        manager.activate("py-nose")
        # fabricate a conflicting real file where setuptools will land
        target = os.path.join(
            python_prefix(python_session), "lib", "site-packages",
            "setuptools", "__init__.py",
        )
        os.makedirs(os.path.dirname(target))
        with open(target, "w") as f:
            f.write("# pre-existing\n")
        with pytest.raises((ExtensionConflictError, ExtensionError)):
            manager.activate("py-setuptools")


class TestDeactivate:
    def test_restores_pristine_prefix(self, python_session):
        manager = ExtensionManager(python_session)
        prefix = python_prefix(python_session)
        site = os.path.join(prefix, "lib", "site-packages")
        before = set(os.listdir(site))
        manager.activate("py-nose")
        manager.deactivate("py-nose")
        assert set(os.listdir(site)) == before
        assert "py-nose" not in activated_extensions(prefix)

    def test_pth_unmerged(self, python_session):
        manager = ExtensionManager(python_session)
        manager.activate("py-nose")
        manager.activate("py-setuptools")
        manager.deactivate("py-nose")
        pth = os.path.join(
            python_prefix(python_session), "lib", "site-packages", "easy-install.pth"
        )
        lines = open(pth).read().splitlines()
        assert "./nose" not in lines and "./setuptools" in lines

    def test_deactivate_inactive_rejected(self, python_session):
        with pytest.raises(ExtensionError, match="not activated"):
            ExtensionManager(python_session).deactivate("py-nose")


class TestQueries:
    def test_extensions_of(self, python_session):
        manager = ExtensionManager(python_session)
        manager.activate("py-nose")
        installed, active = manager.extensions_of("python")
        names = {s.name for s in installed}
        assert names == {"py-setuptools", "py-nose"}
        assert set(active) == {"py-nose"}

    def test_extension_installs_own_prefix(self, python_session):
        """Extensions install into their own prefixes (combinatorial
        versioning), not into the interpreter (§4.2)."""
        ext = python_session.find("py-nose")[0]
        ext_prefix = python_session.store.layout.path_for_spec(ext)
        assert os.path.isfile(
            os.path.join(ext_prefix, "lib", "site-packages", "nose", "__init__.py")
        )
        assert python_prefix(python_session) != ext_prefix
