"""Manual compiler registration through configuration (§3.2.3)."""

import pytest

from repro.session import Session
from repro.spec.spec import Spec


@pytest.fixture
def configured_session(tmp_path):
    return Session.create(
        str(tmp_path / "u"),
        config_overrides={
            "compilers": [
                {
                    "name": "gcc",
                    "version": "5.2.0",
                    "cc": "/opt/site/gcc-5.2.0/bin/gcc",
                    "cxx": "/opt/site/gcc-5.2.0/bin/g++",
                },
                {
                    "name": "xl",
                    "version": "13.1",
                    "cc": "/opt/ibm/xlc-13.1",
                    "features": {"cxx": "11", "openmp": "3.1"},
                },
            ]
        },
    )


class TestConfigCompilers:
    def test_registered_alongside_detected(self, configured_session):
        names = {str(c) for c in configured_session.compilers}
        assert "gcc@5.2.0" in names       # from config
        assert "gcc@4.9.2" in names       # auto-detected toolchain
        assert "xl@13.1" in names

    def test_paths_from_config(self, configured_session):
        gcc52 = configured_session.compilers.compiler_for("gcc@5.2.0")
        assert gcc52.cc == "/opt/site/gcc-5.2.0/bin/gcc"

    def test_usable_in_concretization(self, configured_session):
        concrete = configured_session.concretize(Spec("libelf%gcc@5.2.0"))
        assert str(concrete.compiler) == "gcc@5.2.0"

    def test_newest_registered_wins_unqualified(self, configured_session):
        concrete = configured_session.concretize(Spec("libelf%gcc@5:"))
        assert str(concrete.compiler) == "gcc@5.2.0"

    def test_feature_overrides_respected(self, configured_session):
        xl = configured_session.compilers.compiler_for("xl@13.1")
        assert xl.supports("cxx@11")
        assert not xl.supports("cxx@14:")

    def test_default_features_when_unspecified(self, configured_session):
        gcc52 = configured_session.compilers.compiler_for("gcc@5.2.0")
        # 5.2.0 passes the 4.9 threshold in the feature table
        assert gcc52.supports("cxx@14")
