"""Compiler registry and PATH auto-detection (§3.2.3)."""

import pytest

from repro.build.toolchain import write_toolchain
from repro.compilers.registry import (
    Compiler,
    CompilerRegistry,
    NoSuchCompilerError,
    find_compilers,
)
from repro.spec.spec import CompilerSpec
from repro.version import Version


class TestRegistry:
    def _registry(self):
        return CompilerRegistry(
            [
                Compiler("gcc", "4.9.2", cc="/t/gcc-4.9.2"),
                Compiler("gcc", "4.7.3", cc="/t/gcc-4.7.3"),
                Compiler("intel", "15.0.1", cc="/t/icc-15.0.1"),
            ]
        )

    def test_compilers_for_name(self):
        reg = self._registry()
        assert [str(c.version) for c in reg.compilers_for("gcc")] == ["4.7.3", "4.9.2"]

    def test_compilers_for_constraint(self):
        reg = self._registry()
        matches = reg.compilers_for(CompilerSpec("gcc@4.9"))
        assert [str(c.version) for c in matches] == ["4.9.2"]

    def test_best_match(self):
        reg = self._registry()
        assert reg.compiler_for("gcc").version == Version("4.9.2")

    def test_no_match(self):
        with pytest.raises(NoSuchCompilerError):
            self._registry().compiler_for("pgi")
        with pytest.raises(NoSuchCompilerError):
            self._registry().compiler_for("gcc@5:")

    def test_exists(self):
        reg = self._registry()
        assert reg.exists("intel")
        assert not reg.exists("xl")

    def test_satisfies(self):
        c = Compiler("gcc", "4.9.2")
        assert c.satisfies("gcc")
        assert c.satisfies("gcc@4.9")
        assert not c.satisfies("gcc@5:")
        assert not c.satisfies("intel")

    def test_dedup(self):
        reg = CompilerRegistry(
            [Compiler("gcc", "4.9.2"), Compiler("gcc", "4.9.2")]
        )
        assert len(reg) == 1

    def test_toolchain_names(self):
        assert self._registry().toolchain_names() == ["gcc", "intel"]


class TestDetection:
    def test_detect_generated_toolchain(self, tmp_path):
        write_toolchain(str(tmp_path), [("gcc", "4.9.2"), ("intel", "15.0.1"), ("xl", "12.1")])
        found = find_compilers([str(tmp_path)])
        by_name = {(c.name, str(c.version)) for c in found}
        assert ("gcc", "4.9.2") in by_name
        assert ("intel", "15.0.1") in by_name
        assert ("xl", "12.1") in by_name
        gcc = next(c for c in found if c.name == "gcc")
        assert gcc.cc and gcc.cc.endswith("gcc-4.9.2")
        assert gcc.cxx and gcc.cxx.endswith("g++-4.9.2")
        assert gcc.fc and gcc.fc.endswith("gfortran-4.9.2")

    def test_detect_ignores_non_compilers(self, tmp_path):
        (tmp_path / "random-file").write_text("hi")
        (tmp_path / "gcc").write_text("no version suffix")
        assert find_compilers([str(tmp_path)]) == []

    def test_missing_dir(self):
        assert find_compilers(["/no/such/dir"]) == []

    def test_path_string_form(self, tmp_path):
        write_toolchain(str(tmp_path), [("clang", "3.5.0")])
        found = find_compilers(str(tmp_path))
        assert [c.name for c in found] == ["clang"]
