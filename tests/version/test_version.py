"""Unit tests for the version algebra (§3.2.3 semantics)."""

import pytest

from repro.version import (
    Version,
    VersionList,
    VersionParseError,
    VersionRange,
    any_version,
    ver,
)


class TestVersionParsing:
    def test_simple(self):
        v = Version("1.2.3")
        assert v.components == (1, 2, 3)
        assert str(v) == "1.2.3"

    def test_alpha_components(self):
        v = Version("1.2-rc1")
        assert v.components == (1, 2, "rc", 1)

    def test_date_version(self):
        assert Version("20130729").components == (20130729,)

    def test_original_string_preserved(self):
        assert str(Version("2.0-beta_3")) == "2.0-beta_3"

    @pytest.mark.parametrize("bad", ["", "@1.2", "1 2", ":", "1,2", None, "-x"])
    def test_invalid(self, bad):
        with pytest.raises(VersionParseError):
            Version(bad)

    def test_int_coercion(self):
        assert Version(3) == Version("3")


class TestVersionOrdering:
    @pytest.mark.parametrize(
        "lo,hi",
        [
            ("1.2", "1.3"),
            ("1.2", "1.2.1"),       # prefix sorts first
            ("1.2", "1.2alpha"),    # suffixes extend upward (2015 semantics)
            ("1.2a", "1.2.0"),      # alpha < numeric at same position
            ("2.9", "2.10"),        # numeric, not lexicographic
            ("1.0", "10.0"),
            ("20130207", "20130729"),
        ],
    )
    def test_less_than(self, lo, hi):
        assert Version(lo) < Version(hi)
        assert Version(hi) > Version(lo)

    def test_equality_and_hash(self):
        assert Version("1.2") == Version("1.2")
        assert hash(Version("1.2")) == hash(Version("1.2"))
        assert Version("1.2") != Version("1.2.0")

    def test_sorting(self):
        versions = [Version(s) for s in ["2.0", "1.0", "1.10", "1.2", "1.2.1"]]
        assert [str(v) for v in sorted(versions)] == [
            "1.0", "1.2", "1.2.1", "1.10", "2.0",
        ]


class TestPrefixFamilies:
    def test_family_membership(self):
        assert Version("1.4.2") in Version("1.4")
        assert Version("1.4") in Version("1.4")
        assert Version("1.40") not in Version("1.4")
        assert Version("1.4") not in Version("1.4.2")

    def test_satisfies_family(self):
        assert Version("1.4.2").satisfies("1.4")
        assert not Version("1.4").satisfies("1.4.2")

    def test_up_to(self):
        assert Version("1.23.4").up_to(2) == Version("1.23")

    def test_is_predecessor(self):
        assert Version("1.2").is_predecessor(Version("1.3"))
        assert not Version("1.2").is_predecessor(Version("1.4"))
        assert not Version("1.2").is_predecessor(Version("2.2.1"))


class TestVersionRange:
    def test_contains_inclusive(self):
        r = VersionRange("1.2", "1.4")
        assert r.contains_version(Version("1.2"))
        assert r.contains_version(Version("1.3"))
        assert r.contains_version(Version("1.4"))
        assert not r.contains_version(Version("1.5"))
        assert not r.contains_version(Version("1.1"))

    def test_hi_end_family(self):
        # The paper: "@2.3:2.5.6 would specify a version between 2.3 and
        # 2.5.6"; the hi endpoint includes its family.
        r = VersionRange("2.3", "2.5.6")
        assert r.contains_version(Version("2.5.6"))
        assert r.contains_version(Version("2.5.6.1"))
        assert not r.contains_version(Version("2.5.7"))

    def test_open_ranges(self):
        assert VersionRange("2.5", None).contains_version(Version("99"))
        assert VersionRange(None, "2.5").contains_version(Version("0.1"))
        assert not VersionRange("2.5", None).contains_version(Version("2.4"))

    def test_empty_range_rejected(self):
        with pytest.raises(VersionParseError):
            VersionRange("2.0", "1.0")

    def test_str_round_trip(self):
        for text in ["1.2:1.4", "1.2:", ":1.4"]:
            vl = VersionList(text)
            assert str(vl) == text


class TestVersionList:
    def test_union_coalesces_overlap(self):
        vl = VersionList(["1.2:1.4", "1.3:1.6"])
        assert len(vl) == 1
        assert vl.contains_version(Version("1.5"))

    def test_disjoint_kept_separate(self):
        vl = VersionList("1.2:1.3,1.5:1.6")
        assert len(vl) == 2
        assert not vl.contains_version(Version("1.4.5"))

    def test_intersection(self):
        a = VersionList("1.2:1.4,1.6")
        b = VersionList("1.3:")
        i = a.intersection(b)
        assert i.contains_version(Version("1.3.5"))
        assert i.contains_version(Version("1.6.1"))
        assert not i.contains_version(Version("1.2.5"))

    def test_empty_intersection(self):
        assert not VersionList("1.2:1.3").intersection(VersionList("2:"))

    def test_point_intersection_is_version(self):
        i = VersionList("1.2:1.4").intersection(VersionList("1.4"))
        assert i.concrete == Version("1.4")

    def test_intersect_in_place_reports_change(self):
        vl = VersionList("1.2:")
        assert vl.intersect(VersionList(":1.4")) is True
        assert vl.intersect(VersionList(":1.4")) is False

    def test_satisfies_overlap_vs_strict(self):
        assert VersionList("1.2:1.4").satisfies("1.3:")
        assert not VersionList("1.2:1.4").satisfies("1.3:", strict=True)
        assert VersionList("1.3").satisfies("1.2:1.4", strict=True)

    def test_universal(self):
        u = any_version()
        assert u.universal
        assert u.contains_version(Version("0"))
        vl = VersionList("1.9")
        assert u.intersection(vl) == vl

    def test_concrete(self):
        assert VersionList("1.9").concrete == Version("1.9")
        assert VersionList("1.9:2.0").concrete is None
        assert VersionList("1.9,2.1").concrete is None

    def test_highest_lowest(self):
        vl = VersionList("1.2:1.4,2.0")
        assert vl.highest() == Version("2.0")
        assert vl.lowest() == Version("1.2")

    def test_equality_by_intervals(self):
        assert VersionList("1.2:1.4") == VersionList("1.2:1.4")
        # a point constraint and the degenerate range denote the same
        # family of versions, so the lists compare equal
        assert VersionList("1.2") == VersionList("1.2:1.2")
        assert VersionList("1.2") != VersionList("1.2:1.3")


class TestVer:
    def test_coercions(self):
        assert isinstance(ver("1.2"), Version)
        assert isinstance(ver("1.2:"), VersionList)
        assert isinstance(ver("1.2,1.4"), VersionList)
        assert isinstance(ver(["1.2", "1.4"]), VersionList)
        v = Version("3")
        assert ver(v) is v

    def test_bad_type(self):
        with pytest.raises(TypeError):
            ver(object())


class TestIsPredecessorLetters:
    """Letter-suffix successors: ``1.0a`` -> ``1.0b`` (satellite fix)."""

    def test_letter_increment(self):
        assert Version("1.0a").is_predecessor(Version("1.0b"))
        assert Version("2.1beta").is_predecessor(Version("2.1betb"))

    def test_letter_gap_is_not_successor(self):
        assert not Version("1.0a").is_predecessor(Version("1.0c"))

    def test_z_has_no_single_letter_successor(self):
        assert not Version("1.0z").is_predecessor(Version("1.0a"))
        assert not Version("1.0z").is_predecessor(Version("1.1"))

    def test_mixed_kinds_never_succeed(self):
        assert not Version("1.0a").is_predecessor(Version("1.1"))
        assert not Version("1.0").is_predecessor(Version("1.0a"))

    def test_alpha_rc_numeric_tail_still_works(self):
        assert Version("2.0rc1").is_predecessor(Version("2.0rc2"))


class TestStrictRangeSatisfies:
    """``satisfies(strict=True)`` on ranges: subset, not overlap.

    Regression for the provider-selection bug where ``mpi@3:`` was
    accepted for a request of ``mpi@2:`` because the non-strict overlap
    check was used where a subset check was meant.
    """

    def test_open_range_subset_asymmetry(self):
        assert ver("3:").satisfies(ver("2:"), strict=True)
        assert not ver("2:").satisfies(ver("3:"), strict=True)

    def test_non_strict_overlap_is_symmetric(self):
        assert ver("3:").satisfies(ver("2:"))
        assert ver("2:").satisfies(ver("3:"))

    def test_single_version_strict(self):
        assert Version("1.3").satisfies(ver("1.2:1.4"), strict=True)
        assert not Version("1.5").satisfies(ver("1.2:1.4"), strict=True)

    def test_range_strict_against_range(self):
        # prefix-family semantics: ':2' includes all of the 2.x family,
        # so 1.2:2.5 is a subset of 1:2 while 1.2:3.5 is not
        assert VersionRange("1.2", "1.3").satisfies(ver("1:2"), strict=True)
        assert VersionRange("1.2", "2.5").satisfies(ver("1:2"), strict=True)
        assert not VersionRange("1.2", "3.5").satisfies(ver("1:2"), strict=True)

    def test_list_strict_requires_every_member_inside(self):
        assert ver("1.2,1.4").satisfies(ver("1:2"), strict=True)
        assert not ver("1.2,3.0").satisfies(ver("1:2"), strict=True)
