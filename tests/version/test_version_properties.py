"""Property-based tests: the version algebra is a lattice-ish structure.

Hypothesis generates arbitrary versions, ranges, and unions; the laws
checked here are the ones the concretizer silently relies on:
commutativity/associativity/idempotence of intersection, consistency of
``satisfies`` with intersection, and union/contains coherence.
"""

from hypothesis import given, settings, strategies as st

from repro.version import Version, VersionList, VersionRange, any_version


# -- strategies ----------------------------------------------------------------

components = st.integers(min_value=0, max_value=30)


@st.composite
def versions(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    parts = [str(draw(components)) for _ in range(n)]
    return Version(".".join(parts))


@st.composite
def ranges(draw):
    a = draw(versions())
    b = draw(versions())
    lo, hi = sorted([a, b])
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        return VersionRange(lo, hi)
    if kind == 1:
        return VersionRange(lo, None)
    if kind == 2:
        return VersionRange(None, hi)
    return VersionRange(None, None)


@st.composite
def version_lists(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    vl = VersionList()
    for _ in range(n):
        if draw(st.booleans()):
            vl.add(draw(versions()))
        else:
            vl.add(draw(ranges()))
    return vl


# -- laws -------------------------------------------------------------------------


@given(version_lists(), version_lists())
def test_intersection_commutative(a, b):
    assert a.intersection(b) == b.intersection(a)


@given(version_lists(), version_lists(), version_lists())
@settings(max_examples=60)
def test_intersection_associative(a, b, c):
    assert a.intersection(b).intersection(c) == a.intersection(b.intersection(c))


@given(version_lists())
def test_intersection_idempotent(a):
    assert a.intersection(a) == a


@given(version_lists())
def test_universal_is_identity(a):
    assert any_version().intersection(a) == a


@given(version_lists(), version_lists())
def test_overlap_iff_nonempty_intersection(a, b):
    assert a.overlaps(b) == bool(a.intersection(b))


@given(version_lists(), version_lists())
def test_strict_satisfies_is_containment(a, b):
    # strict satisfaction == intersection leaves a unchanged
    assert a.satisfies(b, strict=True) == (a.intersection(b) == a)


@given(versions(), version_lists())
def test_contains_implies_constraint_overlap(v, a):
    # Membership of the point implies the family constraint @v overlaps a.
    # (The converse does not hold: the constraint @2.0 denotes the whole
    # 2.0 family and overlaps @2.0.0 even though the point 2.0 is not in
    # it — that asymmetry is the prefix-family semantics working.)
    if a.contains_version(v):
        assert VersionList([v]).overlaps(a)


@given(version_lists(), version_lists(), versions())
def test_union_contains_both(a, b, v):
    u = a.union(b)
    if a.contains_version(v) or b.contains_version(v):
        assert u.contains_version(v)


@given(version_lists(), version_lists(), versions())
def test_intersection_is_conjunction(a, b, v):
    i = a.intersection(b)
    assert i.contains_version(v) == (a.contains_version(v) and b.contains_version(v))


@given(version_lists())
def test_string_round_trip(a):
    assert VersionList(str(a)) == a


@given(versions(), versions())
def test_ordering_total(a, b):
    assert (a < b) + (b < a) + (a == b) == 1


@given(versions())
def test_version_in_own_family(v):
    assert v.satisfies(v)
    assert v in v
