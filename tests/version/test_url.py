"""URL version extrapolation tests (§3.2.3 + footnote 2)."""

import pytest

from repro.version import (
    UndetectableVersionError,
    parse_version_from_url,
    substitute_version,
    wildcard_version_pattern,
)
from repro.version.version import Version


URLS = [
    # (url, expected version, replacement, expected result)
    (
        "https://github.com/hpc/mpileaks/releases/download/v1.0/mpileaks-1.0.tar.gz",
        "1.0",
        "2.1.3",
        "https://github.com/hpc/mpileaks/releases/download/v2.1.3/mpileaks-2.1.3.tar.gz",
    ),
    (
        "https://www.mr511.de/software/libelf-0.8.13.tar.gz",
        "0.8.13",
        "0.8.12",
        "https://www.mr511.de/software/libelf-0.8.12.tar.gz",
    ),
    (
        "https://www.prevanders.net/libdwarf-20130729.tar.gz",
        "20130729",
        "20130207",
        "https://www.prevanders.net/libdwarf-20130207.tar.gz",
    ),
    (
        "https://downloads.sourceforge.net/tcl/tcl8.6.3-src.tar.gz",
        "8.6.3",
        "8.5.0",
        "https://downloads.sourceforge.net/tcl/tcl8.5.0-src.tar.gz",
    ),
    (
        "https://github.com/llnl/callpath/archive/v1.0.2.tar.gz",
        "1.0.2",
        "0.9",
        "https://github.com/llnl/callpath/archive/v0.9.tar.gz",
    ),
    (
        "https://www.openssl.org/source/openssl-1.0.1h.tar.gz",
        "1.0.1h",
        "1.0.1j",
        "https://www.openssl.org/source/openssl-1.0.1j.tar.gz",
    ),
    (
        "https://www.mpich.org/static/downloads/3.0.4/mpich-3.0.4.tar.gz",
        "3.0.4",
        "3.1",
        "https://www.mpich.org/static/downloads/3.1/mpich-3.1.tar.gz",
    ),
]


@pytest.mark.parametrize("url,expected,_new,_result", URLS)
def test_parse(url, expected, _new, _result):
    version, start, end = parse_version_from_url(url)
    assert version == Version(expected)
    assert url[start:end] == expected


@pytest.mark.parametrize("url,_expected,new,result", URLS)
def test_substitute(url, _expected, new, result):
    assert substitute_version(url, new) == result


@pytest.mark.parametrize("url,expected,new,result", URLS)
def test_wildcard_matches_siblings(url, expected, new, result):
    pattern = wildcard_version_pattern(url)
    match = pattern.search(result)
    assert match is not None
    assert match.group(1) == new


def test_version_inside_larger_number_not_replaced():
    url = "http://x.org/foo-11.22/foo-1.2.tar.gz"
    assert substitute_version(url, "9.9") == "http://x.org/foo-11.22/foo-9.9.tar.gz"


def test_undetectable():
    with pytest.raises(UndetectableVersionError):
        parse_version_from_url("https://example.com/no-version-here/download")


def test_substitute_identity():
    url = "https://x.org/pkg-1.2.tar.gz"
    assert substitute_version(url, "1.2") == url
