"""Mock web, fetcher (checksums, scraping), and staging (§3.2.3, §3.5.3)."""

import hashlib
import json
import os

import pytest

from repro.fetch.fetcher import ChecksumError, Fetcher, FetchError
from repro.fetch.mockweb import MockWeb, NotOnWebError, mock_checksum, mock_tarball
from repro.fetch.stage import Stage, StageError


class TestMockWeb:
    def test_tarball_deterministic(self):
        assert mock_tarball("foo", "1.0") == mock_tarball("foo", "1.0")
        assert mock_tarball("foo", "1.0") != mock_tarball("foo", "1.1")
        assert mock_tarball("foo", "1.0") != mock_tarball("bar", "1.0")

    def test_checksum_is_real_md5(self):
        assert mock_checksum("foo", "1.0") == hashlib.md5(mock_tarball("foo", "1.0")).hexdigest()

    def test_put_get(self):
        web = MockWeb()
        web.put("http://x/y", b"content")
        assert web.get("http://x/y") == b"content"

    def test_404(self):
        with pytest.raises(NotOnWebError):
            MockWeb().get("http://nothing/here")

    def test_corruption(self):
        web = MockWeb()
        web.put("http://x/y", b"content")
        web.corrupt("http://x/y")
        assert web.get("http://x/y") != b"content"


class TestFetcher:
    def _pkg_and_web(self, session):
        cls = session.repo.get_class("mpileaks")
        from repro.spec.spec import Spec

        pkg = cls(Spec("mpileaks@1.0"), session=session)
        return pkg, session.web

    def test_fetch_verifies_checksum(self, session):
        pkg, web = self._pkg_and_web(session)
        content = session.fetcher.fetch(pkg, "1.0")
        assert json.loads(content)["name"] == "mpileaks"

    def test_checksum_mismatch_detected(self, session):
        pkg, web = self._pkg_and_web(session)
        web.corrupt(pkg.url_for_version("1.0"))
        with pytest.raises(ChecksumError):
            session.fetcher.fetch(pkg, "1.0")

    def test_unknown_version_not_on_web(self, session):
        pkg, _ = self._pkg_and_web(session)
        with pytest.raises(FetchError):
            session.fetcher.fetch(pkg, "77.0")

    def test_unknown_version_fetchable_when_published(self, session):
        # §3.2.3: "If the user requests a specific version ... unknown to
        # Spack, Spack will attempt to fetch and install it."
        pkg, web = self._pkg_and_web(session)
        url = pkg.url_for_version("3.1.4")
        web.put(url, mock_tarball("mpileaks", "3.1.4"))
        content = session.fetcher.fetch(pkg, "3.1.4")  # no declared checksum
        assert json.loads(content)["version"] == "3.1.4"

    def test_scrape_versions(self, session):
        pkg, _ = self._pkg_and_web(session)
        versions = session.fetcher.available_versions(pkg)
        assert [str(v) for v in versions][:2] == ["2.3", "1.1.2"]

    def test_scrape_sees_new_releases(self, session):
        pkg, web = self._pkg_and_web(session)
        web.register_package(type(pkg), versions=["1.0", "1.1", "9.0"])
        versions = session.fetcher.available_versions(pkg)
        assert "9.0" in [str(v) for v in versions]


class TestStage:
    def _staged(self, session, tmp_path, name="libelf", version="0.8.13"):
        from repro.spec.spec import Spec

        cls = session.repo.get_class(name)
        pkg = cls(session.concretize(Spec("%s@%s" % (name, version))), session=session)
        stage = Stage(str(tmp_path / "stage"), pkg).create()
        content = session.fetcher.fetch(pkg, version)
        stage.expand_tarball(content)
        return pkg, stage

    def test_expand_creates_source_tree(self, session, tmp_path):
        pkg, stage = self._staged(session, tmp_path)
        assert os.path.isfile(os.path.join(stage.source_path, "configure"))
        units = [f for f in os.listdir(os.path.join(stage.source_path, "src")) if f.endswith(".c")]
        assert len(units) == pkg.build_units

    def test_unit_content(self, session, tmp_path):
        _, stage = self._staged(session, tmp_path)
        text = open(os.path.join(stage.source_path, "src", "unit_000.c")).read()
        assert "PACKAGE libelf" in text
        assert "INCLUDE config.h" in text

    def test_garbage_tarball_rejected(self, session, tmp_path):
        from repro.spec.spec import Spec

        cls = session.repo.get_class("libelf")
        pkg = cls(Spec("libelf@0.8.13"), session=session)
        stage = Stage(str(tmp_path), pkg).create()
        with pytest.raises(StageError):
            stage.expand_tarball(b"not json at all")
        with pytest.raises(StageError):
            stage.expand_tarball(json.dumps({"kind": "other"}).encode())

    def test_patch_application(self, session, tmp_path):
        from repro.directives.directives import Patch

        _, stage = self._staged(session, tmp_path)
        stage.apply_patch(Patch("fix-unaligned.patch", None, 1))
        text = open(os.path.join(stage.source_path, "src", "unit_000.c")).read()
        assert "PATCHED fix-unaligned.patch" in text
        assert os.path.isfile(
            os.path.join(stage.source_path, ".patches", "fix-unaligned.patch")
        )
        assert stage.applied_patches == ["fix-unaligned.patch"]

    def test_patch_before_expand_fails(self, session, tmp_path):
        from repro.directives.directives import Patch
        from repro.spec.spec import Spec

        cls = session.repo.get_class("libelf")
        pkg = cls(Spec("libelf@0.8.13"), session=session)
        stage = Stage(str(tmp_path), pkg).create()
        with pytest.raises(StageError):
            stage.apply_patch(Patch("x.patch", None, 1))

    def test_destroy(self, session, tmp_path):
        _, stage = self._staged(session, tmp_path)
        stage.destroy()
        assert not os.path.exists(stage.path)


class TestSha256Verification:
    """Digest algorithm is picked from the declared hex length: 32 chars
    verify as md5 (legacy), 64 as sha256 (what ``create`` now emits)."""

    def _sha256_pkg(self, bare_repo_session, digest):
        from repro.directives.directives import version as version_directive
        from repro.package.package import Package
        from repro.spec.spec import Spec

        repo = bare_repo_session.repo.repos[0]

        @repo.register("shapkg")
        class Shapkg(Package):
            url = "http://example.com/shapkg-1.0.tar.gz"
            version_directive("1.0", sha256=digest)

        bare_repo_session.seed_web()
        return Shapkg(Spec("shapkg@1.0"), session=bare_repo_session)

    def test_sha256_digest_verifies(self, bare_repo_session):
        digest = hashlib.sha256(mock_tarball("shapkg", "1.0")).hexdigest()
        pkg = self._sha256_pkg(bare_repo_session, digest)
        content = bare_repo_session.fetcher.fetch(pkg, "1.0")
        assert json.loads(content)["name"] == "shapkg"

    def test_sha256_mismatch_names_the_algorithm(self, bare_repo_session):
        pkg = self._sha256_pkg(bare_repo_session, "0" * 64)
        with pytest.raises(ChecksumError) as err:
            bare_repo_session.fetcher.fetch(pkg, "1.0")
        assert err.value.algorithm == "sha256"
        assert "sha256" in (err.value.long_message or "")

    def test_md5_still_verifies(self, session):
        # the entire builtin corpus still declares md5s; one spot check
        cls = session.repo.get_class("libelf")
        from repro.spec.spec import Spec

        pkg = cls(Spec("libelf@0.8.13"), session=session)
        assert session.fetcher.fetch(pkg, "0.8.13")
