"""Source mirrors: air-gapped fetching with verification."""

import os

import pytest

from repro.fetch.fetcher import ChecksumError
from repro.fetch.mirror import Mirror, create_mirror
from repro.spec.spec import Spec


class TestMirrorStore:
    def test_put_fetch(self, tmp_path):
        mirror = Mirror(str(tmp_path / "m"))
        mirror.put("libelf", "0.8.13", b"tarball-bytes")
        assert mirror.has("libelf", "0.8.13")
        assert mirror.fetch("libelf", "0.8.13") == b"tarball-bytes"
        assert mirror.fetch("libelf", "9.9") is None

    def test_layout(self, tmp_path):
        mirror = Mirror(str(tmp_path / "m"))
        path = mirror.put("libelf", "0.8.13", b"x")
        assert path.endswith(os.path.join("libelf", "libelf-0.8.13.tar.gz"))

    def test_contents(self, tmp_path):
        mirror = Mirror(str(tmp_path / "m"))
        mirror.put("libelf", "0.8.13", b"x")
        mirror.put("libelf", "0.8.12", b"y")
        mirror.put("zlib", "1.2.8", b"z")
        assert mirror.contents() == {
            "libelf": ["0.8.12", "0.8.13"],
            "zlib": ["1.2.8"],
        }

    def test_empty(self, tmp_path):
        assert Mirror(str(tmp_path / "nothing")).contents() == {}


class TestCreateMirror:
    def test_mirrors_full_dag(self, session, tmp_path):
        mirror = Mirror(str(tmp_path / "m"))
        written = create_mirror(session, mirror, [Spec("libdwarf")])
        assert set(written) == {("libdwarf", "20130729"), ("libelf", "0.8.13")}
        assert mirror.has("libelf", "0.8.13")

    def test_externals_skipped(self, session, tmp_path):
        session.register_external("openmpi@1.8.2")
        mirror = Mirror(str(tmp_path / "m"))
        written = create_mirror(session, mirror, [Spec("mpileaks ^openmpi")])
        assert ("openmpi", "1.8.2") not in written
        assert ("mpileaks", "2.3") in written


class TestAirGappedFetch:
    def test_mirror_preferred_over_web(self, session, tmp_path):
        mirror = Mirror(str(tmp_path / "m"))
        create_mirror(session, mirror, [Spec("libelf")])
        session.fetcher.add_mirror(mirror)
        # kill the web: fetch must still work from the mirror
        session.web._pages.clear()
        spec, result = session.install("libelf")
        assert "libelf" in [s.spec.name for s in result.built]

    def test_without_mirror_dead_web_fails(self, session):
        session.web._pages.clear()
        from repro.store.installer import InstallError

        with pytest.raises(InstallError):
            session.install("libelf")

    def test_tampered_mirror_caught(self, session, tmp_path):
        mirror = Mirror(str(tmp_path / "m"))
        mirror.put("libelf", "0.8.13", b"TAMPERED CONTENT")
        session.fetcher.add_mirror(mirror)
        cls = session.repo.get_class("libelf")
        pkg = cls(session.concretize(Spec("libelf@0.8.13")), session=session)
        with pytest.raises(ChecksumError):
            session.fetcher.fetch(pkg, "0.8.13")


class TestMirrorCLI:
    def test_create_and_list(self, tmp_path, capsys):
        from repro.cli.main import main

        root = str(tmp_path / "u")
        mirror_dir = str(tmp_path / "mir")
        code = main(["--root", root, "mirror", "--create", "--dir", mirror_dir,
                     "libdwarf"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mirrored 2 archives" in out
        code = main(["--root", root, "mirror", "--dir", mirror_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "libelf" in out and "libdwarf" in out
