"""Fetcher retry/backoff and the atomic per-URL-locked fetch cache."""

import json
import os
import threading

import pytest

from repro.fetch.cache import FetchCache
from repro.fetch.fetcher import Fetcher, FetchError
from repro.fetch.mockweb import (
    MockWeb,
    TransientWebError,
    mock_checksum,
    mock_tarball,
)
from repro.telemetry import Telemetry, MemorySink


class FakePkg:
    """Just enough package surface for Fetcher.fetch()."""

    name = "flaky"

    def __init__(self, checksum=None):
        self._checksum = checksum

    def url_for_version(self, version):
        return "https://mock.example.org/flaky/flaky-%s.tar.gz" % version

    def checksum_for(self, version):
        return self._checksum


def _web_with(version="1.0", checksum=True):
    web = MockWeb()
    pkg = FakePkg(mock_checksum("flaky", version) if checksum else None)
    web.put(pkg.url_for_version(version), mock_tarball("flaky", version))
    return web, pkg


def _hub_with_sink():
    hub = Telemetry()
    hub.add_sink(MemorySink())
    return hub


class TestRetry:
    def test_transient_errors_retried_to_success(self):
        web, pkg = _web_with()
        hub = _hub_with_sink()
        fetcher = Fetcher(
            web, telemetry=hub, retries=2, retry_delay=0.0,
            deterministic_backoff=True,
        )
        web.flake(pkg.url_for_version("1.0"), times=2)
        content = fetcher.fetch(pkg, "1.0")
        assert json.loads(content)["name"] == "flaky"
        assert hub.counter("fetch.retries") == 2

    def test_retries_exhausted_is_fetch_error(self):
        web, pkg = _web_with()
        hub = _hub_with_sink()
        fetcher = Fetcher(
            web, telemetry=hub, retries=1, retry_delay=0.0,
            deterministic_backoff=True,
        )
        web.flake(pkg.url_for_version("1.0"), times=5)
        with pytest.raises(FetchError, match="after 2 attempts"):
            fetcher.fetch(pkg, "1.0")
        assert hub.counter("fetch.retries") == 1
        assert hub.counter("fetch.errors") == 1

    def test_404_is_permanent_never_retried(self):
        web, pkg = _web_with()
        hub = _hub_with_sink()
        fetcher = Fetcher(
            web, telemetry=hub, retries=3, retry_delay=0.0,
            deterministic_backoff=True,
        )
        with pytest.raises(FetchError):
            fetcher.fetch(pkg, "9.9")  # not registered
        assert hub.counter("fetch.retries") == 0

    def test_backoff_schedule_is_exponential_when_deterministic(self):
        web, _ = _web_with()
        fetcher = Fetcher(
            web, retries=3, retry_delay=0.05, deterministic_backoff=True
        )
        delays = []
        fetcher._backoff_sleep = lambda n, _o=fetcher._backoff_sleep: delays.append(
            fetcher.retry_delay * (2 ** n)
        )
        pkg = FakePkg()
        web.put(pkg.url_for_version("1.0"), mock_tarball("flaky", "1.0"))
        web.flake(pkg.url_for_version("1.0"), times=3)
        fetcher.fetch(pkg, "1.0")
        assert delays == [0.05, 0.1, 0.2]

    def test_jitter_stays_within_backoff_envelope(self):
        web, _ = _web_with()
        fetcher = Fetcher(web, retries=0, retry_delay=0.01)
        # jitter multiplies by [0.5, 1.5); the slot never exceeds 1.5x
        for attempt in range(4):
            base = fetcher.retry_delay * (2 ** attempt)
            import time as _time

            slept = []
            real_sleep = _time.sleep
            _time.sleep = lambda s: slept.append(s)
            try:
                fetcher._backoff_sleep(attempt)
            finally:
                _time.sleep = real_sleep
            assert 0.5 * base <= slept[0] < 1.5 * base


class TestFetchCache:
    def test_round_trip_and_miss(self, tmp_path):
        cache = FetchCache(str(tmp_path / "cache"))
        assert cache.get("https://x/y") is None
        cache.put("https://x/y", b"bytes")
        assert cache.get("https://x/y") == b"bytes"

    def test_publish_is_atomic_no_temp_residue(self, tmp_path):
        cache = FetchCache(str(tmp_path / "cache"))
        cache.put("https://x/y", b"payload")
        entries = [
            e for e in os.listdir(cache.root) if not e.startswith(".")
        ]
        assert entries == [os.path.basename(cache.path_for("https://x/y"))]
        assert not any(e.endswith(".tmp") for e in os.listdir(cache.root))

    def test_second_fetch_hits_disk_cache(self, tmp_path):
        web, pkg = _web_with()
        hub = _hub_with_sink()
        cache = FetchCache(str(tmp_path / "cache"))
        fetcher = Fetcher(web, telemetry=hub, cache=cache)
        first = fetcher.fetch(pkg, "1.0")
        web.corrupt(pkg.url_for_version("1.0"))  # web now poisoned...
        second = fetcher.fetch(pkg, "1.0")  # ...but the cache serves it
        assert first == second
        assert hub.counter("fetch.disk_cache_hit") == 1

    def test_unverified_content_never_cached_after_mismatch(self, tmp_path):
        from repro.fetch.fetcher import ChecksumError

        web, pkg = _web_with()
        cache = FetchCache(str(tmp_path / "cache"))
        fetcher = Fetcher(web, cache=cache)
        web.corrupt(pkg.url_for_version("1.0"))
        with pytest.raises(ChecksumError):
            fetcher.fetch(pkg, "1.0")
        assert cache.get(pkg.url_for_version("1.0")) is None

    def test_digest_is_part_of_the_cache_key(self, tmp_path):
        """A changed declared checksum (a release re-pointing the same
        URL) must miss the cache and refetch — never serve the old,
        previously verified bytes."""
        cache = FetchCache(str(tmp_path / "cache"))
        url = "https://x/pkg-1.0.tar.gz"
        cache.put(url, b"old bytes", digest="old-md5")
        assert cache.get(url, digest="old-md5") == b"old bytes"
        assert cache.get(url, digest="new-md5") is None
        assert cache.path_for(url, "old-md5") != cache.path_for(url, "new-md5")
        # the undigested (unverified-fetch) key is a third, distinct slot
        assert cache.get(url) is None

    def test_changed_checksum_refetches_through_fetcher(self, tmp_path):
        web, pkg = _web_with()
        url = pkg.url_for_version("1.0")
        cache = FetchCache(str(tmp_path / "cache"))
        fetcher = Fetcher(web, cache=cache)
        fetcher.fetch(pkg, "1.0")  # cached under (url, old md5)

        # upstream re-points the same URL at new content with a new md5
        new_content = b'{"name": "flaky", "version": "1.0", "rebuild": 2}'
        import hashlib

        web.put(url, new_content)
        pkg._checksum = hashlib.md5(new_content).hexdigest()
        assert fetcher.fetch(pkg, "1.0") == new_content

    def test_concurrent_fetchers_collapse_to_one_download(self, tmp_path):
        web, pkg = _web_with()
        url = pkg.url_for_version("1.0")
        downloads = []
        download_lock = threading.Lock()
        real_get = web.get

        def counting_get(u):
            if u == url:
                with download_lock:
                    downloads.append(u)
            return real_get(u)

        web.get = counting_get
        cache = FetchCache(str(tmp_path / "cache"))
        fetcher = Fetcher(web, cache=cache)
        results, errors = [], []

        def worker():
            try:
                results.append(fetcher.fetch(pkg, "1.0"))
            except Exception as e:  # noqa: BLE001 — surfaced via assert
                errors.append(e)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 8 and len(set(results)) == 1
        assert len(downloads) == 1  # per-URL lock: one web hit total

    def test_session_wires_cache_in(self, session):
        assert session.fetcher.cache is session.fetch_cache
        spec = session.concretize("libelf")
        session.install(spec)
        cached = [
            e for e in os.listdir(session.fetch_cache.root)
            if not e.startswith(".")
        ]
        assert cached  # the install populated the on-disk cache


class TestFetchConfigSection:
    """The ``fetch`` config section reaches the session's Fetcher, so a
    site can pin retry budgets (and CI can pin the deterministic
    backoff schedule) without touching code."""

    def test_defaults_without_a_fetch_section(self, tmp_path):
        from repro.fetch.fetcher import DEFAULT_RETRIES, DEFAULT_RETRY_DELAY
        from repro.session import Session

        s = Session.create(str(tmp_path / "plain"))
        assert s.fetcher.retries == DEFAULT_RETRIES
        assert s.fetcher.retry_delay == DEFAULT_RETRY_DELAY
        assert s.fetcher.deterministic_backoff is False

    def test_overrides_reach_the_fetcher(self, tmp_path):
        from repro.session import Session

        s = Session.create(
            str(tmp_path / "tuned"),
            config_overrides={
                "fetch": {
                    "retries": 5,
                    "retry_delay": 0.25,
                    "deterministic_backoff": True,
                }
            },
        )
        assert s.fetcher.retries == 5
        assert s.fetcher.retry_delay == 0.25
        assert s.fetcher.deterministic_backoff is True

    def test_configured_budget_governs_real_retries(self, tmp_path):
        """retries=0 means one attempt total: a single transient fault
        becomes a fetch error instead of being absorbed."""
        from repro.errors import ReproError
        from repro.session import Session
        from repro.testing.faults import Fault

        s = Session.create(
            str(tmp_path / "strict"),
            config_overrides={
                "fetch": {"retries": 0, "deterministic_backoff": True}
            },
        )
        s.faults.arm([Fault("fetch.transient", target="libelf", times=1)])
        with pytest.raises(ReproError):
            s.install("libelf", jobs=1)
