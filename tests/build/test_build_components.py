"""Unit tests for the ``repro.build`` substrate: wrappers, fake
compiler, and the fake loader's RPATH semantics.

Integration behaviour (full builds through the installer) is covered by
``tests/integration`` and ``tests/store``; these tests pin the pure
pieces directly — in particular the §3.5.2 ordering guarantee that an
RPATH always beats ``LD_LIBRARY_PATH``.
"""

import json
import os

import pytest

from repro.build import fakecc
from repro.build.loader import LoaderError, ldd, load_binary
from repro.build.wrappers import WRAPPER_NAMES, wrap_compiler_args, write_wrappers


WRAP_ENV = {
    "SPACK_CC": "/toolchain/gcc-4.9.2",
    "SPACK_CXX": "/toolchain/g++-4.9.2",
    "SPACK_DEPENDENCIES": os.pathsep.join(["/store/libelf", "/store/libdwarf"]),
    "SPACK_PREFIX": "/store/dyninst",
    "SPACK_TARGET_FLAGS": "-mcpu=power8",
}


class TestWrapCompilerArgs:
    def test_compile_line_gets_includes_not_rpaths(self):
        argv = wrap_compiler_args(["cc", "-c", "unit.c", "-o", "unit.o"], WRAP_ENV)
        assert argv[0] == "/toolchain/gcc-4.9.2"
        assert "-mcpu=power8" in argv
        assert "-I/store/libelf/include" in argv
        assert "-I/store/libdwarf/include" in argv
        assert not any(a.startswith("-L") for a in argv)
        assert not any(a.startswith("-Wl,-rpath") for a in argv)
        # original arguments survive, in order, at the end
        assert argv[-4:] == ["-c", "unit.c", "-o", "unit.o"]

    def test_link_line_gets_search_paths_and_rpaths(self):
        argv = wrap_compiler_args(["cc", "a.o", "-o", "prog", "-lelf"], WRAP_ENV)
        assert "-L/store/libelf/lib" in argv
        assert "-Wl,-rpath,/store/libelf/lib" in argv
        assert "-Wl,-rpath,/store/libdwarf/lib" in argv
        # the install prefix's own lib gets an RPATH too
        assert "-Wl,-rpath,/store/dyninst/lib" in argv

    def test_cxx_slot_uses_spack_cxx(self):
        argv = wrap_compiler_args(["c++", "-c", "x.cc", "-o", "x.o"], WRAP_ENV, slot="cxx")
        assert argv[0] == "/toolchain/g++-4.9.2"

    def test_no_env_is_identity_plus_nothing(self):
        argv = wrap_compiler_args(["cc", "-c", "x.c", "-o", "x.o"], {})
        assert argv == ["cc", "-c", "x.c", "-o", "x.o"]

    def test_written_wrappers_are_executable_scripts(self, tmp_path):
        paths = write_wrappers(str(tmp_path / "wrappers"))
        assert set(paths) == set(WRAPPER_NAMES)
        for slot, path in paths.items():
            assert os.path.basename(path) == WRAPPER_NAMES[slot]
            assert os.access(path, os.X_OK)
            with open(path) as f:
                assert "wrap_compiler_args" in f.read()


class TestFakeCompiler:
    def test_compile_writes_object_artifact(self, tmp_path):
        out = str(tmp_path / "unit.o.json")
        fakecc.run(["gcc-4.9.2", "-c", "src/unit_000.c", "-o", out, "-O2"])
        with open(out) as f:
            obj = json.load(f)
        assert obj["type"] == "object"
        assert obj["sources"] == ["unit_000.c"]
        assert obj["compiler"] == "gcc-4.9.2"
        assert "-O2" in obj["flags"]

    def test_link_records_needed_and_rpaths(self, tmp_path):
        out = str(tmp_path / "prog")
        fakecc.run(
            [
                "cc",
                "a.o",
                "-o",
                out,
                "-lelf",
                "-ldwarf",
                "-L/store/libelf/lib",
                "-Wl,-rpath,/store/libelf/lib",
            ]
        )
        with open(out) as f:
            binary = json.load(f)
        assert binary["type"] == "binary"
        assert binary["needed"] == ["libdwarf.so.json", "libelf.so.json"]
        assert binary["rpaths"] == ["/store/libelf/lib"]

    def test_shared_builds_a_library(self, tmp_path):
        out = str(tmp_path / fakecc.soname("elf"))
        fakecc.run(["cc", "-shared", "a.o", "-o", out])
        with open(out) as f:
            assert json.load(f)["type"] == "library"

    def test_missing_output_is_a_usage_error(self):
        with pytest.raises(fakecc.FakeCompilerError):
            fakecc.parse_argv(["cc", "-c", "x.c"])


class TestLoader:
    """RPATH-or-bust resolution, the paper's headline guarantee."""

    def _write(self, directory, name, needed=(), rpaths=()):
        path = os.path.join(str(directory), name)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            json.dump(
                {"type": "binary", "needed": list(needed), "rpaths": list(rpaths)},
                f,
            )
        return path

    def test_resolves_transitively_through_rpaths_alone(self, tmp_path):
        libelf = self._write(tmp_path, "libelf/lib/libelf.so.json")
        self._write(
            tmp_path,
            "libdwarf/lib/libdwarf.so.json",
            needed=["libelf.so.json"],
            rpaths=[os.path.dirname(libelf)],
        )
        prog = self._write(
            tmp_path,
            "app/bin/prog",
            needed=["libdwarf.so.json"],
            rpaths=[str(tmp_path / "libdwarf" / "lib")],
        )
        resolved = load_binary(prog, env={})  # empty environment!
        assert set(resolved) == {"libdwarf.so.json", "libelf.so.json"}
        assert resolved["libelf.so.json"] == libelf
        assert ldd(prog) == resolved

    def test_rpath_beats_hostile_ld_library_path(self, tmp_path):
        good = self._write(tmp_path, "good/libelf.so.json")
        self._write(tmp_path, "decoy/libelf.so.json")
        prog = self._write(
            tmp_path,
            "prog",
            needed=["libelf.so.json"],
            rpaths=[str(tmp_path / "good")],
        )
        resolved = load_binary(
            prog, env={"LD_LIBRARY_PATH": str(tmp_path / "decoy")}
        )
        assert resolved["libelf.so.json"] == good

    def test_env_fallback_when_no_rpath(self, tmp_path):
        lib = self._write(tmp_path, "sys/libelf.so.json")
        prog = self._write(tmp_path, "prog", needed=["libelf.so.json"])
        with pytest.raises(LoaderError):
            load_binary(prog, env={})
        resolved = load_binary(
            prog, env={"LD_LIBRARY_PATH": str(tmp_path / "sys")}
        )
        assert resolved["libelf.so.json"] == lib

    def test_unresolvable_names_the_chain(self, tmp_path):
        prog = self._write(tmp_path, "prog", needed=["libmissing.so.json"])
        with pytest.raises(LoaderError) as err:
            load_binary(prog, env={})
        assert "libmissing.so.json" in str(err.value)
        assert "prog" in str(err.value)
