"""Snapshot-isolated read state: digest parity with the live session,
immutability under mid-flight mutation, and fork-on-token-change."""

import json

import pytest

from repro.config.config import ConfigError
from repro.repo.repository import NoSuchPackageError
from repro.service.snapshot import SnapshotManager, StateSnapshot
from repro.session import Session
from repro.telemetry import Telemetry
from repro.telemetry.sinks import MemorySink


@pytest.fixture
def hub():
    t = Telemetry()
    t.add_sink(MemorySink())
    return t


@pytest.fixture
def tsession(tmp_path, hub):
    return Session.create(str(tmp_path / "universe"), telemetry=hub)


class TestDigestParity:
    def test_snapshot_digest_matches_session(self, tsession):
        snapshot = StateSnapshot(tsession)
        assert snapshot.env_digest == tsession._env_digest.current()

    def test_concretization_matches_session_per_variant(self, tsession):
        snapshot = StateSnapshot(tsession)
        for variant in ("greedy", "backtracking", "solver"):
            database = tsession.db if variant == "solver" else None
            from_snapshot = snapshot.concretize(
                "mpileaks", variant, database=database
            )
            from_session = tsession.concretize("mpileaks", concretizer=variant)
            assert from_snapshot.dag_hash() == from_session.dag_hash()
            assert from_snapshot.concrete

    def test_snapshot_reads_session_warmed_disk_cache(self, tsession, hub):
        cold = tsession.concretize("dyninst")  # persists under the digest
        snapshot = StateSnapshot(tsession)
        hits_before = hub.counter("concretize.cache.hit")
        warm = snapshot.concretize("dyninst")
        # the digests agree, so the snapshot's key found the entry the
        # session stored — a disk hit, not a second cold concretization
        assert hub.counter("concretize.cache.hit") == hits_before + 1
        assert warm.dag_hash() == cold.dag_hash()

    def test_session_reads_snapshot_warmed_disk_cache(self, tsession, hub):
        snapshot = StateSnapshot(tsession)
        cold = snapshot.concretize("libdwarf")
        hits_before = hub.counter("concretize.cache.hit")
        warm = tsession.concretize("libdwarf")
        assert hub.counter("concretize.cache.hit") == hits_before + 1
        assert warm.dag_hash() == cold.dag_hash()

    def test_memo_returns_independent_copies(self, tsession):
        snapshot = StateSnapshot(tsession)
        first = snapshot.concretize("libelf")
        second = snapshot.concretize("libelf")
        assert first is not second
        first.variants["mangled"] = True
        assert snapshot.concretize("libelf") == second


class TestFrozenState:
    def test_frozen_config_refuses_mutation(self, tsession):
        snapshot = StateSnapshot(tsession)
        with pytest.raises(ConfigError):
            snapshot.config.update("user", {"concretizer": "solver"})

    def test_snapshot_survives_live_mutation(self, tsession):
        snapshot = StateSnapshot(tsession)
        names_before = snapshot.list_packages()
        digest_before = snapshot.env_digest
        from repro.package.package import Package

        tsession.repo.repos[0].add_class(
            "brandnew", type("Brandnew", (Package,), {})
        )
        tsession.config.update(
            "user", {"preferences": {"compiler_order": ["clang@3.5.0"]}}
        )
        # the snapshot still answers from its frozen state
        assert snapshot.list_packages() == names_before
        assert "brandnew" not in snapshot.repo
        assert snapshot.env_digest == digest_before
        assert str(snapshot.concretize("mpileaks").compiler).startswith("gcc")

    def test_missing_package_raises_no_such(self, tsession):
        snapshot = StateSnapshot(tsession)
        with pytest.raises(NoSuchPackageError):
            snapshot.repo.get_class("no-such-package")

    def test_list_packages_filters(self, tsession):
        snapshot = StateSnapshot(tsession)
        everything = snapshot.list_packages()
        assert "mpileaks" in everything
        assert snapshot.list_packages("mpi") == [
            n for n in everything if "mpi" in n
        ]

    def test_package_info_is_json_able(self, tsession):
        snapshot = StateSnapshot(tsession)
        info = snapshot.package_info("mpileaks")
        json.dumps(info)  # must round-trip the wire
        assert info["name"] == "mpileaks"
        assert info["versions"]
        assert any(d["spec"].startswith("mpi") for d in info["dependencies"])


class TestSnapshotManager:
    def test_steady_state_shares_one_snapshot(self, tsession):
        manager = SnapshotManager(tsession)
        first = manager.current()
        assert manager.current() is first
        assert manager.forks == 1

    def test_mutation_forks_a_new_snapshot(self, tsession, hub):
        manager = SnapshotManager(tsession)
        old = manager.current()
        tsession.config.update(
            "user", {"preferences": {"compiler_order": ["clang@3.5.0"]}}
        )
        new = manager.current()
        assert new is not old
        assert new.env_digest != old.env_digest
        assert manager.forks == 2
        assert hub.counter("service.snapshot.fork") == 2
        # the fork sees the new preference; the old snapshot still
        # answers with its frozen one
        assert str(new.concretize("mpileaks").compiler).startswith("clang")
        assert str(old.concretize("mpileaks").compiler).startswith("gcc")

    def test_package_registration_forks(self, tsession):
        from repro.package.package import Package

        manager = SnapshotManager(tsession)
        old = manager.current()
        tsession.repo.repos[0].add_class(
            "newpkg", type("Newpkg", (Package,), {})
        )
        new = manager.current()
        assert new is not old
        assert "newpkg" in new.repo
        assert "newpkg" not in old.repo
