"""The daemon under fire: mixed concurrent requests, snapshot isolation
across a mid-flight mutation, and one single-rooted trace per request."""

import threading
import time

import pytest

from repro.service import ServiceDaemon
from repro.session import Session
from repro.telemetry import Telemetry
from repro.telemetry.analysis import TraceAnalysis
from repro.telemetry.sinks import MemorySink


@pytest.fixture
def sink():
    return MemorySink()


@pytest.fixture
def hub(sink):
    t = Telemetry()
    t.add_sink(sink)
    return t


@pytest.fixture
def tsession(tmp_path, hub):
    return Session.create(str(tmp_path / "universe"), telemetry=hub)


class TestMixedHerd:
    def test_forty_mixed_requests_across_eight_workers(self, tsession):
        specs = ["mpileaks", "dyninst", "libdwarf", "libelf"]
        with ServiceDaemon(tsession, workers=8) as daemon:
            futures = []
            for i in range(40):
                kind = i % 4
                if kind == 0:
                    futures.append(daemon.submit(
                        "spack_spec", {"spec": specs[(i // 4) % len(specs)]}
                    ))
                elif kind == 1:
                    futures.append(daemon.submit("spack_list", {"query": "mpi"}))
                elif kind == 2:
                    futures.append(daemon.submit(
                        "spack_info", {"package": "callpath"}
                    ))
                else:
                    futures.append(daemon.submit("spack_find", {}))
            results = [f.result(timeout=120) for f in futures]

        assert len(results) == 40
        # identical spec requests resolved identically, whatever the
        # interleaving
        by_spec = {}
        for i, result in enumerate(results):
            if i % 4 == 0:
                spec = specs[(i // 4) % len(specs)]
                by_spec.setdefault(spec, set()).add(result["dag_hash"])
        assert all(len(hashes) == 1 for hashes in by_spec.values())
        # every list/info answer is complete, never a torn read
        for i, result in enumerate(results):
            if i % 4 == 1:
                assert "mpich" in result["packages"]
            elif i % 4 == 2:
                assert result["name"] == "callpath"
        status = daemon._ep_status()
        assert status["requests"]["served"] == 40
        assert status["requests"]["errors"] == 0

    def test_concurrent_spec_requests_agree_per_thread_clients(self, tsession):
        """Client-side threads (one blocking call chain each) instead of
        pre-submitted futures — the shape a socket transport produces."""
        results, errors = [], []
        with ServiceDaemon(tsession, workers=8) as daemon:
            barrier = threading.Barrier(8)

            def client():
                try:
                    barrier.wait()
                    for _ in range(3):
                        results.append(
                            daemon.call("spack_spec", {"spec": "mpileaks"})
                        )
                except Exception as e:  # pragma: no cover - failure detail
                    errors.append(e)

            threads = [threading.Thread(target=client) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []
        assert len({r["dag_hash"] for r in results}) == 1


class TestSnapshotIsolationMidFlight:
    def test_old_requests_finish_old_new_see_new(self, tsession):
        with ServiceDaemon(tsession, workers=4) as daemon:
            old_snapshot = daemon.snapshots.current()
            release = threading.Event()
            entered = threading.Event()
            real_cold = old_snapshot._concretize_cold

            def blocking_cold(spec, variant, database=None):
                entered.set()
                release.wait(timeout=30)
                return real_cold(spec, variant, database)

            old_snapshot._concretize_cold = blocking_cold
            old_future = daemon.submit("spack_spec", {"spec": "mpileaks"})
            assert entered.wait(timeout=30)  # pinned on the old snapshot

            # the mutation lands while that request is mid-flight
            tsession.config.update(
                "user", {"preferences": {"compiler_order": ["clang@3.5.0"]}}
            )
            new_result = daemon.call("spack_spec", {"spec": "mpileaks"})
            assert new_result["env_digest"] != old_snapshot.env_digest
            new_root = next(
                n for n in new_result["nodes"] if n["name"] == "mpileaks"
            )
            assert new_root["compiler"].startswith("clang")

            release.set()
            old_result = old_future.result(timeout=30)
            # the in-flight request finished on the snapshot it started on
            assert old_result["env_digest"] == old_snapshot.env_digest
            old_root = next(
                n for n in old_result["nodes"] if n["name"] == "mpileaks"
            )
            assert old_root["compiler"].startswith("gcc")
            assert daemon.snapshots.forks == 2

    def test_mutation_under_load_never_tears_a_response(self, tsession):
        """Requests racing a config mutation each answer consistently
        from exactly one of the two digests."""
        digests = set()
        results, errors = [], []
        with ServiceDaemon(tsession, workers=8) as daemon:
            digests.add(daemon.snapshots.current().env_digest)
            start = threading.Barrier(5)

            def requester():
                try:
                    start.wait()
                    for _ in range(5):
                        results.append(
                            daemon.call("spack_spec", {"spec": "libdwarf"})
                        )
                except Exception as e:  # pragma: no cover - failure detail
                    errors.append(e)

            def mutator():
                start.wait()
                time.sleep(0.01)
                tsession.config.update(
                    "user",
                    {"preferences": {"compiler_order": ["clang@3.5.0"]}},
                )
                digests.add(daemon.snapshots.current().env_digest)

            threads = [threading.Thread(target=requester) for _ in range(4)]
            threads.append(threading.Thread(target=mutator))
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []
        assert len(results) == 20
        assert len(digests) == 2
        assert all(r["env_digest"] in digests for r in results)
        # each digest maps to exactly one answer: a request never mixes
        # pre- and post-mutation state
        answers = {}
        for result in results:
            root = next(
                n for n in result["nodes"] if n["name"] == "libdwarf"
            )
            answers.setdefault(result["env_digest"], set()).add(
                root["compiler"]
            )
        assert all(len(compilers) == 1 for compilers in answers.values())


class TestPerRequestTraces:
    def test_each_request_is_one_single_rooted_trace(self, tsession, sink):
        with ServiceDaemon(tsession, workers=4) as daemon:
            futures = [
                daemon.submit("spack_spec", {"spec": spec})
                for spec in ("mpileaks", "dyninst")
            ]
            futures += [daemon.submit("spack_list", {}) for _ in range(3)]
            for f in futures:
                f.result(timeout=120)

        analysis = TraceAnalysis(sink.records)
        assert analysis.orphans == []
        request_roots = [
            r for r in analysis.roots if r.name == "service.request"
        ]
        assert len(request_roots) == 5
        # distinct trace ids: no request rides another's trace
        assert len({r.trace_id for r in request_roots}) == 5
        traces = analysis.traces()
        for root in request_roots:
            assert traces[root.trace_id] == [root]
        # the concretizing requests carry their work as child spans
        spec_roots = [
            r for r in request_roots if r.attrs.get("endpoint") == "spack_spec"
        ]
        assert len(spec_roots) == 2
        assert any(
            child.name.startswith("concretize")
            for root in spec_roots
            for child in root.walk()
            if child is not root
        )
