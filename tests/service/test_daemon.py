"""The daemon's endpoint contract, request batching, and transports."""

import io
import json
import threading
import time

import pytest

from repro.service import (
    ENDPOINTS,
    ServiceClient,
    ServiceClientError,
    ServiceDaemon,
    ServiceError,
    SocketTransport,
    StdioTransport,
)
from repro.service.transport import handle_line
from repro.session import Session
from repro.telemetry import Telemetry
from repro.telemetry.sinks import MemorySink


@pytest.fixture
def hub():
    t = Telemetry()
    t.add_sink(MemorySink())
    return t


@pytest.fixture
def tsession(tmp_path, hub):
    return Session.create(str(tmp_path / "universe"), telemetry=hub)


@pytest.fixture
def daemon(tsession):
    with ServiceDaemon(tsession, workers=4) as d:
        yield d


class TestEndpoints:
    def test_spack_list(self, daemon):
        result = daemon.call("spack_list")
        assert result["count"] == len(result["packages"])
        assert "mpileaks" in result["packages"]
        assert result["env_digest"]
        filtered = daemon.call("spack_list", {"query": "mpi"})
        assert all("mpi" in n for n in filtered["packages"])

    def test_spack_info(self, daemon):
        result = daemon.call("spack_info", {"package": "callpath"})
        assert result["name"] == "callpath"
        assert result["versions"]
        json.dumps(result)

    def test_spack_spec(self, daemon):
        result = daemon.call("spack_spec", {"spec": "mpileaks ^mpich"})
        assert result["dag_hash"]
        assert result["concretizer"] == "greedy"
        names = {n["name"] for n in result["nodes"]}
        assert {"mpileaks", "mpich"} <= names
        assert "mpileaks" in result["tree"]

    def test_spack_spec_variant_override(self, daemon):
        result = daemon.call(
            "spack_spec", {"spec": "libelf", "concretizer": "backtracking"}
        )
        assert result["concretizer"] == "backtracking"

    def test_spack_install_then_find(self, daemon):
        result = daemon.call("spack_install", {"spec": "libdwarf"})
        assert result["prefix"]
        assert "libdwarf" in result["built"] + result["cached"]
        found = daemon.call("spack_find")
        assert found["count"] == len(found["specs"]) >= 2  # dep too
        assert any(
            s["spec"].startswith("libdwarf") for s in found["specs"]
        )
        filtered = daemon.call("spack_find", {"query": "libelf"})
        assert filtered["count"] == 1

    def test_spack_env_unifies_roots(self, daemon):
        result = daemon.call("spack_env", {
            "roots": ["mpileaks", "dyninst ^libelf@0.8.12", "libdwarf"],
            "jobs": 3,
        })
        assert [r["root"] for r in result["roots"]] == [
            "mpileaks", "dyninst ^libelf@0.8.12", "libdwarf",
        ]
        assert all(r["dag_hash"] for r in result["roots"])
        assert result["shared_packages"] >= 1
        assert result["pins"].get("libelf", "").startswith("libelf@0.8.12")
        assert result["env_digest"]
        # the unified set dedups shared sub-DAGs
        assert result["unique_nodes"] < sum(
            len(daemon.call("spack_spec", {"spec": r})["nodes"])
            for r in ("mpileaks", "dyninst ^libelf@0.8.12", "libdwarf")
        )

    def test_spack_env_conflict_is_one_diagnostic(self, daemon):
        from repro.env.unify import EnvironmentConflictError

        with pytest.raises(EnvironmentConflictError) as err:
            daemon.call("spack_env", {
                "roots": ["mpileaks ^libelf@0.8.11", "dyninst ^libelf@0.8.12"],
            })
        assert "mpileaks ^libelf@0.8.11" in str(err.value)
        assert "dyninst ^libelf@0.8.12" in str(err.value)

    def test_spack_env_rejects_bad_roots(self, daemon):
        with pytest.raises(ServiceError, match="roots"):
            daemon.call("spack_env", {"roots": []})
        with pytest.raises(ServiceError, match="roots"):
            daemon.call("spack_env", {"roots": "mpileaks"})

    def test_status(self, daemon):
        daemon.call("spack_list")
        status = daemon.call("status")
        assert status["workers"] == 4
        assert status["requests"]["served"] >= 1
        assert status["requests"]["errors"] == 0
        assert status["snapshot"]["env_digest"]
        assert status["snapshot"]["forks"] == 1
        assert status["endpoints"] == list(ENDPOINTS)
        assert status["latency"]["count"] >= 1

    def test_unknown_endpoint_rejected_at_submit(self, daemon):
        with pytest.raises(ServiceError, match="Unknown endpoint"):
            daemon.submit("spack_build_everything")

    def test_bad_params_become_service_error(self, daemon, hub):
        with pytest.raises(ServiceError, match="Bad parameters"):
            daemon.call("spack_info", {"wrong_key": "callpath"})
        assert hub.counter("service.errors") == 1

    def test_unknown_concretizer_is_service_error(self, daemon):
        with pytest.raises(ServiceError, match="Unknown concretizer"):
            daemon.call("spack_spec", {"spec": "libelf", "concretizer": "x"})

    def test_shutdown_refuses_new_work(self, daemon):
        out = daemon.call("shutdown")
        assert out["ok"]
        assert daemon.shutdown_event.is_set()
        with pytest.raises(ServiceError, match="shutting down"):
            daemon.submit("spack_list")


class TestBatching:
    def test_thundering_herd_concretizes_once(self, tsession, hub):
        with ServiceDaemon(tsession, workers=8) as daemon:
            snapshot = daemon.snapshots.current()
            release = threading.Event()
            entered = threading.Event()
            cold_calls = []
            real_cold = snapshot._concretize_cold

            def blocking_cold(spec, variant, database=None):
                cold_calls.append(str(spec))
                entered.set()
                release.wait(timeout=30)
                return real_cold(spec, variant, database)

            snapshot._concretize_cold = blocking_cold
            futures = [daemon.submit("spack_spec", {"spec": "mpileaks"})]
            assert entered.wait(timeout=30)  # the leader is in the cold path
            n_followers = 5
            futures += [
                daemon.submit("spack_spec", {"spec": "mpileaks"})
                for _ in range(n_followers)
            ]

            def parked():
                with daemon._batch_lock:
                    return sum(
                        b.followers for b in daemon._inflight.values()
                    )

            deadline = time.time() + 30
            while parked() < n_followers and time.time() < deadline:
                time.sleep(0.005)
            assert parked() == n_followers
            release.set()
            results = [f.result(timeout=30) for f in futures]

        assert cold_calls == ["mpileaks"]  # the herd concretized once
        assert len({r["dag_hash"] for r in results}) == 1
        assert daemon.coalesced == n_followers
        assert hub.counter("service.batch.coalesced") == n_followers

    def test_leader_error_propagates_to_followers(self, tsession):
        with ServiceDaemon(tsession, workers=4) as daemon:
            snapshot = daemon.snapshots.current()
            release = threading.Event()
            entered = threading.Event()

            def failing_cold(spec, variant, database=None):
                entered.set()
                release.wait(timeout=30)
                raise RuntimeError("boom")

            snapshot._concretize_cold = failing_cold
            leader = daemon.submit("spack_spec", {"spec": "mpileaks"})
            assert entered.wait(timeout=30)
            follower = daemon.submit("spack_spec", {"spec": "mpileaks"})

            def parked():
                with daemon._batch_lock:
                    return sum(
                        b.followers for b in daemon._inflight.values()
                    )

            deadline = time.time() + 30
            while parked() < 1 and time.time() < deadline:
                time.sleep(0.005)
            release.set()
            for future in (leader, follower):
                with pytest.raises(RuntimeError, match="boom"):
                    future.result(timeout=30)


class TestTransports:
    def test_socket_round_trip_and_shutdown(self, tsession):
        daemon = ServiceDaemon(tsession, workers=2)
        server = SocketTransport(daemon, "127.0.0.1", 0)
        thread = threading.Thread(
            target=server.serve_until_shutdown, daemon=True
        )
        thread.start()
        host, port = server.address
        with ServiceClient(host, port) as client:
            listing = client.spack_list("mpi")
            assert "mpich" in listing["packages"]
            concrete = client.spack_spec("libdwarf")
            assert concrete["dag_hash"]
            with pytest.raises(ServiceClientError) as excinfo:
                client.call("not_an_endpoint")
            assert excinfo.value.remote_type == "ServiceError"
            assert client.shutdown()["ok"]
        thread.join(timeout=30)
        assert not thread.is_alive()

    def test_bad_json_is_an_error_response(self, tsession):
        with ServiceDaemon(tsession) as daemon:
            response = json.loads(handle_line(daemon, "this is not json"))
        assert response["ok"] is False
        assert response["id"] is None
        assert "JSON" in response["error"]["message"]

    def test_response_echoes_request_id(self, tsession):
        with ServiceDaemon(tsession) as daemon:
            line = json.dumps(
                {"id": "req-42", "endpoint": "spack_list", "params": {}}
            )
            response = json.loads(handle_line(daemon, line))
        assert response["id"] == "req-42"
        assert response["ok"] is True
        assert response["result"]["count"] > 0

    def test_stdio_transport(self, tsession):
        daemon = ServiceDaemon(tsession)
        requests = "\n".join([
            json.dumps({"id": 1, "endpoint": "spack_list", "params": {}}),
            "",  # blank lines are skipped
            json.dumps({"id": 2, "endpoint": "shutdown"}),
        ]) + "\n"
        stdin, stdout = io.StringIO(requests), io.StringIO()
        StdioTransport(daemon, stdin=stdin, stdout=stdout).serve_until_shutdown()
        responses = [
            json.loads(line) for line in stdout.getvalue().splitlines()
        ]
        assert [r["id"] for r in responses] == [1, 2]
        assert all(r["ok"] for r in responses)
        assert responses[0]["result"]["count"] > 0
        assert daemon.shutdown_event.is_set()
