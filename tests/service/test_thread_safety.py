"""Regression tests for the Session-level races the daemon exposed.

``Session.concretize`` keeps an in-process memo that must be cleared
when the environment digest moves.  Pre-fix, the digest check, the
invalidating ``clear()``, and the memo read ran unlocked — two threads
racing past a config change would both see the stale digest, both
clear (double-counting the invalidation), and the slower ``clear()``
would wipe the entry the faster thread had just stored for the *new*
digest.  The test makes that interleaving deterministic by parking the
first thread inside its ``clear()`` while a second thread runs the
same path to completion."""

import threading

from repro.session import Session
from repro.telemetry import Telemetry
from repro.telemetry.sinks import MemorySink


class _BlockingMemo(dict):
    """A memo dict whose first ``clear()`` parks mid-invalidation, giving
    a second thread a deterministic window to race into the same cycle."""

    def __init__(self, entered, proceed):
        super().__init__()
        self._entered = entered
        self._proceed = proceed
        self._first = True
        self.clears = 0

    def clear(self):
        self.clears += 1
        if self._first:
            self._first = False
            self._entered.set()
            # post-fix the second thread blocks on the session lock and
            # can never signal us; the timeout keeps the test moving
            self._proceed.wait(timeout=2.0)
        super().clear()


class TestConcMemoInvalidation:
    def test_digest_invalidation_is_atomic_with_memo_access(self, tmp_path):
        hub = Telemetry()
        hub.add_sink(MemorySink())
        session = Session.create(str(tmp_path / "universe"), telemetry=hub)
        session.concretize("libelf")  # seeds the memo and the last digest

        entered, proceed = threading.Event(), threading.Event()
        memo = _BlockingMemo(entered, proceed)
        memo.update(session._conc_memo)
        session._conc_memo = memo
        # the environment moves: the next concretize must invalidate
        session.config.update(
            "user", {"packages": {"zlib": {"buildable": False}}}
        )

        errors = []

        def concretize(spec):
            try:
                session.concretize(spec)
            except Exception as e:  # pragma: no cover - failure detail
                errors.append(e)

        first = threading.Thread(target=concretize, args=("libelf",))
        first.start()
        assert entered.wait(timeout=30)  # first is inside its clear()
        second = threading.Thread(target=concretize, args=("libdwarf",))
        second.start()
        second.join(timeout=30)
        proceed.set()
        first.join(timeout=30)
        assert not first.is_alive() and not second.is_alive()
        assert errors == []

        # one environment change: exactly one invalidation, one clear —
        # pre-fix both threads cleared and the counter read 2
        assert memo.clears == 1
        assert hub.counter("concretize.cache.invalidate") == 1
        # and the second thread's fresh entry survived — pre-fix the
        # parked clear() wiped it after it was stored
        assert len(session._conc_memo) == 2

    def test_concurrent_concretize_same_spec_is_consistent(self, tmp_path):
        hub = Telemetry()
        hub.add_sink(MemorySink())
        session = Session.create(str(tmp_path / "universe"), telemetry=hub)
        results, errors = [], []
        barrier = threading.Barrier(8)

        def worker():
            try:
                barrier.wait()
                for _ in range(3):
                    results.append(session.concretize("mpileaks").dag_hash())
            except Exception as e:  # pragma: no cover - failure detail
                errors.append(e)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(set(results)) == 1
        # a stable environment never invalidates
        assert hub.counter("concretize.cache.invalidate") == 0
