"""Repository loading, layering, and on-disk package files (§4.3.2)."""

import textwrap

import pytest

from repro.directives import version
from repro.package.package import Package
from repro.repo.repository import (
    NoSuchPackageError,
    RepoError,
    RepoPath,
    Repository,
)


class TestProgrammaticRepo:
    def test_register_and_get(self):
        repo = Repository(namespace="t")

        @repo.register("foo")
        class Foo(Package):
            version("1.0", "x")

        assert repo.exists("foo")
        assert repo.get_class("foo") is Foo
        assert Foo.name == "foo"
        assert Foo.namespace == "t"

    def test_missing_package(self):
        repo = Repository(namespace="t")
        with pytest.raises(NoSuchPackageError):
            repo.get_class("nothere")

    def test_invalid_name(self):
        repo = Repository(namespace="t")
        with pytest.raises(RepoError):
            repo.add_class("bad name!", Package)

    def test_non_package_rejected(self):
        repo = Repository(namespace="t")
        with pytest.raises(RepoError):
            repo.add_class("foo", object)

    def test_all_package_names_sorted(self):
        repo = Repository(namespace="t")
        for name in ["zeta", "alpha", "mid"]:
            repo.add_class(name, type("X%s" % name, (Package,), {}))
        assert repo.all_package_names() == ["alpha", "mid", "zeta"]


class TestOnDiskRepo:
    def _write_package(self, root, name, body):
        pkg_dir = root / name
        pkg_dir.mkdir(parents=True)
        (pkg_dir / "package.py").write_text(textwrap.dedent(body))

    def test_scan_and_load(self, tmp_path):
        self._write_package(
            tmp_path,
            "greeter",
            """
            class Greeter(Package):
                '''A test package loaded from disk.'''
                homepage = "https://example.org"
                url = "https://example.org/greeter-1.0.tar.gz"
                version('1.0', 'abc')
                depends_on('zlib')
            """,
        )
        repo = Repository(str(tmp_path), namespace="disk")
        assert repo.exists("greeter")
        cls = repo.get_class("greeter")
        assert cls.name == "greeter"
        assert "zlib" in cls.dependencies

    def test_dsl_preseeded_no_imports_needed(self, tmp_path):
        # Figure 1 uses version/depends_on/Package with no imports.
        self._write_package(
            tmp_path,
            "py-thing",
            """
            class PyThing(Package):
                version('2.0', 'x')
                provides('thingapi')
                variant('debug', default=False, description='dbg')
                patch('fix.patch', when='%xl')
            """,
        )
        repo = Repository(str(tmp_path), namespace="disk2")
        cls = repo.get_class("py-thing")
        assert cls.provided[0].spec.name == "thingapi"

    def test_underscore_names(self, tmp_path):
        self._write_package(
            tmp_path,
            "sgeos_xml",
            """
            class SgeosXml(Package):
                version('1.0', 'x')
            """,
        )
        repo = Repository(str(tmp_path), namespace="disk3")
        assert repo.exists("sgeos_xml")

    def test_wrong_class_name_single_candidate_ok(self, tmp_path):
        self._write_package(
            tmp_path,
            "oddname",
            """
            class TotallyDifferent(Package):
                version('1.0', 'x')
            """,
        )
        repo = Repository(str(tmp_path), namespace="disk4")
        assert repo.get_class("oddname").__name__ == "TotallyDifferent"

    def test_broken_package_reports_error(self, tmp_path):
        self._write_package(tmp_path, "broken", "this is not python !!!")
        repo = Repository(str(tmp_path), namespace="disk5")
        with pytest.raises(RepoError):
            repo.get_class("broken")

    def test_missing_root(self):
        repo = Repository("/nonexistent/path/xyz", namespace="d")
        with pytest.raises(RepoError):
            repo.exists("anything")


class TestRepoPath:
    def _two_repos(self):
        builtin = Repository(namespace="builtin-t")

        @builtin.register("pkg")
        class BuiltinPkg(Package):
            version("1.0", "x")

        @builtin.register("only-builtin")
        class OnlyBuiltin(Package):
            version("1.0", "x")

        site = Repository(namespace="site-t")

        class SitePkg(BuiltinPkg):
            version("1.0-site", "y")

        site.add_class("pkg", SitePkg)
        return builtin, site, BuiltinPkg, SitePkg

    def test_earlier_repo_shadows(self):
        builtin, site, BuiltinPkg, SitePkg = self._two_repos()
        path = RepoPath([site, builtin])
        assert path.get_class("pkg") is SitePkg
        assert path.get_class("only-builtin").name == "only-builtin"

    def test_site_class_inherits_builtin_metadata(self):
        _, _, BuiltinPkg, SitePkg = self._two_repos()
        from repro.version import Version

        assert Version("1.0") in SitePkg.versions
        assert Version("1.0-site") in SitePkg.versions
        assert Version("1.0-site") not in BuiltinPkg.versions

    def test_prepend(self):
        builtin, site, _, SitePkg = self._two_repos()
        path = RepoPath([builtin])
        assert path.get_class("pkg").namespace == "builtin-t"
        path.prepend(site)
        assert path.get_class("pkg") is SitePkg

    def test_repo_for(self):
        builtin, site, *_ = self._two_repos()
        path = RepoPath([site, builtin])
        assert path.repo_for("pkg") is site
        assert path.repo_for("only-builtin") is builtin

    def test_union_names(self):
        builtin, site, *_ = self._two_repos()
        path = RepoPath([site, builtin])
        assert path.all_package_names() == ["only-builtin", "pkg"]
