"""Versioned virtual dependencies and the provider index (§3.3, Figure 5)."""

import pytest

from repro.directives import depends_on, provides, version
from repro.package.package import Package
from repro.repo.providers import ProviderIndex
from repro.repo.repository import Repository
from repro.spec.spec import Spec


@pytest.fixture
def figure5_repo():
    """Exactly the Figure 5 packages."""
    repo = Repository(namespace="fig5")

    @repo.register("mvapich2")
    class Mvapich2(Package):
        version("1.9", "a")
        version("2.0", "b")
        provides("mpi@:2.2", when="@1.9")
        provides("mpi@:3.0", when="@2.0")

    @repo.register("mpich")
    class Mpich(Package):
        version("3.0.4", "a")
        version("1.4", "b")
        provides("mpi@:3", when="@3:")
        provides("mpi@:1", when="@1:1.5")

    @repo.register("mpileaks")
    class Mpileaks(Package):
        version("1.0", "x")
        depends_on("mpi")

    @repo.register("gerris")
    class Gerris(Package):
        version("1.0", "x")
        depends_on("mpi@2:")

    return repo


@pytest.fixture
def index(figure5_repo):
    return ProviderIndex.from_repo(figure5_repo)


class TestProviderIndex:
    def test_virtual_detection(self, index):
        assert index.is_virtual("mpi")
        assert not index.is_virtual("mpileaks")
        assert "mpi" in index

    def test_unconstrained_request(self, index):
        names = {p.name for p in index.providers_for("mpi")}
        assert names == {"mvapich2", "mpich"}

    def test_figure5_any_mpi(self, index):
        # "Any version of mvapich2 or mpich could be used to satisfy the
        # mpi constraint [of mpileaks]."
        providers = index.providers_for(Spec("mpi"))
        versions = {(p.name, str(p.versions)) for p in providers}
        assert ("mvapich2", "1.9") in versions
        assert ("mvapich2", "2.0") in versions
        assert ("mpich", "3:") in versions
        assert ("mpich", "1:1.5") in versions

    def test_figure5_gerris_constraint(self, index):
        # "Gerris needs MPI version 2 or higher.  So any version except
        # mpich 1.x could be used."
        providers = index.providers_for(Spec("mpi@2:"))
        versions = {(p.name, str(p.versions)) for p in providers}
        assert ("mvapich2", "1.9") in versions       # provides up to 2.2
        assert ("mvapich2", "2.0") in versions
        assert ("mpich", "3:") in versions
        assert ("mpich", "1:1.5") not in versions    # mpi@:1 only

    def test_mpi3_request(self, index):
        providers = index.providers_for(Spec("mpi@3:"))
        versions = {(p.name, str(p.versions)) for p in providers}
        assert ("mvapich2", "2.0") in versions
        assert ("mvapich2", "1.9") not in versions
        assert ("mpich", "3:") in versions

    def test_no_provider(self, index):
        assert index.providers_for(Spec("mpi@99:")) == []
        assert index.providers_for(Spec("nosuchvirtual")) == []

    def test_providers_for_name(self, index):
        assert index.providers_for_name("mpi") == ["mpich", "mvapich2"]

    def test_satisfies_virtual(self, figure5_repo, index):
        mvapich2 = figure5_repo.get_class("mvapich2")
        mpich = figure5_repo.get_class("mpich")
        assert index.satisfies_virtual(Spec("mvapich2@2.0"), Spec("mpi@3:"), mvapich2)
        assert not index.satisfies_virtual(Spec("mvapich2@1.9"), Spec("mpi@3:"), mvapich2)
        assert not index.satisfies_virtual(Spec("mpich@1.4"), Spec("mpi@2:"), mpich)
        assert index.satisfies_virtual(Spec("mpich@3.0.4"), Spec("mpi@2:"), mpich)

    def test_constraint_transfer(self, index):
        # Non-version constraints on the virtual carry to the provider.
        providers = index.providers_for(Spec("mpi%gcc@4.9=bgq"))
        assert providers
        for p in providers:
            assert p.compiler.name == "gcc"
            assert p.architecture == "bgq"

    def test_unconditional_provides(self):
        repo = Repository(namespace="uncond")

        @repo.register("openmpi")
        class Openmpi(Package):
            version("1.8.2", "x")
            provides("mpi@:2.2")

        index = ProviderIndex.from_repo(repo)
        providers = index.providers_for(Spec("mpi@2:"))
        assert [p.name for p in providers] == ["openmpi"]
        assert providers[0].versions.universal  # no when => any version


class TestProviderMemo:
    """providers_for memoizes on the virtual spec's DAG key; results are
    defensive copies and update() invalidates."""

    def test_repeat_queries_are_equal_but_not_shared(self, index):
        first = index.providers_for(Spec("mpi@2:"))
        second = index.providers_for(Spec("mpi@2:"))
        assert first == second
        assert all(a is not b for a, b in zip(first, second))
        first[0].variants["mangled"] = True
        assert index.providers_for(Spec("mpi@2:")) == second

    def test_update_invalidates_the_memo(self, index):
        before = index.providers_for(Spec("mpi@2:"))
        repo = Repository(namespace="late")

        @repo.register("newmpi")
        class Newmpi(Package):
            version("9.0", "x")
            provides("mpi@3")

        index.update("newmpi", Newmpi)
        after = index.providers_for(Spec("mpi@2:"))
        assert "newmpi" in [p.name for p in after]
        assert len(after) == len(before) + 1

    def test_update_keeps_unrelated_virtual_shards(self, figure5_repo, index):
        repo = Repository(namespace="late2")

        @repo.register("netlib-blas")
        class NetlibBlas(Package):
            version("3.0", "x")
            provides("blas@1:")

        index.update("netlib-blas", NetlibBlas)
        index.providers_for(Spec("mpi@2:"))  # prime the mpi shard
        hits = index.memo_hits

        @repo.register("openblas")
        class Openblas(Package):
            version("0.3", "x")
            provides("blas@2:")

        index.update("openblas", Openblas)  # touches blas, not mpi
        index.providers_for(Spec("mpi@2:"))
        assert index.memo_hits == hits + 1

    def test_memo_keeps_evicting_past_1024_distinct_specs(self, index):
        """Regression: the memo used a fixed admission cap — after 1024
        distinct virtual specs it stopped memoizing entirely, so every
        later providers_for call was a cold scan (hit-rate pinned to
        zero for the rest of the process).  Bounded LRU eviction keeps
        recent constraints hot no matter how many have been seen."""
        from repro.repo.providers import MEMO_SHARD_CAP

        total = MEMO_SHARD_CAP + 64
        for i in range(total):
            index.providers_for(Spec("mpi@:%d.%d" % (i // 10 + 1, i % 10)))
        # re-query the most recent constraints: with LRU these are all
        # still resident; with the old admission cap none of the post-cap
        # keys were ever stored, so every one of these would miss
        hits_before = index.memo_hits
        for i in range(total - 32, total):
            index.providers_for(Spec("mpi@:%d.%d" % (i // 10 + 1, i % 10)))
        assert index.memo_hits - hits_before == 32
        # and the shard stayed bounded while the hit-rate stayed > 0
        assert len(index._memo_shards["mpi"]) <= MEMO_SHARD_CAP
        assert index.memo_hits > 0
