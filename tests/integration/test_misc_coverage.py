"""Coverage sweep for smaller behaviours across subsystems."""

import os

import pytest

from repro.spec.spec import Spec


class TestProvidersCLI:
    def test_list_all_virtuals(self, tmp_path, capsys):
        from repro.cli.main import main

        code = main(["--root", str(tmp_path / "u"), "providers"])
        out = capsys.readouterr().out
        assert code == 0
        for virtual in ("mpi", "blas", "lapack", "fft"):
            assert virtual in out
        assert "mvapich2" in out and "fftw" in out


class TestInstallerOptions:
    def test_keep_stage(self, session):
        session.install("libelf", keep_stage=True)
        stages = os.listdir(session.stage_root)
        assert any("libelf" in s for s in stages)

    def test_stage_destroyed_by_default(self, session):
        session.install("libelf")
        assert not any("libelf" in s for s in os.listdir(session.stage_root))


class TestSpecMisc:
    def test_contains_spec_object(self, session):
        concrete = session.concretize(Spec("mpileaks"))
        assert Spec("libelf@0.8:") in concrete
        assert Spec("libelf@9:") not in concrete

    def test_repr_round_trip_hint(self):
        s = Spec("mpileaks@1.0+debug")
        assert "mpileaks@1.0+debug" in repr(s)

    def test_node_str_omits_universal_versions(self):
        assert Spec("mpileaks").node_str() == "mpileaks"

    def test_eq_node(self):
        a, b = Spec("x@1%gcc"), Spec("x@1%gcc")
        b._add_dependency(Spec("y"))
        assert a.eq_node(b)
        assert a != b


class TestConfigMisc:
    def test_merged_full_dict(self, session):
        merged = session.config.merged()
        assert "preferences" in merged
        assert merged["preferences"]["providers"]["mpi"][0] == "mvapich2"

    def test_view_rules_accessor(self, session):
        session.config.update("user", {"views": {"rules": [{"link": "/x/${PACKAGE}"}]}})
        assert session.config.view_rules()["rules"][0]["link"] == "/x/${PACKAGE}"


class TestPackageMisc:
    def test_safe_vs_known_versions(self, session):
        cls = session.repo.get_class("mpileaks")
        assert cls.safe_versions() == cls.known_versions()  # all checksummed

    def test_extendee_spec(self, session):
        concrete = session.concretize(Spec("py-nose"))
        pkg = session.package_for(concrete)
        assert pkg.extendee_spec.name == "python"

    def test_package_requires_matching_spec(self, session):
        cls = session.repo.get_class("libelf")
        from repro.package.package import PackageError

        with pytest.raises(PackageError):
            cls(Spec("mpileaks"), session=session)

    def test_corpus_cost_attributes_sane(self, session):
        for name in session.repo.all_package_names():
            cls = session.repo.get_class(name)
            assert getattr(cls, "build_units", 20) > 0
            assert getattr(cls, "unit_cost", 0.05) > 0


class TestModulesMisc:
    def test_external_module_generated(self, session):
        from repro.modules.generator import ModuleGenerator

        session.register_external("openmpi@1.8.2")
        spec, _ = session.install("mpileaks ^openmpi")
        paths = ModuleGenerator(session).write_for_spec(spec["openmpi"])
        text = open(paths[0]).read()
        assert "openmpi" in text

    def test_module_file_names_stable(self, installed_mpileaks):
        from repro.modules.generator import TclModule

        session, spec, _ = installed_mpileaks
        a = TclModule(spec, session.store.layout).file_name
        b = TclModule(spec, session.store.layout).file_name
        assert a == b


class TestStoreMisc:
    def test_all_specs_dirs(self, installed_mpileaks):
        session, _, _ = installed_mpileaks
        dirs = list(session.store.layout.all_specs_dirs())
        assert len(dirs) == 6
        assert all(os.path.isdir(d) for d in dirs)

    def test_metadata_path(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        meta = session.store.layout.metadata_path(spec)
        assert meta.endswith(".spack")
        assert os.path.isdir(meta)
