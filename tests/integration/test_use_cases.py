"""End-to-end reproductions of the paper's four use cases (§4)."""

import json
import os

import pytest

from repro.spec.spec import Spec


class TestUseCase1CombinatorialNaming:
    """§4.1: gperftools across compilers; mpileaks across compilers AND
    MPIs, with new MPIs composed without editing the package."""

    def test_gperftools_central_install_matrix(self, session):
        specs = []
        for compiler in ("%gcc@4.9.2", "%gcc@4.7.3", "%intel@15.0.1"):
            spec, _ = session.install("gperftools@2.4 " + compiler)
            specs.append(spec)
        prefixes = {session.store.layout.path_for_spec(s) for s in specs}
        assert len(prefixes) == 3
        assert len(session.find("gperftools")) == 3

    def test_mpileaks_with_new_mpi_without_editing_package(self, session):
        """'Spack's virtual dependency system allows us to compose a new
        mpileaks build quickly when a new MPI library is deployed.'"""
        for mpi in ("^mvapich2", "^mpich", "^openmpi"):
            session.install("mpileaks " + mpi)
        mpis = {s["mpi"].name for s in session.find("mpileaks")}
        assert mpis == {"mvapich2", "mpich", "openmpi"}


class TestUseCase2PythonSupport:
    """§4.2: per-prefix extensions + activation into a baseline stack."""

    def test_custom_python_stack(self, session):
        session.install("python@2.7.9")
        session.install("py-numpy ^python@2.7.9")
        session.install("py-scipy ^python@2.7.9")
        from repro.extensions.manager import ExtensionManager

        manager = ExtensionManager(session)
        manager.activate("py-numpy")
        manager.activate("py-scipy")

        python_prefix = session.store.layout.path_for_spec(session.find("python")[0])
        site = os.path.join(python_prefix, "lib", "site-packages")
        assert os.path.isfile(os.path.join(site, "numpy", "__init__.py"))
        assert os.path.isfile(os.path.join(site, "scipy", "__init__.py"))
        pth = open(os.path.join(site, "easy-install.pth")).read().splitlines()
        assert set(pth) == {"./numpy", "./scipy"}

    def test_two_interpreter_versions_coexist(self, session):
        session.install("python@2.7.9")
        session.install("python@3.4.2")
        assert len(session.find("python")) == 2


class TestUseCase3SitePolicies:
    """§4.3: views, preference policies, and site package repositories."""

    def test_view_with_policy_change(self, session, tmp_path):
        from repro.views.view import View, ViewRule

        session.install("mpileaks %gcc@4.9.2")
        session.install("mpileaks %intel@15.0.1")
        view = View(session, str(tmp_path / "view"))
        view.add_rule(ViewRule("/opt/${PACKAGE}-${VERSION}-${MPINAME}", match="mpileaks"))
        # ambiguous link: both builds project to the same name
        links = view.refresh()
        assert len(links) == 1
        session.config.update("user", {"preferences": {"compiler_order": ["intel"]}})
        links = view.refresh()
        assert next(iter(links.values())).compiler.name == "intel"

    def test_site_repo_overrides_builtin(self, session):
        """A site class inheriting the built-in recipe (§4.3.2)."""
        from repro.directives import version
        from repro.fetch.mockweb import mock_checksum
        from repro.repo.repository import Repository

        builtin_cls = session.repo.get_class("libelf")

        class SiteLibelf(builtin_cls):
            version("0.8.13-llnl", mock_checksum("libelf", "0.8.13-llnl"))

        site = Repository(namespace="site")
        site.add_class("libelf", SiteLibelf)
        session.add_repo(site)
        session.seed_web()

        assert session.repo.get_class("libelf") is SiteLibelf
        concrete = session.concretize(Spec("libelf@0.8.13-llnl"))
        spec, result = session.install(concrete)
        assert session.db.installed(spec)
        # builtin recipe unchanged for other sessions
        from repro.version import Version

        assert Version("0.8.13-llnl") not in builtin_cls.versions


class TestUseCase4Ares:
    """§4.4: the production multi-physics stack, with vendor MPI external."""

    def test_ares_full_install(self, session):
        session.config.update(
            "user", {"preferences": {"providers": {"mpi": ["mvapich"]}}}
        )
        spec, result = session.install("ares@2015.06+lite %gcc")
        assert session.db.installed(spec)
        built = set(result.built_names)
        assert "ares" in built and "samrai" in built and "python" in built
        # binary resolves its whole stack with an empty environment
        from repro.build.loader import ldd

        binary = os.path.join(session.store.layout.path_for_spec(spec), "bin", "ares")
        resolved = ldd(binary, env={})
        assert "libsamrai.so.json" in resolved
        assert "libhypre.so.json" in resolved

    def test_ares_with_external_vendor_mpi(self, session):
        """'We have configured Spack to build ARES with external MPI
        implementations, depending on the host system.'"""
        prefix = session.register_external("cray-mpich@7.0.0")
        spec, result = session.install("ares@2015.06+lite %pgi =cray_xe6 ^cray-mpich")
        assert spec["mpi"].external == prefix
        assert "cray-mpich" not in result.built_names
        binary = os.path.join(session.store.layout.path_for_spec(spec), "bin", "ares")
        from repro.build.loader import ldd

        resolved = ldd(binary, env={})
        assert resolved["libcray-mpich.so.json"].startswith(prefix)
