"""Whole-pipeline fuzz: random requests → concretize → install → verify.

Hypothesis drives random (but valid) build requests through the entire
stack; every one must either concretize+install+verify cleanly or fail
with a *typed* error — never corrupt the store, never leave a partial
prefix, never break an earlier install.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ReproError
from repro.session import Session
from repro.spec.spec import Spec
from repro.store.verify import verify_store


@pytest.fixture(scope="module")
def fuzz_session(tmp_path_factory):
    return Session.create(str(tmp_path_factory.mktemp("fuzz")))


packages = st.sampled_from(
    ["libelf", "libdwarf", "libpng", "zlib", "gperftools", "mpileaks",
     "callpath", "gerris", "hdf5", "py-nose", "fftw"]
)
compilers = st.sampled_from(["", " %gcc", " %gcc@4.7.3", " %intel", " %clang"])
arches = st.sampled_from(["", " =linux-x86_64", " =bgq"])
mpis = st.sampled_from(["", " ^mvapich2", " ^openmpi", " ^mpich"])


@st.composite
def requests(draw):
    return draw(packages) + draw(compilers) + draw(arches) + draw(mpis)


@given(requests())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_random_request_never_corrupts_store(fuzz_session, request_text):
    session = fuzz_session
    try:
        spec, result = session.install(request_text)
    except ReproError:
        # a typed failure (bad provider combo, conflict, ...) is fine —
        # but it must not damage what is already installed
        assert verify_store(session) == []
        return
    # success path: record present, prefix present, everything verifies
    assert session.db.installed(spec)
    prefix = session.store.layout.path_for_spec(spec)
    assert os.path.isdir(prefix)
    assert verify_store(session) == []
    # and the result honors the request
    assert spec.satisfies(Spec(request_text.strip()), strict=True)
