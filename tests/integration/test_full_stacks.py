"""Heavyweight end-to-end runs: full ARES, and every example script."""

import os
import subprocess
import sys

import pytest

from repro.spec.spec import Spec


@pytest.mark.slow
class TestFullAres:
    def test_full_production_install(self, session):
        """The complete (non-lite) 47-package production configuration,
        built end to end: §4.4 at full scale."""
        session.config.update(
            "user", {"preferences": {"providers": {"mpi": ["mvapich"]}}}
        )
        spec, result = session.install("ares@2015.06 %gcc")
        assert len(list(spec.traverse())) == 47
        assert len(result.built) == 47
        assert session.db.installed(spec)

        # every artifact resolves with an empty environment
        from repro.build.loader import ldd

        binary = os.path.join(session.store.layout.path_for_spec(spec), "bin", "ares")
        resolved = ldd(binary, env={})
        assert len(resolved) >= 20  # the whole transitive closure

        # and the store verifies clean
        from repro.store.verify import verify_store

        assert verify_store(session) == []

    def test_second_config_reuses_most_of_the_stack(self, session):
        session.config.update(
            "user", {"preferences": {"providers": {"mpi": ["mvapich"]}}}
        )
        session.install("ares@2015.06 %gcc")
        spec, result = session.install("ares@develop %gcc")
        # only ares itself and version-pinned deps rebuild; the bulk reuses
        assert len(result.reused) > len(result.built)
        assert "ares" in result.built_names


EXAMPLES = [
    "quickstart.py",
    "python_stack_management.py",
    "site_policies_and_views.py",
    "ares_production_stack.py",
    "beyond_the_paper.py",
]


@pytest.mark.slow
class TestExamples:
    @pytest.mark.parametrize("script", EXAMPLES)
    def test_example_runs_clean(self, script, tmp_path):
        examples_dir = os.path.join(
            os.path.dirname(__file__), "..", "..", "examples"
        )
        path = os.path.abspath(os.path.join(examples_dir, script))
        proc = subprocess.run(
            [sys.executable, path, str(tmp_path / "workdir")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout
