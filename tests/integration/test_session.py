"""Session-level behaviour: creation options, reuse semantics, invalidation."""

import os

import pytest

from repro.session import Session
from repro.spec.spec import Spec


class TestCreation:
    def test_custom_toolchains(self, tmp_path):
        session = Session.create(
            str(tmp_path / "u"), toolchains=[("gcc", "5.2.0"), ("clang", "3.6.1")]
        )
        names = {(c.name, str(c.version)) for c in session.compilers}
        assert names == {("gcc", "5.2.0"), ("clang", "3.6.1")}

    def test_empty_repo_session(self, tmp_path):
        session = Session.create(str(tmp_path / "u"), packages=None)
        assert session.repo.all_package_names() == []

    def test_config_overrides_win(self, tmp_path):
        session = Session.create(
            str(tmp_path / "u"),
            config_overrides={"preferences": {"architecture": "bgq"}},
        )
        assert session.concretize(Spec("libelf")).architecture == "bgq"

    def test_web_seeded_for_all_packages(self, tmp_path):
        session = Session.create(str(tmp_path / "u"))
        cls = session.repo.get_class("libelf")
        pkg = cls(Spec("libelf@0.8.13"), session=session)
        assert session.web.exists(pkg.url_for_version("0.8.13"))

    def test_stage_and_store_layout(self, tmp_path):
        session = Session.create(str(tmp_path / "u"))
        assert os.path.isdir(session.stage_root)
        assert session.store.root == os.path.abspath(str(tmp_path / "u"))


class TestInstallSemantics:
    def test_reuse_existing_satisfying_install(self, session):
        """§3.2.3: 'the user can save time if Spack already has a version
        installed that satisfies the spec'."""
        first, _ = session.install("mpileaks@2.3")
        again, result = session.install("mpileaks@2:")  # satisfied by 2.3
        assert again.dag_hash() == first.dag_hash()
        assert result.built == []

    def test_reuse_can_be_disabled(self, session):
        session.install("mpileaks@2.3")
        spec, _ = session.install("mpileaks@2:", reuse_existing=False)
        # same concretization -> same hash -> still no rebuild, but the
        # path went through concretize rather than the database
        assert str(spec.version) == "2.3"

    def test_nonmatching_install_builds_fresh(self, session):
        session.install("mpileaks@2.3")
        spec, result = session.install("mpileaks@1.0")
        assert str(spec.version) == "1.0"
        assert "mpileaks" in [s.spec.name for s in result.built]

    def test_explicit_marking(self, session):
        spec, _ = session.install("mpileaks")
        explicit = {r.name for r in session.find(explicit=True)}
        implicit = {r.name for r in session.find(explicit=False)}
        assert "mpileaks" in explicit
        assert "libelf" in implicit

    def test_find_with_queries(self, installed_mpileaks):
        session, _, _ = installed_mpileaks
        assert len(session.find()) == 6
        assert len(session.find("mpileaks")) == 1
        assert session.find("mpileaks %intel") == []


class TestRepoManagement:
    def test_add_repo_invalidates_provider_index(self, session):
        from repro.directives import provides, version
        from repro.package.package import Package
        from repro.repo.repository import Repository

        assert not session.provider_index.is_virtual("newapi")
        extra = Repository(namespace="extra")

        @extra.register("newlib")
        class Newlib(Package):
            version("1.0", "x")
            provides("newapi")

        session.add_repo(extra)
        assert session.provider_index.is_virtual("newapi")

    def test_package_for(self, session):
        concrete = session.concretize(Spec("libelf"))
        pkg = session.package_for(concrete)
        assert pkg.name == "libelf"
        assert pkg.session is session
        assert pkg.prefix == session.store.layout.path_for_spec(concrete)


class TestExternals:
    def test_register_external_creates_content(self, session):
        prefix = session.register_external("openmpi@1.8.2")
        assert os.path.isfile(os.path.join(prefix, "include", "openmpi.h"))
        assert os.path.isfile(os.path.join(prefix, "lib", "libopenmpi.so.json"))

    def test_register_external_custom_prefix(self, session, tmp_path):
        prefix = session.register_external(
            "mkl@11.2", prefix=str(tmp_path / "intel" / "mkl")
        )
        assert prefix == str(tmp_path / "intel" / "mkl")
        concrete = session.concretize(Spec("py-numpy ^mkl"))
        assert concrete["mkl"].external == prefix

    def test_external_without_content(self, session, tmp_path):
        prefix = session.register_external(
            "openmpi@1.8.2", prefix=str(tmp_path / "bare"), create_content=False
        )
        assert not os.path.exists(prefix)


class TestModuleGeneration:
    def test_modules_auto_generated(self, session):
        spec, _ = session.install("libelf")
        module_dir = os.path.join(session.root, "modules")
        files = []
        for dirpath, _d, names in os.walk(module_dir):
            files.extend(names)
        assert any("libelf" in f for f in files)

    def test_generation_can_be_disabled(self, tmp_path):
        session = Session.create(str(tmp_path / "u"), generate_modules=False)
        session.install("libelf")
        assert not os.path.isdir(os.path.join(session.root, "modules"))
