"""Disaster-recovery drills: damage the store, detect, repair.

The multi-user HPC reality the paper opens with includes filesystems
that eat things.  These tests chain the recovery tooling: verify finds
the damage, reindex rebuilds the database from provenance, reinstall
heals prefixes (hash-addressed prefixes make this safe), and mirrors
make all of it possible without a network.
"""

import os
import shutil

import pytest

from repro.spec.spec import Spec
from repro.store.database import Database
from repro.store.verify import verify_store


class TestIndexLoss:
    def test_reindex_recovers_everything(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        count_before = len(session.db)
        os.unlink(session.db.index_path)

        rebuilt = Database(session.store.root)
        assert len(rebuilt) == count_before
        assert rebuilt.installed(spec)
        assert rebuilt.installed(spec["libelf"])
        # dependents protection still works off the rebuilt index
        assert rebuilt.dependents_of(spec["libelf"])

    def test_rebuilt_records_verify_clean(self, installed_mpileaks):
        session, _, _ = installed_mpileaks
        os.unlink(session.db.index_path)
        session.db._records = {}
        session.db.rebuild_from_prefixes()
        assert verify_store(session) == []


class TestPrefixLoss:
    def test_verify_then_reinstall_heals(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        victim = spec["libelf"]
        prefix = session.store.layout.path_for_spec(victim)
        shutil.rmtree(prefix)

        issues = verify_store(session)
        assert any(i.kind == "missing-prefix" for i in issues)

        # remove the dead record, reinstall the same concrete spec:
        # the hash-addressed prefix comes back bit-for-bit compatible
        session.db.remove(victim)
        session.installer.install(victim)
        assert os.path.isdir(prefix)
        assert verify_store(session) == []

        # the dependents never noticed: their RPATHs point at the healed
        # prefix
        from repro.build.loader import ldd

        binary = os.path.join(session.store.layout.path_for_spec(spec), "bin", "mpileaks")
        assert "liblibelf.so.json" in ldd(binary, env={})


class TestAirGappedRebuild:
    def test_full_rebuild_from_mirror_after_store_loss(self, session, tmp_path):
        """Store destroyed, network gone: mirror + recipes rebuild it."""
        from repro.fetch.mirror import Mirror, create_mirror

        mirror = Mirror(str(tmp_path / "m"))
        create_mirror(session, mirror, [Spec("mpileaks")])

        spec, _ = session.install("mpileaks")
        # catastrophe: the whole opt tree and index vanish
        shutil.rmtree(session.store.layout.root)
        os.unlink(session.db.index_path)
        session.db._records = {}
        # and the internet is gone too
        session.web._pages.clear()
        session.fetcher.add_mirror(mirror)

        respec, result = session.install("mpileaks")
        assert respec.dag_hash() == spec.dag_hash()
        assert len(result.built) == 6
        assert verify_store(session) == []
