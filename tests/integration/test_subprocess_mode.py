"""Honest-mode install: real wrapper scripts, real compiler subprocesses.

The fast in-process path and the subprocess path share the same pure
functions; this suite proves the subprocess path — actual generated
``cc`` wrapper scripts spawning actual fake-compiler executables —
produces identical artifacts.
"""

import json
import os

import pytest

from repro.session import Session


@pytest.fixture(scope="module")
def subprocess_session(tmp_path_factory):
    return Session.create(
        str(tmp_path_factory.mktemp("subproc")), subprocess_mode=True
    )


@pytest.mark.slow
class TestSubprocessBuilds:
    def test_leaf_install(self, subprocess_session):
        spec, result = subprocess_session.install("libelf")
        prefix = subprocess_session.store.layout.path_for_spec(spec)
        lib = json.load(open(os.path.join(prefix, "lib", "liblibelf.so.json")))
        assert lib["type"] == "library"
        # the wrapper exec'd the real compiler; artifacts record it
        assert lib["compiler"] == "gcc-4.9.2"

    def test_dependent_install_rpaths(self, subprocess_session):
        spec, _ = subprocess_session.install("libdwarf")
        prefix = subprocess_session.store.layout.path_for_spec(spec)
        binary = json.load(open(os.path.join(prefix, "bin", "libdwarf")))
        assert "liblibelf.so.json" in binary["needed"]
        libelf_lib = os.path.join(
            subprocess_session.store.layout.path_for_spec(spec["libelf"]), "lib"
        )
        assert libelf_lib in binary["rpaths"]

    def test_loader_resolves_subprocess_build(self, subprocess_session):
        from repro.build.loader import ldd

        spec, _ = subprocess_session.install("libdwarf")
        prefix = subprocess_session.store.layout.path_for_spec(spec)
        resolved = ldd(os.path.join(prefix, "bin", "libdwarf"), env={})
        assert "liblibelf.so.json" in resolved

    def test_matches_inprocess_artifacts(self, subprocess_session, tmp_path):
        fast = Session.create(str(tmp_path / "fast"))
        fast_spec, _ = fast.install("libdwarf")
        sub_spec, _ = subprocess_session.install("libdwarf")
        # identical concretization...
        assert fast_spec.dag_hash() == sub_spec.dag_hash()
        # ...and identical linkage structure in the artifacts
        def needed(session, spec):
            prefix = session.store.layout.path_for_spec(spec)
            return json.load(open(os.path.join(prefix, "bin", "libdwarf")))["needed"]

        assert needed(fast, fast_spec) == needed(subprocess_session, sub_spec)
