"""@when build specialization (§3.2.5, Figure 4)."""

import pytest

from repro.directives import NoSuchMethodError, when
from repro.directives.multimethod import SpecMultiMethod
from repro.package.package import Package
from repro.spec.spec import Spec


class FigureFour(Package):
    """The Dyninst example from Figure 4."""

    def install(self, spec, prefix):  # default: cmake
        return "cmake"

    @when("@:8.1")
    def install(self, spec, prefix):  # <= 8.1: autotools
        return "autotools"


FigureFour.name = "figurefour"


class TestFigureFour:
    def test_new_version_uses_default(self):
        pkg = FigureFour(Spec("figurefour@8.2"))
        assert pkg.install(None, None) == "cmake"

    def test_old_version_uses_specialized(self):
        assert FigureFour(Spec("figurefour@8.1")).install(None, None) == "autotools"
        assert FigureFour(Spec("figurefour@8.0")).install(None, None) == "autotools"

    def test_boundary_family(self):
        assert FigureFour(Spec("figurefour@8.1.2")).install(None, None) == "autotools"


class ManyConditions(Package):
    def build_flavor(self):
        return "default"

    @when("%xl")
    def build_flavor(self):
        return "xl"

    @when("=bgq")
    def build_flavor(self):
        return "bgq"


ManyConditions.name = "many"


class TestDispatchOrder:
    def test_first_matching_condition_wins(self):
        pkg = ManyConditions(Spec("many%xl@12.1=bgq"))
        assert pkg.build_flavor() == "xl"

    def test_second_condition(self):
        pkg = ManyConditions(Spec("many%gcc@4.9=bgq"))
        assert pkg.build_flavor() == "bgq"

    def test_default_fallback(self):
        pkg = ManyConditions(Spec("many%gcc@4.9=linux-x86_64"))
        assert pkg.build_flavor() == "default"


class OnlyConditional(Package):
    @when("@2:")
    def helper(self):
        return "v2"


OnlyConditional.name = "onlycond"


class TestNoDefault:
    def test_matching(self):
        assert OnlyConditional(Spec("onlycond@2.1")).helper() == "v2"

    def test_no_match_raises(self):
        with pytest.raises(NoSuchMethodError):
            OnlyConditional(Spec("onlycond@1.0")).helper()


class Parent(Package):
    def greet(self):
        return "parent"


class Child(Parent):
    @when("@5:")
    def greet(self):
        return "child-v5"


Parent.name = "parent"
Child.name = "child"


class TestInheritanceFallback:
    def test_subclass_condition(self):
        assert Child(Spec("child@6")).greet() == "child-v5"

    def test_falls_back_to_inherited(self):
        assert Child(Spec("child@1")).greet() == "parent"


class TestDescriptor:
    def test_class_access_returns_descriptor(self):
        assert isinstance(FigureFour.__dict__["install"], SpecMultiMethod)

    def test_bound_method(self):
        pkg = FigureFour(Spec("figurefour@8.0"))
        bound = pkg.install
        assert bound(None, None) == "autotools"
