"""Directive mechanics: metadata accumulation and inheritance (§3.1)."""

import pytest

from repro.directives import (
    DirectiveError,
    conflicts,
    depends_on,
    extends,
    patch,
    provides,
    variant,
    version,
)
from repro.package.package import Package
from repro.spec.spec import Spec
from repro.version import Version


class Example(Package):
    homepage = "https://example.org"
    url = "https://example.org/example-1.0.tar.gz"

    version("1.0", "aaaa")
    version("2.0", "bbbb", url="https://mirror.org/example-2.0.tgz")
    variant("debug", default=False, description="debug build")
    variant("shared", default=True, description="shared libs")
    depends_on("libelf")
    depends_on("libdwarf@20130729:", when="+debug")
    provides("exampleapi@:2", when="@2:")
    patch("fix-things.patch", when="%xl")
    conflicts("%pgi@:13", msg="known miscompilation")


Example.name = "example"


class TestVersionDirective:
    def test_versions_recorded(self):
        assert Version("1.0") in Example.versions
        assert Example.versions[Version("1.0")]["checksum"] == "aaaa"

    def test_per_version_url(self):
        assert Example.versions[Version("2.0")]["url"] == "https://mirror.org/example-2.0.tgz"

    def test_known_versions_sorted_newest_first(self):
        assert Example.known_versions()[0] == Version("2.0")


class TestDependsOn:
    def test_unconditional(self):
        constraints = Example.dependencies["libelf"]
        assert len(constraints) == 1
        assert constraints[0].when is None

    def test_conditional(self):
        dc = Example.dependencies["libdwarf"][0]
        assert dc.when == Spec("+debug")
        assert str(dc.spec.versions) == "20130729:"

    def test_requires_named_spec(self):
        with pytest.raises(DirectiveError):
            class Bad(Package):
                depends_on("@1.2")


class TestProvides:
    def test_recorded_with_condition(self):
        interface = Example.provided[0]
        assert interface.spec.name == "exampleapi"
        assert interface.when == Spec("@2:")

    def test_provided_virtuals_evaluation(self):
        assert Example.provided_virtuals(Spec("example@2.1"))
        assert not Example.provided_virtuals(Spec("example@1.0"))

    def test_provides_query(self):
        assert Example.provides("exampleapi")
        assert not Example.provides("mpi")


class TestVariants:
    def test_declared(self):
        assert Example.variants["debug"].default is False
        assert Example.variants["shared"].default is True
        assert Example.variants["debug"].description == "debug build"


class TestPatchesAndConflicts:
    def test_patch_condition(self):
        pkg = Example(Spec("example@1.0%xl@12.1=bgq"))
        assert [p.name for p in pkg.patches_for_spec()] == ["fix-things.patch"]

    def test_patch_not_applied(self):
        pkg = Example(Spec("example@1.0%gcc@4.9=bgq"))
        assert pkg.patches_for_spec() == []

    def test_conflict_detected(self):
        pkg = Example(Spec("example@1.0%pgi@13.1"))
        from repro.package.package import PackageError

        with pytest.raises(PackageError, match="miscompilation"):
            pkg.validate_conflicts()

    def test_no_conflict(self):
        Example(Spec("example@1.0%pgi@14.10")).validate_conflicts()


class TestInheritance:
    def test_subclass_inherits_and_extends(self):
        class SiteExample(Example):
            version("3.0-site", "cccc")
            depends_on("zlib")

        SiteExample.name = "example"
        assert Version("1.0") in SiteExample.versions
        assert Version("3.0-site") in SiteExample.versions
        assert "zlib" in SiteExample.dependencies
        assert "libelf" in SiteExample.dependencies

    def test_parent_not_mutated(self):
        class Child(Example):
            version("9.9", "dddd")
            variant("extra", default=True, description="x")

        assert Version("9.9") not in Example.versions
        assert "extra" not in Example.variants


class TestExtends:
    def test_extends_implies_dependency(self):
        class Ext(Package):
            extends("python")
            version("1.0", "eeee")

        Ext.name = "ext"
        assert "python" in Ext.extendees
        assert "python" in Ext.dependencies
        assert Ext(Spec("ext")).is_extension

    def test_non_extension(self):
        assert not Example(Spec("example@1.0")).is_extension


class TestUrlForVersion:
    def test_extrapolated(self):
        pkg = Example(Spec("example@1.5"))
        assert pkg.url_for_version("1.5") == "https://example.org/example-1.5.tar.gz"

    def test_per_version_override(self):
        pkg = Example(Spec("example@2.0"))
        assert pkg.url_for_version("2.0") == "https://mirror.org/example-2.0.tgz"

    def test_checksum_lookup(self):
        pkg = Example(Spec("example@1.0"))
        assert pkg.checksum_for("1.0") == "aaaa"
        assert pkg.checksum_for("7.7") is None


class TestVersionDigestKeywords:
    def test_sha256_keyword_stores_the_digest(self):
        class WithSha(Package):
            version("1.0", sha256="f" * 64)

        WithSha.name = "withsha"
        assert WithSha(Spec("withsha@1.0")).checksum_for("1.0") == "f" * 64

    def test_md5_keyword_stores_the_digest(self):
        class WithMd5(Package):
            version("1.0", md5="a" * 32)

        WithMd5.name = "withmd5"
        assert WithMd5(Spec("withmd5@1.0")).checksum_for("1.0") == "a" * 32

    def test_positional_checksum_still_works(self):
        assert Example(Spec("example@1.0")).checksum_for("1.0") == "aaaa"

    def test_conflicting_digest_kwargs_rejected(self):
        with pytest.raises(DirectiveError):
            class Bad(Package):
                version("1.0", "aaaa", sha256="f" * 64)
