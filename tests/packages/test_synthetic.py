"""The deterministic synthetic corpus (the Figure 8 universe)."""

import pytest

from repro.packages.synthetic import full_universe, synthetic_repo
from repro.spec.spec import Spec


class TestGeneration:
    def test_deterministic(self):
        a = synthetic_repo(count=40, seed=3)
        b = synthetic_repo(count=40, seed=3)
        assert a.all_package_names() == b.all_package_names()
        for name in a.all_package_names():
            ca, cb = a.get_class(name), b.get_class(name)
            assert sorted(ca.dependencies) == sorted(cb.dependencies)
            assert sorted(map(str, ca.versions)) == sorted(map(str, cb.versions))

    def test_seed_changes_corpus(self):
        a = synthetic_repo(count=40, seed=3)
        b = synthetic_repo(count=40, seed=4)
        different = any(
            sorted(a.get_class(n).dependencies) != sorted(b.get_class(n).dependencies)
            for n in a.all_package_names()
        )
        assert different

    def test_acyclic_by_construction(self):
        repo = synthetic_repo(count=60, seed=1)
        for name in repo.all_package_names():
            index = int(name.split("-")[1])
            for dep in repo.get_class(name).dependencies:
                if dep.startswith("syn-"):
                    assert int(dep.split("-")[1]) < index

    def test_dag_size_spread(self):
        """Transitive closures must span Figure 8's x-axis (1 .. 50+)."""
        repo = synthetic_repo(count=185, seed=42)

        sizes = {}

        def closure(name):
            if name in sizes:
                return sizes[name]
            cls = repo.get_class(name)
            deps = set()
            for dep in cls.dependencies:
                if not repo.exists(dep):
                    continue  # virtual
                deps.add(dep)
                deps |= closure(dep)
            sizes[name] = deps
            return deps

        all_sizes = [len(closure(n)) + 1 for n in repo.all_package_names()]
        assert min(all_sizes) == 1
        assert max(all_sizes) >= 50

    def test_full_universe_size(self):
        universe = full_universe(total=245)
        assert len(universe) == 245


class TestConcretizability:
    def test_sample_concretizes(self, tmp_path):
        from repro.session import Session

        universe = full_universe(total=245)
        session = Session.create(str(tmp_path / "u"), packages=None)
        session.repo.repos = universe.repos
        session._provider_index = None
        synthetic = [n for n in universe.all_package_names() if n.startswith("syn-")]
        sample = ["syn-000", "syn-023", "syn-046", "syn-100", synthetic[-1]]
        for name in sample:
            concrete = session.concretize(Spec(name))
            assert concrete.concrete
