"""The built-in corpus: sanity of every shipped package."""

import pytest

from repro.packages import builtin_repo
from repro.spec.spec import Spec


@pytest.fixture(scope="module")
def repo():
    return builtin_repo()


class TestCorpusIntegrity:
    def test_every_package_loads(self, repo):
        assert len(repo) >= 60

    def test_every_package_has_versions(self, repo):
        for name in repo.all_package_names():
            cls = repo.get_class(name)
            assert cls.versions, "%s has no versions" % name

    def test_every_package_has_url_and_doc(self, repo):
        for name in repo.all_package_names():
            cls = repo.get_class(name)
            assert cls.url, "%s has no url" % name
            assert cls.__doc__, "%s has no docstring" % name

    def test_every_dependency_resolvable(self, repo):
        from repro.repo.providers import ProviderIndex

        index = ProviderIndex.from_repo(repo)
        for name in repo.all_package_names():
            cls = repo.get_class(name)
            for dep_name in cls.dependencies:
                assert repo.exists(dep_name) or index.is_virtual(dep_name), (
                    "%s depends on unknown %s" % (name, dep_name)
                )

    def test_checksums_match_mock_tarballs(self, repo):
        """Declared checksums must be the *real* MD5s of what the mock
        web serves — otherwise every install would fail verification."""
        import hashlib

        from repro.fetch.mockweb import mock_tarball

        for name in repo.all_package_names():
            cls = repo.get_class(name)
            for version, meta in cls.versions.items():
                expected = hashlib.md5(mock_tarball(name, version)).hexdigest()
                assert meta["checksum"] == expected, (name, str(version))

    def test_paper_named_packages_present(self, repo):
        for name in [
            "mpileaks", "callpath", "dyninst", "libdwarf", "libelf",
            "mpich", "mvapich2", "openmpi", "gperftools", "python",
            "py-numpy", "py-scipy", "boost", "gerris", "rose", "ares",
            "silo", "samrai", "hypre",
        ]:
            assert repo.exists(name), name

    def test_virtuals(self, repo):
        from repro.repo.providers import ProviderIndex

        index = ProviderIndex.from_repo(repo)
        assert set(index.virtual_names()) >= {"mpi", "blas", "lapack"}
        assert "mvapich2" in index.providers_for_name("mpi")
        assert "netlib-blas" in index.providers_for_name("blas")


class TestEveryPackageConcretizes:
    def test_all_concretize(self, session):
        failures = []
        for name in session.repo.all_package_names():
            try:
                session.concretize(Spec(name))
            except Exception as e:  # collect, report all at once
                failures.append((name, str(e)))
        assert not failures, failures


class TestGperftools:
    """§4.1: combinatorial naming + per-compiler/platform build logic."""

    def test_xl_24_patch_applied(self, session):
        concrete = session.concretize(Spec("gperftools@2.4 %xl =bgq"))
        pkg = session.package_for(concrete)
        assert [p.name for p in pkg.patches_for_spec()] == ["patch.gperftools2.4_xlc"]

    def test_other_compilers_unpatched(self, session):
        concrete = session.concretize(Spec("gperftools@2.4 %gcc =bgq"))
        pkg = session.package_for(concrete)
        assert pkg.patches_for_spec() == []

    def test_old_version_unpatched_even_with_xl(self, session):
        concrete = session.concretize(Spec("gperftools@2.3 %xl =bgq"))
        pkg = session.package_for(concrete)
        assert pkg.patches_for_spec() == []

    def test_installs_per_compiler(self, session):
        """Central install across compilers: distinct prefixes, Figure 12
        configure branches exercised."""
        import json
        import os

        prefixes = set()
        for compiler in ("%gcc", "%intel"):
            spec, _ = session.install("gperftools@2.4 " + compiler)
            prefix = session.store.layout.path_for_spec(spec)
            prefixes.add(prefix)
            with open(os.path.join(prefix, "lib", "libgperftools.so.json")) as f:
                assert json.load(f)["compiler"].split("-")[0] in ("gcc", "icc")
        assert len(prefixes) == 2

    def test_bgq_configure_flags_recorded(self, session):
        spec, result = session.install("gperftools@2.4 %xl =bgq", keep_stage=True)
        import os

        prefix = session.store.layout.path_for_spec(spec)
        log = open(os.path.join(prefix, ".spack", "build.log")).read()
        assert "configured" in log


class TestPythonPatches:
    """§3.2.4's BG/Q patch predicates, end to end."""

    def test_xl_patch(self, session):
        concrete = session.concretize(Spec("python@2.7.9 =bgq %xl"))
        pkg = session.package_for(concrete)
        assert [p.name for p in pkg.patches_for_spec()] == ["python-bgq-xlc.patch"]

    def test_clang_patch(self, session):
        concrete = session.concretize(Spec("python@2.7.9 =bgq %clang"))
        pkg = session.package_for(concrete)
        assert [p.name for p in pkg.patches_for_spec()] == ["python-bgq-clang.patch"]

    def test_linux_unpatched(self, session):
        concrete = session.concretize(Spec("python@2.7.9 %gcc"))
        pkg = session.package_for(concrete)
        assert pkg.patches_for_spec() == []

    def test_patch_lands_in_source(self, session):
        spec, _ = session.install("python@2.7.9 =bgq %xl")
        import json
        import os

        prefix = session.store.layout.path_for_spec(spec)
        with open(os.path.join(prefix, ".spack", "applied_patches.json")) as f:
            assert json.load(f) == ["python-bgq-xlc.patch"]


class TestDyninstBuildSpecialization:
    """Figure 4 executed for real: old dyninst uses autotools, new cmake."""

    def test_new_uses_cmake(self, session):
        spec, _ = session.install("dyninst@8.2")
        import os

        prefix = session.store.layout.path_for_spec(spec)
        log = open(os.path.join(prefix, ".spack", "build.log")).read()
        assert "configured cmake" in log

    def test_old_uses_autotools(self, session):
        spec, _ = session.install("dyninst@8.1.2")
        import os

        prefix = session.store.layout.path_for_spec(spec)
        log = open(os.path.join(prefix, ".spack", "build.log")).read()
        assert "configured autotools" in log
