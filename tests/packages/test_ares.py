"""The ARES stack (§4.4): Figure 13 structure and Table 3 matrix."""

import pytest

from repro.packages import ares
from repro.spec.spec import Spec


@pytest.fixture(scope="module")
def ares_session(tmp_path_factory):
    from repro.session import Session

    return Session.create(str(tmp_path_factory.mktemp("ares-universe")))


@pytest.fixture(scope="module")
def concrete_ares(ares_session):
    return ares_session.concretize(Spec("ares@2015.06 %gcc =linux-x86_64 ^mvapich"))


class TestFigure13:
    def test_47_packages(self, concrete_ares):
        # "ARES comprises 47 packages"
        assert len(list(concrete_ares.traverse())) == 47

    def test_category_partition(self, concrete_ares):
        counts = {"ares": 0, "physics": 0, "math": 0, "utility": 0, "external": 0}
        for node in concrete_ares.traverse():
            counts[ares.category_of(node.name)] += 1
        # "11 LLNL physics packages, 4 LLNL math/meshing libraries, and
        # 8 LLNL utility libraries ... 23 external software packages"
        assert counts == {
            "ares": 1, "physics": 11, "math": 4, "utility": 8, "external": 23,
        }

    def test_virtuals_resolved_to_providers(self, concrete_ares):
        assert concrete_ares["mpi"].name == "mvapich"
        assert concrete_ares["blas"].name == "netlib-blas"
        assert concrete_ares["lapack"].name == "netlib-lapack"

    def test_figure13_key_edges(self, concrete_ares):
        from repro.spec.graph import edge_list

        edges = set(edge_list(concrete_ares))
        for parent, child in [
            ("ares", "teton"),
            ("ares", "samrai"),
            ("ares", "silo"),
            ("ares", "python"),
            ("silo", "hdf5"),
            ("hdf5", "zlib"),
            ("overlink", "qd"),
            ("py-scipy", "py-numpy"),
            ("tk", "tcl"),
            ("readline", "ncurses"),
        ]:
            assert (parent, child) in edges, (parent, child)

    def test_languages_diversity_stub(self, concrete_ares):
        # every node is installable through one package interface
        assert all(node.concrete for node in concrete_ares.traverse())

    def test_graph_dot_renders_with_categories(self, concrete_ares):
        from repro.spec.graph import graph_dot

        colors = {
            "ares": "red", "physics": "lightblue", "math": "orange",
            "utility": "green", "external": "gray",
        }
        dot = graph_dot(
            concrete_ares,
            node_attrs=lambda n: {"fillcolor": colors[ares.category_of(n.name)]},
        )
        assert dot.count("fillcolor") == 47


class TestLiteConfiguration:
    def test_lite_is_smaller(self, ares_session):
        full = ares_session.concretize(Spec("ares@2015.06 ^mvapich"))
        lite = ares_session.concretize(Spec("ares@2015.06+lite ^mvapich"))
        full_names = {n.name for n in full.traverse()}
        lite_names = {n.name for n in lite.traverse()}
        assert lite_names < full_names
        assert "cretin" in full_names and "cretin" not in lite_names
        assert "py-scipy" in full_names and "py-scipy" not in lite_names


class TestTable3Matrix:
    def test_matrix_totals(self):
        # "36 different configurations ... 10 architecture-compiler-MPI
        # combinations"
        assert len(ares.SUPPORT_MATRIX) == 10
        assert sum(len(configs) for *_, configs in ares.SUPPORT_MATRIX) == 36
        assert len(ares.matrix_spec_strings()) == 36

    def test_rows_cover_table_headers(self):
        compilers = {row[0].split("@")[0].lstrip("%") for row in ares.SUPPORT_MATRIX}
        assert compilers == {"gcc", "intel", "pgi", "clang", "xl"}
        arches = {row[1].lstrip("=") for row in ares.SUPPORT_MATRIX}
        assert arches == {"linux-x86_64", "bgq", "cray_xe6"}
        mpis = {row[2].lstrip("^") for row in ares.SUPPORT_MATRIX}
        assert mpis == {"mvapich", "mvapich2", "bgq-mpi", "cray-mpich"}

    @pytest.mark.parametrize("index", range(10))
    def test_every_cell_concretizes(self, ares_session, index):
        compiler, arch, mpi, configs = ares.SUPPORT_MATRIX[index]
        for letter in configs:
            text = "%s %s %s %s" % (ares.CONFIGS[letter], compiler, arch, mpi)
            concrete = ares_session.concretize(Spec(text))
            assert concrete.concrete
            assert concrete["mpi"].name == mpi.lstrip("^")
            assert concrete.compiler.name == compiler.split("@")[0].lstrip("%")

    def test_all_36_distinct(self, ares_session):
        hashes = set()
        for text in ares.matrix_spec_strings():
            hashes.add(ares_session.concretize(Spec(text)).dag_hash())
        assert len(hashes) == 36

    def test_bgq_builds_pin_python(self, ares_session):
        concrete = ares_session.concretize(Spec("ares@develop %xl =bgq ^bgq-mpi"))
        assert str(concrete["python"].version) == "2.7.9"

    def test_config_dependency_versions_differ(self, ares_session):
        cur = ares_session.concretize(Spec("ares@2015.06 ^mvapich"))
        prev = ares_session.concretize(Spec("ares@2014.11 ^mvapich"))
        assert str(cur["boost"].version) == "1.55.0"
        assert str(prev["boost"].version) == "1.54.0"
