"""The versioned FFT interface (§4.2's FFTW, third virtual family)."""

import pytest

from repro.spec.spec import Spec


class TestFftVirtual:
    def test_fftw_provides_by_generation(self, session):
        index = session.provider_index
        fft3 = index.providers_for(Spec("fft@3"))
        names = {(p.name, str(p.versions)) for p in fft3}
        assert ("fftw", "3:") in names
        assert ("mkl", "") not in names  # mkl matches but with universal versions
        assert any(p.name == "mkl" for p in fft3)
        # the FFTW-2 generation is not an fft@3 provider
        assert ("fftw", "2.1:2.9") not in names

    def test_numpy_without_fft(self, session):
        concrete = session.concretize(Spec("py-numpy"))
        assert "fftw" not in [n.name for n in concrete.traverse()]

    def test_numpy_with_fft(self, session):
        concrete = session.concretize(Spec("py-numpy+fft"))
        assert concrete["fft"].name == "fftw"
        assert str(concrete["fftw"].version) == "3.3.4"

    def test_fft2_request_pins_old_fftw(self, session):
        concrete = session.concretize(Spec("fftw"))
        assert str(concrete.version) == "3.3.4"
        # asking for the old generation steers the version the other way
        providers = session.provider_index.providers_for(Spec("fft@2"))
        assert any(p.name == "fftw" and str(p.versions) == "2.1:2.9" for p in providers)

    def test_fftw_mpi_variant(self, session):
        concrete = session.concretize(Spec("fftw+mpi"))
        assert "mpi" in {v for n in concrete.traverse() for v in n.provided_virtuals}

    def test_full_install(self, session):
        spec, result = session.install("py-numpy+fft ^python@2.7.9")
        assert "fftw" in result.built_names
