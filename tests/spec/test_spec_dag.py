"""DAG structure: traversal, sharing, copying, hashing, serialization."""

import pytest

from repro.spec.spec import Spec


def diamond():
    """a -> b -> d ; a -> c -> d with d SHARED (one node per name)."""
    a, b, c, d = Spec("a@1"), Spec("b@1"), Spec("c@1"), Spec("d@1")
    b._add_dependency(d)
    c._add_dependency(d)
    a._add_dependency(b)
    a._add_dependency(c)
    return a, b, c, d


class TestTraversal:
    def test_pre_order_root_first(self):
        a, *_ = diamond()
        names = [s.name for s in a.traverse()]
        assert names[0] == "a"
        assert sorted(names) == ["a", "b", "c", "d"]

    def test_post_order_children_first(self):
        a, *_ = diamond()
        names = [s.name for s in a.traverse(order="post")]
        assert names[-1] == "a"
        assert names.index("d") < names.index("b")

    def test_unique_nodes_visited_once(self):
        a, *_ = diamond()
        assert len(list(a.traverse())) == 4  # d yielded once despite 2 paths

    def test_depth(self):
        a, *_ = diamond()
        depths = dict((s.name, d) for d, s in a.traverse(depth=True))
        assert depths == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_root_excluded(self):
        a, *_ = diamond()
        assert "a" not in [s.name for s in a.traverse(root=False)]

    def test_flat_dependencies(self):
        a, *_ = diamond()
        assert set(a.flat_dependencies()) == {"b", "c", "d"}


class TestCopy:
    def test_copy_preserves_sharing(self):
        a, *_ = diamond()
        copy = a.copy()
        assert copy == a
        assert copy.dependencies["b"].dependencies["d"] is copy.dependencies["c"].dependencies["d"]

    def test_copy_is_deep(self):
        a, *_ = diamond()
        copy = a.copy()
        copy.dependencies["b"].versions.intersect(Spec("b@1").versions)
        copy["d"].variants["x"] = True
        assert "x" not in a["d"].variants

    def test_copy_without_deps(self):
        a, *_ = diamond()
        shallow = a.copy(deps=False)
        assert shallow.name == "a"
        assert not shallow.dependencies

    def test_constructor_copies(self):
        a, *_ = diamond()
        assert Spec(a) == a


class TestHashing:
    def test_deterministic(self):
        a1, *_ = diamond()
        a2, *_ = diamond()
        assert a1.dag_hash() == a2.dag_hash()

    def test_length_parameter(self):
        a, *_ = diamond()
        assert len(a.dag_hash(8)) == 8
        assert a.dag_hash().startswith(a.dag_hash(8))

    def test_changes_with_node_params(self):
        a1, *_ = diamond()
        a2, *_ = diamond()
        a2["d"].variants["debug"] = True
        assert a1.dag_hash() != a2.dag_hash()

    def test_changes_with_structure(self):
        a1, *_ = diamond()
        a2, *_ = diamond()
        a2["c"].dependencies.pop("d")
        assert a1.dag_hash() != a2.dag_hash()

    def test_subdag_hash_stable_across_parents(self):
        # The Figure 9 property: the same sub-DAG has the same hash no
        # matter what depends on it.
        a, b, c, d = diamond()
        other_root = Spec("z@9")
        other_root._add_dependency(b)
        assert b.dag_hash() == other_root.dependencies["b"].dag_hash()


class TestEquality:
    def test_structural(self):
        assert diamond()[0] == diamond()[0]

    def test_not_equal_different_versions(self):
        a1, *_ = diamond()
        a2 = Spec("a@2")
        assert a1 != a2

    def test_hashable(self):
        a1, *_ = diamond()
        a2, *_ = diamond()
        assert len({a1, a2}) == 1

    def test_orderable(self):
        assert sorted([Spec("b"), Spec("a")])[0].name == "a"


class TestSerialization:
    def test_round_trip(self):
        a, *_ = diamond()
        again = Spec.from_dict(a.to_dict())
        assert again == a

    def test_sharing_preserved(self):
        a, *_ = diamond()
        again = Spec.from_dict(a.to_dict())
        assert again.dependencies["b"].dependencies["d"] is again.dependencies["c"].dependencies["d"]

    def test_full_node_fields(self):
        s = Spec("mpileaks@1.2%gcc@4.7+debug=bgq")
        s.external = "/opt/ext"
        s.provided_virtuals.add("mpi")
        again = Spec.from_dict(s.to_dict())
        assert again.external == "/opt/ext"
        assert again.provided_virtuals == {"mpi"}
        assert str(again.compiler) == "gcc@4.7"
        assert again.dag_hash() == s.dag_hash()

    def test_json_compatible(self):
        import json

        a, *_ = diamond()
        assert Spec.from_dict(json.loads(json.dumps(a.to_dict()))) == a


class TestFormat:
    def test_tokens(self):
        s = Spec("mpileaks@1.0%gcc@4.9.2+debug=linux-x86_64")
        assert s.format("${PACKAGE}") == "mpileaks"
        assert s.format("${VERSION}") == "1.0"
        assert s.format("${COMPILER}") == "gcc@4.9.2"
        assert s.format("${COMPILERNAME}") == "gcc"
        assert s.format("${COMPILERVER}") == "4.9.2"
        assert s.format("${OPTIONS}") == "+debug"
        assert s.format("${ARCHITECTURE}") == "linux-x86_64"
        assert s.format("${HASH:8}") == s.dag_hash(8)

    def test_virtual_tokens(self):
        s = Spec("mpileaks@1.0")
        mv = Spec("mvapich2@1.9")
        mv.provided_virtuals.add("mpi")
        s._add_dependency(mv)
        assert s.format("${MPINAME}") == "mvapich2"
        assert s.format("${MPIVER}") == "1.9"
        assert s.format("${BLASNAME}") == ""

    def test_extra_tokens(self):
        s = Spec("mpileaks@1.0")
        assert s.format("${PACKAGE}-${BUILD}", BUILD="7") == "mpileaks-7"

    def test_unknown_token(self):
        from repro.spec.errors import SpecError

        with pytest.raises(SpecError):
            Spec("mpileaks").format("${BOGUS}")

    def test_table1_style_path(self):
        s = Spec("mpileaks@1.0%gcc@4.9.2=linux-x86_64")
        path = s.format("/${ARCHITECTURE}/${COMPILERNAME}-${COMPILERVER}/${PACKAGE}-${VERSION}")
        assert path == "/linux-x86_64/gcc-4.9.2/mpileaks-1.0"


class TestPrefix:
    def test_unstamped_raises(self):
        from repro.spec.errors import SpecError

        with pytest.raises(SpecError):
            Spec("mpileaks").prefix

    def test_stamped(self):
        s = Spec("mpileaks")
        s.prefix = "/opt/somewhere"
        assert s.prefix == "/opt/somewhere"

    def test_external_wins(self):
        s = Spec("mpileaks")
        s.external = "/vendor/mpi"
        assert s.prefix == "/vendor/mpi"
