"""Typed dependency edges: declaration, traversal, and the two-tier hash."""

import pytest

from repro.spec.errors import SpecError
from repro.spec.spec import (
    ALL_DEPTYPES,
    DEFAULT_DEPTYPES,
    RUNTIME_DEPTYPES,
    Spec,
    canonical_deptype,
    deptype_chars,
)


class TestCanonicalDeptype:
    def test_none_and_all_mean_every_type(self):
        assert canonical_deptype(None) == frozenset(ALL_DEPTYPES)
        assert canonical_deptype("all") == frozenset(ALL_DEPTYPES)

    def test_single_name_and_iterables(self):
        assert canonical_deptype("build") == frozenset(("build",))
        assert canonical_deptype(("build", "run")) == frozenset(("build", "run"))
        assert canonical_deptype(["link"]) == frozenset(("link",))

    def test_invalid_name_raises(self):
        with pytest.raises(SpecError):
            canonical_deptype("compile")
        with pytest.raises(SpecError):
            canonical_deptype(("build", "bogus"))

    def test_chars_are_ordered_and_compact(self):
        assert deptype_chars(frozenset(("run", "build", "link"))) == "blr"
        assert deptype_chars(frozenset(("link",))) == "l"
        assert deptype_chars(frozenset()) == ""

    def test_spack_default_is_build_link(self):
        assert frozenset(DEFAULT_DEPTYPES) == frozenset(("build", "link"))
        assert RUNTIME_DEPTYPES == frozenset(("link", "run"))


class TestDirectiveThreading:
    """``depends_on(..., type=...)`` lands on concretized edges."""

    def test_untyped_directive_gets_the_default(self, session):
        spec = session.concretize("libdwarf")
        assert spec.dependencies.deptypes("libelf") == frozenset(
            DEFAULT_DEPTYPES
        )

    def test_build_tool_edge_is_build_only(self, session):
        spec = session.concretize("ares")
        assert spec.dependencies.deptypes("cmake") == frozenset(("build",))

    def test_interpreter_edge_is_build_run(self, session):
        spec = session.concretize("ares")
        assert spec.dependencies.deptypes("python") == frozenset(
            ("build", "run")
        )

    def test_virtual_provider_edge_inherits_declared_types(self, session):
        spec = session.concretize("mpileaks")
        mpi_provider = spec["mpi"]
        assert spec.dependencies.deptypes(mpi_provider.name) == frozenset(
            DEFAULT_DEPTYPES
        )


class TestTypedTraversal:
    def test_deptype_filter_prunes_build_only_subdags(self, session):
        spec = session.concretize("ares")
        everyone = {n.name for n in spec.traverse()}
        runtime = {n.name for n in spec.traverse(deptype=("link", "run"))}
        assert "cmake" in everyone
        assert "cmake" not in runtime
        assert "python" in runtime  # build+run edge overlaps the filter

    def test_link_run_subdag_drops_build_tools(self, session):
        spec = session.concretize("ares")
        sub = spec.link_run_subdag()
        names = {n.name for n in sub.traverse()}
        assert "cmake" not in names
        assert spec.name in names
        # the copy keeps only runtime-relevant types on surviving edges
        assert sub.dependencies.deptypes("python") == frozenset(("run",))

    def test_original_dag_unchanged_by_subdag_copy(self, session):
        spec = session.concretize("ares")
        before = spec.dag_hash()
        spec.link_run_subdag()
        assert spec.dag_hash() == before


class TestTwoTierHash:
    def test_runtime_hash_ignores_build_only_changes(self, session):
        plain = session.concretize("ares")
        retooled = session.concretize("ares ^cmake@2.8.12")
        assert plain.dag_hash() != retooled.dag_hash()
        assert plain.runtime_hash() == retooled.runtime_hash()

    def test_runtime_hash_tracks_link_changes(self, session):
        plain = session.concretize("mpileaks")
        other = session.concretize("mpileaks ^mpich")
        assert plain.runtime_hash() != other.runtime_hash()

    def test_runtime_hash_is_cached_on_concrete_specs(self, session):
        spec = session.concretize("libdwarf")
        value = spec.runtime_hash()
        assert spec._rhash is not None
        assert spec.runtime_hash() == value

    def test_runtime_hash_length_clamp(self, session):
        spec = session.concretize("libdwarf")
        assert spec.runtime_hash(8) == spec.runtime_hash()[:8]

    def test_hash_distinguishes_edge_types(self):
        a, b = Spec("top"), Spec("top")
        child_a, child_b = Spec("leaf"), Spec("leaf")
        a.dependencies.set_edge("leaf", child_a, ("build",))
        b.dependencies.set_edge("leaf", child_b, ("link",))
        assert a.dag_hash() != b.dag_hash()


class TestSerialization:
    def test_round_trip_preserves_edge_types(self, session):
        spec = session.concretize("ares")
        rebuilt = Spec.from_dict(spec.to_dict())
        assert rebuilt.dag_hash() == spec.dag_hash()
        assert rebuilt.runtime_hash() == spec.runtime_hash()
        assert rebuilt.dependencies.deptypes("cmake") == frozenset(("build",))

    def test_node_dict_lists_sorted_types(self, session):
        spec = session.concretize("ares")
        deps = spec.to_node_dict()["dependencies"]
        assert deps["cmake"] == ["build"]
        assert deps["python"] == ["build", "run"]

    def test_legacy_list_dependencies_get_default_types(self, session):
        spec = session.concretize("libdwarf")
        data = spec.to_dict()
        for node in data["nodes"]:
            node["dependencies"] = sorted(node["dependencies"])
        rebuilt = Spec.from_dict(data)
        assert rebuilt.dependencies.deptypes("libelf") == frozenset(
            DEFAULT_DEPTYPES
        )


class TestAnonymousDeterminism:
    """Hashes of unnamed nodes must not depend on ``id()`` ordering."""

    def test_anonymous_specs_hash_equal(self):
        a, b = Spec("+debug"), Spec("+debug")
        assert a.name is None
        assert a.dag_hash() == b.dag_hash()

    def test_distinct_anonymous_children_keep_distinct_ordinals(self):
        def build():
            root = Spec("root")
            # two distinct anonymous nodes cannot collide by name
            first, second = Spec("+a"), Spec("+b")
            root.dependencies.set_edge("x", first, ("build",))
            root.dependencies.set_edge("y", second, ("link",))
            return root

        assert build().dag_hash() == build().dag_hash()


class TestGraphRendering:
    def test_ascii_annotations_follow_the_shared_marker(self, session):
        from repro.spec.graph import graph_ascii

        spec = session.concretize("mpileaks")
        text = graph_ascii(spec, show_deptypes=True)
        assert "[bl]" in text
        plain = graph_ascii(spec)
        assert "[bl]" not in plain

    def test_ascii_deptype_filter(self, session):
        from repro.spec.graph import graph_ascii

        spec = session.concretize("ares")
        runtime = graph_ascii(spec, deptype=("link", "run"))
        assert "cmake" not in runtime

    def test_dot_edge_labels_opt_in(self, session):
        from repro.spec.graph import graph_dot

        spec = session.concretize("libdwarf")
        labeled = graph_dot(spec, show_deptypes=True)
        assert '[label="bl"]' in labeled
        plain = graph_dot(spec)
        assert '"libdwarf" -> "libelf";' in plain

    def test_edge_list_triples(self, session):
        from repro.spec.graph import edge_list

        spec = session.concretize("ares")
        triples = edge_list(spec, deptypes=True)
        assert ("ares", "cmake", "b") in triples
        pairs = edge_list(spec)
        assert all(len(e) == 2 for e in pairs)
        filtered = edge_list(spec, deptype=("link",))
        assert ("ares", "cmake") not in filtered
