"""Spec.tree() and large-DAG rendering edge cases."""

import pytest

from repro.spec.graph import graph_ascii, graph_dot
from repro.spec.spec import Spec


class TestTree:
    def test_single_node(self):
        assert Spec("mpileaks@1.0").tree() == "mpileaks@1.0"

    def test_indentation_by_depth(self, session):
        concrete = session.concretize(Spec("mpileaks"))
        lines = concrete.tree().splitlines()
        assert lines[0].startswith("mpileaks")
        libelf_lines = [l for l in lines if "libelf" in l]
        assert libelf_lines
        # libelf is 4 levels down: callpath -> dyninst -> libdwarf -> libelf
        # (first-visit depth via sorted traversal)
        assert libelf_lines[0].startswith(" " * 8)

    def test_tree_shows_all_parameters(self, session):
        concrete = session.concretize(Spec("mpileaks"))
        for line in concrete.tree().splitlines():
            assert "@" in line and "%" in line

    def test_custom_indent(self):
        root = Spec("a@1")
        root._add_dependency(Spec("b@1"))
        text = root.tree(indent=4)
        assert "\n    b@1" in text


class TestLargeDagRendering:
    def test_ares_ascii(self, session):
        concrete = session.concretize(Spec("ares ^mvapich"))
        text = graph_ascii(concrete)
        # every unique package appears; shared nodes marked
        for name in ("ares", "hypre", "python", "zlib"):
            assert name in text
        assert "*" in text  # zlib etc. are shared

    def test_ares_dot_is_valid_shape(self, session):
        concrete = session.concretize(Spec("ares ^mvapich"))
        dot = graph_dot(concrete, name="ares")
        assert dot.startswith('digraph "ares"')
        assert dot.rstrip().endswith("}")
        # 47 node declarations (attribute lines end in "];"; edges don't)
        assert dot.count("];") == 47

    def test_dot_edges_unique(self, session):
        concrete = session.concretize(Spec("mpileaks"))
        dot = graph_dot(concrete)
        edge_lines = [l for l in dot.splitlines() if "->" in l]
        assert len(edge_lines) == len(set(edge_lines))


class TestRepoListPattern:
    def test_pattern_filter(self, tmp_path, capsys):
        from repro.cli.main import main

        root = str(tmp_path / "u")
        code = main(["--root", root, "repo-list", "py-"])
        out = capsys.readouterr().out
        assert code == 0
        assert "py-numpy" in out and "py-scipy" in out
        assert "mpileaks" not in out
