"""Parser robustness: arbitrary input never crashes the lexer/parser.

Any string over the spec alphabet must either parse (and then re-parse
to an equal spec from its canonical rendering) or raise a typed
SpecError — never an arbitrary exception.  This is the property a
command-line tool's front door must have.

Cases come from :class:`repro.testing.generators.SpecTextGenerator`,
seeded once per test session from ``REPRO_TEST_SEED`` (default fixed).
Every assertion carries the case's seed and index, so a failure line is
its own reproducer: rerun with ``REPRO_TEST_SEED=<seed>`` and only
case ``i`` matters.
"""

import pytest

from repro.spec.errors import SpecError
from repro.spec.parser import parse_specs
from repro.spec.spec import Spec
from repro.testing import derive_seed, session_seed
from repro.testing.generators import SpecTextGenerator
from repro.version import VersionParseError

TYPED = (SpecError, VersionParseError)

CASES = 400


@pytest.fixture(scope="module")
def fuzz():
    seed = derive_seed(session_seed(), "parser-fuzz")
    return seed, SpecTextGenerator(seed)


def _case_id(seed, i, text):
    return "seed=%d case=%d text=%r (rerun: REPRO_TEST_SEED=%d)" % (
        seed, i, text, seed
    )


def test_alphabet_soup_parses_or_raises_typed_error(fuzz):
    seed, gen = fuzz
    for i in range(CASES):
        text = gen.soup(i)
        try:
            specs = parse_specs(text)
        except TYPED:
            continue
        # success: every parsed spec renders canonically and round-trips
        for spec in specs:
            rendered = str(spec)
            if spec.name is not None:
                assert Spec(rendered) == spec, _case_id(seed, i, text)


def test_arbitrary_unicode_never_crashes(fuzz):
    seed, gen = fuzz
    for i in range(200):
        text = gen.unicode_soup(i)
        try:
            parse_specs(text)
        except TYPED:
            pass


def test_mutated_plausible_specs_stay_typed(fuzz):
    """Near-valid input — a plausible spec with one character mutated —
    is the adversarial region; it must stay inside the typed contract."""
    seed, gen = fuzz
    for i in range(200):
        text = gen.mutant(i)
        try:
            specs = parse_specs(text)
        except TYPED:
            continue
        for spec in specs:
            if spec.name is not None:
                assert Spec(str(spec)) == spec, _case_id(seed, i, text)


def test_satisfies_never_crashes_on_parsed_pairs(fuzz):
    seed, gen = fuzz
    parsed = []
    for i in range(150):
        try:
            parsed.extend(parse_specs(gen.plausible(i)))
        except TYPED:
            continue
    pairs = [
        (parsed[i], parsed[(i * 7 + 3) % len(parsed)])
        for i in range(len(parsed))
    ]
    for sa, sb in pairs:
        sa.satisfies(sb)          # bool either way, no crash
        sa.satisfies(sb, strict=True)
        sa.intersects(sb)


def test_stream_is_replayable(fuzz):
    """The fixture's stream regenerates exactly — the property that
    makes the failure line above a sufficient reproducer."""
    seed, gen = fuzz
    again = SpecTextGenerator(seed)
    for i in (0, 17, 123, CASES - 1):
        assert gen.soup(i) == again.soup(i)
        assert gen.mutant(i) == again.mutant(i)
