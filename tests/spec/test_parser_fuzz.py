"""Parser robustness: arbitrary input never crashes the lexer/parser.

Any string over the spec alphabet must either parse (and then re-parse
to an equal spec from its canonical rendering) or raise a typed
SpecError — never an arbitrary exception.  This is the property a
command-line tool's front door must have.
"""

from hypothesis import given, settings, strategies as st

from repro.spec.errors import SpecError
from repro.spec.parser import parse_specs
from repro.spec.spec import Spec
from repro.version import VersionParseError

spec_alphabet = st.text(
    alphabet="abcxyz019._-@:%+~^= ",
    min_size=0,
    max_size=40,
)


@given(spec_alphabet)
@settings(max_examples=400, deadline=None)
def test_arbitrary_text_parses_or_raises_typed_error(text):
    try:
        specs = parse_specs(text)
    except (SpecError, VersionParseError):
        return
    # success: every parsed spec renders canonically and round-trips
    for spec in specs:
        rendered = str(spec)
        if spec.name is not None:
            assert Spec(rendered) == spec


printable = st.text(min_size=1, max_size=30)


@given(printable)
@settings(max_examples=200, deadline=None)
def test_arbitrary_unicode_never_crashes(text):
    try:
        parse_specs(text)
    except (SpecError, VersionParseError):
        pass


@given(spec_alphabet, spec_alphabet)
@settings(max_examples=150, deadline=None)
def test_satisfies_never_crashes_on_parsed_pairs(a_text, b_text):
    try:
        a = parse_specs(a_text)
        b = parse_specs(b_text)
    except (SpecError, VersionParseError):
        return
    for sa in a:
        for sb in b:
            sa.satisfies(sb)          # bool either way, no crash
            sa.satisfies(sb, strict=True)
            sa.intersects(sb)
