"""Regression: mutating a node must invalidate its ancestors' caches.

``Spec.invalidate_caches`` used to clear only the mutated node, so a
concrete DAG whose shared child was changed (``constrain``,
``_add_dependency``) kept serving the parent's stale cached ``_hash``
with ``_concrete=True`` — exactly the identity the build cache and the
hash-addressed layout key on.
"""

from repro.spec.spec import Spec


def _concrete_mpileaks(session):
    return session.concretize(Spec("mpileaks"))


class TestAncestorInvalidation:
    def test_add_dependency_invalidates_ancestors(self, session):
        spec = _concrete_mpileaks(session)
        old_hash = spec.dag_hash()
        child = spec["libelf"]

        extra = Spec("zlib@1.0%gcc@4.9.2=linux-x86_64")
        extra._concrete = True
        child._add_dependency(extra)

        assert not spec._concrete
        assert spec._hash is None
        assert spec.dag_hash() != old_hash

    def test_constrain_on_shared_child_reaches_every_parent(self, session):
        spec = _concrete_mpileaks(session)
        # libelf is shared: both libdwarf and dyninst depend on it
        parents = [
            node for node in spec.traverse()
            if "libelf" in node.dependencies
        ]
        assert len(parents) >= 2
        hashes = {id(p): p.dag_hash() for p in parents}

        spec["libelf"].constrain(Spec("libelf+debug"))

        for parent in parents:
            assert parent._hash is None
            assert not parent._concrete
            assert parent.dag_hash() != hashes[id(parent)]

    def test_mutation_changes_the_install_prefix(self, session):
        """The layout consumes dag_hash: a stale hash would alias two
        different builds into one prefix."""
        spec = _concrete_mpileaks(session)
        layout = session.store.layout
        old_prefix = layout.path_for_spec(spec)

        extra = Spec("zlib@1.0%gcc@4.9.2=linux-x86_64")
        extra._concrete = True
        spec["libelf"]._add_dependency(extra)
        spec._concrete = True  # re-stamp after the deliberate mutation

        assert layout.path_for_spec(spec) != old_prefix

    def test_copies_preserve_caches(self, session):
        """_dup/from_dict copying must NOT invalidate: provenance reads
        concrete specs back and relies on their stamped state."""
        spec = _concrete_mpileaks(session)
        copied = spec.copy()
        assert copied.concrete
        assert copied.dag_hash() == spec.dag_hash()

        via_dict = Spec.from_dict(spec.to_dict())
        assert via_dict.concrete
        assert via_dict.dag_hash() == spec.dag_hash()

    def test_retyping_an_edge_invalidates_both_hashes(self, session):
        """set_deptypes on a deep edge must reach every ancestor's
        ``_hash`` AND ``_rhash``: both tiers key on edge types."""
        spec = _concrete_mpileaks(session)
        old_dag = spec.dag_hash()
        old_runtime = spec.runtime_hash()
        parents = [
            node for node in spec.traverse()
            if "libelf" in node.dependencies
        ]
        assert len(parents) >= 2

        for parent in parents:
            changed = parent.dependencies.set_deptypes("libelf", ("run",))
            assert changed

        assert spec._hash is None and spec._rhash is None
        for parent in parents:
            assert parent._hash is None and parent._rhash is None
        spec._concrete = True  # re-stamp after the deliberate mutation
        for node in spec.traverse():
            node._concrete = True
        assert spec.dag_hash() != old_dag
        # libelf moved from the link closure to run-only: the runtime
        # edge label changes, so the runtime hash must change too
        assert spec.runtime_hash() != old_runtime

    def test_retyping_to_the_same_types_is_a_no_op(self, session):
        spec = _concrete_mpileaks(session)
        old_dag = spec.dag_hash()
        parent = spec["libdwarf"]
        current = parent.dependencies.deptypes("libelf")

        assert not parent.dependencies.set_deptypes("libelf", current)
        # caches untouched: no invalidation propagated
        assert spec._hash is not None
        assert spec.dag_hash() == old_dag

    def test_removing_an_edge_invalidates_ancestors(self, session):
        spec = _concrete_mpileaks(session)
        old_dag = spec.dag_hash()
        old_runtime = spec.runtime_hash()
        parent = spec["libdwarf"]

        del parent.dependencies["libelf"]

        assert "libelf" not in parent.dependencies
        assert "libelf" not in parent.dependencies._edge_types
        assert spec._hash is None and spec._rhash is None
        assert not spec._concrete
        for node in spec.traverse():
            node._concrete = True
        assert spec.dag_hash() != old_dag
        assert spec.runtime_hash() != old_runtime

    def test_build_component_retype_keeps_runtime_hash(self, session):
        """Dropping only the *build* component of a build+link edge
        changes dag_hash but not runtime_hash — the splice-matching
        property: binaries do not carry build-only distinctions."""
        spec = _concrete_mpileaks(session)
        old_runtime = spec.runtime_hash()
        old_dag = spec.dag_hash()
        parent = spec["libdwarf"]
        assert parent.dependencies.deptypes("libelf") == frozenset(
            ("build", "link")
        )

        assert parent.dependencies.set_deptypes("libelf", ("link",))
        for node in spec.traverse():
            node._concrete = True
        assert spec.dag_hash() != old_dag
        # the link component is unchanged, so the runtime closure and
        # its hash are too
        assert spec.runtime_hash() == old_runtime

    def test_dead_parents_are_dropped(self, session):
        """Parent back-references are weak: a released parent must not
        leak in the child's dependents map."""
        import gc

        spec = _concrete_mpileaks(session)
        child = spec["libelf"]
        assert child._dependents

        del spec
        gc.collect()
        live = [ref() for ref in child._dependents.values()]
        assert all(parent is None for parent in live) or not child._dependents
