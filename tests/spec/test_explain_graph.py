"""Explanations (Table 2 prose) and DAG renderings (Figures 2/7/13)."""

from repro.spec.explain import explain
from repro.spec.graph import edge_list, graph_ascii, graph_dot
from repro.spec.spec import Spec


class TestExplain:
    def test_table2_row1(self):
        assert explain("mpileaks") == "mpileaks package, no constraints."

    def test_table2_row2(self):
        assert explain("mpileaks@1.1.2") == "mpileaks package, version 1.1.2."

    def test_table2_row3(self):
        text = explain("mpileaks@1.1.2 %gcc")
        assert "version 1.1.2" in text
        assert "built with gcc at the default version" in text

    def test_table2_row4(self):
        text = explain("mpileaks@1.1.2 %intel@14.1 +debug")
        assert "built with Intel compiler version 14.1" in text
        assert "with the 'debug' build option" in text

    def test_table2_row5(self):
        text = explain("mpileaks@1.1.2 =bgq")
        assert "built for the Blue Gene/Q platform (BG/Q)" in text

    def test_table2_row6(self):
        text = explain("mpileaks@1.1.2 ^mvapich2@1.9")
        assert "linked with mvapich2, version 1.9" in text

    def test_table2_row7(self):
        text = explain(
            "mpileaks @1.2:1.4 %gcc@4.7.5 ~debug =bgq "
            "^callpath @1.1 %gcc@4.7.2 ^openmpi @1.4.7"
        )
        assert "any version between 1.2 and 1.4 (inclusive)" in text
        assert "built with gcc version 4.7.5" in text
        assert "without the 'debug' option" in text
        assert "callpath" in text and "openmpi" in text

    def test_version_ranges(self):
        assert "version 2.3 or higher" in explain("mpileaks@2.3:")
        assert "version 2.5 or lower" in explain("mpileaks@:2.5")

    def test_anonymous(self):
        text = explain("%gcc@5:")
        assert text.startswith("any package")


class TestGraph:
    def _dag(self):
        s = Spec("mpileaks")
        cp = Spec("callpath")
        dyn = Spec("dyninst")
        cp._add_dependency(dyn)
        s._add_dependency(cp)
        s._add_dependency(dyn)  # shared
        return s

    def test_ascii_marks_shared(self):
        text = graph_ascii(self._dag())
        assert text.count("dyninst") == 2
        assert "dyninst *" in text

    def test_dot_structure(self):
        dot = graph_dot(self._dag(), name="test")
        assert 'digraph "test"' in dot
        assert '"callpath" -> "dyninst";' in dot
        assert '"mpileaks" -> "dyninst";' in dot
        # each node declared exactly once
        assert dot.count('"dyninst" [') == 1

    def test_dot_node_attrs(self):
        dot = graph_dot(
            self._dag(), node_attrs=lambda n: {"color": "red" if n.name == "dyninst" else "blue"}
        )
        assert 'color="red"' in dot

    def test_edge_list(self):
        edges = edge_list(self._dag())
        assert ("mpileaks", "callpath") in edges
        assert ("callpath", "dyninst") in edges
        assert ("mpileaks", "dyninst") in edges
