"""Parser tests against the Figure 3 grammar, including Table 2's rows."""

import pytest

from repro.spec import SpecParseError, parse_specs
from repro.spec.errors import (
    DuplicateArchitectureError,
    DuplicateCompilerSpecError,
    DuplicateDependencyError,
    DuplicateVariantError,
)
from repro.spec.spec import Spec


class TestBasicParsing:
    def test_package_name_only(self):
        s = Spec("mpileaks")
        assert s.name == "mpileaks"
        assert s.versions.universal
        assert s.compiler is None
        assert not s.variants
        assert s.architecture is None
        assert not s.dependencies

    def test_names_with_special_chars(self):
        assert Spec("py-numpy").name == "py-numpy"
        assert Spec("sgeos_xml").name == "sgeos_xml"
        assert Spec("bzip2").name == "bzip2"

    def test_version(self):
        assert str(Spec("mpileaks@1.1.2").versions) == "1.1.2"

    def test_version_ranges(self):
        assert str(Spec("mpileaks@2.3:").versions) == "2.3:"
        assert str(Spec("mpileaks@:2.5").versions) == ":2.5"
        assert str(Spec("mpileaks@2.3:2.5.6").versions) == "2.3:2.5.6"

    def test_version_union(self):
        s = Spec("mpileaks@1.2:1.4,1.6")
        assert s.versions.contains_version("1.6.1")
        assert not s.versions.contains_version("1.5")

    def test_compiler(self):
        s = Spec("mpileaks %gcc")
        assert s.compiler.name == "gcc"
        assert s.compiler.versions.universal

    def test_compiler_with_version(self):
        s = Spec("mpileaks %intel@14.1")
        assert s.compiler.name == "intel"
        assert str(s.compiler.versions) == "14.1"

    def test_compiler_version_range(self):
        assert str(Spec("%gcc@4.7:4.9").compiler.versions) == "4.7:4.9"

    def test_variants(self):
        s = Spec("mpileaks +debug ~shared -static")
        assert s.variants == {"debug": True, "shared": False, "static": False}

    def test_dash_inside_name_is_not_variant(self):
        s = Spec("mpileaks-debug")
        assert s.name == "mpileaks-debug"
        assert not s.variants

    def test_architecture(self):
        assert Spec("mpileaks =bgq").architecture == "bgq"
        assert Spec("mpileaks =linux-ppc64").architecture == "linux-ppc64"

    def test_whitespace_insensitive(self):
        a = Spec("mpileaks@1.2%gcc@4.5+debug=bgq")
        b = Spec("mpileaks @1.2 %gcc@4.5 +debug =bgq")
        assert a == b


class TestDependencies:
    def test_single_dep(self):
        s = Spec("mpileaks ^mvapich2@1.9")
        assert set(s.dependencies) == {"mvapich2"}
        assert str(s.dependencies["mvapich2"].versions) == "1.9"

    def test_deps_attach_to_root_in_any_order(self):
        a = Spec("mpileaks ^callpath@1.1 ^openmpi@1.4.7")
        b = Spec("mpileaks ^openmpi@1.4.7 ^callpath@1.1")
        assert a == b

    def test_dep_constraints(self):
        s = Spec("mpileaks ^callpath@1.1%gcc@4.7.2+debug=bgq")
        dep = s.dependencies["callpath"]
        assert str(dep.versions) == "1.1"
        assert dep.compiler.name == "gcc"
        assert dep.variants["debug"] is True
        assert dep.architecture == "bgq"

    def test_table2_row7(self):
        s = Spec(
            "mpileaks @1.2:1.4 %gcc@4.7.5 ~debug =bgq "
            "^callpath @1.1 %gcc@4.7.2 ^openmpi @1.4.7"
        )
        assert str(s.versions) == "1.2:1.4"
        assert str(s.compiler) == "gcc@4.7.5"
        assert s.variants["debug"] is False
        assert s.architecture == "bgq"
        assert str(s.dependencies["callpath"].compiler) == "gcc@4.7.2"
        assert str(s.dependencies["openmpi"].versions) == "1.4.7"

    def test_duplicate_dependency_rejected(self):
        with pytest.raises((DuplicateDependencyError, SpecParseError)):
            Spec("mpileaks ^mpich ^mpich@3")


class TestAnonymousSpecs:
    @pytest.mark.parametrize(
        "text",
        ["@2.4", "%gcc@5:", "+mpi", "~debug", "=bgq", "=bgq%xl", "@2.4 %xlc"],
    )
    def test_anonymous_ok(self, text):
        s = Spec(text)
        assert s.anonymous

    def test_empty_rejected(self):
        with pytest.raises(SpecParseError):
            Spec("")

    def test_caret_without_root_rejected(self):
        with pytest.raises(SpecParseError):
            Spec("^mpich")


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        ["mpileaks@", "mpileaks%", "mpileaks+", "mpileaks=", "mpileaks^",
         "mpileaks@1.2 []", "mpileaks@@1.2"],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(SpecParseError):
            parse_specs(text)

    def test_two_versions_rejected(self):
        with pytest.raises(SpecParseError):
            Spec("mpileaks@1.2 @1.4")

    def test_two_compilers_rejected(self):
        with pytest.raises(DuplicateCompilerSpecError):
            Spec("mpileaks %gcc %intel")

    def test_two_architectures_rejected(self):
        with pytest.raises(DuplicateArchitectureError):
            Spec("mpileaks =bgq =linux-x86_64")

    def test_duplicate_variant_rejected(self):
        with pytest.raises(DuplicateVariantError):
            Spec("mpileaks +debug ~debug")

    def test_error_carries_position(self):
        with pytest.raises(SpecParseError) as excinfo:
            parse_specs("mpileaks []")
        assert excinfo.value.long_message is not None


class TestMultipleSpecs:
    def test_parse_list(self):
        specs = parse_specs("mpileaks callpath@1.2 libelf%gcc")
        assert [s.name for s in specs] == ["mpileaks", "callpath", "libelf"]

    def test_spec_constructor_requires_one(self):
        with pytest.raises(SpecParseError):
            Spec("mpileaks callpath")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "mpileaks",
            "mpileaks@1.2",
            "mpileaks@1.2:1.4,1.6",
            "mpileaks@1.1.2%gcc@4.7+debug~shared",
            "mpileaks@1.0=bgq ^callpath@1.1",
            "mpileaks@1.2:1.4%gcc@4.7.5~debug=bgq ^callpath@1.1%gcc@4.7.2 ^openmpi@1.4.7",
            "%gcc@5:",
            "@2.4",
        ],
    )
    def test_round_trip(self, text):
        first = Spec(text)
        again = Spec(str(first)) if first.name else first
        assert again == first
