"""Property-based spec tests: round-trips and constraint-law invariants."""

import string

from hypothesis import assume, given, settings, strategies as st

from repro.spec.errors import UnsatisfiableSpecError
from repro.spec.spec import CompilerSpec, Spec
from repro.version import VersionList


names = st.sampled_from(
    ["mpileaks", "callpath", "dyninst", "libelf", "py-numpy", "sgeos_xml", "boost"]
)
compilers = st.sampled_from(["gcc", "intel", "clang", "xl", "pgi"])
variant_names = st.sampled_from(["debug", "shared", "mpi", "static"])
arches = st.sampled_from(["linux-x86_64", "bgq", "cray_xe6", "linux-ppc64"])


@st.composite
def version_constraints(draw):
    lo = draw(st.integers(0, 9))
    hi = draw(st.integers(0, 9))
    lo, hi = sorted((lo, hi))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return "%d.%d" % (lo, hi)
    if kind == 1:
        return "%d:" % lo
    if kind == 2:
        return ":%d" % hi
    return "%d:%d" % (lo, hi)


@st.composite
def specs(draw, with_deps=True):
    s = Spec(name=draw(names))
    if draw(st.booleans()):
        s.versions = VersionList(draw(version_constraints()))
    if draw(st.booleans()):
        cname = draw(compilers)
        if draw(st.booleans()):
            s.compiler = CompilerSpec(cname, draw(version_constraints()))
        else:
            s.compiler = CompilerSpec(cname)
    for vname in draw(st.lists(variant_names, unique=True, max_size=3)):
        s.variants[vname] = draw(st.booleans())
    if draw(st.booleans()):
        s.architecture = draw(arches)
    if with_deps:
        dep_names = draw(st.lists(names, unique=True, max_size=3))
        for dep_name in dep_names:
            if dep_name == s.name:
                continue
            s._add_dependency(draw(specs(with_deps=False)).copy())
    return s


@st.composite
def named_dep_specs(draw):
    """A root with uniquely named dependency nodes."""
    root = Spec(name="root-pkg")
    for dep_name in draw(st.lists(names, unique=True, max_size=4)):
        dep = draw(specs(with_deps=False))
        dep.name = dep_name
        root._add_dependency(dep)
    return root


# Spec() generation above may produce dependency name collisions; build
# carefully instead.
@given(named_dep_specs())
def test_string_round_trip(s):
    assert Spec(str(s)) == s


@given(specs(with_deps=False))
def test_node_string_round_trip(s):
    assert Spec(s.node_str()) == s


@given(named_dep_specs())
def test_serialization_round_trip(s):
    assert Spec.from_dict(s.to_dict()) == s


@given(specs(with_deps=False))
def test_satisfies_reflexive(s):
    assert s.satisfies(s)
    assert s.satisfies(s, strict=True)


@given(specs(with_deps=False), specs(with_deps=False))
def test_strict_implies_compat(a, b):
    if a.satisfies(b, strict=True):
        assert a.satisfies(b)


@st.composite
def same_name_pairs(draw):
    a = draw(specs(with_deps=False))
    b = draw(specs(with_deps=False))
    b.name = a.name
    return a, b


@given(same_name_pairs())
@settings(max_examples=150)
def test_constrain_result_satisfies_both(pair):
    a, b = pair
    merged = a.copy()
    try:
        merged.constrain(b)
    except UnsatisfiableSpecError:
        return
    assert merged.satisfies(a)
    assert merged.satisfies(b)


@given(same_name_pairs())
def test_constrain_commutative_when_satisfiable(pair):
    a, b = pair
    ab, ba = a.copy(), b.copy()
    try:
        ab.constrain(b)
        ba.constrain(a)
    except UnsatisfiableSpecError:
        return
    assert ab == ba


@given(specs(with_deps=False))
def test_constrain_idempotent(a):
    c = a.copy()
    assert c.constrain(a) is False
    assert c == a


@given(same_name_pairs())
def test_intersects_symmetric(pair):
    a, b = pair
    assert a.intersects(b) == b.intersects(a)


@given(named_dep_specs())
def test_hash_equal_for_equal_specs(s):
    assert Spec(str(s)).dag_hash() == s.dag_hash()


@given(specs(with_deps=False))
def test_copy_independent(s):
    c = s.copy()
    c.variants["__new__"] = True
    assert "__new__" not in s.variants
