"""satisfies/constrain/intersects semantics (the DESIGN.md §5 contract)."""

import pytest

from repro.spec.errors import (
    UnsatisfiableArchitectureSpecError,
    UnsatisfiableCompilerSpecError,
    UnsatisfiableSpecError,
    UnsatisfiableSpecNameError,
    UnsatisfiableVariantSpecError,
    UnsatisfiableVersionSpecError,
)
from repro.spec.spec import CompilerSpec, Spec


class TestSatisfiesCompat:
    """Non-strict: could one build satisfy both?"""

    def test_name(self):
        assert Spec("mpileaks").satisfies("mpileaks")
        assert not Spec("mpileaks").satisfies("callpath")

    def test_anonymous_matches_any_name(self):
        assert Spec("gperftools@2.4").satisfies(Spec("@2.4"))

    def test_versions_overlap(self):
        assert Spec("mpileaks@1.2:1.4").satisfies("mpileaks@1.3:")
        assert not Spec("mpileaks@1.2:1.4").satisfies("mpileaks@1.5:")

    def test_unset_compiler_is_compatible(self):
        assert Spec("mpileaks").satisfies("mpileaks%gcc")

    def test_set_compiler_must_match(self):
        assert Spec("mpileaks%gcc@4.7").satisfies("mpileaks%gcc")
        assert Spec("mpileaks%gcc@4.7").satisfies("mpileaks%gcc@:4")
        assert not Spec("mpileaks%intel").satisfies("mpileaks%gcc")
        assert not Spec("mpileaks%gcc@5.1").satisfies("mpileaks%gcc@:4")

    def test_variants(self):
        assert Spec("mpileaks+debug").satisfies("mpileaks+debug")
        assert not Spec("mpileaks~debug").satisfies("mpileaks+debug")
        assert Spec("mpileaks").satisfies("mpileaks+debug")  # unset: compatible

    def test_architecture(self):
        assert Spec("mpileaks=bgq").satisfies("mpileaks=bgq")
        assert not Spec("mpileaks=bgq").satisfies("mpileaks=linux-x86_64")
        assert Spec("mpileaks").satisfies("mpileaks=bgq")

    def test_when_condition_use(self):
        # The §3.2.4 ROSE example conditions.
        assert Spec("rose%gcc@4.4.7").satisfies(Spec("%gcc@:4"))
        assert not Spec("rose%gcc@5.1").satisfies(Spec("%gcc@:4"))
        # The §4.2 patch conditions.
        assert Spec("python=bgq%xl").satisfies(Spec("=bgq%xl"))
        assert not Spec("python=bgq%clang").satisfies(Spec("=bgq%xl"))


class TestSatisfiesStrict:
    """Strict: containment — every build of self matches other."""

    def test_version_containment(self):
        assert Spec("mpileaks@1.3").satisfies("mpileaks@1.2:1.4", strict=True)
        assert not Spec("mpileaks@1.2:1.4").satisfies("mpileaks@1.3", strict=True)

    def test_unset_params_fail_strict(self):
        assert not Spec("mpileaks").satisfies("mpileaks%gcc", strict=True)
        assert not Spec("mpileaks").satisfies("mpileaks+debug", strict=True)
        assert not Spec("mpileaks").satisfies("mpileaks=bgq", strict=True)

    def test_dependencies_strict(self):
        full = Spec("mpileaks ^callpath@1.2")
        assert full.satisfies("mpileaks ^callpath@1:", strict=True)
        assert not full.satisfies("mpileaks ^dyninst@8.1", strict=True)

    def test_dependency_at_depth(self):
        # Constraints match any node in the DAG by name, not just direct deps.
        root = Spec("mpileaks")
        cp = Spec("callpath@1.2")
        dyn = Spec("dyninst@8.1.2")
        cp._add_dependency(dyn)
        root._add_dependency(cp)
        assert root.satisfies("mpileaks ^dyninst@8.1.2", strict=True)
        assert not root.satisfies("mpileaks ^dyninst@8.2", strict=True)


class TestConstrain:
    def test_version_intersection(self):
        s = Spec("mpileaks@1.2:")
        assert s.constrain(Spec("mpileaks@:1.4")) is True
        assert str(s.versions) == "1.2:1.4"

    def test_no_change_returns_false(self):
        s = Spec("mpileaks@1.2")
        assert s.constrain(Spec("mpileaks@1.2")) is False

    def test_conflicting_versions(self):
        with pytest.raises(UnsatisfiableVersionSpecError):
            Spec("mpileaks@2:").constrain(Spec("mpileaks@:1"))

    def test_conflicting_names(self):
        with pytest.raises(UnsatisfiableSpecNameError):
            Spec("mpileaks").constrain(Spec("callpath"))

    def test_anonymous_gains_name(self):
        s = Spec("@2.4")
        s.constrain(Spec("gperftools"))
        assert s.name == "gperftools"
        assert str(s.versions) == "2.4"

    def test_compiler_merge(self):
        s = Spec("mpileaks%gcc")
        s.constrain(Spec("mpileaks%gcc@4.7:"))
        assert str(s.compiler.versions) == "4.7:"
        with pytest.raises(UnsatisfiableCompilerSpecError):
            s.constrain(Spec("mpileaks%intel"))

    def test_compiler_version_conflict(self):
        with pytest.raises(UnsatisfiableCompilerSpecError):
            Spec("mpileaks%gcc@4:").constrain(Spec("mpileaks%gcc@:3"))

    def test_variant_conflict(self):
        with pytest.raises(UnsatisfiableVariantSpecError):
            Spec("mpileaks+debug").constrain(Spec("mpileaks~debug"))

    def test_variant_merge(self):
        s = Spec("mpileaks+debug")
        assert s.constrain(Spec("mpileaks~shared")) is True
        assert s.variants == {"debug": True, "shared": False}

    def test_arch_conflict(self):
        with pytest.raises(UnsatisfiableArchitectureSpecError):
            Spec("mpileaks=bgq").constrain(Spec("mpileaks=linux-x86_64"))

    def test_dependency_merge(self):
        s = Spec("mpileaks ^callpath@1.0:")
        s.constrain(Spec("mpileaks ^callpath@:1.2 ^libelf@0.8.13"))
        assert str(s.dependencies["callpath"].versions) == "1.0:1.2"
        assert str(s.dependencies["libelf"].versions) == "0.8.13"

    def test_dependency_conflict(self):
        with pytest.raises(UnsatisfiableSpecError):
            Spec("mpileaks ^callpath@2:").constrain(Spec("mpileaks ^callpath@:1"))


class TestIntersects:
    def test_symmetric(self):
        a = Spec("mpileaks@1.2:1.4")
        b = Spec("mpileaks@1.3:")
        assert a.intersects(b) and b.intersects(a)

    def test_disjoint(self):
        assert not Spec("mpileaks@1.2").intersects(Spec("mpileaks@2.0"))

    def test_does_not_mutate(self):
        a = Spec("mpileaks@1.2:1.4")
        a.intersects(Spec("mpileaks@1.3:"))
        assert str(a.versions) == "1.2:1.4"


class TestCompilerSpec:
    def test_parse_at_form(self):
        c = CompilerSpec("gcc@4.7.3")
        assert c.name == "gcc" and str(c.versions) == "4.7.3"

    def test_concrete(self):
        assert CompilerSpec("gcc@4.7.3").concrete
        assert not CompilerSpec("gcc@4.7:").concrete
        assert not CompilerSpec("gcc").concrete

    def test_version_accessor(self):
        from repro.version import Version

        assert CompilerSpec("gcc@4.7.3").version == Version("4.7.3")

    def test_satisfies(self):
        assert CompilerSpec("gcc@4.7.3").satisfies("gcc")
        assert CompilerSpec("gcc@4.7.3").satisfies("gcc@4.7")
        assert not CompilerSpec("gcc@4.7.3").satisfies("intel")

    def test_str(self):
        assert str(CompilerSpec("gcc")) == "gcc"
        assert str(CompilerSpec("gcc@4.7")) == "gcc@4.7"


class TestContainsAndGetitem:
    def test_contains_by_name_and_constraint(self):
        s = Spec("mpileaks ^callpath@1.2 ^libelf@0.8")
        assert "libelf" in s
        assert "callpath@1.2" in s
        assert "callpath@2.0" not in s
        assert Spec("callpath@1:") in s

    def test_getitem(self):
        s = Spec("mpileaks ^callpath@1.2")
        assert s["callpath"].name == "callpath"
        assert s["mpileaks"] is s
        with pytest.raises(KeyError):
            s["nothere"]

    def test_getitem_virtual(self):
        s = Spec("mpileaks")
        mv = Spec("mvapich2@1.9")
        mv.provided_virtuals.add("mpi")
        s._add_dependency(mv)
        assert s["mpi"].name == "mvapich2"
