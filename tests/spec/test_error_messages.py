"""Error-message quality: conflicts must name both sides (§3.4's promise
that the user can resolve issues "by being more explicit")."""

import pytest

from repro.core.concretizer import ConcretizationError
from repro.spec.errors import (
    UnsatisfiableCompilerSpecError,
    UnsatisfiableVariantSpecError,
    UnsatisfiableVersionSpecError,
)
from repro.spec.spec import Spec


class TestConstraintErrors:
    def test_version_conflict_names_both(self):
        with pytest.raises(UnsatisfiableVersionSpecError) as excinfo:
            Spec("x@2:").constrain(Spec("x@:1"))
        message = str(excinfo.value)
        assert "2:" in message and ":1" in message and "version" in message

    def test_compiler_conflict_names_both(self):
        with pytest.raises(UnsatisfiableCompilerSpecError) as excinfo:
            Spec("x%gcc").constrain(Spec("x%intel"))
        message = str(excinfo.value)
        assert "gcc" in message and "intel" in message

    def test_variant_conflict_names_values(self):
        with pytest.raises(UnsatisfiableVariantSpecError) as excinfo:
            Spec("x+debug").constrain(Spec("x~debug"))
        message = str(excinfo.value)
        assert "+debug" in message and "~debug" in message


class TestConcretizerErrors:
    def test_dependency_conflict_names_culprits(self, session):
        with pytest.raises(ConcretizationError) as excinfo:
            session.concretize(Spec("mpileaks@2: ^callpath@0.1:0.2"))
        assert "callpath" in str(excinfo.value)

    def test_forced_provider_conflict_actionable(self, session):
        with pytest.raises(ConcretizationError) as excinfo:
            session.concretize(Spec("gerris ^mvapich"))
        message = str(excinfo.value)
        assert "mvapich" in message
        assert "mpi" in message

    def test_no_provider_suggests_fix(self, session):
        from repro.core.concretizer import NoBuildableProviderError

        with pytest.raises(NoBuildableProviderError) as excinfo:
            session.concretize(Spec("gerris ^mpi@99:"))
        assert "Force a provider with ^<package>" in str(excinfo.value)

    def test_invalid_dependency_names_both_packages(self, session):
        from repro.spec.errors import InvalidDependencyError

        with pytest.raises(InvalidDependencyError) as excinfo:
            session.concretize(Spec("libelf ^zlib"))
        message = str(excinfo.value)
        assert "libelf" in message and "zlib" in message

    def test_compiler_feature_error_lists_candidates(self, session):
        from repro.compilers.registry import CompilerFeatureError
        from repro.directives import requires_compiler, version
        from repro.fetch.mockweb import mock_checksum
        from repro.package.package import Package

        repo = session.repo.repos[0]

        class Fancy(Package):
            url = "https://mock.example.org/fancy/fancy-1.0.tar.gz"
            version("1.0", mock_checksum("fancy", "1.0"))
            requires_compiler("cxx@14:")

        repo.add_class("fancy", Fancy)
        with pytest.raises(CompilerFeatureError) as excinfo:
            session.concretize(Spec("fancy%xl"))
        message = str(excinfo.value)
        assert "cxx@14:" in message and "xl" in message

    def test_unknown_variant_names_package(self, session):
        from repro.spec.errors import UnknownVariantError

        with pytest.raises(UnknownVariantError) as excinfo:
            session.concretize(Spec("libelf+nonexistent"))
        message = str(excinfo.value)
        assert "libelf" in message and "nonexistent" in message

    def test_install_error_carries_log_tail(self, session):
        from repro.store.installer import InstallError

        url = session.repo.get_class("libelf")(
            Spec("libelf@0.8.13"), session=session
        ).url_for_version("0.8.13")
        session.web.corrupt(url)
        with pytest.raises(InstallError) as excinfo:
            session.install("libelf@0.8.13")
        assert "libelf" in excinfo.value.message
