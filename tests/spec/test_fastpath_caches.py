"""The spec fast path: cached reprs, satisfies/intersects memos, and
their invalidation under *direct attribute mutation*.

Every node parameter (``name``, ``versions``, ``compiler``,
``architecture``, ``external``) is an invalidating property and the
variant map notifies its owner, so code that pokes a spec directly —
tests do, and the concretizer's ``_apply_external`` does — can never be
served a stale cached identity or memoized satisfies verdict.
"""

from repro.spec.spec import Spec
from repro.version import ver


class TestStrictProviderAsymmetry:
    """Regression (satellite 1): a provider of ``mpi@3:`` must satisfy a
    request for ``mpi@2:``, but a provider of ``mpi@2:`` must NOT be
    treated as guaranteed to satisfy ``mpi@3:``."""

    def test_version_level(self):
        assert ver("3:").satisfies(ver("2:"), strict=True)
        assert not ver("2:").satisfies(ver("3:"), strict=True)

    def test_spec_level(self):
        assert Spec("mpi@3:").satisfies(Spec("mpi@2:"), strict=True)
        assert not Spec("mpi@2:").satisfies(Spec("mpi@3:"), strict=True)

    def test_non_strict_stays_an_overlap_check(self):
        assert Spec("mpi@2:").satisfies(Spec("mpi@3:"))
        assert Spec("mpi@3:").satisfies(Spec("mpi@2:"))


class TestDirectMutationInvalidates:
    def _eq_state(self, spec):
        return (hash(spec), str(spec))

    def test_versions_assignment(self):
        a, b = Spec("libelf@0.8.13"), Spec("libelf@0.8.13")
        assert a == b and hash(a) == hash(b)
        a.versions = ver("0.8.12")
        assert a != b
        assert str(a.versions) == "0.8.12"

    def test_name_assignment(self):
        a = Spec("libelf")
        hash(a)  # prime the cached dag key
        a.name = "libelf-mangled"
        assert str(a) == "libelf-mangled"
        assert a != Spec("libelf")
        assert a == Spec("libelf-mangled")

    def test_compiler_and_architecture_assignment(self):
        a = Spec("libelf%gcc@4.9.2=linux-x86_64")
        hash(a)
        a.architecture = None
        assert a == Spec("libelf%gcc@4.9.2")
        a.compiler = None
        assert a == Spec("libelf")

    def test_external_assignment(self):
        a, b = Spec("mpich"), Spec("mpich")
        assert a == b
        a.external = "/opt/vendor/mpich"
        assert a != b

    def test_variant_map_mutation(self):
        a, b = Spec("libelf"), Spec("libelf")
        assert a == b
        a.variants["debug"] = True
        assert a != b
        assert a == Spec("libelf+debug")
        del a.variants["debug"]
        assert a == b

    def test_mutating_a_copied_dependency_diverges_the_copy(self):
        full = Spec("mpileaks ^callpath@1.0")
        copy = full.copy()
        assert copy == full
        copy["callpath"].variants["debug"] = True
        assert copy != full
        assert copy["callpath"].satisfies("callpath+debug")


class TestSatisfiesMemo:
    def test_memo_survives_repeated_queries(self):
        a = Spec("mpileaks@2.3+debug")
        b = Spec("mpileaks@2:")
        assert a.satisfies(b)
        assert ("sat", b._dag_key(), False) in a._smemo
        assert a.satisfies(b)

    def test_mutating_self_clears_the_memo(self):
        a = Spec("mpileaks@2.3")
        assert a.satisfies("mpileaks@2:")
        assert a._smemo
        a.versions = ver("1.0")
        assert not a._smemo
        assert not a.satisfies("mpileaks@2:")

    def test_mutating_other_changes_the_key(self):
        a = Spec("mpileaks@2.3")
        b = Spec("mpileaks@2:")
        assert a.satisfies(b)
        b.versions = ver("3:")
        # b's dag key changed, so the stale verdict cannot be reused
        assert not a.satisfies(b)

    def test_mutating_a_dependency_clears_ancestor_memos(self):
        full = Spec("mpileaks ^callpath@1.0")
        assert full.satisfies("mpileaks ^callpath@1:")
        assert full._smemo
        full["callpath"].versions = ver("0.5")
        assert not full._smemo
        assert not full.satisfies("mpileaks ^callpath@1:")

    def test_intersects_memo_agrees_with_constrain(self):
        a = Spec("mpileaks@2:")
        assert a.intersects("mpileaks@:3")
        assert a.intersects("mpileaks@:3")  # memoized second call
        assert not Spec("mpileaks@:1").intersects("mpileaks@2:")
        assert not Spec("mpileaks@:1").intersects("mpileaks@2:")
