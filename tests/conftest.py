"""Shared fixtures: ephemeral sessions and pre-installed stacks."""

import pytest

from repro.session import Session


@pytest.fixture
def session(tmp_path):
    """A full builtin-corpus session rooted in a temp directory."""
    return Session.create(str(tmp_path / "universe"))


@pytest.fixture
def installed_mpileaks(session):
    """A session with the default mpileaks stack already installed."""
    spec, result = session.install("mpileaks")
    return session, spec, result


@pytest.fixture
def bare_repo_session(tmp_path):
    """A session with an empty programmatic repository (tests register
    their own packages)."""
    return Session.create(str(tmp_path / "bare"), packages=None)
