"""The merge/unify engine: coherence, reconciliation, and conflicts."""

import pytest

from repro.env.unify import (
    EnvironmentConflictError,
    UnifiedEnvironment,
    unify_roots,
)
from repro.spec.errors import UnsatisfiableVersionSpecError
from repro.telemetry import Telemetry
from repro.telemetry.sinks import MemorySink


def _concretize_fn(session):
    return lambda spec: session.concretize(spec)


def _nodes_by_name(unified):
    """{package name: set of dag_hashes} over every root DAG."""
    out = {}
    for _, concrete in unified.roots:
        for node in concrete.traverse():
            out.setdefault(node.name, set()).add(node.dag_hash())
    return out


class TestCoherence:
    def test_empty_environment(self, session):
        unified = unify_roots([], _concretize_fn(session))
        assert unified.roots == []
        assert unified.dag_hashes() == []

    def test_shared_subdag_is_one_node_per_package(self, session):
        unified = unify_roots(
            ["mpileaks", "dyninst", "libdwarf"], _concretize_fn(session)
        )
        for name, hashes in _nodes_by_name(unified).items():
            assert len(hashes) == 1, "%s resolved to %d nodes" % (
                name, len(hashes),
            )
        # dyninst and libdwarf both carry libelf/libdwarf sub-DAGs
        assert unified.shared_packages()

    def test_eight_root_environment_unifies(self, session):
        """The acceptance-scale case: many roots, heavy sharing, every
        shared package exactly one concrete node environment-wide."""
        roots = [
            "mpileaks", "dyninst", "libdwarf", "libelf",
            "callpath", "hdf5", "silo", "py-numpy",
        ]
        unified = unify_roots(roots, _concretize_fn(session), jobs=4)
        assert len(unified.roots) == 8
        by_name = _nodes_by_name(unified)
        assert all(len(h) == 1 for h in by_name.values())
        shared = unified.shared_packages()
        assert len(shared) >= 2  # libelf, libdwarf at minimum
        # the unified install set is smaller than the sum of the parts
        total = sum(
            len(list(c.traverse())) for _, c in unified.roots
        )
        assert len(unified.nodes()) < total

    def test_stats_shape(self, session):
        unified = unify_roots(["mpileaks"], _concretize_fn(session))
        stats = unified.stats()
        assert stats["roots"] == 1
        assert stats["resolves"] == 1
        assert stats["rounds"] == 0
        assert stats["unique_nodes"] == len(unified.nodes())


class TestReconciliation:
    def test_agreement_via_different_ranges(self, session):
        """Two roots constrain a shared package through *different*
        version ranges that overlap: both greedy picks land on the same
        concrete version, so unification needs no pins at all."""
        unified = unify_roots(
            ["libdwarf ^libelf@:0.8.12", "dyninst ^libelf@0.8.11:0.8.12"],
            _concretize_fn(session),
        )
        assert unified.pins == {}
        assert unified.rounds == 0
        hashes = _nodes_by_name(unified)["libelf"]
        assert len(hashes) == 1

    def test_range_vs_unconstrained_reconciles_by_pinning(self, session):
        """One root caps libelf below the default pick, the other says
        nothing: initial solves diverge (0.8.12 vs 0.8.13) and the
        merge phase must pin the version every root can live with."""
        unified = unify_roots(
            ["libdwarf ^libelf@:0.8.12", "dyninst"],
            _concretize_fn(session),
        )
        assert "libelf" in unified.pins
        assert "@0.8.12" in unified.pins["libelf"]
        assert unified.rounds >= 1
        assert len(_nodes_by_name(unified)["libelf"]) == 1
        # dyninst's whole chain re-converged around the pinned libelf
        assert len(_nodes_by_name(unified)["libdwarf"]) == 1

    def test_root_that_is_a_dependency_of_another_root(self, session):
        """An explicit `libelf@0.8.12` root must be *the same node* as
        the libelf inside libdwarf's DAG — a root is not special, it is
        one more constraint on the shared package."""
        unified = unify_roots(
            ["libdwarf", "libelf@0.8.12"], _concretize_fn(session)
        )
        roots = dict(unified.roots)
        libelf_root = roots["libelf@0.8.12"]
        libdwarf = roots["libdwarf"]
        embedded = [
            n for n in libdwarf.traverse() if n.name == "libelf"
        ]
        assert len(embedded) == 1
        assert embedded[0].dag_hash() == libelf_root.dag_hash()
        assert str(libelf_root.version) == "0.8.12"

    def test_jobs_width_does_not_change_the_result(self, session):
        """-j1 and -jN must produce byte-identical unified DAG sets:
        per-root solves are pure, merge order is deterministic."""
        roots = ["mpileaks", "dyninst", "libdwarf ^libelf@:0.8.12",
                 "callpath", "hdf5"]
        serial = unify_roots(roots, _concretize_fn(session), jobs=1)
        pooled = unify_roots(roots, _concretize_fn(session), jobs=4)
        assert serial.dag_hashes() == pooled.dag_hashes()
        assert serial.pins == pooled.pins
        assert [
            (t, c.dag_hash()) for t, c in serial.roots
        ] == [(t, c.dag_hash()) for t, c in pooled.roots]

    def test_pooled_solves_adopt_the_callers_trace(self, session):
        hub = Telemetry()
        sink = MemorySink()
        hub.add_sink(sink)
        with hub.span("env.test"):
            unify_roots(
                ["mpileaks", "libdwarf"],
                _concretize_fn(session),
                jobs=2,
                telemetry=hub,
            )
        trace_ids = {r["trace"] for r in sink.spans()}
        assert len(trace_ids) == 1  # one coherent trace, no orphans


class TestConflicts:
    def test_conflict_names_both_roots(self, session):
        """Incompatible demands on a shared package: ONE diagnostic
        naming each root and what it insists on."""
        with pytest.raises(EnvironmentConflictError) as err:
            unify_roots(
                ["libdwarf ^libelf@0.8.11", "dyninst ^libelf@0.8.12"],
                _concretize_fn(session),
            )
        e = err.value
        assert e.package == "libelf"
        text = str(e)
        assert "libdwarf ^libelf@0.8.11" in text
        assert "dyninst ^libelf@0.8.12" in text
        # rejected candidates carry the typed per-root error
        assert "rejected" in text
        assert UnsatisfiableVersionSpecError.__name__ in text

    def test_unpinned_root_failure_propagates_typed(self, session):
        """A root that cannot solve on its own terms raises its own
        typed error, not a conflict (nothing is contested)."""
        with pytest.raises(Exception) as err:
            unify_roots(
                ["mpileaks", "no-such-package"], _concretize_fn(session)
            )
        assert "ConflictError" not in type(err.value).__name__
        assert "no-such-package" in str(err.value)

    def test_conflicting_roots_fail_identically_at_any_width(self, session):
        roots = ["libdwarf ^libelf@0.8.11", "dyninst ^libelf@0.8.12"]
        for jobs in (1, 3):
            with pytest.raises(EnvironmentConflictError) as err:
                unify_roots(roots, _concretize_fn(session), jobs=jobs)
            assert err.value.package == "libelf"


class TestUnifiedEnvironment:
    def test_nodes_dedup_by_dag_hash(self, session):
        concrete = session.concretize("mpileaks")
        unified = UnifiedEnvironment(
            [("a", concrete), ("b", concrete.copy())],
            rounds=0, resolves=2, pins={},
        )
        assert len(unified.nodes()) == len(list(concrete.traverse()))
        assert set(unified.shared_packages()) == {
            n.name for n in concrete.traverse()
        }
