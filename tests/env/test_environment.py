"""Durable environments: manifest, lockfile, status, and install."""

import json
import os

import pytest

from repro.env import Environment, EnvironmentConflictError
from repro.telemetry import Telemetry
from repro.telemetry.sinks import MemorySink


@pytest.fixture
def env(session):
    return session.environment("dev")


class TestManifest:
    def test_add_canonicalizes_and_dedups(self, env):
        assert env.add("mpileaks")
        assert not env.add("mpileaks")  # same canonical text
        assert env.add("dyninst ^libelf@0.8.12")
        assert env.roots == ["mpileaks", "dyninst ^libelf@0.8.12"]

    def test_manifest_round_trips(self, session, env):
        env.add("mpileaks")
        env.add("libdwarf")
        reloaded = session.environment("dev")
        assert reloaded.roots == env.roots
        assert reloaded.name == "dev"

    def test_remove(self, env):
        env.add("mpileaks")
        assert env.remove("mpileaks")
        assert not env.remove("mpileaks")
        assert env.roots == []

    def test_environment_names(self, session):
        assert session.environment_names() == []
        session.environment("beta").add("libelf")
        session.environment("alpha").add("libelf")
        assert session.environment_names() == ["alpha", "beta"]


class TestLockfile:
    def test_concretize_writes_lock_and_warm_restores(self, session, env):
        hub = Telemetry()
        hub.add_sink(MemorySink())
        session.telemetry = hub
        env.add("mpileaks")
        env.add("libdwarf")
        cold = env.concretize(session)
        assert cold.resolves > 0
        assert os.path.isfile(env._lock_path())
        warm = env.concretize(session)
        assert warm.resolves == 0  # restored, not re-solved
        assert warm.dag_hashes() == cold.dag_hashes()
        assert hub.counter("env.lock.hit") == 1
        assert hub.counter("env.lock.miss") == 1

    def test_adding_a_root_stales_the_lock(self, session, env):
        env.add("mpileaks")
        env.concretize(session)
        assert env.lock_state(session) == "fresh"
        env.add("libdwarf")
        assert env.lock_state(session) == "stale"
        env.concretize(session)
        assert env.lock_state(session) == "fresh"

    def test_lock_state_absent(self, session, env):
        env.add("mpileaks")
        assert env.lock_state(session) == "absent"

    def test_corrupt_lock_falls_back_to_cold(self, session, env):
        env.add("mpileaks")
        cold = env.concretize(session)
        with open(env._lock_path()) as f:
            lock = json.load(f)
        lock["roots"][0]["dag_hash"] = "0" * 32
        with open(env._lock_path(), "w") as f:
            json.dump(lock, f)
        again = env.concretize(session)
        assert again.resolves > 0  # hash check rejected the lock
        assert again.dag_hashes() == cold.dag_hashes()

    def test_force_reconcretizes(self, session, env):
        env.add("mpileaks")
        env.concretize(session)
        forced = env.concretize(session, force=True)
        assert forced.resolves > 0

    def test_pins_survive_the_lock(self, session, env):
        env.add("libdwarf ^libelf@:0.8.12")
        env.add("dyninst")
        cold = env.concretize(session)
        assert "libelf" in cold.pins
        warm = env.concretize(session)
        assert warm.pins == cold.pins

    def test_conflicting_roots_error_and_leave_no_lock(self, session, env):
        env.add("libdwarf ^libelf@0.8.11")
        env.add("dyninst ^libelf@0.8.12")
        with pytest.raises(EnvironmentConflictError):
            env.concretize(session)
        assert env.lock_state(session) == "absent"


class TestStatusAndInstall:
    def test_status_before_and_after(self, session, env):
        env.add("mpileaks")
        report = env.status(session)
        assert report["lock"] == "absent"
        assert "unique_nodes" not in report
        env.concretize(session)
        report = env.status(session)
        assert report["lock"] == "fresh"
        assert report["installed"] == 0
        assert report["unique_nodes"] >= 4
        assert set(report["root_hashes"]) == {"mpileaks"}

    def test_install_installs_the_unified_set_once(self, session, env):
        env.add("mpileaks")
        env.add("libdwarf")
        unified, results = env.install(session)
        assert len(results) == 2
        # every unified node is installed, shared nodes only once
        installed = {
            r.spec.dag_hash() for r in session.db.query()
        }
        assert set(unified.nodes()) <= installed
        report = env.status(session)
        assert report["installed"] == report["unique_nodes"]
        # the second root's shared deps were reused, not rebuilt
        second = results[1][2]
        assert second.reused

    def test_env_concretize_session_api(self, session):
        """Session.env_concretize dispatches names, instances, and
        anonymous root lists."""
        unified = session.env_concretize(["mpileaks", "libdwarf"])
        assert len(unified.roots) == 2
        env = session.environment("named")
        env.add("libelf")
        by_name = session.env_concretize("named")
        assert [t for t, _ in by_name.roots] == ["libelf"]
        by_instance = session.env_concretize(env)
        assert by_instance.resolves == 0  # lock from the previous call
