"""Lmod hierarchy generation (§3.5.4 future work, implemented)."""

import os

import pytest

from repro.modules.lmod import LmodHierarchy
from repro.spec.spec import Spec


@pytest.fixture
def hierarchy(session):
    """Installs spanning all three levels: a leaf library (compiler
    level), two MPIs (providers), and mpileaks under each MPI."""
    session.install("libelf")
    session.install("mpileaks ^mvapich2")
    session.install("mpileaks ^openmpi")
    lmod = LmodHierarchy(session)
    lmod.refresh()
    return session, lmod


class TestLayout:
    def test_core_compiler_module(self, hierarchy):
        _, lmod = hierarchy
        tree = lmod.tree()
        assert any(t.startswith(os.path.join("linux-x86_64", "Core", "gcc")) for t in tree)

    def test_compiler_level_for_non_mpi_packages(self, hierarchy):
        _, lmod = hierarchy
        tree = lmod.tree()
        assert any(
            t.startswith(os.path.join("linux-x86_64", "gcc", "4.9.2", "libelf"))
            for t in tree
        )

    def test_mpi_providers_at_compiler_level(self, hierarchy):
        _, lmod = hierarchy
        tree = lmod.tree()
        assert any(
            t.startswith(os.path.join("linux-x86_64", "gcc", "4.9.2", "mvapich2"))
            for t in tree
        )

    def test_mpi_level_for_mpi_dependents(self, hierarchy):
        """The matrix problem, solved: one mpileaks module under each MPI
        subtree, same module *name* inside each level."""
        _, lmod = hierarchy
        tree = lmod.tree()
        under_mvapich2 = [t for t in tree if t.startswith(
            os.path.join("linux-x86_64", "mvapich2", "2.0", "gcc", "4.9.2", "mpileaks"))]
        under_openmpi = [t for t in tree if t.startswith(
            os.path.join("linux-x86_64", "openmpi", "1.8.2", "gcc", "4.9.2", "mpileaks"))]
        assert len(under_mvapich2) == 1
        assert len(under_openmpi) == 1

    def test_dependencies_of_mpi_dependents_also_placed(self, hierarchy):
        # callpath (depends on MPI) is under the MPI level; dyninst
        # (no MPI) at the compiler level
        _, lmod = hierarchy
        tree = lmod.tree()
        assert any("mvapich2/2.0/gcc/4.9.2/callpath" in t.replace(os.sep, "/") for t in tree)
        assert any(
            t.startswith(os.path.join("linux-x86_64", "gcc", "4.9.2", "dyninst"))
            for t in tree
        )


class TestContent:
    def _read(self, lmod, predicate):
        for rel in lmod.tree():
            if predicate(rel.replace(os.sep, "/")):
                return open(os.path.join(lmod.root, rel)).read()
        raise AssertionError("no module matched")

    def test_core_module_extends_modulepath(self, hierarchy):
        _, lmod = hierarchy
        text = self._read(lmod, lambda r: r.startswith("linux-x86_64/Core/gcc/"))
        assert 'family("compiler")' in text
        assert 'prepend_path("MODULEPATH"' in text
        assert "gcc/4.9.2" in text

    def test_mpi_module_extends_modulepath_and_family(self, hierarchy):
        _, lmod = hierarchy
        text = self._read(lmod, lambda r: "/mvapich2/" in r and r.endswith(".lua")
                          and "/gcc/4.9.2/mvapich2/" in r)
        assert 'family("mpi")' in text
        assert 'prepend_path("MODULEPATH"' in text

    def test_package_module_sets_runtime_env(self, hierarchy):
        session, lmod = hierarchy
        text = self._read(lmod, lambda r: "/mpileaks/" in r and "mvapich2" in r)
        spec = next(s for s in session.find("mpileaks") if s["mpi"].name == "mvapich2")
        prefix = session.store.layout.path_for_spec(spec)
        assert 'prepend_path("PATH", "%s")' % os.path.join(prefix, "bin") in text
        assert "LD_LIBRARY_PATH" in text

    def test_distinct_configurations_distinct_files(self, session):
        session.install("libelf@0.8.13")
        session.install("libelf@0.8.12")
        lmod = LmodHierarchy(session)
        lmod.refresh()
        libelf_modules = [t for t in lmod.tree() if "libelf" in t]
        assert len(libelf_modules) == 2

    def test_refresh_idempotent(self, hierarchy):
        _, lmod = hierarchy
        before = lmod.tree()
        lmod.refresh()
        assert lmod.tree() == before
