"""Environment-module generation (§3.5.4)."""

import os

import pytest

from repro.modules.generator import DotkitModule, ModuleGenerator, TclModule
from repro.spec.spec import Spec


@pytest.fixture
def generated(installed_mpileaks):
    session, spec, _ = installed_mpileaks
    generator = ModuleGenerator(session)
    paths = generator.write_for_spec(spec)
    return session, spec, generator, paths


class TestGeneration:
    def test_both_formats_written(self, generated):
        _, _, _, paths = generated
        assert len(paths) == 2
        assert any("/dotkit/" in p for p in paths)
        assert any("/tcl/" in p for p in paths)
        for p in paths:
            assert os.path.isfile(p)

    def test_file_name_has_hash_no_matrix_problem(self, generated):
        session, spec, generator, paths = generated
        # two configurations -> two distinct module files
        spec2, _ = session.install("mpileaks ^openmpi")
        paths2 = generator.write_for_spec(spec2)
        assert set(paths) != set(paths2)
        assert spec.dag_hash(8) in os.path.basename(paths[0])

    def test_dotkit_content(self, generated):
        session, spec, _, paths = generated
        dotkit = open(next(p for p in paths if "/dotkit/" in p)).read()
        assert dotkit.startswith("#c spack")
        assert "#d mpileaks" in dotkit
        prefix = session.store.layout.path_for_spec(spec)
        assert "dk_alter PATH %s" % os.path.join(prefix, "bin") in dotkit
        assert "dk_alter MANPATH" in dotkit
        assert "dk_alter LD_LIBRARY_PATH %s" % os.path.join(prefix, "lib") in dotkit

    def test_tcl_content(self, generated):
        session, spec, _, paths = generated
        tcl = open(next(p for p in paths if "/tcl/" in p)).read()
        assert tcl.startswith("#%Module1.0")
        assert "module-whatis" in tcl
        assert "prepend-path PATH" in tcl
        assert "prepend-path LD_LIBRARY_PATH" in tcl
        assert "prepend-path PKG_CONFIG_PATH" in tcl

    def test_ld_library_path_includes_dependencies(self, generated):
        """§3.5.4: LD_LIBRARY_PATH set even though RPATHs make it
        unnecessary, for non-RPATH dependents and build systems."""
        session, spec, _, paths = generated
        tcl = open(next(p for p in paths if "/tcl/" in p)).read()
        libelf_lib = os.path.join(
            session.store.layout.path_for_spec(spec["libelf"]), "lib"
        )
        assert libelf_lib in tcl

    def test_module_env_actually_works(self, generated):
        """Applying the module's operations yields a usable environment."""
        session, spec, _, _ = generated
        module = TclModule(spec, session.store.layout)
        env = module.environment().applied_to({})
        prefix = session.store.layout.path_for_spec(spec)
        assert env["PATH"].split(os.pathsep)[0] == os.path.join(prefix, "bin")
        assert os.path.join(prefix, "lib") in env["LD_LIBRARY_PATH"]


class TestRefresh:
    def test_refresh_covers_all_installed(self, installed_mpileaks):
        session, _, _ = installed_mpileaks
        generator = ModuleGenerator(session)
        paths = generator.refresh()
        # 6 installed specs x 2 formats
        assert len(paths) == 12

    def test_remove(self, generated):
        _, spec, generator, paths = generated
        removed = generator.remove_for_spec(spec)
        assert len(removed) == 2
        for p in paths:
            assert not os.path.exists(p)
