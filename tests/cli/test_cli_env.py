"""CLI tests for the ``env`` command family."""

import pytest

from repro.cli.main import main


@pytest.fixture
def root(tmp_path):
    return str(tmp_path / "universe")


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


class TestEnvCommand:
    def test_add_concretize_status_roundtrip(self, root, capsys):
        code, out, _ = run(capsys, "--root", root, "env", "add", "dev",
                           "mpileaks", "dyninst ^libelf@0.8.12")
        assert code == 0
        assert "added mpileaks" in out
        assert "dev: 2 roots" in out

        code, out, _ = run(capsys, "--root", root, "env", "concretize",
                           "dev", "-j", "2")
        assert code == 0
        assert "2 roots unified" in out
        assert "pinned libelf -> libelf@0.8.12" in out

        # second concretize restores from the lock
        code, out, _ = run(capsys, "--root", root, "env", "concretize", "dev")
        assert code == 0
        assert "restored from lock" in out

        code, out, _ = run(capsys, "--root", root, "env", "status", "dev")
        assert code == 0
        assert "lock: fresh" in out
        assert "root mpileaks" in out

        code, out, _ = run(capsys, "--root", root, "env", "list")
        assert code == 0
        assert "dev" in out and "2 roots" in out

    def test_install_unifies_and_reuses(self, root, capsys):
        run(capsys, "--root", root, "env", "add", "dev",
            "mpileaks", "libdwarf")
        code, out, _ = run(capsys, "--root", root, "env", "install", "dev")
        assert code == 0
        assert "installed 2 roots" in out
        code, out, _ = run(capsys, "--root", root, "env", "status", "dev")
        assert code == 0
        # every unified node installed; the count line shows X of X
        assert "installed" in out

    def test_conflict_is_one_diagnostic_naming_both_roots(self, root, capsys):
        run(capsys, "--root", root, "env", "add", "bad",
            "mpileaks ^libelf@0.8.11", "dyninst ^libelf@0.8.12")
        code, _, err = run(capsys, "--root", root, "env", "concretize", "bad")
        assert code == 1
        assert "mpileaks ^libelf@0.8.11" in err
        assert "dyninst ^libelf@0.8.12" in err
        assert "cannot unify environment" in err

    def test_remove_and_missing_name(self, root, capsys):
        run(capsys, "--root", root, "env", "add", "dev", "mpileaks")
        code, out, _ = run(capsys, "--root", root, "env", "remove", "dev",
                           "mpileaks")
        assert code == 0 and "removed mpileaks" in out
        code, _, err = run(capsys, "--root", root, "env", "concretize")
        assert code == 1 and "needs an environment name" in err
