"""fetch / stage / clean / create / dependents commands."""

import os

import pytest

from repro.cli.main import main


@pytest.fixture
def root(tmp_path):
    return str(tmp_path / "universe")


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


class TestFetchStageClean:
    def test_fetch(self, root, capsys):
        code, out, _ = run(capsys, "--root", root, "fetch", "libdwarf")
        assert code == 0
        assert "fetched 2 archives" in out
        assert "libelf@0.8.13" in out

    def test_stage(self, root, capsys):
        code, out, _ = run(capsys, "--root", root, "stage", "python@2.7.9 =bgq %xl")
        assert code == 0
        source_path = out.strip().split()[-1]
        assert os.path.isfile(os.path.join(source_path, "configure"))
        # §3.2.4's conditional patch applied during staging
        assert os.path.isfile(
            os.path.join(source_path, ".patches", "python-bgq-xlc.patch")
        )

    def test_clean(self, root, capsys):
        run(capsys, "--root", root, "stage", "libelf")
        code, out, _ = run(capsys, "--root", root, "clean")
        assert code == 0
        assert "removed 1 stages" in out
        code, out, _ = run(capsys, "--root", root, "clean")
        assert "removed 0 stages" in out


class TestCreate:
    def test_skeleton_from_known_url(self, root, capsys, tmp_path):
        # the mock web serves libelf tarballs; creating from its URL
        # scrapes real versions and computes real checksums
        url = "https://www.mr511.de/software/libelf-0.8.13.tar.gz"
        repo_dir = str(tmp_path / "myrepo")
        code, out, _ = run(
            capsys, "--root", root, "create", "--repo-dir", repo_dir, url
        )
        assert code == 0
        assert "created package 'libelf' with 3 versions" in out
        pkg_file = os.path.join(repo_dir, "libelf", "package.py")
        text = open(pkg_file).read()
        assert "class Libelf(Package):" in text
        # the template emits sha256 digests now, not legacy md5s
        import hashlib

        from repro.fetch.mockweb import mock_tarball

        expected = hashlib.sha256(mock_tarball("libelf", "0.8.13")).hexdigest()
        assert "version('0.8.13', sha256='%s')" % expected in text
        assert "md5" not in text

        # and the generated file actually loads as a repository package
        from repro.repo.repository import Repository

        repo = Repository(repo_dir, namespace="created")
        assert repo.exists("libelf")
        cls = repo.get_class("libelf")
        assert len(cls.safe_versions()) == 3
        assert cls.versions[max(cls.versions)]["checksum"] == expected

    def test_guess_name(self):
        from repro.repo.create import guess_name_from_url

        assert guess_name_from_url("https://x.org/libelf-0.8.13.tar.gz") == "libelf"
        assert guess_name_from_url("https://x.org/tcl8.6.3-src.tar.gz") == "tcl"
        assert guess_name_from_url("https://x.org/mpich-3.0.4.tar.gz") == "mpich"


class TestDependents:
    def test_metadata_dependents(self, root, capsys):
        code, out, _ = run(capsys, "--root", root, "dependents", "libelf")
        assert code == 0
        assert "libdwarf" in out and "dyninst" in out

    def test_virtual_provider_dependents(self, root, capsys):
        # packages depending on 'mpi' count as potential dependents of a
        # provider
        code, out, _ = run(capsys, "--root", root, "dependents", "mvapich2")
        assert code == 0
        assert "mpileaks" in out and "gerris" in out

    def test_installed_dependents_shown(self, root, capsys):
        run(capsys, "--root", root, "install", "libdwarf")
        code, out, _ = run(capsys, "--root", root, "dependents", "libelf")
        assert "installed dependents:" in out
        assert "libdwarf@" in out
