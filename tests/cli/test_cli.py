"""CLI smoke + behaviour tests (one per command)."""

import os

import pytest

from repro.cli.main import build_parser, main


@pytest.fixture
def root(tmp_path):
    return str(tmp_path / "universe")


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


class TestCommands:
    def test_explain(self, root, capsys):
        code, out, _ = run(capsys, "--root", root, "explain", "mpileaks@1.1.2 %gcc")
        assert code == 0
        assert "mpileaks package, version 1.1.2" in out

    def test_spec_shows_abstract_and_concrete(self, root, capsys):
        code, out, _ = run(capsys, "--root", root, "spec", "mpileaks ^mpich")
        assert code == 0
        assert "Input spec" in out and "Concretized" in out
        assert "mpich@3.0.4" in out

    def test_install_find_uninstall(self, root, capsys):
        code, out, _ = run(capsys, "--root", root, "install", "libdwarf")
        assert code == 0
        assert "built  libelf" in out and "built  libdwarf" in out

        code, out, _ = run(capsys, "--root", root, "find")
        assert code == 0 and "2 installed packages" in out

        code, out, _ = run(capsys, "--root", root, "find", "libdwarf")
        assert "1 installed packages" in out

        code, out, err = run(capsys, "--root", root, "uninstall", "libelf")
        assert code == 1 and "required by" in err

        code, out, _ = run(capsys, "--root", root, "uninstall", "libdwarf")
        assert code == 0
        code, out, _ = run(capsys, "--root", root, "uninstall", "libelf")
        assert code == 0

    def test_install_reuses(self, root, capsys):
        run(capsys, "--root", root, "install", "libdwarf")
        code, out, _ = run(capsys, "--root", root, "install", "libdwarf")
        assert code == 0 and "reused libdwarf" in out

    def test_install_parallel_jobs(self, root, capsys):
        code, out, _ = run(
            capsys, "--root", root, "install", "-j", "4", "mpileaks"
        )
        assert code == 0
        assert "built  mpileaks" in out

    def test_install_timers_reports_wall_vs_aggregate(self, root, capsys):
        code, out, _ = run(
            capsys, "--root", root, "install", "--timers", "-j", "2", "libdwarf"
        )
        assert code == 0
        assert "phase timers" in out
        assert "wall-clock" in out and "with 2 jobs" in out

    def test_install_fail_fast_flag_parses(self, root, capsys):
        code, out, _ = run(
            capsys, "--root", root, "install", "--fail-fast", "libelf"
        )
        assert code == 0

    def test_providers(self, root, capsys):
        code, out, _ = run(capsys, "--root", root, "providers", "mpi@2:")
        assert code == 0
        assert "mvapich2@1.9" in out
        assert "mpich@3:" in out

    def test_versions(self, root, capsys):
        code, out, _ = run(capsys, "--root", root, "versions", "mpileaks")
        assert code == 0
        assert "declared (safe) versions" in out
        assert "2.3" in out and "remote versions" in out

    def test_compilers(self, root, capsys):
        code, out, _ = run(capsys, "--root", root, "compilers")
        assert code == 0
        assert "gcc@4.9.2" in out and "xl@12.1" in out

    def test_graph_ascii_and_dot(self, root, capsys):
        code, out, _ = run(capsys, "--root", root, "graph", "mpileaks")
        assert code == 0 and "mpileaks" in out
        code, out, _ = run(capsys, "--root", root, "graph", "--dot", "mpileaks")
        assert code == 0 and out.startswith("digraph")

    def test_module(self, root, capsys):
        run(capsys, "--root", root, "install", "libelf")
        code, out, _ = run(capsys, "--root", root, "module")
        assert code == 0 and "regenerated 2 module files" in out

    def test_view(self, root, capsys, tmp_path):
        run(capsys, "--root", root, "install", "libelf")
        code, out, _ = run(
            capsys, "--root", root, "view",
            "--view-root", str(tmp_path / "v"),
            "--link", "/opt/${PACKAGE}-${VERSION}",
            "libelf",
        )
        assert code == 0
        assert "opt/libelf-0.8.13" in out

    def test_activate_extensions_deactivate(self, root, capsys):
        run(capsys, "--root", root, "install", "python@2.7.9")
        run(capsys, "--root", root, "install", "py-nose ^python@2.7.9")
        code, out, _ = run(capsys, "--root", root, "activate", "py-nose")
        assert code == 0 and "activated" in out
        code, out, _ = run(capsys, "--root", root, "extensions", "python")
        assert code == 0 and "* py-nose" in out
        code, out, _ = run(capsys, "--root", root, "deactivate", "py-nose")
        assert code == 0

    def test_repo_list(self, root, capsys):
        code, out, _ = run(capsys, "--root", root, "repo-list")
        assert code == 0
        assert "mpileaks" in out and "ares" in out

    def test_errors_are_reported_not_raised(self, root, capsys):
        code, _, err = run(capsys, "--root", root, "install", "no-such-pkg")
        assert code == 1
        assert "Error:" in err

    def test_parse_error_reported(self, root, capsys):
        code, _, err = run(capsys, "--root", root, "spec", "mpileaks@@@")
        assert code == 1 and "Error:" in err


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["find"])
        assert args.command == "find"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_env_var_root(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SPACK_ROOT", str(tmp_path / "envroot"))
        code, out, _ = run(capsys, "compilers")
        assert code == 0
        assert os.path.isdir(str(tmp_path / "envroot"))


class TestDiag:
    """The performance observatory: trace rendering, critical path,
    metrics dumps, and benchmark comparison."""

    @pytest.fixture
    def capture(self, root, tmp_path, capsys):
        log = str(tmp_path / "capture.jsonl")
        code, _, _ = run(
            capsys, "--root", root, "--telemetry-log", log,
            "install", "-j", "2", "libdwarf",
        )
        assert code == 0
        return log

    def test_trace_renders_single_rooted_tree(self, capture, capsys):
        code, out, _ = run(capsys, "diag", "trace", capture)
        assert code == 0
        assert "orphans" in out and " 0 orphans" in out
        assert "install [libdwarf]" in out
        assert "install.node [libelf]" in out
        # the critical path is starred and summarized
        assert any(line.startswith("*") for line in out.splitlines())
        assert "critical path (*)" in out

    def test_critical_path_table(self, capture, capsys):
        code, out, _ = run(capsys, "diag", "critical-path", capture)
        assert code == 0
        assert "critical path of install [libdwarf]" in out
        assert "critical-path time:" in out

    def test_metrics_dump(self, capture, capsys):
        code, out, _ = run(capsys, "diag", "metrics", capture)
        assert code == 0
        assert "install.built" in out
        assert "self-time rollup" in out
        assert "p50=" in out

    def test_metrics_prometheus(self, capture, capsys):
        code, out, _ = run(capsys, "diag", "metrics", capture, "--prometheus")
        assert code == 0
        assert "# TYPE repro_install_built_total counter" in out
        assert "repro_install_node_seconds_count" in out

    def test_compare_detects_injected_slowdown(self, tmp_path, capsys):
        """The ISSUE's acceptance bar: a 25% slowdown injected into a
        result file must be reported and exit nonzero."""
        import json

        from repro.telemetry import bench_report

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(
            bench_report("demo", {"wall_seconds": 1.0, "speedup": 2.0})
        ))
        new.write_text(json.dumps(
            bench_report("demo", {"wall_seconds": 1.25, "speedup": 2.0})
        ))
        code, out, _ = run(capsys, "diag", "compare", str(old), str(new))
        assert code == 1
        assert "REGRESSION" in out and "wall_seconds" in out

        code, out, _ = run(capsys, "diag", "compare", str(old), str(old))
        assert code == 0
        assert "OK" in out

    def test_compare_tolerance_flag(self, tmp_path, capsys):
        import json

        from repro.telemetry import bench_report

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(bench_report("demo", {"wall_seconds": 1.0})))
        new.write_text(json.dumps(bench_report("demo", {"wall_seconds": 1.25})))
        code, _, _ = run(
            capsys, "diag", "compare", str(old), str(new), "--tolerance", "0.5"
        )
        assert code == 0

    def test_diag_usage_errors(self, tmp_path, capsys):
        code, _, err = run(capsys, "diag", "compare", "only-one.json")
        assert code == 1 and "exactly two" in err
        code, _, err = run(capsys, "diag", "trace")
        assert code == 1 and "exactly one" in err
