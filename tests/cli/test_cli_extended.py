"""CLI tests for the extension commands: info, checksum, lmod, --backtrack,
and auto-generated modules."""

import os

import pytest

from repro.cli.main import main


@pytest.fixture
def root(tmp_path):
    return str(tmp_path / "universe")


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


class TestInfo:
    def test_full_metadata(self, root, capsys):
        code, out, _ = run(capsys, "--root", root, "info", "mpileaks")
        assert code == 0
        assert "Package:   mpileaks" in out
        assert "https://github.com/hpc/mpileaks" in out
        assert "Safe versions:" in out and "2.3" in out
        assert "Variants:" in out and "debug" in out
        assert "Dependencies:" in out and "mpi" in out and "callpath" in out

    def test_provider_info(self, root, capsys):
        code, out, _ = run(capsys, "--root", root, "info", "mvapich2")
        assert code == 0
        assert "Provides:" in out
        assert "mpi@:2.2  when @1.9" in out

    def test_conditional_dep_info(self, root, capsys):
        code, out, _ = run(capsys, "--root", root, "info", "rose")
        assert code == 0
        assert "when %gcc@:4" in out

    def test_unknown_package(self, root, capsys):
        code, _, err = run(capsys, "--root", root, "info", "nope")
        assert code == 1 and "Error" in err


class TestChecksum:
    def test_checksums_scraped_and_computed(self, root, capsys):
        code, out, _ = run(capsys, "--root", root, "checksum", "libelf")
        assert code == 0
        assert "found 3 versions" in out
        # output is paste-able version() directives with real md5s
        from repro.fetch.mockweb import mock_checksum

        assert "version('0.8.13', '%s')" % mock_checksum("libelf", "0.8.13") in out


class TestLmodCommand:
    def test_hierarchy_regenerated(self, root, capsys):
        run(capsys, "--root", root, "install", "mpileaks")
        code, out, _ = run(capsys, "--root", root, "lmod")
        assert code == 0
        assert "regenerated" in out
        assert "Core" in out and "mvapich2" in out


class TestBacktrackFlag:
    def test_spec_backtrack_flag(self, root, capsys):
        code, out, _ = run(capsys, "--root", root, "spec", "--backtrack", "mpileaks")
        assert code == 0
        assert "Concretized" in out


class TestNoConcretizeCacheFlag:
    def test_bypass_leaves_the_cache_empty(self, root, capsys):
        code, out, _ = run(
            capsys, "--root", root, "spec", "--no-concretize-cache", "mpileaks"
        )
        assert code == 0
        assert "Concretized" in out
        assert not os.path.isdir(
            os.path.join(root, "cache", "concretize")
        ) or not os.listdir(os.path.join(root, "cache", "concretize"))

    def test_cached_and_uncached_answers_agree(self, root, capsys):
        _, warm_out, _ = run(capsys, "--root", root, "spec", "mpileaks")
        _, cold_out, _ = run(
            capsys, "--root", root, "spec", "--no-concretize-cache", "mpileaks"
        )
        assert warm_out.split("Concretized")[1] == cold_out.split("Concretized")[1]
        # the default path persisted an entry for the warm run
        shard_dir = os.path.join(root, "cache", "concretize", "index")
        assert os.path.isdir(shard_dir) and os.listdir(shard_dir)


class TestFindByHashAndLocation:
    def test_find_by_hash_prefix(self, root, capsys):
        run(capsys, "--root", root, "install", "libelf")
        code, out, _ = run(capsys, "--root", root, "find", "libelf")
        full_hash = out.strip().splitlines()[-1].split("/")[-1]
        code, out, _ = run(capsys, "--root", root, "find", "/" + full_hash[:6])
        assert code == 0 and "libelf" in out

    def test_location(self, root, capsys):
        run(capsys, "--root", root, "install", "libelf")
        code, out, _ = run(capsys, "--root", root, "location", "libelf")
        assert code == 0
        assert os.path.isdir(out.strip())
        assert "libelf" in out

    def test_location_ambiguous(self, root, capsys):
        run(capsys, "--root", root, "install", "libelf@0.8.13")
        run(capsys, "--root", root, "install", "libelf@0.8.12")
        code, _, err = run(capsys, "--root", root, "location", "libelf")
        assert code == 1 and "2 installed specs" in err

    def test_find_deps_tree(self, root, capsys):
        run(capsys, "--root", root, "install", "libdwarf")
        code, out, _ = run(capsys, "--root", root, "find", "-d", "libdwarf")
        assert code == 0
        assert "libelf" in out


class TestAutoModules:
    def test_modules_generated_on_install(self, root, capsys):
        run(capsys, "--root", root, "install", "libelf")
        module_root = os.path.join(root, "modules")
        found = []
        for dirpath, _dirs, files in os.walk(module_root):
            found.extend(files)
        assert any("libelf" in f for f in found)

    def test_modules_removed_on_uninstall(self, root, capsys):
        run(capsys, "--root", root, "install", "libelf")
        run(capsys, "--root", root, "uninstall", "libelf")
        module_root = os.path.join(root, "modules")
        found = []
        for dirpath, _dirs, files in os.walk(module_root):
            found.extend(files)
        assert not any("libelf" in f for f in found)
