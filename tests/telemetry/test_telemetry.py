"""Unit tests for the session telemetry hub and its sinks.

Covers the contracts docs/observability.md documents: span nesting and
parent IDs, the JSONL round-trip, counter/histogram aggregation, and —
most load-bearing — that the disabled path emits nothing and allocates
nothing (``span()`` returns the shared ``NULL_SPAN`` singleton).
"""

import io
import threading

import pytest

from repro.telemetry import (
    NULL_SPAN,
    JSONLSink,
    MemorySink,
    NullSpan,
    Telemetry,
    TraceContext,
    TreeSink,
)


@pytest.fixture
def hub():
    return Telemetry()


@pytest.fixture
def sink(hub):
    return hub.add_sink(MemorySink())


class TestSpans:
    def test_span_emits_start_and_end(self, hub, sink):
        with hub.span("work", package="libelf"):
            pass
        kinds = [r["event"] for r in sink.records]
        assert kinds == ["span-start", "span-end"]
        end = sink.spans("work")[0]
        assert end["attrs"] == {"package": "libelf"}
        assert end["duration_s"] >= 0.0

    def test_nesting_assigns_parent_ids(self, hub, sink):
        with hub.span("outer") as outer:
            with hub.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with hub.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        assert outer.parent_id is None
        assert len({outer.span_id, inner.span_id, sibling.span_id}) == 3

    def test_parent_ids_survive_the_jsonl_stream(self, hub, sink):
        with hub.span("a"):
            with hub.span("b"):
                pass
        by_name = {r["name"]: r for r in sink.spans()}
        assert by_name["b"]["parent"] == by_name["a"]["span"]
        assert by_name["a"]["parent"] is None

    def test_set_attaches_attrs_to_span_end(self, hub, sink):
        with hub.span("fetch") as span:
            span.set(bytes=1234, source="mirror")
        end = sink.spans("fetch")[0]
        assert end["attrs"]["bytes"] == 1234
        assert end["attrs"]["source"] == "mirror"

    def test_exception_marks_span_and_propagates(self, hub, sink):
        with pytest.raises(ValueError):
            with hub.span("doomed"):
                raise ValueError("boom")
        end = sink.spans("doomed")[0]
        assert end["error"] == "ValueError"
        # the stack unwound: nothing current anymore
        assert hub.current_span() is None

    def test_span_event_is_parented(self, hub, sink):
        with hub.span("install") as span:
            span.event("checkpoint", phase="build")
        ev = sink.events("checkpoint")[0]
        assert ev["span"] == span.span_id
        assert ev["attrs"] == {"phase": "build"}

    def test_hub_event_uses_current_span(self, hub, sink):
        with hub.span("concretize") as span:
            hub.event("concretize.expand", iteration=0)
        hub.event("orphan")
        expand = sink.events("concretize.expand")[0]
        assert expand["span"] == span.span_id
        assert sink.events("orphan")[0]["span"] is None

    def test_span_durations_feed_histograms(self, hub, sink):
        for _ in range(3):
            with hub.span("phase"):
                pass
        hist = hub.histograms["phase"]
        assert hist.count == 3
        assert hist.min <= hist.mean <= hist.max

    def test_thread_local_stacks(self, hub, sink):
        parents = {}

        def worker(key):
            with hub.span("thread-root") as root:
                parents[key] = root.parent_id

        with hub.span("main-root"):
            t = threading.Thread(target=worker, args=("other",))
            t.start()
            t.join()
        # the other thread's root saw no parent, despite main's open span
        assert parents["other"] is None

    def test_adopt_parents_across_threads(self, hub, sink):
        """Worker-pool propagation: adopting a span parents this thread's
        spans to it even though the stack is thread-local."""
        parents = {}

        def worker(outer):
            with hub.adopt(outer):
                with hub.span("worker-span") as child:
                    parents["adopted"] = child.parent_id
            with hub.span("after") as loose:
                parents["after"] = loose.parent_id

        with hub.span("main-root") as outer:
            t = threading.Thread(target=worker, args=(outer,))
            t.start()
            t.join()
        assert parents["adopted"] == outer.span_id
        assert parents["after"] is None  # adoption ends with the block

    def test_adopt_tolerates_null_and_none(self, hub):
        from repro.telemetry import NULL_SPAN

        with hub.adopt(None):
            pass
        with hub.adopt(NULL_SPAN):
            pass


class TestTraceContexts:
    """Every root span starts a trace; children inherit it; capture/
    adopt carries it across threads (docs/observability.md)."""

    def test_root_spans_get_distinct_trace_ids(self, hub, sink):
        with hub.span("first") as a:
            pass
        with hub.span("second") as b:
            pass
        assert a.trace_id is not None
        assert b.trace_id is not None
        assert a.trace_id != b.trace_id

    def test_children_inherit_the_trace(self, hub, sink):
        with hub.span("root") as root:
            with hub.span("child") as child:
                with hub.span("grandchild") as grand:
                    pass
        assert child.trace_id == root.trace_id
        assert grand.trace_id == root.trace_id

    def test_records_carry_the_trace_id(self, hub, sink):
        with hub.span("op") as span:
            hub.event("checkpoint")
        for record in sink.records:
            assert record["trace"] == span.trace_id

    def test_capture_snapshots_the_current_position(self, hub, sink):
        assert hub.capture() is None  # nothing open
        with hub.span("root") as root:
            context = hub.capture()
        assert isinstance(context, TraceContext)
        assert context.trace_id == root.trace_id
        assert context.span_id == root.span_id

    def test_capture_round_trips_through_dict(self, hub, sink):
        with hub.span("root"):
            context = hub.capture()
        again = TraceContext.from_dict(context.to_dict())
        assert again.trace_id == context.trace_id
        assert again.span_id == context.span_id

    def test_adopted_context_joins_the_trace_across_threads(self, hub, sink):
        seen = {}

        def worker(context):
            with hub.adopt(context):
                with hub.span("worker-span") as child:
                    seen["trace"] = child.trace_id
                    seen["parent"] = child.parent_id

        with hub.span("main-root") as root:
            context = hub.capture()
            t = threading.Thread(target=worker, args=(context,))
            t.start()
            t.join()
        assert seen["trace"] == root.trace_id
        assert seen["parent"] == root.span_id

    def test_parallel_install_yields_one_trace_no_orphans(self, session):
        """A -j 4 install is one coherent single-rooted trace tree even
        though node builds run on pool threads."""
        sink = session.telemetry.add_sink(MemorySink())
        try:
            session.install("mpileaks", jobs=4)
        finally:
            session.telemetry.remove_sink(sink)
        install = sink.spans("install")[0]
        trace = install["trace"]
        in_trace = [r for r in sink.records if r.get("trace") == trace]
        spans = [r for r in in_trace if r["event"] == "span-end"]
        roots = [r for r in spans if r["parent"] is None]
        assert roots == [install]  # single-rooted
        ids = {r["span"] for r in spans}
        for r in spans:  # zero orphans: every parent is in the trace
            assert r["parent"] is None or r["parent"] in ids
        # the worker-side spans really are in this trace
        assert {r["name"] for r in spans} >= {
            "install", "scheduler.run", "install.node",
        }


class TestAggregates:
    def test_counters_accumulate(self, hub, sink):
        hub.count("fetch.cache_hit")
        hub.count("fetch.cache_hit", 2)
        assert hub.counter("fetch.cache_hit") == 3
        assert hub.counter("never-bumped") == 0

    def test_observe_builds_streaming_histogram(self, hub, sink):
        for v in (1.0, 3.0, 2.0):
            hub.observe("db.lock_wait_s", v)
        d = hub.histograms["db.lock_wait_s"].to_dict()
        assert d["count"] == 3
        assert d["min"] == 1.0
        assert d["max"] == 3.0
        assert d["mean"] == 2.0
        assert d["total"] == 6.0

    def test_gauge_keeps_latest_and_feeds_histogram(self, hub, sink):
        for depth in (3, 7, 2):
            hub.gauge("scheduler.queue_depth", depth)
        assert hub.gauge_value("scheduler.queue_depth") == 2
        hist = hub.histograms["scheduler.queue_depth"].to_dict()
        assert hist["count"] == 3
        assert hist["max"] == 7
        assert hub.gauge_value("never-set") is None
        assert hub.gauge_value("never-set", default=0) == 0

    def test_gauge_free_when_disabled(self):
        from repro.telemetry import Telemetry

        quiet = Telemetry()
        quiet.gauge("scheduler.queue_depth", 5)
        assert quiet.gauges == {}
        assert quiet.gauge_value("scheduler.queue_depth") is None

    def test_snapshot_is_json_shaped(self, hub, sink):
        import json

        hub.count("c", 5)
        hub.observe("h", 0.5)
        hub.gauge("g", 9)
        snap = hub.snapshot()
        assert snap["counters"] == {"c": 5}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["gauges"] == {"g": 9}
        json.dumps(snap)  # must serialize

    def test_emit_summary_event(self, hub, sink):
        hub.count("install.built", 2)
        hub.emit_summary()
        summary = sink.events("telemetry.summary")[0]
        assert summary["attrs"]["counters"] == {"install.built": 2}


class TestHistogramPercentiles:
    def test_percentiles_exact_under_reservoir_size(self, hub, sink):
        for v in range(1, 101):  # 1..100
            hub.observe("h", float(v))
        hist = hub.histograms["h"]
        assert hist.percentile(50) == 50.0
        assert hist.percentile(95) == 95.0
        assert hist.percentile(99) == 99.0

    def test_to_dict_exposes_p50_p95_p99(self, hub, sink):
        hub.observe("h", 1.0)
        d = hub.histograms["h"].to_dict()
        assert d["p50"] == 1.0
        assert d["p95"] == 1.0
        assert d["p99"] == 1.0

    def test_empty_percentile_is_none(self):
        from repro.telemetry import Histogram

        assert Histogram().percentile(50) is None

    def test_reservoir_is_bounded_but_exact_stats_are_not(self, hub, sink):
        from repro.telemetry.hub import RESERVOIR_SIZE

        n = RESERVOIR_SIZE * 3
        for v in range(n):
            hub.observe("big", float(v))
        hist = hub.histograms["big"]
        assert len(hist.samples) == RESERVOIR_SIZE
        assert hist.count == n          # exact aggregates keep counting
        assert hist.min == 0.0
        assert hist.max == float(n - 1)
        # the sampled median still lands in the middle of the stream
        assert n * 0.3 < hist.percentile(50) < n * 0.7

    def test_reservoir_is_deterministic(self):
        from repro.telemetry import Histogram

        a, b = Histogram(), Histogram()
        for v in range(2000):
            a.add(float(v))
            b.add(float(v))
        assert a.samples == b.samples


class TestCrashProofEmission:
    """Telemetry must never change outcomes: a raising sink is counted
    on ``drops``, not propagated into the instrumented operation."""

    class _BrokenSink(MemorySink):
        def emit(self, record):
            raise IOError("disk full")

    def test_raising_sink_never_breaks_the_operation(self, hub):
        hub.add_sink(self._BrokenSink())
        with hub.span("work"):
            hub.event("checkpoint")
        hub.count("c")
        assert hub.drops == 3  # span-start, event, span-end
        assert hub.counter("c") == 1  # aggregates unaffected

    def test_drops_split_per_sink(self, hub):
        healthy = hub.add_sink(MemorySink())
        hub.add_sink(self._BrokenSink())
        hub.event("e")
        assert hub.drops == 1
        assert len(healthy.records) == 1  # other sinks still served

    def test_snapshot_reports_drops(self, hub):
        hub.add_sink(self._BrokenSink())
        hub.event("e")
        snap = hub.snapshot()
        assert snap["drops"] == 1


class TestDisabledPath:
    """With no sinks, instrumentation must be free — no records, no
    aggregation, and no allocation (the null span is a singleton)."""

    def test_span_returns_the_singleton(self, hub):
        assert hub.span("anything") is NULL_SPAN
        assert hub.span("other", attr=1) is NULL_SPAN
        assert isinstance(NULL_SPAN, NullSpan)

    def test_null_span_is_inert(self, hub):
        with hub.span("x") as span:
            span.set(a=1).event("e", b=2)
        assert span.span_id is None
        assert hub.current_span() is None

    def test_nothing_aggregates_when_disabled(self, hub):
        hub.count("c")
        hub.observe("h", 1.0)
        hub.event("e")
        with hub.span("s"):
            pass
        assert hub.counters == {}
        assert hub.histograms == {}

    def test_enabled_flips_with_sinks(self, hub):
        assert not hub.enabled
        sink = hub.add_sink(MemorySink())
        assert hub.enabled
        assert hub.span("live") is not NULL_SPAN
        hub.remove_sink(sink)
        assert not hub.enabled
        assert hub.span("dead") is NULL_SPAN

    def test_removed_sink_stops_receiving(self, hub):
        sink = hub.add_sink(MemorySink())
        hub.event("before")
        hub.remove_sink(sink)
        hub.event("after")
        names = [r["name"] for r in sink.records]
        assert names == ["before"]


class TestJSONLSink:
    def test_round_trip_through_a_file(self, hub, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        jsonl = hub.add_sink(JSONLSink(path))
        with hub.span("concretize", spec="mpileaks"):
            hub.event("concretize.expand", iteration=0, changed=True)
        hub.count("install.built")
        hub.emit_summary()
        jsonl.close()

        records = JSONLSink.read(path)
        kinds = [r["event"] for r in records]
        assert kinds == ["span-start", "event", "span-end", "event"]
        start, expand, end, summary = records
        assert start["name"] == "concretize"
        assert start["attrs"] == {"spec": "mpileaks"}
        assert expand["span"] == start["span"]
        assert end["span"] == start["span"]
        assert end["duration_s"] >= 0.0
        assert summary["name"] == "telemetry.summary"
        assert summary["attrs"]["counters"] == {"install.built": 1}

    def test_stream_variant_leaves_stream_open(self, hub):
        stream = io.StringIO()
        jsonl = hub.add_sink(JSONLSink(stream))
        hub.event("e")
        jsonl.close()
        assert not stream.closed
        assert '"event": "event"' in stream.getvalue()

    def test_appends_rather_than_truncates(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        for _ in range(2):
            hub = Telemetry()
            jsonl = hub.add_sink(JSONLSink(path))
            hub.event("run")
            jsonl.close()
        assert len(JSONLSink.read(path)) == 2

    def test_buffered_mode_flushes_on_close(self, hub, tmp_path):
        path = str(tmp_path / "buffered.jsonl")
        jsonl = hub.add_sink(JSONLSink(path, flush_on_emit=False))
        hub.event("e")
        jsonl.close()
        assert len(JSONLSink.read(path)) == 1

    def test_context_manager_closes_the_stream(self, hub, tmp_path):
        path = str(tmp_path / "ctx.jsonl")
        with JSONLSink(path, flush_on_emit=False) as jsonl:
            hub.add_sink(jsonl)
            hub.event("inside")
        assert len(JSONLSink.read(path)) == 1


class TestTreeSink:
    def test_indents_children_under_parents(self, hub):
        out = io.StringIO()
        hub.add_sink(TreeSink(stream=out))
        with hub.span("install"):
            with hub.span("install.phase.build"):
                pass
        lines = out.getvalue().splitlines()
        # children print first (durations known at close), indented
        assert lines[0].startswith("  install.phase.build")
        assert lines[1].startswith("install")

    def test_min_duration_filters(self, hub):
        out = io.StringIO()
        hub.add_sink(TreeSink(stream=out, min_duration_s=3600.0))
        with hub.span("fast"):
            pass
        assert out.getvalue() == ""


class TestSessionIntegration:
    """The hub as wired through a real Session."""

    def test_session_owns_a_quiet_hub(self, session):
        assert session.telemetry is not None
        assert not session.telemetry.enabled

    def test_concretize_emits_trace_taxonomy(self, session):
        sink = session.telemetry.add_sink(MemorySink())
        try:
            spec = session.concretize("mpileaks")
        finally:
            session.telemetry.remove_sink(sink)
        assert spec.concrete
        span = sink.spans("concretize")[0]
        assert span["attrs"]["spec"] == "mpileaks"
        assert span["attrs"]["nodes"] >= 4
        names = {r["name"] for r in sink.events()}
        assert "concretize.expand" in names
        assert "concretize.iteration" in names
        assert "concretize.virtual-resolved" in names
        # every pipeline event is parented to the concretize span
        for ev in sink.events():
            if ev["name"].startswith("concretize."):
                assert ev["span"] == span["span"]

    def test_install_spans_counters_and_fetch_stats(self, session):
        sink = session.telemetry.add_sink(MemorySink())
        try:
            spec = session.concretize("libelf")
            session.install(spec)
        finally:
            session.telemetry.remove_sink(sink)
        hub = session.telemetry
        assert hub.counter("install.built") >= 1
        assert (
            hub.counter("fetch.cache_hit") + hub.counter("fetch.cache_miss") >= 1
        )
        phases = {
            r["name"] for r in sink.spans() if r["name"].startswith("install.phase.")
        }
        assert phases == {
            "install.phase.fetch",
            "install.phase.stage",
            "install.phase.build",
            "install.phase.install",
        }
        node = sink.spans("install.node")[0]
        assert node["attrs"]["package"] == "libelf"
        # phase spans nest install.node under scheduler.run under install
        install = sink.spans("install")[0]
        sched = sink.spans("scheduler.run")[0]
        assert sched["parent"] == install["span"]
        assert node["parent"] == sched["span"]
        assert node["attrs"]["worker"]  # per-worker attribution

    def test_timing_json_written_even_with_telemetry_disabled(self, session):
        import json
        import os

        from repro.store.layout import METADATA_DIR

        assert not session.telemetry.enabled
        spec = session.concretize("libelf")
        session.install(spec)
        prefix = session.store.layout.path_for_spec(spec)
        with open(os.path.join(prefix, METADATA_DIR, "timing.json")) as f:
            timing = json.load(f)
        assert timing["package"] == "libelf"
        assert set(timing["phases"]) == {"fetch", "stage", "build", "install"}
        assert all(v >= 0.0 for v in timing["phases"].values())
        assert timing["total_s"] >= sum(timing["phases"].values()) * 0.0
        assert timing["hash"] == spec.dag_hash()
