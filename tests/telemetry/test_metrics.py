"""Metrics export (Prometheus + bench schema) and the compare engine."""

import json

import pytest

from repro.telemetry import MemorySink, Telemetry, bench_report, prometheus_text
from repro.telemetry.compare import (
    compare_reports,
    format_comparison,
    higher_is_better,
    load_report,
    tolerance_for,
)
from repro.telemetry.metrics import BENCH_SCHEMA, flatten_metrics


class TestFlatten:
    def test_nested_dicts_become_dotted_keys(self):
        flat = flatten_metrics({"a": {"b": 1, "c": {"d": 2.5}}, "e": 3})
        assert flat == {"a.b": 1, "a.c.d": 2.5, "e": 3}

    def test_bools_become_ints_lists_become_lengths(self):
        flat = flatten_metrics({"ok": True, "divergences": [], "bad": [1, 2]})
        assert flat == {"ok": 1, "divergences": 0, "bad": 2}

    def test_strings_and_none_dropped(self):
        assert flatten_metrics({"name": "x", "gone": None, "n": 7}) == {"n": 7}


class TestBenchReport:
    def test_schema_shape(self):
        report = bench_report("demo", {"wall_seconds": 1.5}, meta={"nodes": 16})
        assert report["schema"] == BENCH_SCHEMA
        assert report["bench"] == "demo"
        assert report["metrics"] == {"wall_seconds": 1.5}
        assert report["meta"] == {"nodes": 16}
        json.dumps(report)  # must serialize

    def test_metrics_keys_sorted(self):
        report = bench_report("demo", {"z": 1, "a": 2})
        assert list(report["metrics"]) == ["a", "z"]

    def test_all_string_payload_rejected(self):
        with pytest.raises(ValueError):
            bench_report("demo", {"status": "fine"})


class TestPrometheus:
    def _snapshot(self):
        hub = Telemetry()
        hub.add_sink(MemorySink())
        hub.count("buildcache.hit", 3)
        hub.gauge("scheduler.queue_depth", 5)
        hub.observe("install.node", 0.25)
        return hub.snapshot()

    def test_counters_gauges_histograms_render(self):
        text = prometheus_text(self._snapshot())
        assert "# TYPE repro_buildcache_hit_total counter" in text
        assert "repro_buildcache_hit_total 3.0" in text
        assert "# TYPE repro_scheduler_queue_depth gauge" in text
        assert "# TYPE repro_install_node_seconds summary" in text
        assert 'repro_install_node_seconds{quantile="0.50"} 0.25' in text
        assert "repro_install_node_seconds_count 1" in text
        assert "repro_telemetry_drops_total 0.0" in text

    def test_rendering_is_deterministic(self):
        snap = self._snapshot()
        assert prometheus_text(snap) == prometheus_text(snap)

    def test_handles_empty_histogram_fields(self):
        text = prometheus_text(
            {"counters": {}, "gauges": {},
             "histograms": {"h": {"count": 0, "total": 0.0, "min": None,
                                  "max": None, "mean": 0.0, "p50": None,
                                  "p95": None, "p99": None}}}
        )
        assert 'repro_h_seconds{quantile="0.50"} NaN' in text


class TestDirections:
    def test_lower_better_defaults_and_time_keys(self):
        assert not higher_is_better("wall_seconds")
        assert not higher_is_better("cold_seconds")
        assert not higher_is_better("baseline_s")
        assert not higher_is_better("unknown_metric")
        assert not higher_is_better("warm_build_spans")
        assert not higher_is_better("divergences")

    def test_higher_better_keys(self):
        assert higher_is_better("speedup_j4")
        assert higher_is_better("buildcache_hits")
        assert higher_is_better("utilization")

    def test_lower_better_wins_conflicts(self):
        # "speedup...seconds" reads as a time: lower-better wins
        assert not higher_is_better("speedup_seconds")

    def test_tolerance_overrides_first_match_wins(self):
        overrides = (("*_seconds", 0.75), ("*", 0.1))
        assert tolerance_for("wall_seconds", 0.2, overrides) == 0.75
        assert tolerance_for("speedup", 0.2, overrides) == 0.1
        assert tolerance_for("speedup", 0.2, None) == 0.2


class TestCompare:
    def _report(self, metrics, meta=None):
        return {"schema": BENCH_SCHEMA, "bench": "demo",
                "metrics": metrics, "meta": meta or {}}

    def test_25pct_slowdown_is_a_regression(self):
        out = compare_reports(
            self._report({"wall_seconds": 1.0}),
            self._report({"wall_seconds": 1.25}),
        )
        assert not out["ok"]
        assert out["regressions"] == ["wall_seconds"]

    def test_within_tolerance_is_ok(self):
        out = compare_reports(
            self._report({"wall_seconds": 1.0}),
            self._report({"wall_seconds": 1.15}),
        )
        assert out["ok"]

    def test_direction_awareness_speedup_drop_regresses(self):
        out = compare_reports(
            self._report({"speedup_j4": 2.5}),
            self._report({"speedup_j4": 1.5}),
        )
        assert out["regressions"] == ["speedup_j4"]
        # and a speedup *gain* is an improvement, not a regression
        out = compare_reports(
            self._report({"speedup_j4": 2.5}),
            self._report({"speedup_j4": 4.0}),
        )
        assert out["ok"]
        assert out["rows"][0]["status"] == "improved"

    def test_appearance_from_zero_baseline_regresses(self):
        # 0 warm build spans becoming 1 is a broken cache — no relative
        # delta exists, it must still trip the gate
        out = compare_reports(
            self._report({"warm_build_spans": 0}),
            self._report({"warm_build_spans": 1}),
        )
        assert out["regressions"] == ["warm_build_spans"]

    def test_added_removed_keys_not_fatal(self):
        out = compare_reports(
            self._report({"old_key": 1.0}),
            self._report({"new_key": 2.0}),
        )
        assert out["ok"]
        statuses = {r["key"]: r["status"] for r in out["rows"]}
        assert statuses == {"old_key": "removed", "new_key": "added"}

    def test_meta_changes_flagged_not_fatal(self):
        out = compare_reports(
            self._report({"x": 1.0}, meta={"nodes": 16}),
            self._report({"x": 1.0}, meta={"nodes": 32}),
        )
        assert out["ok"]
        assert any(r["status"] == "config-changed" for r in out["rows"])

    def test_format_lists_regressions(self):
        out = compare_reports(
            self._report({"wall_seconds": 1.0}),
            self._report({"wall_seconds": 2.0}),
        )
        text = format_comparison(out)
        assert "1 REGRESSION" in text
        assert "wall_seconds" in text
        assert "+100.0%" in text


class TestLoadReport:
    def test_v1_schema_passthrough(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps(bench_report("demo", {"x": 1.0})))
        loaded = load_report(str(path))
        assert loaded["schema"] == BENCH_SCHEMA
        assert loaded["bench"] == "demo"
        assert loaded["metrics"] == {"x": 1.0}

    def test_legacy_nested_file_flattens(self, tmp_path):
        path = tmp_path / "BENCH_old.json"
        path.write_text(json.dumps(
            {"runs": {"4": {"wall_seconds": 0.7}}, "speedup_j4": 2.5,
             "divergences": [], "note": "ignored"}
        ))
        loaded = load_report(str(path))
        assert loaded["schema"] == "legacy"
        assert loaded["bench"] == "old"
        assert loaded["metrics"] == {
            "runs.4.wall_seconds": 0.7, "speedup_j4": 2.5, "divergences": 0,
        }

    def test_legacy_and_v1_comparable(self, tmp_path):
        old = tmp_path / "BENCH_b.json"
        old.write_text(json.dumps({"wall_seconds": 1.0}))
        new = tmp_path / "BENCH_b2.json"
        new.write_text(json.dumps(bench_report("b", {"wall_seconds": 1.1})))
        out = compare_reports(load_report(str(old)), load_report(str(new)))
        assert out["ok"]
