"""The trace analysis engine: reconstruction, critical path, rollups.

Two layers of coverage: synthetic hand-built record streams with known
geometry (so the critical-path and concurrency math is checked against
arithmetic, not against itself), and a real ``-j 4`` install of a
16-node diamond DAG whose reconstructed trace must be single-rooted,
orphan-free, and whose critical path must agree with the measured
install wall clock.
"""

import io
import json
import os
import time

import pytest

from repro.telemetry import MemorySink, TraceAnalysis
from repro.telemetry.sinks import JSONLSink


def _span(span_id, name, start, end, parent=None, trace=1, attrs=None):
    """A start/end record pair with explicit geometry."""
    base = {
        "name": name,
        "span": span_id,
        "parent": parent,
        "trace": trace,
        "attrs": attrs or {},
    }
    return [
        dict(base, event="span-start", ts=start),
        dict(base, event="span-end", ts=end, duration_s=end - start),
    ]


class TestReconstruction:
    def test_rebuilds_the_tree(self):
        records = (
            _span(1, "root", 0.0, 10.0)
            + _span(2, "left", 0.0, 4.0, parent=1)
            + _span(3, "right", 5.0, 9.0, parent=1)
        )
        a = TraceAnalysis(records)
        assert len(a.roots) == 1
        root = a.roots[0]
        assert root.name == "root"
        assert [c.name for c in root.children] == ["left", "right"]
        assert a.orphans == []

    def test_children_sorted_by_start_time(self):
        records = (
            _span(1, "root", 0.0, 10.0)
            + _span(3, "late", 5.0, 6.0, parent=1)
            + _span(2, "early", 1.0, 2.0, parent=1)
        )
        a = TraceAnalysis(records)
        assert [c.name for c in a.roots[0].children] == ["early", "late"]

    def test_orphans_are_surfaced_not_lost(self):
        records = _span(1, "root", 0.0, 1.0) + _span(
            9, "lost", 0.2, 0.8, parent=777
        )
        a = TraceAnalysis(records)
        assert [o.name for o in a.orphans] == ["lost"]
        # traces() still accounts for it, so single-rootedness checks see it
        assert len(a.traces()[1]) == 2

    def test_traces_grouped_by_trace_id(self):
        records = _span(1, "a", 0.0, 1.0, trace=1) + _span(
            2, "b", 2.0, 3.0, trace=2
        )
        by_trace = TraceAnalysis(records).traces()
        assert {t: [r.name for r in roots] for t, roots in by_trace.items()} == {
            1: ["a"], 2: ["b"],
        }

    def test_unfinished_span_tolerated(self):
        records = _span(1, "root", 0.0, 1.0)
        records.append(
            {"event": "span-start", "name": "hung", "span": 2, "parent": 1,
             "trace": 1, "ts": 0.5, "attrs": {}}
        )
        a = TraceAnalysis(records)
        hung = a.spans[2]
        assert not hung.finished
        assert hung.self_time_s == 0.0
        assert a.critical_path()  # never trips over it

    def test_from_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w") as f:
            for record in _span(1, "op", 0.0, 1.0):
                f.write(json.dumps(record) + "\n")
        a = TraceAnalysis.from_jsonl(path)
        assert a.roots[0].name == "op"


class TestCriticalPath:
    def test_last_finishing_child_chain(self):
        # root waits on right (ends last); before right started, on left
        records = (
            _span(1, "root", 0.0, 10.0)
            + _span(2, "left", 0.0, 4.0, parent=1)
            + _span(3, "right", 5.0, 10.0, parent=1)
            + _span(4, "idle", 0.0, 1.0, parent=1)  # dominated by left
        )
        a = TraceAnalysis(records)
        path = a.critical_path()
        assert [s.name for s in path] == ["root", "left", "right"]

    def test_recurses_into_chain_elements(self):
        records = (
            _span(1, "root", 0.0, 10.0)
            + _span(2, "child", 1.0, 9.0, parent=1)
            + _span(3, "grand", 2.0, 8.0, parent=2)
        )
        path = TraceAnalysis(records).critical_path()
        assert [s.name for s in path] == ["root", "child", "grand"]

    def test_critical_path_seconds_is_self_time_along_path(self):
        records = (
            _span(1, "root", 0.0, 10.0)
            + _span(2, "left", 0.0, 4.0, parent=1)
            + _span(3, "right", 5.0, 10.0, parent=1)
        )
        a = TraceAnalysis(records)
        # left (4) + right (5) + root's uncovered second = 10 total
        assert TraceAnalysis(records).critical_path_seconds() == pytest.approx(
            10.0
        )
        assert a.critical_path_seconds() <= a.trace_root().duration_s + 1e-9

    def test_root_selection_prefers_named_then_largest(self):
        records = (
            _span(1, "concretize", 0.0, 1.0, trace=1)
            + _span(2, "install", 2.0, 9.0, trace=2)
            + _span(3, "node", 2.0, 8.0, parent=2, trace=2)
        )
        a = TraceAnalysis(records)
        assert a.trace_root("concretize").name == "concretize"
        assert a.trace_root().name == "install"  # most spans wins

    def test_render_tree_marks_the_critical_path(self):
        # off-path is dominated by on-path-a inside the same window, so
        # it never bounds the root's wall clock
        records = (
            _span(1, "root", 0.0, 10.0)
            + _span(2, "off-path", 0.0, 3.0, parent=1)
            + _span(3, "on-path-a", 0.0, 4.0, parent=1)
            + _span(4, "on-path-b", 5.0, 10.0, parent=1)
        )
        out = io.StringIO()
        TraceAnalysis(records).render_tree(out)
        lines = {line.strip("* ").split()[0]: line
                 for line in out.getvalue().splitlines()}
        assert lines["root"].startswith("*")
        assert lines["on-path-a"].startswith("*")
        assert lines["on-path-b"].startswith("*")
        assert not lines["off-path"].startswith("*")


class TestRollupsAndConcurrency:
    def test_self_time_rollup(self):
        records = (
            _span(1, "install", 0.0, 10.0)
            + _span(2, "phase", 1.0, 5.0, parent=1)
            + _span(3, "phase", 6.0, 9.0, parent=1)
        )
        rollup = TraceAnalysis(records).self_time_rollup()
        assert rollup["phase"]["count"] == 2
        assert rollup["phase"]["total_s"] == pytest.approx(7.0)
        assert rollup["install"]["self_s"] == pytest.approx(3.0)
        assert rollup["phase"]["min_s"] == pytest.approx(3.0)
        assert rollup["phase"]["max_s"] == pytest.approx(4.0)

    def test_concurrency_from_overlapping_intervals(self):
        records = (
            _span(1, "install.node", 0.0, 4.0)
            + _span(2, "install.node", 2.0, 6.0)
            + _span(3, "install.node", 8.0, 10.0)
        )
        conc = TraceAnalysis(records).concurrency()
        assert conc["spans"] == 3
        assert conc["max_concurrency"] == 2
        assert conc["busy_seconds"] == pytest.approx(10.0)
        assert conc["window_seconds"] == pytest.approx(10.0)
        # integral: 2s@1 + 2s@2 + 2s@1 + 2s@0 + 2s@1 over 10s = 1.0 avg
        assert conc["avg_concurrency"] == pytest.approx(1.0)
        assert conc["utilization"] == pytest.approx(0.5)

    def test_concurrency_empty_stream(self):
        conc = TraceAnalysis([]).concurrency()
        assert conc["spans"] == 0
        assert conc["max_concurrency"] == 0

    def test_cache_effectiveness_attribution(self):
        records = (
            _span(1, "install.node", 0.0, 2.0)      # built: 2s
            + _span(2, "install.node", 2.0, 4.0)    # built: 2s
            + _span(3, "install.cached", 4.0, 4.5)  # cached: 0.5s
        )
        records.append(
            {"event": "event", "name": "telemetry.summary", "span": None,
             "trace": None, "ts": 5.0,
             "attrs": {"counters": {"buildcache.hit": 1, "buildcache.miss": 2,
                                    "concretize.cache.hit": 3,
                                    "concretize.cache.miss": 1}}}
        )
        caches = TraceAnalysis(records).cache_effectiveness()
        bc = caches["buildcache"]
        assert bc["hits"] == 1 and bc["misses"] == 2
        assert bc["hit_ratio"] == pytest.approx(1 / 3)
        # one cached node saved (mean build 2.0 - its own 0.5) = 1.5s
        assert bc["time_saved_s"] == pytest.approx(1.5)
        cc = caches["concretize_cache"]
        assert cc["hit_ratio"] == pytest.approx(0.75)


class TestDiamondInstallTrace:
    """The ISSUE's acceptance test: a -j 4 install over a 16-node
    diamond DAG reconstructs to one single-rooted orphan-free trace
    whose critical path agrees with the install's wall clock."""

    SLEEP = 0.02

    def _diamond_repo(self):
        from repro.directives import depends_on, version
        from repro.directives.directives import DirectiveMeta
        from repro.fetch.mockweb import mock_checksum
        from repro.package.package import Package
        from repro.repo.repository import Repository
        from repro.util.naming import mod_to_class

        sleep = self.SLEEP

        def sleepy_install(self, spec, prefix):
            time.sleep(sleep)
            os.makedirs(os.path.join(prefix, "lib"), exist_ok=True)
            lib = os.path.join(prefix, "lib", "lib%s.so.json" % spec.name)
            with open(lib, "w") as f:
                json.dump({"type": "library", "needed": [], "rpaths": []}, f)

        repo = Repository(namespace="diamond")
        layers = {
            0: ["leaf-%d" % i for i in range(6)],
            1: ["mid-%d" % i for i in range(5)],
            2: ["upper-%d" % i for i in range(4)],
            3: ["diamond-root"],
        }

        def deps_for(level, i):
            if level == 0:
                return []
            below = layers[level - 1]
            if level < 3:
                return [below[i % len(below)], below[(i + 1) % len(below)]]
            return list(below)

        for level, names in sorted(layers.items()):
            for i, name in enumerate(names):
                ns = {
                    "url": "https://mock.example.org/%s/%s-1.0.tar.gz"
                           % (name, name),
                    "__doc__": "diamond trace node %s" % name,
                    "install": sleepy_install,
                    "build_units": 1,
                    "unit_cost": 0.001,
                }
                version("1.0", mock_checksum(name, "1.0"))
                for dep in deps_for(level, i):
                    depends_on(dep)
                repo.add_class(
                    name, DirectiveMeta(mod_to_class(name), (Package,), ns)
                )
        return repo

    def test_j4_diamond_trace_is_coherent(self, tmp_path):
        from repro.session import Session

        session = Session.create(
            str(tmp_path / "diamond"), packages=self._diamond_repo()
        )
        session.seed_web()
        sink = session.telemetry.add_sink(MemorySink())
        _spec, result = session.install("diamond-root", jobs=4)
        session.telemetry.emit_summary()
        session.telemetry.remove_sink(sink)
        assert len(result.built) == 16

        a = TraceAnalysis(sink.records)

        # single-rooted: the install trace has exactly one root and
        # every span of the stream found its parent
        assert a.orphans == []
        install_root = a.trace_root("install")
        assert install_root is not None
        assert a.traces()[install_root.trace_id] == [install_root]

        # all 16 node builds landed inside that one tree
        nodes = [s for s in install_root.walk() if s.name == "install.node"]
        assert len(nodes) == 16

        # the pool genuinely ran in parallel
        conc = a.concurrency()
        assert conc["max_concurrency"] >= 2

        # critical path agrees with the measured wall clock: it can
        # never exceed it, and on a diamond DAG it must dominate it
        # (the scheduler can't beat the dependency chain)
        path = a.critical_path(install_root)
        cp_seconds = a.critical_path_seconds(path=path)
        wall = result.wall_seconds
        assert cp_seconds <= install_root.duration_s + 1e-6
        assert install_root.duration_s == pytest.approx(wall, rel=0.35)
        assert cp_seconds >= 0.5 * wall
        # the chain passes through every DAG level
        path_names = [s.attrs.get("package") for s in path
                      if s.name == "install.node"]
        assert len(path_names) >= 4

    def test_jsonl_capture_equivalent_to_memory(self, tmp_path):
        """The same analysis works from a --telemetry-log style file."""
        from repro.session import Session

        session = Session.create(str(tmp_path / "u"))
        log = str(tmp_path / "cap.jsonl")
        with JSONLSink(log, flush_on_emit=False) as sink:
            session.telemetry.add_sink(sink)
            session.install("libdwarf", jobs=2)
            session.telemetry.emit_summary()
            session.telemetry.remove_sink(sink)
        a = TraceAnalysis.from_jsonl(log)
        assert a.orphans == []
        assert a.trace_root("install") is not None
        assert a.summary is not None
        assert a.summary["counters"]["install.built"] >= 2
