"""Property-based tests of the policy/preference machinery.

Random site preferences (provider orders, preferred versions, variant
defaults) must always be *honored when feasible* and never produce an
invalid concretization.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compilers.registry import Compiler, CompilerRegistry
from repro.config.config import Config
from repro.core.concretizer import Concretizer
from repro.core.policies import DefaultPolicy
from repro.directives import depends_on, provides, variant, version
from repro.package.package import Package
from repro.repo.providers import ProviderIndex
from repro.repo.repository import Repository
from repro.spec.spec import Spec
from repro.version import Version


@pytest.fixture(scope="module")
def fixed_universe():
    repo = Repository(namespace="policy-prop")

    @repo.register("iface-a")
    class IfaceA(Package):
        version("1.0", "x")
        version("2.0", "y")
        provides("papi9")

    @repo.register("iface-b")
    class IfaceB(Package):
        version("1.5", "x")
        provides("papi9")

    @repo.register("leaf")
    class Leaf(Package):
        version("1.0", "a")
        version("1.1", "b")
        version("2.0", "c")
        variant("shared", default=True, description="s")
        variant("debug", default=False, description="d")

    @repo.register("app")
    class App(Package):
        version("3.0", "a")
        version("3.1", "b")
        depends_on("leaf")
        depends_on("papi9")

    registry = CompilerRegistry(
        [Compiler("gcc", "4.9.2", cc="/t/gcc"), Compiler("intel", "15.0.1", cc="/t/icc")]
    )
    index = ProviderIndex.from_repo(repo)
    return repo, index, registry


provider_orders = st.permutations(["iface-a", "iface-b"])
version_prefs = st.sampled_from([[], ["1.0"], ["1.1"], ["2.0"], ["1.1", "2.0"]])
variant_prefs = st.fixed_dictionaries(
    {}, optional={"shared": st.booleans(), "debug": st.booleans()}
)
compiler_orders = st.sampled_from([[], ["gcc"], ["intel"], ["intel", "gcc"]])

common = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _concretizer(fixed_universe, prefs):
    repo, index, registry = fixed_universe
    config = Config()
    config.update("site", {"preferences": {"architecture": "linux-x86_64"}})
    config.update("user", {"preferences": prefs})
    return Concretizer(repo, index, registry, config, DefaultPolicy(config))


@given(order=provider_orders)
@common
def test_provider_order_always_honored(fixed_universe, order):
    concretizer = _concretizer(fixed_universe, {"providers": {"papi9": list(order)}})
    concrete = concretizer.concretize(Spec("app"))
    assert concrete["papi9"].name == order[0]


@given(prefs=version_prefs)
@common
def test_version_preferences_honored(fixed_universe, prefs):
    concretizer = _concretizer(
        fixed_universe, {"packages": {"leaf": {"version": prefs}}}
    )
    concrete = concretizer.concretize(Spec("app"))
    chosen = concrete["leaf"].version
    if prefs:
        assert chosen == Version(prefs[0])
    else:
        assert chosen == Version("2.0")  # newest by default


@given(prefs=version_prefs)
@common
def test_explicit_constraint_beats_preference(fixed_universe, prefs):
    concretizer = _concretizer(
        fixed_universe, {"packages": {"leaf": {"version": prefs}}}
    )
    concrete = concretizer.concretize(Spec("app ^leaf@1.0"))
    assert concrete["leaf"].version == Version("1.0")


@given(vprefs=variant_prefs)
@common
def test_variant_preferences_honored(fixed_universe, vprefs):
    concretizer = _concretizer(
        fixed_universe, {"packages": {"leaf": {"variants": dict(vprefs)}}}
    )
    concrete = concretizer.concretize(Spec("app"))
    leaf = concrete["leaf"]
    assert leaf.variants["shared"] == vprefs.get("shared", True)
    assert leaf.variants["debug"] == vprefs.get("debug", False)


@given(order=compiler_orders)
@common
def test_compiler_order_honored(fixed_universe, order):
    concretizer = _concretizer(fixed_universe, {"compiler_order": list(order)})
    concrete = concretizer.concretize(Spec("app"))
    expected = order[0] if order else "gcc"
    assert concrete.compiler.name == expected
    # whole DAG inherits
    assert all(n.compiler.name == expected for n in concrete.traverse())


@given(order=provider_orders, prefs=version_prefs, vprefs=variant_prefs)
@common
def test_any_preference_combination_is_valid(fixed_universe, order, prefs, vprefs):
    concretizer = _concretizer(
        fixed_universe,
        {
            "providers": {"papi9": list(order)},
            "packages": {"leaf": {"version": prefs, "variants": dict(vprefs)}},
        },
    )
    concrete = concretizer.concretize(Spec("app"))
    assert concrete.concrete
    assert concrete.satisfies(Spec("app"), strict=True)
