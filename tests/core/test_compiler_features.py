"""Compiler-feature dependencies (§4.5 future work, implemented)."""

import pytest

from repro.compilers.features import features_for
from repro.compilers.registry import Compiler, CompilerFeatureError
from repro.core.concretizer import ConcretizationError
from repro.directives import depends_on, requires_compiler, variant, version
from repro.package.package import Package
from repro.spec.spec import Spec
from repro.version import Version


class TestFeatureTable:
    def test_gcc_generations(self):
        assert features_for("gcc", "4.4.7")["cxx"] == Version("03")
        assert features_for("gcc", "4.7.3")["cxx"] == Version("11")
        assert features_for("gcc", "4.9.2")["cxx"] == Version("14")
        assert features_for("gcc", "4.9.2")["openmp"] == Version("4.0")

    def test_clang_has_no_openmp(self):
        features = features_for("clang", "3.5.0")
        assert features["cxx"] == Version("14")
        assert "openmp" not in features

    def test_unknown_toolchain_empty(self):
        assert features_for("mycc", "1.0") == {}


class TestCompilerSupports:
    def test_supports_levels(self):
        gcc = Compiler("gcc", "4.7.3")
        assert gcc.supports("cxx@11")
        assert gcc.supports("cxx@:11")
        assert not gcc.supports("cxx@14:")
        assert gcc.supports("openmp")
        assert not gcc.supports("cuda")

    def test_explicit_features_override(self):
        custom = Compiler("gcc", "4.7.3", features={"cxx": "17"})
        assert custom.supports("cxx@17")
        assert not custom.supports("openmp")


@pytest.fixture
def feature_session(session):
    repo = session.repo.repos[0]
    from repro.fetch.mockweb import mock_checksum

    class Needs14(Package):
        """Requires C++14 unconditionally."""

        url = "https://mock.example.org/needs14/needs14-1.0.tar.gz"
        version("1.0", mock_checksum("needs14", "1.0"))
        requires_compiler("cxx@14:")

    class NeedsOmp(Package):
        """Requires OpenMP 4 only with +openmp."""

        url = "https://mock.example.org/needsomp/needsomp-1.0.tar.gz"
        version("1.0", mock_checksum("needsomp", "1.0"))
        variant("openmp", default=False, description="threaded build")
        requires_compiler("openmp@4:", when="+openmp")

    repo.add_class("needs14", Needs14)
    repo.add_class("needsomp", NeedsOmp)
    session.seed_web()
    return session


class TestConcretization:
    def test_default_compiler_satisfies(self, feature_session):
        c = feature_session.concretize(Spec("needs14"))
        assert str(c.compiler) == "gcc@4.9.2"  # supports cxx14

    def test_constraint_narrows_to_supporting_version(self, feature_session):
        # %gcc unqualified: must land on 4.9.2, never 4.7.3
        c = feature_session.concretize(Spec("needs14%gcc"))
        assert str(c.compiler.version) == "4.9.2"

    def test_explicit_unsupporting_compiler_rejected(self, feature_session):
        with pytest.raises((CompilerFeatureError, ConcretizationError)):
            feature_session.concretize(Spec("needs14%gcc@4.7.3"))
        with pytest.raises((CompilerFeatureError, ConcretizationError)):
            feature_session.concretize(Spec("needs14%xl"))

    def test_conditional_requirement_inactive(self, feature_session):
        # without +openmp, clang is fine
        c = feature_session.concretize(Spec("needsomp%clang"))
        assert c.compiler.name == "clang"

    def test_conditional_requirement_active(self, feature_session):
        # with +openmp, clang (no OpenMP in 3.5) must be rejected
        with pytest.raises((CompilerFeatureError, ConcretizationError)):
            feature_session.concretize(Spec("needsomp+openmp%clang"))
        c = feature_session.concretize(Spec("needsomp+openmp%gcc"))
        assert str(c.compiler.version) == "4.9.2"

    def test_defaulted_compiler_rechosen_on_late_requirement(self, feature_session):
        """compiler_order prefers clang; +openmp activates a requirement
        clang cannot meet; the non-explicit choice is silently re-made."""
        feature_session.config.update(
            "user", {"preferences": {"compiler_order": ["clang"]}}
        )
        plain = feature_session.concretize(Spec("needsomp"))
        assert plain.compiler.name == "clang"
        threaded = feature_session.concretize(Spec("needsomp+openmp"))
        assert threaded.compiler.name != "clang"
        assert threaded.compiler.name in ("gcc", "intel")

    def test_inheritance_with_requirements(self, feature_session):
        """A dependency with stricter needs than its parent's compiler
        picks its own suitable compiler rather than failing."""
        repo = feature_session.repo.repos[0]
        from repro.fetch.mockweb import mock_checksum

        class OldApp(Package):
            url = "https://mock.example.org/oldapp/oldapp-1.0.tar.gz"
            version("1.0", mock_checksum("oldapp", "1.0"))
            depends_on("needs14")

        repo.add_class("oldapp", OldApp)
        feature_session.seed_web()
        c = feature_session.concretize(Spec("oldapp%gcc@4.7.3"))
        assert str(c.compiler) == "gcc@4.7.3"          # parent keeps its pin
        assert str(c["needs14"].compiler) == "gcc@4.9.2"  # dep re-chooses
