"""The optimizing solver concretizer: search, learning, optimality.

The contract under test (src/repro/core/solver.py): the first solution
returned is the best-scoring consistent one; *optimal* greedy successes
reproduce byte-identically (the zero-deviation assignment wins every
tie), while suboptimal ones are strictly improved; greedy dead ends
across *every* choice axis (provider, version, variant, compiler) are
rescued; failures learn nogoods whose subsumption skips (backjumps)
prune whole regions without evaluation.
"""

import itertools

import pytest

from repro.compilers.registry import Compiler, CompilerRegistry
from repro.config.config import Config
from repro.core.backtracking import BacktrackingConcretizer
from repro.core.concretizer import ConcretizationError, Concretizer
from repro.core.solver import (
    W_CDEP,
    W_PROVIDER,
    W_REUSE,
    W_STEP,
    SolverConcretizer,
    SolverLimitError,
)
from repro.repo.providers import ProviderIndex
from repro.repo.repository import Repository
from repro.spec.errors import SpecError
from repro.spec.spec import Spec
from repro.testing.generators import (
    GEN_COMPILERS,
    RepoGenerator,
    _make_package,
    greedy_dead_end_corpus,
)

#: two-toolchain registry keeps exhaustive enumeration spaces small
SMALL_COMPILERS = ("gcc@4.9.2", "intel@15.0.1")


def _stack(repo, extra_config=None, compilers=SMALL_COMPILERS, **solver_kwargs):
    index = ProviderIndex.from_repo(repo)
    registry = CompilerRegistry([Compiler(*cs.split("@")) for cs in compilers])
    config = Config()
    config.update(
        "defaults",
        {"preferences": {"compiler_order": [GEN_COMPILERS[0]],
                         "architecture": "linux-x86_64"}},
    )
    if extra_config:
        config.update("user", extra_config)
    args = (repo, index, registry, config)
    return (
        Concretizer(*args),
        BacktrackingConcretizer(*args),
        SolverConcretizer(*args, **solver_kwargs),
    )


def _enumerate_consistent(solver, request):
    """Every distinct consistent DAG reachable in the solver's deviation
    space, by brute force over the full assignment product: the ground
    truth the branch-and-bound search must match."""
    abstract = Spec(request)
    variables = solver._choice_variables(abstract)
    space = 1
    for v in variables:
        space *= len(v.domain)
    assert space <= 6000, "enumeration space too large to be exhaustive"
    solutions = {}
    for combo in itertools.product(*[range(len(v.domain)) for v in variables]):
        assignment = {i: idx for i, idx in enumerate(combo) if idx}
        try:
            candidate = solver._materialize(abstract, variables, assignment)
            concrete = solver._fixed_point(candidate)
        except (ConcretizationError, SpecError):
            continue
        solutions[concrete.dag_hash()] = solver.score(concrete)
    return solutions


class TestGreedyIdentity:
    def test_hash_identical_on_builtin_corpus(self, session):
        """Whenever greedy succeeds, the solver's provably-best answer
        is greedy's answer — preferences dominate the objective, so the
        zero-deviation assignment wins every tie."""
        for request in ("mpileaks", "dyninst", "libelf@0.8.11"):
            greedy = session.concretize(request)
            solved = session.concretize(request, concretizer="solver",
                                        use_cache=False)
            assert solved.dag_hash() == greedy.dag_hash(), request

    def test_single_attempt_and_proof_when_greedy_works(self):
        repo = RepoGenerator(21, count=12, virtuals=2).build()
        greedy, _, solver = _stack(repo)
        for name in repo.all_package_names():
            g = greedy.concretize(name)
            s = solver.concretize(name)
            assert s.dag_hash() == g.dag_hash(), name
            assert solver.last_attempts == 1, name
            assert solver.last_proven_optimal, name
            assert solver.last_deviations == {}, name


class TestRescues:
    @pytest.fixture(scope="class")
    def corpus(self):
        return greedy_dead_end_corpus()

    def test_rescues_every_corpus_scenario(self, corpus):
        for scenario in corpus:
            greedy, _, solver = _stack(scenario.repo, scenario.config,
                                       compilers=GEN_COMPILERS)
            with pytest.raises(ConcretizationError):
                greedy.concretize(scenario.request)
            concrete = solver.concretize(scenario.request)
            assert concrete.concrete, scenario.label
            assert solver.last_proven_optimal, scenario.label
            assert solver.last_nogoods >= 1, scenario.label

    def test_provider_rescue_matches_backtracking(self, corpus):
        """On provider-only dead ends the two searches must agree: the
        solver's provider weights mirror the policy order backtracking
        enumerates in."""
        for scenario in corpus:
            if scenario.rescuer != "backtracking":
                continue
            _, bt, solver = _stack(scenario.repo, scenario.config,
                                   compilers=GEN_COMPILERS)
            assert (solver.concretize(scenario.request).dag_hash()
                    == bt.concretize(scenario.request).dag_hash()), \
                scenario.label

    def test_backjumps_skip_the_provider_subspace(self):
        """A root-compiler conflict makes every provider deviation
        futile; the learned nogood must prune them *without* greedy
        evaluation — popped as backjumps, not attempts."""
        repo = Repository(namespace="solver.backjump")
        for i in range(3):
            name = "vimp-%d" % i
            repo.add_class(name, _make_package(name, ["1.0"], [],
                                               provided="vint"))
        repo.add_class("croot", _make_package(
            "croot", ["1.0"], [("vint", "", None)],
            conflict_decls=["%gcc"]))
        _, _, solver = _stack(repo)
        concrete = solver.concretize("croot")
        assert str(concrete.compiler) == "intel@15.0.1"
        assert solver.last_backjumps >= 2  # both provider alternatives
        assert solver.last_attempts <= 3
        assert solver.last_proven_optimal


class TestOptimality:
    def test_exhaustive_enumeration_on_corpus(self):
        """Ground truth: over the *entire* deviation space, no
        consistent DAG scores below the solver's answer, and the
        solver's answer is one of the enumerated DAGs."""
        for scenario in greedy_dead_end_corpus():
            _, _, solver = _stack(scenario.repo, scenario.config)
            concrete = solver.concretize(scenario.request)
            score = solver.score(concrete)
            assert solver.last_score == score, scenario.label
            solutions = _enumerate_consistent(solver, scenario.request)
            assert solutions, scenario.label
            assert concrete.dag_hash() in solutions, scenario.label
            best = min(solutions.values())
            assert score == best, (
                "%s: solver scored %d but %d is achievable"
                % (scenario.label, score, best)
            )

    def test_exhaustive_enumeration_on_generated_universe(self):
        """The same ground-truth property over a small conflict-rich
        *generated* universe — the ISSUE's acceptance bar."""
        repo = RepoGenerator(13, count=4, virtuals=1,
                             conflict_density=1.0).build()
        _, _, solver = _stack(repo)
        checked = 0
        for name in repo.all_package_names():
            variables = solver._choice_variables(Spec(name))
            space = 1
            for v in variables:
                space *= len(v.domain)
            if space > 6000:
                continue
            try:
                concrete = solver.concretize(name)
            except ConcretizationError:
                # then nothing in the space may be consistent
                assert not _enumerate_consistent(solver, name), name
                continue
            if not solver.last_proven_optimal:
                continue
            solutions = _enumerate_consistent(solver, name)
            assert solver.score(concrete) == min(solutions.values()), name
            checked += 1
        assert checked >= 5  # the property actually ran

    def test_solver_improves_past_a_poisoned_provider(self):
        """Greedy's provider myopia made concrete: the preferred
        provider pins a dependency to its non-newest version (W_STEP),
        which a provider deviation (W_PROVIDER) avoids.  Greedy
        *succeeds* — and the solver must still return the strictly
        better DAG, proven optimal by exhaustive enumeration."""
        repo = Repository(namespace="solver.improve")
        repo.add_class("anchor", _make_package("anchor", ["2.0", "1.0"], []))
        repo.add_class("vpick-aaa", _make_package(
            "vpick-aaa", ["1.0"], [("anchor", "@1.0", None)],
            provided="vgood"))
        repo.add_class("vpick-zzz", _make_package(
            "vpick-zzz", ["1.0"], [], provided="vgood"))
        repo.add_class("top", _make_package(
            "top", ["1.0"], [("vgood", "", None)]))
        greedy, _, solver = _stack(repo)
        g = greedy.concretize("top")
        s = solver.concretize("top")
        assert s.dag_hash() != g.dag_hash()
        assert solver.last_score < solver.score(g)
        assert solver.last_deviations == {("provider", "vgood"): 1}
        assert solver.last_proven_optimal
        solutions = _enumerate_consistent(solver, "top")
        assert solver.last_score == min(solutions.values())
        # the greedy DAG is in the space too — consistent, just worse
        assert g.dag_hash() in solutions

    def test_weight_hierarchy_protects_greedy_identity(self):
        """Every preference weight must dominate the largest possible
        reuse delta, or reuse could override an explicit preference and
        break greedy hash-identity."""
        max_reuse_delta = 1000 * W_REUSE  # far beyond any test DAG
        assert W_PROVIDER > max_reuse_delta
        assert W_CDEP > max_reuse_delta
        assert W_STEP > max_reuse_delta
        # and the provider subspace (backtracking's space) is explored
        # before any single non-provider deviation, for up to ten
        # ranked providers per virtual
        assert 9 * W_PROVIDER < W_CDEP < W_STEP


class TestReuse:
    def test_installed_specs_break_ties(self, session):
        """With deviations tied at zero, the reuse term steers the
        solver toward installed nodes — but never against preferences:
        the greedy DAG is fully installed, so its score drops and it
        still wins."""
        spec, _ = session.install("mpileaks")
        solver = SolverConcretizer(
            session.repo, session.provider_index, session.compilers,
            session.config, session.policy, database=session.db,
        )
        concrete = solver.concretize("mpileaks")
        assert concrete.dag_hash() == spec.dag_hash()
        installed_nodes = sum(1 for _ in spec.traverse())
        fresh = SolverConcretizer(
            session.repo, session.provider_index, session.compilers,
            session.config, session.policy,
        )
        fresh_concrete = fresh.concretize("mpileaks")
        assert fresh_concrete.dag_hash() == concrete.dag_hash()
        # same DAG, but the reuse term credits every installed node
        assert fresh.last_score - solver.last_score == \
            installed_nodes * W_REUSE


class TestLimitsAndErrors:
    def test_attempt_budget_raises_typed_limit_error(self):
        scenario = greedy_dead_end_corpus()[0]  # hwloc: needs 2 attempts
        _, _, solver = _stack(scenario.repo, scenario.config,
                              max_attempts=1)
        with pytest.raises(SolverLimitError):
            solver.concretize(scenario.request)

    def test_impossible_request_fails_typed_after_search(self):
        repo = Repository(namespace="solver.impossible")
        repo.add_class("pin", _make_package("pin", ["9"], []))
        repo.add_class("broken", _make_package(
            "broken", ["1.0"], [("pin", "@1:2", None)]))
        _, _, solver = _stack(repo)
        with pytest.raises(ConcretizationError):
            solver.concretize("broken")

    def test_anonymous_spec_rejected(self):
        repo = RepoGenerator(3, count=4, virtuals=0).build()
        _, _, solver = _stack(repo)
        with pytest.raises(ConcretizationError):
            solver.concretize(Spec("@2:"))


class TestTelemetry:
    def test_counters_and_span(self):
        from repro.telemetry import Telemetry
        from repro.telemetry.sinks import MemorySink

        scenario = greedy_dead_end_corpus()[0]
        index = ProviderIndex.from_repo(scenario.repo)
        registry = CompilerRegistry(
            [Compiler(*cs.split("@")) for cs in GEN_COMPILERS])
        config = Config()
        config.update(
            "defaults",
            {"preferences": {"compiler_order": [GEN_COMPILERS[0]],
                             "architecture": "linux-x86_64"}})
        config.update("user", scenario.config)
        telemetry = Telemetry()
        sink = telemetry.add_sink(MemorySink())
        solver = SolverConcretizer(scenario.repo, index, registry, config,
                                   telemetry=telemetry)
        solver.concretize(scenario.request)
        assert telemetry.counters.get("solver.attempts") == \
            solver.last_attempts
        assert telemetry.counters.get("solver.nogoods") == solver.last_nogoods
        spans = sink.spans("solver.search")
        assert spans
        attrs = spans[-1]["attrs"]
        assert attrs["attempts"] == solver.last_attempts
        assert attrs["proven_optimal"] is True
