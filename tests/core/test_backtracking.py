"""Backtracking concretization (§4.5 future work, implemented)."""

import pytest

from repro.core.backtracking import BacktrackingConcretizer, BacktrackLimitError
from repro.core.concretizer import ConcretizationError
from repro.directives import depends_on, provides, version
from repro.package.package import Package
from repro.spec.spec import Spec


@pytest.fixture
def hwloc_session(bare_repo_session):
    """The paper's §4.5 hwloc example: the preferred MPI conflicts."""
    repo = bare_repo_session.repo.repos[0]

    @repo.register("hwloc")
    class Hwloc(Package):
        version("1.8", "x")
        version("1.9", "y")

    @repo.register("ampi")
    class Ampi(Package):
        version("1.0", "x")
        provides("mpi2")
        depends_on("hwloc@1.8")  # strict: conflicts with P's hwloc@1.9

    @repo.register("bmpi")
    class Bmpi(Package):
        version("1.0", "x")
        provides("mpi2")
        depends_on("hwloc@1.9")

    @repo.register("p")
    class P(Package):
        version("1.0", "x")
        depends_on("hwloc@1.9")
        depends_on("mpi2")

    bare_repo_session.config.update(
        "user", {"preferences": {"providers": {"mpi2": ["ampi", "bmpi"]}}}
    )
    return bare_repo_session


def backtracker(session, **kwargs):
    return BacktrackingConcretizer(
        session.repo,
        session.provider_index,
        session.compilers,
        session.config,
        session.policy,
        **kwargs,
    )


class TestHwlocCase:
    def test_greedy_fails(self, hwloc_session):
        with pytest.raises(ConcretizationError):
            hwloc_session.concretize(Spec("p"))

    def test_backtracking_succeeds(self, hwloc_session):
        concretizer = backtracker(hwloc_session)
        concrete = concretizer.concretize(Spec("p"))
        assert concrete.concrete
        assert concrete["mpi2"].name == "bmpi"
        assert str(concrete["hwloc"].version) == "1.9"
        assert concretizer.last_attempts >= 2  # greedy + at least one retry

    def test_user_constraint_still_respected(self, hwloc_session):
        concretizer = backtracker(hwloc_session)
        # explicitly forcing the bad provider must still fail
        with pytest.raises(ConcretizationError):
            concretizer.concretize(Spec("p ^ampi"))


class TestNoRegression:
    def test_identical_to_greedy_when_greedy_works(self, session):
        greedy = session.concretize(Spec("mpileaks"))
        bt = backtracker(session).concretize(Spec("mpileaks"))
        assert bt == greedy
        assert bt.dag_hash() == greedy.dag_hash()

    def test_single_attempt_when_greedy_works(self, session):
        concretizer = backtracker(session)
        concretizer.concretize(Spec("mpileaks"))
        assert concretizer.last_attempts == 1

    def test_preference_order_preserved(self, hwloc_session):
        """The first consistent assignment in preference order wins: if
        both providers work, backtracking returns the greedy answer."""
        repo = hwloc_session.repo.repos[0]

        @repo.register("q")
        class Q(Package):
            version("1.0", "x")
            depends_on("mpi2")  # no hwloc pin: both MPIs fine

        concrete = backtracker(hwloc_session).concretize(Spec("q"))
        assert concrete["mpi2"].name == "ampi"  # still the preferred one


class TestMultipleChoicePoints:
    def test_two_virtuals_searched(self, bare_repo_session):
        repo = bare_repo_session.repo.repos[0]

        @repo.register("libx")
        class Libx(Package):
            version("1", "a")
            version("2", "b")

        @repo.register("va1")
        class Va1(Package):
            version("1.0", "x")
            provides("vinta")
            depends_on("libx@1")

        @repo.register("va2")
        class Va2(Package):
            version("1.0", "x")
            provides("vinta")
            depends_on("libx@2")

        @repo.register("vb1")
        class Vb1(Package):
            version("1.0", "x")
            provides("vintb")
            depends_on("libx@1")

        @repo.register("vb2")
        class Vb2(Package):
            version("1.0", "x")
            provides("vintb")
            depends_on("libx@2")

        @repo.register("app")
        class App(Package):
            version("1.0", "x")
            depends_on("vinta")
            depends_on("vintb")
            depends_on("libx@2")

        # preferences steer both virtuals at the conflicting providers
        bare_repo_session.config.update(
            "user",
            {"preferences": {"providers": {"vinta": ["va1", "va2"],
                                           "vintb": ["vb1", "vb2"]}}},
        )
        with pytest.raises(ConcretizationError):
            bare_repo_session.concretize(Spec("app"))
        concrete = backtracker(bare_repo_session).concretize(Spec("app"))
        assert concrete["vinta"].name == "va2"
        assert concrete["vintb"].name == "vb2"
        assert str(concrete["libx"].version) == "2"


class TestLimits:
    def test_attempt_budget(self, bare_repo_session):
        repo = bare_repo_session.repo.repos[0]

        @repo.register("pin")
        class Pin(Package):
            version("9", "x")

        for i in range(6):
            ns = {}
            from repro.directives.directives import DirectiveMeta

            version("1.0", "x")
            provides("vimp")
            depends_on("pin@1:2")  # impossible range: pin only has @9
            cls = DirectiveMeta("Imp%d" % i, (Package,), ns)
            repo.add_class("imp-%d" % i, cls)

        @repo.register("needs-vimp")
        class NeedsVimp(Package):
            version("1.0", "x")
            depends_on("vimp")

        with pytest.raises((BacktrackLimitError, ConcretizationError)):
            backtracker(bare_repo_session, max_attempts=3).concretize(
                Spec("needs-vimp")
            )

    def test_unsolvable_reports_all_failed(self, hwloc_session):
        repo = hwloc_session.repo.repos[0]

        @repo.register("r")
        class R(Package):
            version("1.0", "x")
            depends_on("hwloc@:1.7")  # no provider's hwloc matches
            depends_on("mpi2")

        with pytest.raises(ConcretizationError, match="inconsistent|conflict|version"):
            backtracker(hwloc_session).concretize(Spec("r"))
