"""Property-based concretizer invariants over the synthetic universe.

For arbitrary (seeded) packages and arbitrary constraint combinations the
concretizer must uphold its §3.4 contract: results are concrete, contain
no virtuals, honor the abstract request (strict satisfaction), keep one
version per package name, and are deterministic.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compilers.registry import Compiler, CompilerRegistry
from repro.config.config import Config
from repro.core.concretizer import ConcretizationError, Concretizer
from repro.errors import ReproError
from repro.packages.synthetic import synthetic_repo
from repro.repo.providers import ProviderIndex
from repro.spec.spec import Spec


@pytest.fixture(scope="module")
def universe():
    repo = synthetic_repo(count=80, seed=7)
    index = ProviderIndex.from_repo(repo)
    registry = CompilerRegistry(
        [
            Compiler("gcc", "4.9.2", cc="/t/gcc-4.9.2"),
            Compiler("gcc", "4.7.3", cc="/t/gcc-4.7.3"),
            Compiler("intel", "15.0.1", cc="/t/icc-15.0.1"),
        ]
    )
    config = Config()
    config.update("site", {"preferences": {"architecture": "linux-x86_64"}})
    return repo, Concretizer(repo, index, registry, config)


package_indices = st.integers(min_value=0, max_value=79)
compilers = st.sampled_from(["", "%gcc", "%gcc@4.7", "%intel"])
arches = st.sampled_from(["", "=bgq", "=linux-x86_64"])


@st.composite
def requests(draw):
    name = "syn-%03d" % draw(package_indices)
    text = name + draw(compilers) + draw(arches)
    return text


common = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@given(requests())
@common
def test_concrete_and_satisfying(universe, request_text):
    repo, concretizer = universe
    abstract = Spec(request_text)
    concrete = concretizer.concretize(abstract)
    assert concrete.concrete
    assert concrete.satisfies(abstract, strict=True)


@given(requests())
@common
def test_no_virtuals_and_all_known(universe, request_text):
    repo, concretizer = universe
    concrete = concretizer.concretize(Spec(request_text))
    for node in concrete.traverse():
        assert repo.exists(node.name)
        assert concretizer.provider_index.is_virtual(node.name) is False


@given(requests())
@common
def test_one_node_per_name_and_shared(universe, request_text):
    _, concretizer = universe
    concrete = concretizer.concretize(Spec(request_text))
    seen = {}
    for node in concrete.traverse():
        for name, child in node.dependencies.items():
            if name in seen:
                assert seen[name] is child  # same object: shared sub-DAG
            seen[name] = child


@given(requests())
@common
def test_deterministic(universe, request_text):
    _, concretizer = universe
    a = concretizer.concretize(Spec(request_text))
    b = concretizer.concretize(Spec(request_text))
    assert a == b
    assert a.dag_hash() == b.dag_hash()


@given(requests())
@common
def test_idempotent(universe, request_text):
    _, concretizer = universe
    once = concretizer.concretize(Spec(request_text))
    twice = concretizer.concretize(once)
    assert twice == once


@given(requests())
@common
def test_every_declared_dep_resolved(universe, request_text):
    repo, concretizer = universe
    concrete = concretizer.concretize(Spec(request_text))
    for node in concrete.traverse():
        cls = repo.get_class(node.name)
        for dep_name, constraints in cls.dependencies.items():
            for dc in constraints:
                if dc.when is not None and not node.satisfies(dc.when, strict=True):
                    continue
                if concretizer.provider_index.is_virtual(dep_name):
                    assert any(
                        dep_name in d.provided_virtuals
                        for d in node.dependencies.values()
                    )
                else:
                    assert dep_name in node.dependencies
