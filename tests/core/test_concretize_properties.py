"""Property-based concretizer invariants over a generated universe.

For arbitrary (seeded) packages and arbitrary constraint combinations
the concretizer must uphold its §3.4 contract: results are concrete,
contain no virtuals, honor the abstract request (strict satisfaction),
keep one version per package name, and are deterministic.

The cases come from :mod:`repro.testing.generators` — the same models
the ``repro-spack selftest`` campaign drives — seeded once per session
from ``REPRO_TEST_SEED``.  The invariants themselves live in
:mod:`repro.testing.invariants` so pytest and the selftest CLI check
exactly the same properties.
"""

import pytest

from repro.compilers.registry import Compiler, CompilerRegistry
from repro.config.config import Config
from repro.core.concretizer import Concretizer
from repro.repo.providers import ProviderIndex
from repro.spec.spec import Spec
from repro.testing import derive_seed, session_seed
from repro.testing.generators import GEN_COMPILERS, RepoGenerator, SpecGenerator
from repro.testing.invariants import assert_invariants

CASES = 60


@pytest.fixture(scope="module")
def universe():
    seed = derive_seed(session_seed(), "concretize-properties")
    repo = RepoGenerator(
        derive_seed(seed, "repo"), count=30, virtuals=2
    ).build()
    index = ProviderIndex.from_repo(repo)
    registry = CompilerRegistry(
        Compiler(*cs.split("@")) for cs in GEN_COMPILERS
    )
    config = Config()
    config.update(
        "site",
        {"preferences": {"compiler_order": [GEN_COMPILERS[0]],
                         "architecture": "linux-x86_64"}},
    )
    concretizer = Concretizer(repo, index, registry, config)
    requests = SpecGenerator(derive_seed(seed, "specs"), repo).specs(CASES)
    return seed, repo, index, concretizer, requests


def _context(seed, i, request):
    return "seed=%d case=%d request=%r (rerun: REPRO_TEST_SEED=%d)" % (
        seed, i, request, seed
    )


def _each_success(universe):
    """(context, request, concrete) for every request that concretizes."""
    from repro.testing.oracle import TYPED_ERRORS

    seed, repo, index, concretizer, requests = universe
    for i, request in enumerate(requests):
        try:
            concrete = concretizer.concretize(Spec(request))
        except TYPED_ERRORS:
            continue  # impossible constraint draws are fine; crashes are not
        yield _context(seed, i, request), request, concrete


def test_full_invariant_battery(universe):
    """Concreteness, request satisfaction, no virtuals, known packages,
    unique names, dependency completeness, idempotence, determinism,
    and serialization round-trips — the shared checker raises with the
    case context on the first violation."""
    seed, repo, index, concretizer, _ = universe
    successes = 0
    for context, request, concrete in _each_success(universe):
        assert_invariants(
            request, concrete, repo, index, concretizer, context=context
        )
        successes += 1
    assert successes > CASES // 2  # the stream mostly draws solvable cases


def test_one_node_per_name_and_shared(universe):
    for context, _request, concrete in _each_success(universe):
        seen = {}
        for node in concrete.traverse():
            for name, child in node.dependencies.items():
                if name in seen:
                    assert seen[name] is child, context  # shared sub-DAG
                seen[name] = child


def test_deterministic_across_concretizer_instances(universe):
    """Same request, fresh concretizer, same universe ⇒ same DAG hash —
    determinism beyond the single-instance idempotence the battery
    already checks."""
    seed, repo, index, concretizer, requests = universe
    registry = CompilerRegistry(
        Compiler(*cs.split("@")) for cs in GEN_COMPILERS
    )
    config = Config()
    config.update(
        "site",
        {"preferences": {"compiler_order": [GEN_COMPILERS[0]],
                         "architecture": "linux-x86_64"}},
    )
    fresh = Concretizer(repo, index, registry, config)
    for context, request, concrete in _each_success(universe):
        assert fresh.concretize(Spec(request)).dag_hash() == \
            concrete.dag_hash(), context


def test_request_stream_is_replayable(universe):
    seed, repo, _index, _concretizer, requests = universe
    generator = SpecGenerator(derive_seed(seed, "specs"), repo)
    for i in (0, CASES // 2, CASES - 1):
        assert generator.spec(i) == requests[i]


def _solver_for(universe, **kwargs):
    from repro.core.solver import SolverConcretizer

    seed, repo, index, concretizer, _requests = universe
    return SolverConcretizer(
        repo, index, concretizer.compilers, concretizer.config, **kwargs
    )


def test_solver_reproduces_every_greedy_success(universe):
    """The optimizing solver's contract includes greedy hash-identity:
    preferences dominate its objective, so whenever greedy succeeds the
    zero-deviation solution is the unique optimum."""
    solver = _solver_for(universe)
    for context, _request, concrete in _each_success(universe):
        solved = solver.concretize(Spec(_request))
        assert solved.dag_hash() == concrete.dag_hash(), context
        assert solver.last_proven_optimal, context


def test_solver_successes_uphold_the_invariant_battery(universe):
    """Solver answers are real concretizations: the full §3.4 battery
    holds for them exactly as it does for greedy answers."""
    seed, repo, index, _concretizer, _requests = universe
    solver = _solver_for(universe)
    checked = 0
    for context, request, _concrete in _each_success(universe):
        concrete = solver.concretize(Spec(request))
        assert_invariants(
            request, concrete, repo, index, solver, context=context
        )
        checked += 1
    assert checked > CASES // 2


def test_solver_answer_is_optimal_by_exhaustive_enumeration():
    """Ground truth on a small conflict-rich universe: brute-force every
    assignment in the solver's deviation space and assert no consistent
    DAG scores below the solver's first answer."""
    import itertools

    from repro.core.concretizer import ConcretizationError
    from repro.core.solver import SolverConcretizer
    from repro.spec.errors import SpecError

    seed = derive_seed(session_seed(), "concretize-properties-opt")
    repo = RepoGenerator(
        derive_seed(seed, "repo"), count=6, virtuals=1, conflict_density=1.0
    ).build()
    index = ProviderIndex.from_repo(repo)
    registry = CompilerRegistry(
        Compiler(*cs.split("@")) for cs in GEN_COMPILERS[:2]
    )
    config = Config()
    config.update(
        "site",
        {"preferences": {"compiler_order": [GEN_COMPILERS[0]],
                         "architecture": "linux-x86_64"}},
    )
    solver = SolverConcretizer(repo, index, registry, config)
    checked = 0
    for name in repo.all_package_names():
        variables = solver._choice_variables(Spec(name))
        space = 1
        for v in variables:
            space *= len(v.domain)
        if space > 5000:
            continue
        scores = []
        for combo in itertools.product(
            *[range(len(v.domain)) for v in variables]
        ):
            assignment = {i: idx for i, idx in enumerate(combo) if idx}
            try:
                candidate = solver._materialize(
                    Spec(name), variables, assignment
                )
                scores.append(solver.score(solver._fixed_point(candidate)))
            except (ConcretizationError, SpecError):
                continue
        try:
            concrete = solver.concretize(name)
        except ConcretizationError:
            assert not scores, "seed=%d %s: solver missed a solution" % (
                seed, name
            )
            continue
        assert solver.last_score == min(scores), "seed=%d %s" % (seed, name)
        assert solver.score(concrete) == solver.last_score
        checked += 1
    assert checked >= 4  # the property ran over real packages
