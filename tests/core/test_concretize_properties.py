"""Property-based concretizer invariants over a generated universe.

For arbitrary (seeded) packages and arbitrary constraint combinations
the concretizer must uphold its §3.4 contract: results are concrete,
contain no virtuals, honor the abstract request (strict satisfaction),
keep one version per package name, and are deterministic.

The cases come from :mod:`repro.testing.generators` — the same models
the ``repro-spack selftest`` campaign drives — seeded once per session
from ``REPRO_TEST_SEED``.  The invariants themselves live in
:mod:`repro.testing.invariants` so pytest and the selftest CLI check
exactly the same properties.
"""

import pytest

from repro.compilers.registry import Compiler, CompilerRegistry
from repro.config.config import Config
from repro.core.concretizer import Concretizer
from repro.repo.providers import ProviderIndex
from repro.spec.spec import Spec
from repro.testing import derive_seed, session_seed
from repro.testing.generators import GEN_COMPILERS, RepoGenerator, SpecGenerator
from repro.testing.invariants import assert_invariants

CASES = 60


@pytest.fixture(scope="module")
def universe():
    seed = derive_seed(session_seed(), "concretize-properties")
    repo = RepoGenerator(
        derive_seed(seed, "repo"), count=30, virtuals=2
    ).build()
    index = ProviderIndex.from_repo(repo)
    registry = CompilerRegistry(
        Compiler(*cs.split("@")) for cs in GEN_COMPILERS
    )
    config = Config()
    config.update(
        "site",
        {"preferences": {"compiler_order": [GEN_COMPILERS[0]],
                         "architecture": "linux-x86_64"}},
    )
    concretizer = Concretizer(repo, index, registry, config)
    requests = SpecGenerator(derive_seed(seed, "specs"), repo).specs(CASES)
    return seed, repo, index, concretizer, requests


def _context(seed, i, request):
    return "seed=%d case=%d request=%r (rerun: REPRO_TEST_SEED=%d)" % (
        seed, i, request, seed
    )


def _each_success(universe):
    """(context, request, concrete) for every request that concretizes."""
    from repro.testing.oracle import TYPED_ERRORS

    seed, repo, index, concretizer, requests = universe
    for i, request in enumerate(requests):
        try:
            concrete = concretizer.concretize(Spec(request))
        except TYPED_ERRORS:
            continue  # impossible constraint draws are fine; crashes are not
        yield _context(seed, i, request), request, concrete


def test_full_invariant_battery(universe):
    """Concreteness, request satisfaction, no virtuals, known packages,
    unique names, dependency completeness, idempotence, determinism,
    and serialization round-trips — the shared checker raises with the
    case context on the first violation."""
    seed, repo, index, concretizer, _ = universe
    successes = 0
    for context, request, concrete in _each_success(universe):
        assert_invariants(
            request, concrete, repo, index, concretizer, context=context
        )
        successes += 1
    assert successes > CASES // 2  # the stream mostly draws solvable cases


def test_one_node_per_name_and_shared(universe):
    for context, _request, concrete in _each_success(universe):
        seen = {}
        for node in concrete.traverse():
            for name, child in node.dependencies.items():
                if name in seen:
                    assert seen[name] is child, context  # shared sub-DAG
                seen[name] = child


def test_deterministic_across_concretizer_instances(universe):
    """Same request, fresh concretizer, same universe ⇒ same DAG hash —
    determinism beyond the single-instance idempotence the battery
    already checks."""
    seed, repo, index, concretizer, requests = universe
    registry = CompilerRegistry(
        Compiler(*cs.split("@")) for cs in GEN_COMPILERS
    )
    config = Config()
    config.update(
        "site",
        {"preferences": {"compiler_order": [GEN_COMPILERS[0]],
                         "architecture": "linux-x86_64"}},
    )
    fresh = Concretizer(repo, index, registry, config)
    for context, request, concrete in _each_success(universe):
        assert fresh.concretize(Spec(request)).dag_hash() == \
            concrete.dag_hash(), context


def test_request_stream_is_replayable(universe):
    seed, repo, _index, _concretizer, requests = universe
    generator = SpecGenerator(derive_seed(seed, "specs"), repo)
    for i in (0, CASES // 2, CASES - 1):
        assert generator.spec(i) == requests[i]
