"""Concretizer trace events (Figure 6 observability)."""

import pytest

from repro.core.concretizer import Concretizer
from repro.spec.spec import Spec


def traced_concretizer(session, events):
    return Concretizer(
        session.repo, session.provider_index, session.compilers,
        session.config, session.policy, trace=events.append,
    )


class TestTrace:
    def test_events_cover_pipeline(self, session):
        events = []
        traced_concretizer(session, events).concretize(Spec("mpileaks"))
        kinds = [e["event"] for e in events]
        assert "expand" in kinds
        assert "virtual-resolved" in kinds
        assert "iteration" in kinds

    def test_virtual_resolution_event(self, session):
        events = []
        traced_concretizer(session, events).concretize(Spec("mpileaks ^mpich"))
        resolved = [e for e in events if e["event"] == "virtual-resolved"]
        assert len(resolved) == 1
        assert resolved[0]["virtual"].startswith("mpi")
        assert resolved[0]["provider"] == "mpich"

    def test_converges_with_final_unchanged_iteration(self, session):
        events = []
        traced_concretizer(session, events).concretize(Spec("mpileaks"))
        iterations = [e for e in events if e["event"] == "iteration"]
        assert iterations[-1]["changed"] is False
        assert all(e["changed"] for e in iterations[:-1])

    def test_expand_reports_growing_node_set(self, session):
        events = []
        traced_concretizer(session, events).concretize(Spec("mpileaks"))
        expands = [e for e in events if e["event"] == "expand"]
        assert "mpileaks" in expands[0]["nodes"]
        assert "callpath" in expands[-1]["nodes"]

    def test_no_trace_by_default(self, session):
        concrete = session.concretize(Spec("mpileaks"))
        assert concrete.concrete  # and no callback machinery engaged

    def test_cli_trace_flag(self, tmp_path, capsys):
        from repro.cli.main import main

        code = main(["--root", str(tmp_path / "u"), "spec", "--trace", "mpileaks"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Trace" in out
        assert "[virtual-resolved]" in out
        assert "provider=mvapich2" in out
