"""The persistent concretization cache: keys, hits, invalidation,
integrity, and result equivalence."""

import json
import os
import threading

import pytest

from repro.core.conc_cache import (
    ConcretizationCache,
    EnvironmentDigest,
    describe_package_class,
)
from repro.session import Session
from repro.spec.spec import Spec
from repro.telemetry import Telemetry
from repro.telemetry.sinks import MemorySink


@pytest.fixture
def hub():
    t = Telemetry()
    t.add_sink(MemorySink())
    return t


@pytest.fixture
def tsession(tmp_path, hub):
    return Session.create(str(tmp_path / "universe"), telemetry=hub)


class TestSessionCaching:
    def test_first_call_misses_then_memo_hits(self, tsession, hub):
        cold = tsession.concretize("mpileaks")
        assert hub.counter("concretize.cache.miss") == 1
        warm = tsession.concretize("mpileaks")
        assert hub.counter("concretize.cache.hit") == 1
        assert warm.dag_hash() == cold.dag_hash()

    def test_disk_hit_across_sessions(self, tmp_path, hub):
        s1 = Session.create(str(tmp_path / "u"), telemetry=hub)
        cold = s1.concretize("dyninst")
        hub2 = Telemetry()
        hub2.add_sink(MemorySink())
        s2 = Session(
            str(tmp_path / "u"), s1.repo, config=s1.config,
            compilers=s1.compilers, telemetry=hub2,
        )
        warm = s2.concretize("dyninst")
        assert hub2.counter("concretize.cache.hit") == 1
        assert warm.dag_hash() == cold.dag_hash()
        assert warm.concrete

    def test_warm_result_is_byte_identical(self, tsession):
        cold = tsession.concretize("mpileaks", use_cache=False)
        tsession.concretize("mpileaks")
        tsession.forget_concretizations()  # force the disk round-trip
        warm = tsession.concretize("mpileaks")
        assert json.dumps(warm.to_dict(), sort_keys=True) == json.dumps(
            cold.to_dict(), sort_keys=True
        )

    def test_hits_return_independent_copies(self, tsession):
        first = tsession.concretize("libdwarf")
        second = tsession.concretize("libdwarf")
        assert first is not second
        first.variants["mangled"] = True
        assert second == tsession.concretize("libdwarf")

    def test_use_cache_false_bypasses(self, tsession, hub):
        tsession.concretize("libelf", use_cache=False)
        assert hub.counter("concretize.cache.miss") == 0
        assert len(tsession.concretize_cache) == 0

    def test_variants_key_separately(self, tsession, hub):
        tsession.concretize("mpileaks")
        tsession.concretize("mpileaks", backtrack=True)
        # different concretizer variant: its own key, so a miss
        assert hub.counter("concretize.cache.miss") == 2

    def test_disabled_by_config(self, tmp_path):
        session = Session.create(
            str(tmp_path / "u"),
            config_overrides={"concretize_cache": {"enabled": False}},
        )
        assert session.concretize_cache is None
        assert session.concretize("libelf").concrete


class TestDigestInvalidation:
    def test_register_external_changes_the_answer(self, tsession, hub):
        before = tsession.concretize("mpileaks")
        assert not any(n.external for n in before.traverse())
        tsession.register_external("mvapich2@2.0", create_content=False)
        after = tsession.concretize("mpileaks")
        assert hub.counter("concretize.cache.invalidate") >= 1
        assert after["mvapich2"].external

    def test_config_update_invalidates(self, tsession, hub):
        tsession.concretize("mpileaks")
        tsession.config.update(
            "user", {"preferences": {"compiler_order": ["clang@3.5.0"]}}
        )
        after = tsession.concretize("mpileaks")
        assert hub.counter("concretize.cache.invalidate") >= 1
        assert str(after.compiler).startswith("clang")

    def test_package_registration_invalidates(self, tsession, hub):
        from repro.package.package import Package

        tsession.concretize("libelf")
        owner = tsession.repo.repos[0]
        owner.add_class("newpkg", type("Newpkg", (Package,), {}))
        tsession.concretize("libelf")
        assert hub.counter("concretize.cache.invalidate") >= 1

    def test_digest_is_memoized_on_tokens(self, tsession):
        digest = tsession._env_digest
        first = digest.current()
        assert digest.current() == first  # token unchanged: cached
        tsession.config.update("user", {"packages": {"zlib": {"buildable": False}}})
        assert digest.current() != first

    def test_describe_covers_checksums(self, tsession):
        import types

        cls = tsession.repo.get_class("libelf")
        versions = dict(cls.versions)
        key = next(iter(versions))
        versions[key] = dict(versions[key], checksum="0" * 64)
        patched = types.SimpleNamespace(versions=versions)
        base = types.SimpleNamespace(versions=dict(cls.versions))
        assert describe_package_class(patched) != describe_package_class(base)


class TestIntegrity:
    def test_corrupt_fault_falls_back_cold(self, tsession, hub):
        from repro.testing.faults import CONCRETIZE_CACHE_CORRUPT, Fault

        cold = tsession.concretize("mpileaks", use_cache=False)
        tsession.concretize("mpileaks")  # persist the entry
        tsession.forget_concretizations()
        tsession.faults.arm([Fault(CONCRETIZE_CACHE_CORRUPT)])
        try:
            healed = tsession.concretize("mpileaks")
        finally:
            tsession.faults.disarm()
        assert (CONCRETIZE_CACHE_CORRUPT, "mpileaks", None) in tsession.faults.journal
        assert hub.counter("concretize.cache.invalidate") >= 1
        assert healed.dag_hash() == cold.dag_hash()
        # the rotten entry was dropped and rewritten on the cold path
        assert len(tsession.concretize_cache) == 1

    def test_on_disk_rot_is_dropped(self, tsession):
        tsession.concretize("libdwarf")
        tsession.forget_concretizations()
        cache = tsession.concretize_cache
        (key, entry), = cache.entries()
        with open(os.path.join(cache.root, entry["entry"]), "w") as f:
            f.write('{"not": "a spec"}')
        assert cache.lookup(key) is None
        assert len(cache) == 0
        # the session transparently re-concretizes and re-stores
        assert tsession.concretize("libdwarf").concrete
        assert len(cache) == 1

    def test_stale_hash_is_dropped(self, tmp_path):
        cache = ConcretizationCache(str(tmp_path / "cc"))
        spec = Spec("libelf@0.8.13%gcc@4.9.2=linux-x86_64")
        spec._concrete = True
        key = ConcretizationCache.make_key("libelf", "d" * 64, "greedy")
        cache.store(key, spec)
        shard = dict(cache.read_shard(key[:2]))
        shard[key]["dag_hash"] = "0" * 32
        cache._atomic_write(
            cache._shard_path(key[:2]), json.dumps(shard).encode()
        )
        cache._shard_memos = {}
        assert cache.lookup(key) is None
        assert len(cache) == 0


class TestCacheMechanics:
    def test_make_key_is_stable_and_input_sensitive(self):
        key = ConcretizationCache.make_key("mpileaks", "e" * 64, "greedy")
        assert key == ConcretizationCache.make_key("mpileaks", "e" * 64, "greedy")
        assert key != ConcretizationCache.make_key("mpileaks", "f" * 64, "greedy")
        assert key != ConcretizationCache.make_key("mpileaks", "e" * 64, "backtracking")
        assert key != ConcretizationCache.make_key("mpileaks@2", "e" * 64, "greedy")

    def test_index_merge_preserves_concurrent_writers(self, tmp_path):
        root = str(tmp_path / "shared")
        a = ConcretizationCache(root)
        b = ConcretizationCache(root)
        spec = Spec("libelf@0.8.13")
        spec._concrete = True
        ka = ConcretizationCache.make_key("a", "0" * 64, "greedy")
        kb = ConcretizationCache.make_key("b", "0" * 64, "greedy")
        a.store(ka, spec)
        b.store(kb, spec)
        assert {k for k, _ in a.entries()} == {ka, kb}
        assert {k for k, _ in b.entries()} == {ka, kb}

    def test_store_then_lookup_round_trips(self, tmp_path, session):
        cache = ConcretizationCache(str(tmp_path / "cc"))
        concrete = session.concretize("libdwarf", use_cache=False)
        key = ConcretizationCache.make_key("libdwarf", "a" * 64, "greedy")
        cache.store(key, concrete)
        out = cache.lookup(key)
        assert out is not None and out is not concrete
        assert out.dag_hash() == concrete.dag_hash()


class TestShardedIndex:
    """Regression: the index was one monolithic ``index.json`` rewritten
    in full on every store — warming n roots rewrote O(n²) index bytes.
    Sharding by key prefix keeps the bytes-per-store flat, and a legacy
    monolithic index migrates into shards on first access."""

    @staticmethod
    def _concrete_spec():
        spec = Spec("libelf@0.8.13%gcc@4.9.2=linux-x86_64")
        spec._concrete = True
        return spec

    def test_bytes_per_store_stay_flat_as_entries_grow(self, tmp_path):
        cache = ConcretizationCache(str(tmp_path / "cc"))
        spec = self._concrete_spec()
        index_writes = []
        real_write = cache._atomic_write

        def counting_write(path, data):
            if os.sep + "index" in path or os.path.basename(path).startswith(
                "index"
            ):
                index_writes.append(len(data))
            return real_write(path, data)

        cache._atomic_write = counting_write
        total = 512
        for i in range(total):
            key = ConcretizationCache.make_key("spec-%d" % i, "0" * 64, "greedy")
            cache.store(key, spec)
        assert len(index_writes) == total
        head = sum(index_writes[:64]) / 64.0
        tail = sum(index_writes[-64:]) / 64.0
        # pre-fix the whole index was rewritten per store, so the last
        # writes were ~8x the first; sharded writes stay near-constant
        assert tail < 3.0 * head, (head, tail)
        assert len(cache) == total

    def test_legacy_monolithic_index_migrates(self, tmp_path):
        root = str(tmp_path / "cc")
        cache = ConcretizationCache(root)
        spec = self._concrete_spec()
        keys = [
            ConcretizationCache.make_key("legacy-%d" % i, "0" * 64, "greedy")
            for i in range(8)
        ]
        # lay out the pre-shard format by hand: per-entry payloads plus
        # one monolithic index.json, exactly what older caches left
        legacy = {}
        for key in keys:
            entry_path = cache._entry_path(key)
            os.makedirs(os.path.dirname(entry_path), exist_ok=True)
            with open(entry_path, "w") as f:
                json.dump(spec.to_dict(), f, sort_keys=True)
            legacy[key] = {
                "root": spec.name,
                "dag_hash": spec.dag_hash(),
                "entry": os.path.join(key[:2], "%s.json" % key),
            }
        with open(os.path.join(root, "index.json"), "w") as f:
            json.dump(legacy, f)

        fresh = ConcretizationCache(root)
        hit = fresh.lookup(keys[0])
        assert hit is not None and hit.dag_hash() == spec.dag_hash()
        # the legacy file was folded into shards and removed
        assert not os.path.exists(os.path.join(root, "index.json"))
        assert {k for k, _ in fresh.entries()} == set(keys)
        # a store after migration keeps every migrated entry visible
        extra = ConcretizationCache.make_key("post", "0" * 64, "greedy")
        fresh.store(extra, spec)
        assert {k for k, _ in fresh.entries()} == set(keys) | {extra}


class TestConcurrentWriters:
    """Regression: ``_atomic_write`` used one fixed pid-derived temp
    name, so two *threads* of the same process (the service daemon's
    worker pool) truncated and ``os.replace``d each other's half-written
    files.  mkstemp gives every call its own exclusively-created file."""

    def test_atomic_write_hammer(self, tmp_path):
        cache = ConcretizationCache(str(tmp_path / "cc"))
        os.makedirs(cache.root, exist_ok=True)
        target = os.path.join(cache.root, "target.json")
        n_threads, n_writes = 8, 60
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker(tid):
            payload = json.dumps({"writer": tid}).encode()
            barrier.wait()
            try:
                for _ in range(n_writes):
                    cache._atomic_write(target, payload)
            except Exception as e:  # pre-fix: FileNotFoundError on replace
                errors.append(e)

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # the survivor is one writer's complete payload, never a tear
        with open(target, "rb") as f:
            assert "writer" in json.loads(f.read())
        # and no orphaned temp files were left behind
        leftovers = [n for n in os.listdir(cache.root) if n.endswith(".tmp")]
        assert leftovers == []

    def test_concurrent_store_keeps_every_entry(self, tmp_path, session):
        cache = ConcretizationCache(str(tmp_path / "cc"))
        concrete = session.concretize("libdwarf", use_cache=False)
        keys = [
            ConcretizationCache.make_key("spec-%d" % i, "0" * 64, "greedy")
            for i in range(16)
        ]
        barrier = threading.Barrier(len(keys))
        errors = []

        def worker(key):
            barrier.wait()
            try:
                cache.store(key, concrete)
            except Exception as e:
                errors.append(e)

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in keys
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert {k for k, _ in cache.entries()} == set(keys)
        for key in keys:
            hit = cache.lookup(key)
            assert hit is not None
            assert hit.dag_hash() == concrete.dag_hash()


class TestCacheEquivalenceSweep:
    """Satellite 4: a seeded property campaign over >=200 generated
    specs — warm results must be byte-identical to cold ones for both
    concretizer variants, including under injected corruption."""

    def test_200_generated_specs_round_trip(self, tmp_path):
        from repro.testing.campaign import (
            CampaignConfig,
            CampaignReport,
            run_cache_phase,
        )

        config = CampaignConfig(
            seed=929, specs=0, fault_plans=0, cache_specs=200
        )
        report = CampaignReport(config)
        run_cache_phase(config, report, str(tmp_path))
        counts = report.cache_outcome_counts()
        assert report.cache_divergences() == []
        # every request yields one case per variant
        assert len(report.cache_cases) == 2 * config.cache_specs
        assert counts.get("match", 0) >= 200
        # corruption was actually exercised on the every-tenth cadence
        assert any(c["fault"] for c in report.cache_cases if c["kind"] == "match")
        assert report.ok
