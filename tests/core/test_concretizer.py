"""Concretizer behaviour (§3.4, Figure 6) against the built-in corpus."""

import pytest

from repro.core.concretizer import (
    ConcretizationError,
    CyclicDependencyError,
    NoBuildableProviderError,
    NoSatisfyingVersionError,
    UnknownPackageError,
)
from repro.directives import depends_on, provides, variant, version
from repro.package.package import Package
from repro.spec.spec import Spec


def concretize(session, text):
    return session.concretize(Spec(text))


class TestBasic:
    def test_figure7_fully_concrete(self, session):
        c = concretize(session, "mpileaks")
        assert c.concrete
        for node in c.traverse():
            assert node.versions.concrete is not None
            assert node.compiler is not None and node.compiler.concrete
            assert node.architecture is not None

    def test_figure2a_structure(self, session):
        c = concretize(session, "mpileaks")
        names = sorted(n.name for n in c.traverse())
        assert names == ["callpath", "dyninst", "libdwarf", "libelf",
                         "mpileaks", "mvapich2"]

    def test_result_satisfies_input(self, session):
        abstract = Spec("mpileaks@2.3 ^callpath@0.9+debug ^libelf@0.8.11")
        c = session.concretize(abstract)
        assert c.satisfies(abstract, strict=True)

    def test_highest_version_chosen(self, session):
        assert str(concretize(session, "mpileaks").version) == "2.3"
        assert str(concretize(session, "libelf").version) == "0.8.13"

    def test_version_constraint_respected(self, session):
        # family semantics: :1.1 includes 1.1.2, and highest wins
        assert str(concretize(session, "mpileaks@1.0:1.1").version) == "1.1.2"
        assert str(concretize(session, "mpileaks@1.0:1.0").version) == "1.0"

    def test_unknown_point_version_kept(self, session):
        # §3.2.3: a specific unknown version is fetched by extrapolation.
        assert str(concretize(session, "mpileaks@9.9").version) == "9.9"

    def test_unknown_range_fails(self, session):
        with pytest.raises(NoSatisfyingVersionError):
            concretize(session, "mpileaks@9.1:9.2")

    def test_deterministic(self, session):
        a = concretize(session, "mpileaks")
        b = concretize(session, "mpileaks")
        assert a == b and a.dag_hash() == b.dag_hash()

    def test_idempotent_on_concrete(self, session):
        c = concretize(session, "mpileaks")
        again = session.concretize(c)
        assert again == c

    def test_anonymous_rejected(self, session):
        with pytest.raises(ConcretizationError):
            session.concretize(Spec("@1.0"))

    def test_unknown_package(self, session):
        with pytest.raises((UnknownPackageError, Exception)):
            concretize(session, "no-such-package-xyz")


class TestVirtualResolution:
    def test_default_provider_from_policy(self, session):
        # site preference order: mvapich2, openmpi, mpich
        c = concretize(session, "mpileaks")
        assert c["mpi"].name == "mvapich2"

    def test_user_forced_provider(self, session):
        c = concretize(session, "mpileaks ^mpich")
        assert c["mpi"].name == "mpich"

    def test_forced_provider_version(self, session):
        c = concretize(session, "mpileaks ^mpich@1.5")
        assert str(c["mpich"].version) == "1.5"

    def test_versioned_virtual_constrains_provider(self, session):
        # gerris needs mpi@2:; mpich 1.x only provides mpi@:1
        c = concretize(session, "gerris ^mpich")
        assert str(c["mpich"].version) == "3.0.4"

    def test_provided_virtuals_stamped(self, session):
        c = concretize(session, "mpileaks")
        assert "mpi" in c["mvapich2"].provided_virtuals

    def test_provider_preference_config(self, tmp_path):
        from repro.session import Session

        s = Session.create(
            str(tmp_path / "u"),
            config_overrides={"preferences": {"providers": {"mpi": ["openmpi"]}}},
        )
        assert s.concretize(Spec("mpileaks"))["mpi"].name == "openmpi"

    def test_no_provider_satisfies(self, session):
        with pytest.raises(NoBuildableProviderError):
            concretize(session, "gerris ^mpi@99:")

    def test_two_dependents_intersect_virtual(self, bare_repo_session):
        repo = bare_repo_session.repo.repos[0]

        @repo.register("prov")
        class Prov(Package):
            version("1.0", "x")
            version("2.0", "y")
            provides("vapi@:1", when="@1.0")
            provides("vapi@:2", when="@2.0")

        @repo.register("needs1")
        class Needs1(Package):
            version("1.0", "x")
            depends_on("vapi")

        @repo.register("needs2")
        class Needs2(Package):
            version("1.0", "x")
            depends_on("vapi@2:")

        @repo.register("top")
        class Top(Package):
            version("1.0", "x")
            depends_on("needs1")
            depends_on("needs2")

        bare_repo_session.seed_web()
        c = bare_repo_session.concretize(Spec("top"))
        # the single vapi provider node must satisfy BOTH dependents
        assert str(c["prov"].version) == "2.0"

    def test_blas_virtual(self, session):
        c = concretize(session, "py-numpy")
        assert c["blas"].name == "netlib-blas"
        assert c["lapack"].name == "netlib-lapack"


class TestCompilers:
    def test_default_compiler(self, session):
        c = concretize(session, "libelf")
        assert str(c.compiler) == "gcc@4.9.2"  # compiler_order default

    def test_compiler_version_resolution(self, session):
        c = concretize(session, "libelf%gcc@4.7")
        assert str(c.compiler) == "gcc@4.7.3"

    def test_compiler_propagates_to_deps(self, session):
        c = concretize(session, "mpileaks%intel")
        assert all(n.compiler.name == "intel" for n in c.traverse())

    def test_per_node_compiler(self, session):
        c = concretize(session, "mpileaks%gcc@4.7.3 ^callpath%intel@15.0.1")
        assert str(c.compiler) == "gcc@4.7.3"
        assert str(c["callpath"].compiler) == "intel@15.0.1"
        assert str(c["dyninst"].compiler) == "gcc@4.7.3"

    def test_unregistered_compiler_fails(self, session):
        from repro.compilers.registry import NoSuchCompilerError

        with pytest.raises(NoSuchCompilerError):
            concretize(session, "libelf%gcc@9.9")

    def test_compiler_order_preference(self, tmp_path):
        from repro.session import Session

        s = Session.create(
            str(tmp_path / "u"),
            config_overrides={"preferences": {"compiler_order": ["intel@14", "gcc"]}},
        )
        c = s.concretize(Spec("libelf"))
        assert str(c.compiler) == "intel@14.0.3"


class TestVariants:
    def test_default_variant(self, session):
        c = concretize(session, "mpileaks")
        assert c.variants["debug"] is False

    def test_explicit_variant(self, session):
        c = concretize(session, "mpileaks+debug")
        assert c.variants["debug"] is True

    def test_variant_preference_config(self, tmp_path):
        from repro.session import Session

        s = Session.create(
            str(tmp_path / "u"),
            config_overrides={
                "preferences": {"packages": {"mpileaks": {"variants": {"debug": True}}}}
            },
        )
        assert s.concretize(Spec("mpileaks")).variants["debug"] is True

    def test_unknown_variant_rejected(self, session):
        from repro.spec.errors import UnknownVariantError

        with pytest.raises(UnknownVariantError):
            concretize(session, "mpileaks+bogusvariant")

    def test_conditional_dependency_on_variant(self, bare_repo_session):
        repo = bare_repo_session.repo.repos[0]

        @repo.register("base")
        class BaseLib(Package):
            version("1.0", "x")

        @repo.register("opt")
        class Opt(Package):
            version("1.0", "x")
            variant("extras", default=False, description="pull in base")
            depends_on("base", when="+extras")

        without = bare_repo_session.concretize(Spec("opt"))
        assert "base" not in [n.name for n in without.traverse()]
        with_extras = bare_repo_session.concretize(Spec("opt+extras"))
        assert "base" in [n.name for n in with_extras.traverse()]


class TestArchitecture:
    def test_default_arch(self, session):
        assert concretize(session, "libelf").architecture == "linux-x86_64"

    def test_explicit_arch_propagates(self, session):
        c = concretize(session, "mpileaks=bgq")
        assert all(n.architecture == "bgq" for n in c.traverse())

    def test_conditional_dep_on_arch(self, session):
        c = concretize(session, "ares=bgq %xl ^bgq-mpi")
        assert str(c["python"].version) == "2.7.9"  # §4.4: BG/Q pins python


class TestConditionalDependencies:
    def test_rose_boost_by_compiler(self, session):
        # §3.2.4's example: boost version depends on the compiler.
        old = concretize(session, "rose%gcc@4.7.3")
        assert str(old["boost"].version) == "1.54.0"
        new = concretize(session, "rose%intel")
        assert str(new["boost"].version) == "1.55.0"

    def test_version_conditioned_dep(self, session):
        prev = concretize(session, "ares@2014.11 ^mvapich")
        assert str(prev["boost"].version) == "1.54.0"
        cur = concretize(session, "ares@2015.06 ^mvapich")
        assert str(cur["boost"].version) == "1.55.0"


class TestErrors:
    def test_conflicting_user_and_package_constraints(self, session):
        # gerris needs mpi@2:, user forces an MPI that cannot provide it
        with pytest.raises(ConcretizationError):
            concretize(session, "gerris ^mvapich")

    def test_dependency_version_conflict(self, bare_repo_session):
        repo = bare_repo_session.repo.repos[0]

        @repo.register("leaf")
        class Leaf(Package):
            version("1.0", "x")
            version("2.0", "y")

        @repo.register("wants1")
        class Wants1(Package):
            version("1.0", "x")
            depends_on("leaf@1.0")

        @repo.register("wants2")
        class Wants2(Package):
            version("1.0", "x")
            depends_on("leaf@2.0")

        @repo.register("both")
        class Both(Package):
            version("1.0", "x")
            depends_on("wants1")
            depends_on("wants2")

        with pytest.raises(ConcretizationError):
            bare_repo_session.concretize(Spec("both"))

    def test_cycle_detected(self, bare_repo_session):
        repo = bare_repo_session.repo.repos[0]

        @repo.register("cyc-a")
        class CycA(Package):
            version("1.0", "x")
            depends_on("cyc-b")

        @repo.register("cyc-b")
        class CycB(Package):
            version("1.0", "x")
            depends_on("cyc-a")

        with pytest.raises(CyclicDependencyError):
            bare_repo_session.concretize(Spec("cyc-a"))

    def test_greedy_no_backtrack_hwloc_case(self, bare_repo_session):
        """§4.5's limitation, reproduced: P needs hwloc@1.9 and mpi; the
        preferred MPI strictly needs hwloc@1.8 -> error (no backtracking),
        but forcing the other MPI works."""
        repo = bare_repo_session.repo.repos[0]

        @repo.register("hwloc")
        class Hwloc(Package):
            version("1.8", "x")
            version("1.9", "y")

        @repo.register("ampi")
        class Ampi(Package):
            version("1.0", "x")
            provides("mpi2")
            depends_on("hwloc@1.8")

        @repo.register("bmpi")
        class Bmpi(Package):
            version("1.0", "x")
            provides("mpi2")
            depends_on("hwloc@1.9")

        @repo.register("p")
        class P(Package):
            version("1.0", "x")
            depends_on("hwloc@1.9")
            depends_on("mpi2")

        bare_repo_session.config.update(
            "user", {"preferences": {"providers": {"mpi2": ["ampi", "bmpi"]}}}
        )
        with pytest.raises(ConcretizationError):
            bare_repo_session.concretize(Spec("p"))
        c = bare_repo_session.concretize(Spec("p ^bmpi"))
        assert str(c["hwloc"].version) == "1.9"


class TestExternals:
    def test_external_resolved(self, session):
        prefix = session.register_external("openmpi@1.8.2")
        c = session.concretize(Spec("mpileaks ^openmpi"))
        assert c["openmpi"].external == prefix
        assert str(c["openmpi"].version) == "1.8.2"

    def test_nonbuildable_without_external(self, tmp_path):
        from repro.session import Session

        s = Session.create(
            str(tmp_path / "u"),
            config_overrides={"packages": {"mpich": {"buildable": False}}},
        )
        with pytest.raises(ConcretizationError):
            s.concretize(Spec("mpileaks ^mpich"))


class TestConflictsDirective:
    def test_conflicting_spec_rejected(self, bare_repo_session):
        from repro.directives import conflicts

        repo = bare_repo_session.repo.repos[0]

        @repo.register("picky")
        class Picky(Package):
            version("1.0", "x")
            conflicts("%xl", msg="does not build with XL")

        with pytest.raises(Exception, match="does not build with XL"):
            bare_repo_session.concretize(Spec("picky%xl"))
        bare_repo_session.concretize(Spec("picky%gcc"))
