"""Filesystem views: projections and conflict resolution (§4.3.1)."""

import os

import pytest

from repro.spec.spec import Spec
from repro.views.view import View, ViewError, ViewRule, preference_key


class TestProjection:
    def test_basic_link(self, installed_mpileaks, tmp_path):
        session, spec, _ = installed_mpileaks
        view = View(session, str(tmp_path / "view"))
        view.add_rule(ViewRule("/opt/${PACKAGE}-${VERSION}-${MPINAME}", match="mpileaks"))
        links = view.refresh()
        assert len(links) == 1
        link = next(iter(links))
        assert link.endswith("opt/mpileaks-2.3-mvapich2")
        assert os.readlink(link) == session.store.layout.path_for_spec(spec)

    def test_paper_example_rule(self, installed_mpileaks, tmp_path):
        session, _, _ = installed_mpileaks
        session.install("mpileaks ^openmpi")
        view = View(session, str(tmp_path / "view"))
        view.add_rule(ViewRule("/opt/${PACKAGE}-${VERSION}-${MPINAME}", match="mpileaks"))
        links = view.refresh()
        names = sorted(os.path.basename(l) for l in links)
        assert names == ["mpileaks-2.3-mvapich2", "mpileaks-2.3-openmpi"]

    def test_generic_link_projects_many_to_one(self, installed_mpileaks, tmp_path):
        session, _, _ = installed_mpileaks
        session.install("mpileaks ^openmpi")
        view = View(session, str(tmp_path / "view"))
        view.add_rule(ViewRule("/opt/${PACKAGE}-${VERSION}", match="mpileaks"))
        links = view.refresh()
        assert len(links) == 1  # both builds project to the same link

    def test_unmatched_specs_not_linked(self, installed_mpileaks, tmp_path):
        session, _, _ = installed_mpileaks
        view = View(session, str(tmp_path / "view"))
        view.add_rule(ViewRule("/opt/${PACKAGE}", match="libelf"))
        links = view.refresh()
        assert [os.path.basename(l) for l in links] == ["libelf"]

    def test_rules_from_config(self, session, tmp_path):
        session.config.update(
            "user",
            {"views": {"rules": [{"match": "libelf", "link": "/l/${PACKAGE}-${VERSION}"}]}},
        )
        session.install("libelf")
        view = View(session, str(tmp_path / "view"))
        links = view.refresh()
        assert [os.path.basename(l) for l in links] == ["libelf-0.8.13"]


class TestConflictResolution:
    def test_newer_version_wins_by_default(self, session, tmp_path):
        session.install("libelf@0.8.12")
        session.install("libelf@0.8.13")
        view = View(session, str(tmp_path / "view"))
        view.add_rule(ViewRule("/opt/${PACKAGE}", match="libelf"))
        links = view.refresh()
        target = next(iter(links.values()))
        assert str(target.version) == "0.8.13"

    def test_compiler_order_overrides(self, session, tmp_path):
        """The §4.3.1 compiler_order = icc,gcc@4.4.7 mechanism."""
        session.install("libelf%gcc@4.9.2")
        session.install("libelf%intel@15.0.1")
        view = View(session, str(tmp_path / "view"))
        view.add_rule(ViewRule("/opt/${PACKAGE}", match="libelf"))
        # default: no compiler_order -> tie falls to newer compiler... make
        # the preference explicit both ways and watch the link move.
        session.config.update(
            "user", {"preferences": {"compiler_order": ["intel", "gcc"]}}
        )
        links = view.refresh()
        assert next(iter(links.values())).compiler.name == "intel"
        session.config.update(
            "user", {"preferences": {"compiler_order": ["gcc", "intel"]}}
        )
        links = view.refresh()
        assert next(iter(links.values())).compiler.name == "gcc"

    def test_preference_key_deterministic(self, session):
        a = session.concretize(Spec("libelf@0.8.13"))
        b = session.concretize(Spec("libelf@0.8.12"))
        ka = preference_key(a, session.config)
        kb = preference_key(b, session.config)
        assert ka < kb  # newer version preferred (smaller key)


class TestMaintenance:
    def test_uninstall_then_refresh_repoints(self, session, tmp_path):
        session.install("libelf@0.8.12")
        spec13, _ = session.install("libelf@0.8.13")
        view = View(session, str(tmp_path / "view"))
        view.add_rule(ViewRule("/opt/${PACKAGE}", match="libelf"))
        view.refresh()
        session.uninstall("libelf@0.8.13")
        links = view.refresh()
        target = next(iter(links.values()))
        assert str(target.version) == "0.8.12"

    def test_stale_links_pruned(self, session, tmp_path):
        session.install("libelf")
        view = View(session, str(tmp_path / "view"))
        view.add_rule(ViewRule("/opt/${PACKAGE}", match="libelf"))
        view.refresh()
        session.installer.uninstall(session.find("libelf")[0], force=True)
        links = view.refresh()
        assert links == {}
        assert view.links() == {}

    def test_existing_non_link_not_clobbered(self, session, tmp_path):
        session.install("libelf")
        view_root = tmp_path / "view"
        (view_root / "opt").mkdir(parents=True)
        (view_root / "opt" / "libelf").write_text("I am a real file")
        view = View(session, str(view_root))
        view.add_rule(ViewRule("/opt/${PACKAGE}", match="libelf"))
        with pytest.raises(ViewError):
            view.refresh()

    def test_resolve(self, session, tmp_path):
        spec, _ = session.install("libelf")
        view = View(session, str(tmp_path / "view"))
        view.add_rule(ViewRule("/opt/${PACKAGE}", match="libelf"))
        view.refresh()
        assert view.resolve("/opt/libelf") == session.store.layout.path_for_spec(spec)
        with pytest.raises(ViewError):
            view.resolve("/opt/nothere")
