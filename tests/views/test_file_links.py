"""Per-file view links (§4.3.1's gcc49 example) and config-driven files."""

import os

import pytest

from repro.views.view import View, ViewError, ViewRule


class TestFileLinks:
    def test_executable_links(self, session, tmp_path):
        """'a Spack-built gcc@4.9 may have a view that creates links from
        /bin/gcc49 ... to the appropriate gcc executables' — here with
        mpileaks binaries suffixed by their MPI."""
        session.install("mpileaks ^mvapich2")
        session.install("mpileaks ^openmpi")
        view = View(session, str(tmp_path / "view"))
        view.add_rule(
            ViewRule(
                match="mpileaks",
                file_links={"/bin/mpileaks-${MPINAME}": "bin/mpileaks"},
            )
        )
        links = view.refresh()
        names = sorted(os.path.basename(l) for l in links)
        assert names == ["mpileaks-mvapich2", "mpileaks-openmpi"]
        for link, spec in links.items():
            target = os.readlink(link)
            assert target.endswith(os.path.join("bin", "mpileaks"))
            assert os.path.isfile(target)

    def test_prefix_and_file_links_together(self, session, tmp_path):
        session.install("libelf")
        view = View(session, str(tmp_path / "view"))
        view.add_rule(
            ViewRule(
                "/opt/${PACKAGE}",
                match="libelf",
                file_links={"/lib/liblibelf-${VERSION}.so.json": "lib/liblibelf.so.json"},
            )
        )
        links = view.refresh()
        rels = sorted(os.path.relpath(l, view.root) for l in links)
        assert rels == ["lib/liblibelf-0.8.13.so.json", "opt/libelf"]

    def test_file_link_conflicts_resolved_by_preference(self, session, tmp_path):
        session.install("libelf@0.8.12")
        session.install("libelf@0.8.13")
        view = View(session, str(tmp_path / "view"))
        view.add_rule(
            ViewRule(match="libelf", file_links={"/bin/libelf": "bin/libelf"})
        )
        links = view.refresh()
        assert len(links) == 1
        assert str(next(iter(links.values())).version) == "0.8.13"

    def test_rule_requires_some_projection(self):
        with pytest.raises(ViewError):
            ViewRule()

    def test_config_file_links(self, session, tmp_path):
        session.config.update(
            "user",
            {
                "views": {
                    "rules": [
                        {
                            "match": "libelf",
                            "files": {"/bin/elfdump": "bin/libelf"},
                        }
                    ]
                }
            },
        )
        session.install("libelf")
        view = View(session, str(tmp_path / "view"))
        links = view.refresh()
        assert [os.path.basename(l) for l in links] == ["elfdump"]
