"""Utility-layer tests: lang, naming, filesystem, environment, executable."""

import os
import sys

import pytest

from repro.util.environment import EnvironmentModifications
from repro.util.executable import Executable, ProcessError, which
from repro.util.filesystem import (
    FilesystemError,
    LinkTree,
    ancestor,
    force_remove,
    install_tree,
    mkdirp,
    touch,
    traverse_tree,
    working_dir,
)
from repro.util.lang import dedupe, key_ordering, lazy_property, memoized, stable_partition
from repro.util.naming import (
    InvalidPackageNameError,
    mod_to_class,
    pkg_name_to_module_name,
    valid_name,
    validate_name,
)


class TestLang:
    def test_key_ordering(self):
        @key_ordering
        class Box:
            def __init__(self, v):
                self.v = v

            def _cmp_key(self):
                return (self.v,)

        assert Box(1) < Box(2)
        assert Box(2) == Box(2)
        assert Box(3) >= Box(2)
        assert hash(Box(1)) == hash(Box(1))
        assert Box(1).__eq__(42) is NotImplemented

    def test_key_ordering_requires_cmp_key(self):
        with pytest.raises(TypeError):
            @key_ordering
            class Bad:
                pass

    def test_memoized(self):
        calls = []

        @memoized
        def f(x):
            calls.append(x)
            return x * 2

        assert f(2) == 4 and f(2) == 4
        assert calls == [2]
        f.cache.clear()
        f(2)
        assert calls == [2, 2]

    def test_dedupe(self):
        assert list(dedupe([3, 1, 3, 2, 1])) == [3, 1, 2]

    def test_lazy_property(self):
        class Thing:
            count = 0

            @lazy_property
            def value(self):
                type(self).count += 1
                return 42

        t = Thing()
        assert t.value == 42 and t.value == 42
        assert Thing.count == 1

    def test_stable_partition(self):
        evens, odds = stable_partition(range(6), lambda x: x % 2 == 0)
        assert evens == [0, 2, 4] and odds == [1, 3, 5]


class TestNaming:
    @pytest.mark.parametrize("name", ["mpileaks", "py-numpy", "sgeos_xml", "bzip2", "a.b-c_d"])
    def test_valid(self, name):
        assert valid_name(name)
        assert validate_name(name) == name

    @pytest.mark.parametrize("name", ["", "-bad", ".bad", "has space", None, "x!"])
    def test_invalid(self, name):
        assert not valid_name(name)
        with pytest.raises(InvalidPackageNameError):
            validate_name(name)

    @pytest.mark.parametrize(
        "mod,cls",
        [
            ("mpileaks", "Mpileaks"),
            ("py-numpy", "PyNumpy"),
            ("sgeos_xml", "SgeosXml"),
            ("netlib-lapack", "NetlibLapack"),
            ("3proxy", "_3proxy"),
        ],
    )
    def test_mod_to_class(self, mod, cls):
        assert mod_to_class(mod) == cls

    def test_module_name(self):
        assert pkg_name_to_module_name("py-numpy") == "py_numpy"


class TestFilesystem:
    def test_mkdirp_idempotent(self, tmp_path):
        target = tmp_path / "a" / "b" / "c"
        mkdirp(str(target))
        mkdirp(str(target))
        assert target.is_dir()

    def test_touch_and_force_remove(self, tmp_path):
        f = tmp_path / "file"
        touch(str(f))
        assert f.exists()
        force_remove(str(f))
        assert not f.exists()
        force_remove(str(f))  # no error on missing

    def test_working_dir(self, tmp_path):
        original = os.getcwd()
        with working_dir(str(tmp_path / "sub"), create=True):
            assert os.getcwd() == str(tmp_path / "sub")
        assert os.getcwd() == original

    def test_ancestor(self):
        assert ancestor("/a/b/c", 2) == "/a"

    def test_traverse_tree_preorder(self, tmp_path):
        (tmp_path / "d").mkdir()
        (tmp_path / "d" / "f").write_text("x")
        (tmp_path / "top").write_text("y")
        entries = list(traverse_tree(str(tmp_path)))
        assert ("d", True) in entries
        assert entries.index(("d", True)) < entries.index((os.path.join("d", "f"), False))

    def test_install_tree(self, tmp_path):
        src = tmp_path / "src"
        (src / "sub").mkdir(parents=True)
        (src / "sub" / "f").write_text("content")
        install_tree(str(src), str(tmp_path / "dst"))
        assert (tmp_path / "dst" / "sub" / "f").read_text() == "content"


class TestLinkTree:
    def _tree(self, tmp_path):
        src = tmp_path / "src"
        (src / "bin").mkdir(parents=True)
        (src / "bin" / "tool").write_text("tool")
        (src / "readme").write_text("doc")
        return LinkTree(str(src)), tmp_path / "dst"

    def test_merge_and_unmerge(self, tmp_path):
        tree, dst = self._tree(tmp_path)
        dst.mkdir()
        tree.merge(str(dst))
        assert (dst / "bin" / "tool").is_symlink()
        assert (dst / "readme").is_symlink()
        tree.unmerge(str(dst))
        assert not (dst / "readme").exists()
        assert not (dst / "bin").exists()  # emptied dirs pruned

    def test_conflict_detected(self, tmp_path):
        tree, dst = self._tree(tmp_path)
        (dst / "bin").mkdir(parents=True)
        (dst / "bin" / "tool").write_text("preexisting")
        assert tree.find_conflict(str(dst)) == os.path.join("bin", "tool")
        with pytest.raises(FilesystemError):
            tree.merge(str(dst))

    def test_ignore_filter(self, tmp_path):
        tree, dst = self._tree(tmp_path)
        dst.mkdir()
        tree.merge(str(dst), ignore=lambda rel: rel == "readme")
        assert not (dst / "readme").exists()
        assert (dst / "bin" / "tool").is_symlink()

    def test_unmerge_preserves_foreign_files(self, tmp_path):
        tree, dst = self._tree(tmp_path)
        dst.mkdir()
        tree.merge(str(dst))
        (dst / "bin" / "other").write_text("not ours")
        tree.unmerge(str(dst))
        assert (dst / "bin" / "other").exists()


class TestEnvironmentMods:
    def test_set_unset(self):
        mods = EnvironmentModifications()
        mods.set("A", "1")
        mods.unset("B")
        env = mods.applied_to({"B": "x"})
        assert env == {"A": "1"}

    def test_paths(self):
        mods = EnvironmentModifications()
        mods.prepend_path("PATH", "/first")
        mods.append_path("PATH", "/last")
        env = mods.applied_to({"PATH": "/mid"})
        assert env["PATH"] == "/first:/mid:/last"

    def test_remove_path(self):
        mods = EnvironmentModifications()
        mods.remove_path("PATH", "/gone")
        env = mods.applied_to({"PATH": "/keep:/gone"})
        assert env["PATH"] == "/keep"
        env2 = mods.applied_to({"PATH": "/gone"})
        assert "PATH" not in env2

    def test_ordered_replay_and_extend(self):
        a = EnvironmentModifications()
        a.set("X", "1")
        b = EnvironmentModifications()
        b.set("X", "2")
        a.extend(b)
        assert a.applied_to({})["X"] == "2"
        assert len(a) == 2


class TestExecutable:
    def test_capture_output(self):
        py = Executable(sys.executable)
        out = py("-c", "print('hello')", output=str)
        assert out.strip() == "hello"

    def test_failure_raises(self):
        py = Executable(sys.executable)
        with pytest.raises(ProcessError):
            py("-c", "import sys; sys.exit(3)")

    def test_ignore_errors(self):
        py = Executable(sys.executable)
        py("-c", "import sys; sys.exit(3)", ignore_errors=(3,))
        assert py.returncode == 3

    def test_baked_args(self):
        py = Executable(sys.executable, "-c")
        assert py("print(6*7)", output=str).strip() == "42"

    def test_which(self, tmp_path):
        tool = tmp_path / "mytool"
        tool.write_text("#!/bin/sh\necho hi\n")
        tool.chmod(0o755)
        found = which("mytool", path=[str(tmp_path)])
        assert found is not None and found.name == "mytool"
        assert which("definitely-not-here", path=[str(tmp_path)]) is None
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            which("definitely-not-here", path=[str(tmp_path)], required=True)
