"""InternPool: the bounded, thread-safe cache behind version interning."""

import sys
import threading

from repro.util.intern import InternPool
from repro.version import Version, VersionList, ver


class TestInternPool:
    def test_miss_then_hit(self):
        pool = InternPool()
        assert pool.get("k") is None
        obj = object()
        assert pool.put("k", obj) is obj
        assert pool.get("k") is obj

    def test_first_writer_wins(self):
        pool = InternPool()
        a, b = object(), object()
        assert pool.put("k", a) is a
        # a racing second writer gets the canonical (first) object back
        assert pool.put("k", b) is a
        assert pool.get("k") is a

    def test_bounded(self):
        pool = InternPool(maxsize=2)
        pool.put(1, "a")
        pool.put(2, "b")
        pool.put(3, "c")  # over budget: not admitted
        assert pool.get(1) == "a"
        assert pool.get(2) == "b"
        assert pool.get(3) is None

    def test_intern_calls_factory_once_per_key(self):
        pool = InternPool()
        calls = []

        def factory():
            calls.append(1)
            return object()

        first = pool.intern("k", factory)
        second = pool.intern("k", factory)
        assert first is second
        assert len(calls) == 1

    def test_stats_and_clear(self):
        pool = InternPool()
        pool.get("missing")
        pool.put("k", "v")
        pool.get("k")
        stats = pool.stats()
        assert stats["hits"] >= 1
        assert stats["misses"] >= 1
        assert stats["size"] == 1
        pool.clear()
        assert pool.get("k") is None
        assert pool.stats()["size"] == 0

    def test_concurrent_interning_is_consistent(self):
        pool = InternPool()
        results = [[] for _ in range(8)]

        def worker(bucket):
            for i in range(200):
                bucket.append(pool.intern(i % 20, object))

        threads = [
            threading.Thread(target=worker, args=(results[t],))
            for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # every thread saw the same canonical object per key
        for key in range(20):
            seen = {
                id(bucket[i])
                for bucket in results
                for i in range(key, len(bucket), 20)
            }
            assert len(seen) == 1

    def test_hammered_hit_count_is_exact(self):
        """Regression: ``get`` bumped a shared ``hits`` counter without a
        lock, so concurrent readers interleaved the read-modify-write and
        lost updates.  Per-thread cells must make the folded total exact.

        CPython's scheduler only preempts at function entries and loop
        back-edges, which makes a one-statement ``+=`` look atomic and
        hides the race from a naive hammer — so each worker installs an
        opcode-granular trace on ``get`` that yields the GIL before every
        instruction, exposing every interleaving the language allows."""
        import time

        pool = InternPool()
        pool.put("hot", "value")
        pool.get("hot")  # this thread's tally: 1 hit
        n_threads, n_iters = 4, 300
        barrier = threading.Barrier(n_threads)
        get_code = InternPool.get.__code__

        def preempt_every_opcode(frame, event, arg):
            if event == "opcode":
                time.sleep(0)  # drop the GIL: let another worker run
            return preempt_every_opcode

        def global_trace(frame, event, arg):
            if event == "call" and frame.f_code is get_code:
                frame.f_trace_opcodes = True
                return preempt_every_opcode
            return None

        def worker():
            sys.settrace(global_trace)
            try:
                barrier.wait()
                for _ in range(n_iters):
                    pool.get("hot")
            finally:
                sys.settrace(None)

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            threads = [
                threading.Thread(target=worker) for _ in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            sys.setswitchinterval(old_interval)
        assert pool.stats()["hits"] == n_threads * n_iters + 1

    def test_hammered_miss_count_is_exact(self):
        """Misses are counted under the admission lock; racing writers
        over disjoint keys must each count exactly once."""
        pool = InternPool()
        n_threads, n_keys = 8, 500
        barrier = threading.Barrier(n_threads)

        def worker(tid):
            barrier.wait()
            for i in range(n_keys):
                pool.put((tid, i), object())

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert pool.stats()["misses"] == n_threads * n_keys

    def test_stats_survive_worker_thread_death(self):
        pool = InternPool()
        pool.put("k", "v")

        def worker():
            for _ in range(10):
                pool.get("k")

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        # the dead thread's cell is still folded into the totals
        assert pool.stats()["hits"] == 10


class TestVersionInterning:
    def test_same_string_is_same_object(self):
        assert Version("1.2.3") is Version("1.2.3")
        assert Version("2.0-beta_3") is Version("2.0-beta_3")

    def test_different_strings_differ(self):
        assert Version("1.2.3") is not Version("1.2.30")

    def test_ranges_interned_through_parse(self):
        assert ver("1.0:2.0").constraints[0] is ver("1.0:2.0").constraints[0]

    def test_list_parse_pool_returns_fresh_lists(self):
        a = VersionList("1.0:2.0,3.0")
        b = VersionList("1.0:2.0,3.0")
        assert a == b
        a.intersect(VersionList("3.0"))
        # the second parse must not share mutable state with the first
        assert b == VersionList("1.0:2.0,3.0")
