"""File locking and cross-process database safety."""

import json
import multiprocessing
import os

import pytest

from repro.util.lock import Lock, LockTimeoutError


class TestLock:
    def test_acquire_release(self, tmp_path):
        lock = Lock(str(tmp_path / "l"))
        assert not lock.held
        with lock:
            assert lock.held
        assert not lock.held

    def test_reentrant(self, tmp_path):
        lock = Lock(str(tmp_path / "l"))
        with lock:
            with lock:
                assert lock.held
            assert lock.held
        assert not lock.held

    def test_timeout_against_other_holder(self, tmp_path):
        path = str(tmp_path / "l")
        # a second Lock *object* contends like a second process would
        first, second = Lock(path), Lock(path)
        first.acquire()
        try:
            with pytest.raises(LockTimeoutError):
                second.acquire(timeout=0.2, poll=0.02)
        finally:
            first.release()
        second.acquire(timeout=0.2)
        second.release()

    def test_creates_parent_dirs(self, tmp_path):
        lock = Lock(str(tmp_path / "deep" / "dirs" / "l"))
        with lock:
            pass
        assert os.path.isdir(str(tmp_path / "deep" / "dirs"))


def _concurrent_adds(store_root, index, result_queue):
    """Child process: add a distinct libelf record to the shared DB."""
    try:
        from repro.compilers.registry import CompilerRegistry, Compiler
        from repro.spec.spec import Spec
        from repro.store.database import Database

        db = Database(store_root)
        spec = Spec("libelf@0.8.%d%%gcc@4.9.2=linux-x86_64" % index)
        spec._concrete = True
        for _ in range(5):
            db.add(spec, "/prefix/%d" % index)
        result_queue.put(("ok", index))
    except Exception as e:  # pragma: no cover - diagnostic path
        result_queue.put(("error", repr(e)))


class TestDatabaseConcurrency:
    def test_parallel_writers_lose_nothing(self, tmp_path):
        store_root = str(tmp_path / "store")
        os.makedirs(store_root)
        queue = multiprocessing.Queue()
        workers = [
            multiprocessing.Process(target=_concurrent_adds, args=(store_root, i, queue))
            for i in range(4)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=30)
        results = [queue.get(timeout=5) for _ in workers]
        assert all(status == "ok" for status, _ in results), results

        from repro.store.database import Database

        db = Database(store_root)
        assert len(db) == 4  # one record per worker, none lost

    def test_index_file_remains_valid_json(self, tmp_path):
        store_root = str(tmp_path / "store")
        os.makedirs(store_root)
        queue = multiprocessing.Queue()
        workers = [
            multiprocessing.Process(target=_concurrent_adds, args=(store_root, i, queue))
            for i in range(3)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=30)
        index = os.path.join(store_root, ".spack-db", "index.json")
        with open(index) as f:
            data = json.load(f)  # must parse
        assert len(data["installs"]) == 3
