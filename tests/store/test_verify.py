"""Install verification: detecting on-disk damage (failure injection)."""

import json
import os
import shutil

import pytest

from repro.store.verify import verify_install, verify_store


class TestHealthy:
    def test_fresh_install_verifies(self, installed_mpileaks):
        session, _, _ = installed_mpileaks
        assert verify_store(session) == []

    def test_external_verifies_by_presence(self, session):
        session.register_external("openmpi@1.8.2")
        session.install("mpileaks ^openmpi")
        assert verify_store(session) == []


class TestDamage:
    def test_missing_prefix(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        prefix = session.store.layout.path_for_spec(spec["libelf"])
        shutil.rmtree(prefix)
        issues = verify_store(session)
        kinds = {(i.spec.name, i.kind) for i in issues}
        assert ("libelf", "missing-prefix") in kinds

    def test_deleted_artifact(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        prefix = session.store.layout.path_for_spec(spec)
        os.unlink(os.path.join(prefix, "lib", "libmpileaks.so.json"))
        issues = verify_install(session, session.db.get(spec))
        assert any(i.kind == "missing-artifact" for i in issues)

    def test_corrupt_artifact(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        prefix = session.store.layout.path_for_spec(spec)
        with open(os.path.join(prefix, "lib", "libmpileaks.so.json"), "w") as f:
            f.write("{ not json")
        issues = verify_install(session, session.db.get(spec))
        assert any(i.kind == "corrupt-artifact" for i in issues)

    def test_provenance_mismatch(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        prefix = session.store.layout.path_for_spec(spec["libelf"])
        spec_file = os.path.join(prefix, ".spack", "spec.json")
        data = json.load(open(spec_file))
        data["nodes"][0]["versions"] = "9.9.9"  # someone edited history
        json.dump(data, open(spec_file, "w"))
        issues = verify_install(session, session.db.get(spec["libelf"]))
        assert any(i.kind == "provenance-mismatch" for i in issues)

    def test_broken_rpath_target(self, installed_mpileaks):
        """Deleting a dependency's prefix out from under a binary is
        caught as unresolvable libraries."""
        session, spec, _ = installed_mpileaks
        dep_prefix = session.store.layout.path_for_spec(spec["callpath"])
        shutil.rmtree(dep_prefix)
        issues = verify_install(session, session.db.get(spec))
        assert any(i.kind == "unresolvable-libraries" for i in issues)


class TestCLI:
    def test_verify_ok_and_failing(self, tmp_path, capsys):
        from repro.cli.main import main

        root = str(tmp_path / "u")
        assert main(["--root", root, "install", "libelf"]) == 0
        capsys.readouterr()
        assert main(["--root", root, "verify"]) == 0
        out = capsys.readouterr().out
        assert "no issues" in out

        # damage it
        prefix_line = None
        main(["--root", root, "location", "libelf"])
        prefix = capsys.readouterr().out.strip()
        os.unlink(os.path.join(prefix, "bin", "libelf"))
        assert main(["--root", root, "verify"]) == 1
        out = capsys.readouterr().out
        assert "missing-artifact" in out

    def test_reindex_cli(self, tmp_path, capsys):
        from repro.cli.main import main

        root = str(tmp_path / "u")
        main(["--root", root, "install", "libdwarf"])
        # nuke the index, rebuild from provenance
        os.unlink(os.path.join(root, ".spack-db", "index.json"))
        capsys.readouterr()
        assert main(["--root", root, "reindex"]) == 0
        out = capsys.readouterr().out
        assert "reindexed 2 installed specs" in out
        assert main(["--root", root, "find", "libdwarf"]) == 0
        assert "1 installed packages" in capsys.readouterr().out
