"""The install planner: classification, state machine, leveling."""

import pytest

from repro.store import plan as P
from repro.store.plan import InstallPlan, NodeTask, Planner, PlanError


def _plan_for(session, spec_text="mpileaks"):
    concrete = session.concretize(spec_text)
    return concrete, Planner(session).plan(concrete)


class TestClassification:
    def test_fresh_dag_is_all_build(self, session):
        concrete, plan = _plan_for(session)
        assert len(plan) == len(list(concrete.traverse()))
        assert all(t.action == P.BUILD for t in plan.ordered_tasks())

    def test_installed_nodes_become_reuse(self, session):
        session.install("libelf")
        concrete, plan = _plan_for(session, "libdwarf")
        actions = {t.node.name: t.action for t in plan.ordered_tasks()}
        assert actions["libelf"] == P.REUSE
        assert actions["libdwarf"] == P.BUILD

    def test_externals_never_build(self, session):
        session.register_external("openmpi@1.8.2")
        _, plan = _plan_for(session, "mpileaks ^openmpi")
        actions = {t.node.name: t.action for t in plan.ordered_tasks()}
        assert actions["openmpi"] == P.EXTERNAL

    def test_prefix_resolved_for_every_node(self, session):
        concrete, plan = _plan_for(session)
        for task in plan.ordered_tasks():
            assert task.node.prefix

    def test_abstract_spec_rejected(self, session):
        from repro.spec.spec import Spec

        with pytest.raises(PlanError, match="concrete"):
            Planner(session).plan(Spec("mpileaks"))


class TestOrderingAndLevels:
    def test_post_order_indices_match_traversal(self, session):
        concrete, plan = _plan_for(session)
        expected = [n.dag_hash() for n in concrete.traverse(order="post")]
        assert [t.key for t in plan.ordered_tasks()] == expected
        assert [t.index for t in plan.ordered_tasks()] == list(range(len(plan)))

    def test_deps_precede_dependents_in_order(self, session):
        _, plan = _plan_for(session)
        position = {t.key: i for i, t in enumerate(plan.ordered_tasks())}
        for task in plan.ordered_tasks():
            for dep in task.deps:
                assert position[dep] < position[task.key]

    def test_levels_leaves_first(self, session):
        _, plan = _plan_for(session)
        levels = plan.levels()
        # level 0 tasks have no deps; each task's level exceeds its deps'
        for key in levels[0]:
            assert not plan.tasks[key].deps
        for task in plan.ordered_tasks():
            for dep in task.deps:
                assert plan.tasks[dep].level < task.level

    def test_root_flagged(self, session):
        concrete, plan = _plan_for(session)
        roots = [t for t in plan.ordered_tasks() if t.is_root]
        assert [t.key for t in roots] == [concrete.dag_hash()]


class TestStateMachine:
    def test_seeded_ready_is_exactly_the_leaves(self, session):
        _, plan = _plan_for(session)
        ready = plan.ready_tasks()
        assert ready
        assert all(not t.deps for t in ready)
        assert all(
            t.state == P.WAITING for t in plan.ordered_tasks() if t.deps
        )

    def test_illegal_transitions_rejected(self, session):
        _, plan = _plan_for(session)
        task = plan.ready_tasks()[0]
        with pytest.raises(PlanError, match="READY -> INSTALLED"):
            task.to(P.INSTALLED)
        task.to(P.BUILDING)
        with pytest.raises(PlanError, match="BUILDING -> READY"):
            task.to(P.READY)
        task.to(P.INSTALLED)
        with pytest.raises(PlanError):
            task.to(P.FAILED)  # terminal states are final

    def test_mark_installed_readies_dependents(self, session):
        _, plan = _plan_for(session, "libdwarf")
        by_name = {t.node.name: t for t in plan.ordered_tasks()}
        assert by_name["libdwarf"].state == P.WAITING
        libelf = by_name["libelf"]
        libelf.to(P.BUILDING)
        newly = plan.mark_installed(libelf.key)
        assert by_name["libdwarf"] in newly
        assert by_name["libdwarf"].state == P.READY

    def test_mark_failed_skips_transitive_dependents_only(self, session):
        _, plan = _plan_for(session)  # mpileaks -> callpath/mpi -> ... -> libelf
        by_name = {t.node.name: t for t in plan.ordered_tasks()}
        libelf = by_name["libelf"]
        libelf.to(P.BUILDING)
        boom = RuntimeError("boom")
        skipped = plan.mark_failed(libelf.key, boom)
        skipped_names = {t.node.name for t in skipped}
        # everything above libelf is skipped...
        assert {"libdwarf", "dyninst", "callpath", "mpileaks"} <= skipped_names
        # ...but the disjoint MPI sub-DAG is still runnable
        assert by_name["mvapich2"].state in (P.WAITING, P.READY)
        assert libelf.error is boom

    def test_skip_pending_sweeps_everything_unstarted(self, session):
        _, plan = _plan_for(session)
        task = plan.ready_tasks()[0]
        task.to(P.BUILDING)
        plan.skip_pending()
        for t in plan.ordered_tasks():
            assert t.state in (P.BUILDING, P.SKIPPED)
        assert not plan.done  # BUILDING is not terminal

    def test_done_when_all_terminal(self, session):
        _, plan = _plan_for(session, "libelf")
        (task,) = plan.ordered_tasks()
        task.to(P.BUILDING)
        plan.mark_installed(task.key)
        assert plan.done
