"""Directory layout (Table 1), database, and sub-DAG sharing (§3.4.2)."""

import json
import os

import pytest

from repro.spec.spec import Spec
from repro.store.database import Database, DatabaseError
from repro.store.layout import (
    SITE_CONVENTIONS,
    DirectoryLayout,
    DirectoryLayoutError,
)


class TestLayout:
    def test_table1_spack_default_shape(self, session):
        concrete = session.concretize(Spec("mpileaks"))
        rel = session.store.layout.relative_path_for_spec(concrete)
        arch, compiler, pkg_dir = rel.split(os.sep)
        assert arch == "linux-x86_64"
        assert compiler == "gcc-4.9.2"
        assert pkg_dir.startswith("mpileaks-2.3~debug-")
        assert pkg_dir.endswith(concrete.dag_hash(8))

    def test_unique_per_configuration(self, session):
        a = session.concretize(Spec("mpileaks"))
        b = session.concretize(Spec("mpileaks+debug"))
        c = session.concretize(Spec("mpileaks ^openmpi"))
        paths = {session.store.layout.path_for_spec(s) for s in (a, b, c)}
        assert len(paths) == 3

    def test_dependency_changes_path(self, session):
        # Identical root parameters, different dependency version: Table 1's
        # point that only the hash can represent this.
        a = session.concretize(Spec("mpileaks ^libelf@0.8.13"))
        b = session.concretize(Spec("mpileaks ^libelf@0.8.12"))
        assert a.versions == b.versions
        assert session.store.layout.path_for_spec(a) != session.store.layout.path_for_spec(b)

    def test_abstract_spec_rejected(self, session):
        with pytest.raises(DirectoryLayoutError):
            session.store.layout.path_for_spec(Spec("mpileaks"))

    def test_external_prefix_passthrough(self, session):
        prefix = session.register_external("openmpi@1.8.2")
        concrete = session.concretize(Spec("mpileaks ^openmpi"))
        assert session.store.layout.path_for_spec(concrete["openmpi"]) == prefix

    def test_create_twice_rejected(self, session):
        concrete = session.concretize(Spec("libelf"))
        session.store.layout.create_install_directory(concrete)
        with pytest.raises(DirectoryLayoutError):
            session.store.layout.create_install_directory(concrete)


class TestSiteConventions:
    @pytest.fixture
    def concrete(self, session):
        return session.concretize(Spec("mpileaks"))

    def test_all_rows_render(self, concrete):
        for convention in SITE_CONVENTIONS:
            path = convention.path_for_spec(concrete)
            assert path.startswith("/")
            assert "${" not in path

    def test_llnl_global(self, concrete):
        convention = SITE_CONVENTIONS[0]
        assert convention.path_for_spec(concrete) == \
            "/usr/global/tools/linux-x86_64/mpileaks/2.3"

    def test_tacc_includes_mpi(self, concrete):
        tacc = next(c for c in SITE_CONVENTIONS if "TACC" in c.site)
        path = tacc.path_for_spec(concrete)
        assert "/mvapich2/" in path

    def test_conventions_collide_where_spack_does_not(self, session):
        """The paper's core Table 1 argument: site conventions cannot
        distinguish two builds differing only in a dependency version."""
        a = session.concretize(Spec("mpileaks ^libelf@0.8.13"))
        b = session.concretize(Spec("mpileaks ^libelf@0.8.12"))
        spack = SITE_CONVENTIONS[-1]
        for convention in SITE_CONVENTIONS[:-1]:
            assert convention.path_for_spec(a) == convention.path_for_spec(b)
        assert spack.path_for_spec(a) != spack.path_for_spec(b)


class TestDatabase:
    def test_add_query_remove(self, session):
        concrete = session.concretize(Spec("libelf"))
        db = session.db
        db.add(concrete, "/prefix/libelf", explicit=True)
        assert db.installed(concrete)
        assert len(db.query("libelf")) == 1
        assert db.query(explicit=True)[0].spec.name == "libelf"
        db.remove(concrete)
        assert not db.installed(concrete)

    def test_abstract_rejected(self, session):
        with pytest.raises(DatabaseError):
            session.db.add(Spec("libelf"), "/x")

    def test_remove_missing(self, session):
        concrete = session.concretize(Spec("libelf"))
        with pytest.raises(DatabaseError):
            session.db.remove(concrete)

    def test_query_with_constraints(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        assert session.db.query("mpileaks@2.3")
        assert not session.db.query("mpileaks@1.0")
        assert session.db.query("mpileaks%gcc")
        assert not session.db.query("mpileaks%intel")

    def test_dependents_of(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        libelf_dependents = {
            r.spec.name for r in session.db.dependents_of(spec["libelf"])
        }
        assert "libdwarf" in libelf_dependents
        assert "mpileaks" in libelf_dependents

    def test_persistence(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        reopened = Database(session.store.root)
        assert reopened.installed(spec)
        assert len(reopened) == len(session.db)

    def test_corrupt_index_rebuilt_from_provenance(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        with open(session.db.index_path, "w") as f:
            f.write("{ corrupted!!!")
        rebuilt = Database(session.store.root)
        assert rebuilt.installed(spec)
        assert rebuilt.installed(spec["libelf"])


class TestSharing:
    def test_figure9_subdag_reuse(self, session):
        """mpileaks with mpich, then openmpi: dyninst subtree shared."""
        spec1, result1 = session.install("mpileaks ^mpich")
        spec2, result2 = session.install("mpileaks ^openmpi")
        assert set(result2.reused_names) >= {"dyninst", "libdwarf", "libelf"}
        assert "openmpi" in result2.built_names
        assert "callpath" in result2.built_names  # depends on MPI: rebuilt
        layout = session.store.layout
        assert layout.path_for_spec(spec1["dyninst"]) == layout.path_for_spec(spec2["dyninst"])
        assert layout.path_for_spec(spec1["callpath"]) != layout.path_for_spec(spec2["callpath"])

    def test_install_twice_reuses_everything(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        _, result = session.install("mpileaks")
        assert result.built == []
        assert len(result.reused) == 6
