"""The relocatable binary build cache: format, integrity, round trips."""

import json
import os
import shutil

import pytest

from repro.session import Session
from repro.spec.spec import Spec
from repro.store.buildcache import (
    BuildCache,
    DigestMismatchError,
    normalized_digest,
    relocate_tree,
)
from repro.telemetry import MemorySink, Telemetry


@pytest.fixture
def cache_root(tmp_path):
    return str(tmp_path / "buildcache")


@pytest.fixture
def pushing_session(tmp_path, cache_root):
    """A session that auto-publishes every build into the shared cache."""
    session = Session.create(str(tmp_path / "warm"))
    session.enable_buildcache(root=cache_root, push=True)
    return session


def _fresh_puller(tmp_path, cache_root, name="cold", **kwargs):
    """A brand-new session (empty store) pulling from the shared cache."""
    session = Session.create(str(tmp_path / name), **kwargs)
    session.enable_buildcache(root=cache_root, pull=True)
    return session


class TestCacheFormat:
    def test_push_writes_tarball_sidecar_and_index(self, pushing_session):
        spec, _ = pushing_session.install("libelf", jobs=1)
        cache = pushing_session.buildcache
        dag_hash = spec.dag_hash()

        entry = cache.lookup(dag_hash)
        assert entry["name"] == "libelf"
        assert os.path.isfile(cache.tarball_path(spec, dag_hash))
        sidecar = cache.load_sidecar(dag_hash)
        assert sidecar["root"] == pushing_session.root
        assert sidecar["digest"] == entry["digest"]
        assert Spec.from_dict(sidecar["spec"]).dag_hash() == dag_hash

    def test_pack_is_deterministic(self, pushing_session):
        spec, _ = pushing_session.install("libelf", jobs=1)
        cache = pushing_session.buildcache
        prefix = pushing_session.store.layout.path_for_spec(spec)
        first = cache._pack(prefix)
        second = cache._pack(prefix)
        assert first == second

    def test_repeated_push_is_idempotent(self, pushing_session):
        spec, _ = pushing_session.install("libelf", jobs=1)
        cache = pushing_session.buildcache
        prefix = pushing_session.store.layout.path_for_spec(spec)
        d1 = cache.push(spec, prefix, pushing_session.root)
        d2 = cache.push(spec, prefix, pushing_session.root)
        assert d1 == d2

    def test_normalized_digest_is_relocation_invariant(self):
        a = b'{"rpaths": ["/root/a/opt/lib"], "needed": []}'
        b = b'{"rpaths": ["/other/b/opt/lib"], "needed": []}'
        assert (
            normalized_digest(a, "/root/a")
            == normalized_digest(b, "/other/b")
        )
        assert normalized_digest(a, "/root/a") != normalized_digest(b, "/root/a")

    def test_relocate_tree_rewrites_only_matching_files(self, tmp_path):
        prefix = tmp_path / "prefix"
        prefix.mkdir()
        (prefix / "with_root.json").write_text('{"p": "/old/root/opt/x"}')
        (prefix / "without.json").write_text('{"p": "nothing"}')
        count = relocate_tree(str(prefix), "/old/root", "/new/home")
        assert count == 1
        assert "/new/home/opt/x" in (prefix / "with_root.json").read_text()

    def test_extract_rejects_escaping_members(self, tmp_path):
        import io
        import tarfile

        raw = io.BytesIO()
        with tarfile.open(fileobj=raw, mode="w:gz") as tar:
            info = tarfile.TarInfo("../escape")
            info.size = 4
            tar.addfile(info, io.BytesIO(b"evil"))
        from repro.store.buildcache import BuildCacheError

        with pytest.raises(BuildCacheError, match="unsafe tar member"):
            BuildCache.extract(raw.getvalue(), str(tmp_path / "out"))


class TestIntegrity:
    def test_corrupted_tarball_is_rejected_by_digest(self, tmp_path,
                                                     pushing_session,
                                                     cache_root):
        spec, _ = pushing_session.install("libelf", jobs=1)
        cache = pushing_session.buildcache
        path = cache.tarball_path(spec)
        with open(path, "r+b") as f:
            f.write(b"\x00\xff\x00\xff")
        with pytest.raises(DigestMismatchError):
            cache.fetch_tarball(spec)

    def test_corrupt_fault_falls_back_to_source_build(self, tmp_path,
                                                      pushing_session,
                                                      cache_root):
        from repro.testing.faults import Fault

        pushing_session.install("libdwarf", jobs=1)

        puller = _fresh_puller(tmp_path, cache_root)
        puller.faults.arm([Fault("buildcache.corrupt", target="libelf")])
        try:
            spec, result = puller.install("libdwarf", jobs=1)
        finally:
            puller.faults.disarm()
        # libelf's pull was corrupted -> rebuilt from source; libdwarf
        # still came from the cache
        assert [s.spec.name for s in result.built] == ["libelf"]
        assert [s.spec.name for s in result.cached] == ["libdwarf"]
        assert puller.faults.injection_counts() == {"buildcache.corrupt": 1}
        from repro.store.verify import verify_store

        assert verify_store(puller) == []

    def test_require_digest_off_accepts_any_bytes(self, tmp_path,
                                                  pushing_session,
                                                  cache_root):
        spec, _ = pushing_session.install("libelf", jobs=1)
        lax = BuildCache(cache_root, require_digest=False)
        with open(lax.tarball_path(spec), "r+b") as f:
            f.write(b"\x00\xff\x00\xff")
        data = lax.fetch_tarball(spec)  # no digest enforcement
        assert data.startswith(b"\x00\xff\x00\xff")


class TestRoundTrip:
    """build -> push -> wipe store -> install from cache (the ISSUE's
    property test), at j=1 and j=4."""

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_round_trip_preserves_identity(self, tmp_path, cache_root, jobs):
        warm = Session.create(str(tmp_path / ("warm-%d" % jobs)))
        warm.enable_buildcache(root=cache_root, push=True)
        spec_a, result_a = warm.install("mpileaks", jobs=jobs)
        assert len(warm.buildcache.read_index()) == len(result_a.built)

        hub = Telemetry()
        sink = MemorySink()
        hub.add_sink(sink)
        cold = _fresh_puller(
            tmp_path, cache_root, name="cold-%d" % jobs, telemetry=hub
        )
        spec_b, result_b = cold.install("mpileaks", jobs=jobs)

        # identical identity, nothing compiled
        assert spec_b.dag_hash() == spec_a.dag_hash()
        assert result_b.built == []
        assert len(result_b.cached) == len(result_a.built)
        assert sink.spans("install.phase.build") == []
        assert hub.counter("buildcache.hit") == len(result_b.cached)

        # byte-identical provenance, node by node
        for node_a in spec_a.traverse():
            node_b = spec_b[node_a.name]
            pa = warm.store.layout.path_for_spec(node_a)
            pb = cold.store.layout.path_for_spec(node_b)
            for name in ("spec.json", "manifest.json"):
                with open(os.path.join(pa, ".spack", name), "rb") as f:
                    bytes_a = f.read()
                with open(os.path.join(pb, ".spack", name), "rb") as f:
                    bytes_b = f.read()
                assert bytes_a == bytes_b, (node_a.name, name)

        # every binary loads through its (relocated) RPATHs alone
        from repro.build.loader import load_binary

        for node in spec_b.traverse():
            binary = os.path.join(
                cold.store.layout.path_for_spec(node), "bin", node.name
            )
            if os.path.isfile(binary):
                loaded = load_binary(binary, env={})
                assert loaded is not None

        from repro.store.verify import verify_store

        assert verify_store(cold) == []

    def test_wipe_and_reinstall_same_session(self, pushing_session):
        """Same session: wipe the store, re-install, everything cached."""
        session = pushing_session
        spec, first = session.install("libdwarf", jobs=1)
        for node in spec.traverse():
            session.uninstall(str(node), force=True)
        assert session.find() == []

        spec2, second = session.install("libdwarf", jobs=1)
        assert second.built == []
        assert len(second.cached) == len(first.built)
        assert spec2.dag_hash() == spec.dag_hash()


class TestPlannerPolicy:
    def test_no_cache_forces_source_builds(self, tmp_path, pushing_session,
                                           cache_root):
        pushing_session.install("libelf", jobs=1)
        puller = _fresh_puller(tmp_path, cache_root)
        spec, result = puller.install("libelf", use_cache=False)
        assert result.cached == []
        assert [s.spec.name for s in result.built] == ["libelf"]

    def test_pull_policy_defaults_on_when_enabled(self, tmp_path,
                                                  pushing_session,
                                                  cache_root):
        pushing_session.install("libelf", jobs=1)
        puller = _fresh_puller(tmp_path, cache_root)
        _, result = puller.install("libelf")
        assert [s.spec.name for s in result.cached] == ["libelf"]

    def test_config_section_wires_the_cache(self, tmp_path, cache_root):
        session = Session.create(
            str(tmp_path / "cfg"),
            config_overrides={
                "buildcache": {"root": cache_root, "push": True, "pull": False}
            },
        )
        assert session.buildcache is not None
        assert session.buildcache.root == os.path.abspath(cache_root)
        assert session.buildcache_push is True
        assert session.buildcache_pull is False

    def test_miss_counter_on_cold_consult(self, tmp_path, cache_root):
        hub = Telemetry()
        hub.add_sink(MemorySink())
        session = Session.create(str(tmp_path / "miss"), telemetry=hub)
        session.enable_buildcache(root=cache_root)
        session.install("libelf", jobs=1)
        assert hub.counter("buildcache.miss") == 1
        assert hub.counter("buildcache.hit") == 0


class TestVerifyTolerance:
    def test_lib_only_package_verifies_clean(self, bare_repo_session):
        """A package installing only lib/ (no bin/<name>) must not
        false-fail verification — the old layout assumption."""
        session = bare_repo_session
        from repro.directives import version
        from repro.directives.directives import DirectiveMeta
        from repro.fetch.mockweb import mock_checksum
        from repro.package.package import Package
        from repro.util.naming import mod_to_class

        def lib_only_install(self, spec, prefix):
            os.makedirs(os.path.join(prefix, "lib"), exist_ok=True)
            with open(
                os.path.join(prefix, "lib", "lib%s.so.json" % spec.name), "w"
            ) as f:
                json.dump({"type": "library", "needed": [], "rpaths": []}, f)

        name = "libonly"
        ns = {
            "url": "https://mock.example.org/%s/%s-1.0.tar.gz" % (name, name),
            "__doc__": "headerless library package",
            "install": lib_only_install,
        }
        version("1.0", mock_checksum(name, "1.0"))
        session.repo.repos[0].add_class(
            name, DirectiveMeta(mod_to_class(name), (Package,), ns)
        )
        session.seed_web()
        spec, _ = session.install(name, jobs=1)
        prefix = session.store.layout.path_for_spec(spec)
        assert not os.path.exists(os.path.join(prefix, "bin", name))
        from repro.store.verify import verify_store

        assert verify_store(session) == []

    def test_manifest_detects_tampering(self, session):
        """Valid-JSON content edits (invisible to the old parse-only
        check) are caught by the normalized-digest comparison."""
        spec, _ = session.install("libelf", jobs=1)
        prefix = session.store.layout.path_for_spec(spec)
        from repro.store.verify import verify_install

        record = session.db.get(spec)
        assert verify_install(session, record) == []

        with open(os.path.join(prefix, ".spack", "manifest.json")) as f:
            manifest = json.load(f)
        rel = sorted(r for r in manifest["files"] if r.startswith("lib/"))[0]
        path = os.path.join(prefix, rel)
        with open(path) as f:
            data = json.load(f)
        data["tampered"] = True
        with open(path, "w") as f:
            json.dump(data, f)
        issues = verify_install(session, record)
        assert any(i.kind == "artifact-digest-mismatch" for i in issues)


class TestCLI:
    def test_push_list_pull(self, tmp_path, capsys):
        from repro.cli.main import main

        cache_dir = str(tmp_path / "bc")
        warm = str(tmp_path / "warm")
        cold = str(tmp_path / "cold")

        assert main(["--root", warm, "install", "libdwarf"]) == 0
        capsys.readouterr()
        assert main(["--root", warm, "buildcache", "push", "libdwarf",
                     "--dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "pushed 2 prefixes" in out

        assert main(["--root", warm, "buildcache", "list",
                     "--dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out
        assert "libelf" in out and "libdwarf" in out

        assert main(["--root", cold, "buildcache", "pull", "libdwarf",
                     "--dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "2 from cache, 0 built" in out

        assert main(["--root", cold, "verify"]) == 0
        assert "no issues" in capsys.readouterr().out

    def test_install_use_cache_flag(self, tmp_path, capsys):
        from repro.cli.main import main

        root = str(tmp_path / "u")
        # --use-cache with no configured cache enables the default one
        assert main(["--root", root, "install", "libelf", "--use-cache"]) == 0
        capsys.readouterr()
        # wipe the store; the default cache now serves the reinstall
        assert main(["--root", root, "uninstall", "libelf"]) == 0
        capsys.readouterr()
        assert main(["--root", root, "install", "libelf", "--use-cache"]) == 0
        out = capsys.readouterr().out
        assert "cached libelf" in out.replace("  ", " ").replace("  ", " ") \
            or "cached" in out

    def test_push_unknown_spec_errors(self, tmp_path, capsys):
        from repro.cli.main import main

        root = str(tmp_path / "u")
        assert main(["--root", root, "buildcache", "push", "libelf"]) == 1
        assert "no installed specs" in capsys.readouterr().err
