"""Scheduler behaviour: ordering, failure propagation, parallel equivalence."""

import os
import threading

import pytest

from repro.directives import depends_on, version
from repro.fetch.mockweb import mock_checksum
from repro.package.package import Package
from repro.spec.spec import Spec
from repro.store.executor import BuildExecutor
from repro.store.installer import InstallError
from repro.store.layout import METADATA_DIR
from repro.store.plan import Planner
from repro.store.scheduler import Scheduler


def _register(session, name, deps=()):
    """Register a trivial package (version 1.0, given deps) in-session."""
    ns = {
        "url": "https://mock.example.org/%s/%s-1.0.tar.gz" % (name, name),
        "__doc__": "scheduler-test package %s" % name,
        "build_units": 2,
        "unit_cost": 0.001,
    }
    from repro.directives.directives import DirectiveMeta
    from repro.util.naming import mod_to_class

    version("1.0", mock_checksum(name, "1.0"))
    for dep in deps:
        depends_on(dep)
    cls = DirectiveMeta(mod_to_class(name), (Package,), ns)
    session.repo.repos[0].add_class(name, cls)
    return cls


def _diamond(session):
    """leaf <- {mid-a, mid-b} <- top, plus a disjoint branch off top."""
    _register(session, "leaf")
    _register(session, "mid-a", ["leaf"])
    _register(session, "mid-b", ["leaf"])
    _register(session, "solo")
    _register(session, "top", ["mid-a", "mid-b", "solo"])
    session.seed_web()


class RecordingExecutor(BuildExecutor):
    """Executor that journals execute() start/end per node, thread-safely."""

    def __init__(self, session):
        super().__init__(session)
        self.events = []
        self._lock = threading.Lock()

    def execute(self, node, keep_stage=False):
        with self._lock:
            self.events.append(("start", node.name))
        try:
            return super().execute(node, keep_stage=keep_stage)
        finally:
            with self._lock:
                self.events.append(("end", node.name))


def _run(session, spec_text, jobs, **kwargs):
    concrete = session.concretize(spec_text)
    recorder = RecordingExecutor(session)
    plan = Planner(session).plan(concrete)
    outcome = Scheduler(
        session, jobs=jobs, executor=recorder, **kwargs
    ).run(plan)
    return concrete, outcome, recorder


class TestOrderingInvariants:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_deps_complete_before_dependents_start(self, bare_repo_session, jobs):
        session = bare_repo_session
        _diamond(session)
        concrete, outcome, recorder = _run(session, "top", jobs)
        assert not outcome.failed and not outcome.skipped
        position = {e: i for i, e in enumerate(recorder.events)}
        for node in concrete.traverse():
            for dep in node.dependencies.values():
                assert position[("end", dep.name)] < position[("start", node.name)]

    def test_serial_runs_in_exact_post_order(self, bare_repo_session):
        session = bare_repo_session
        _diamond(session)
        concrete, _, recorder = _run(session, "top", jobs=1)
        started = [name for kind, name in recorder.events if kind == "start"]
        assert started == [n.name for n in concrete.traverse(order="post")]

    def test_pool_overlaps_independent_nodes(self, bare_repo_session):
        session = bare_repo_session
        _diamond(session)
        _, outcome, recorder = _run(session, "top", jobs=4)
        assert outcome.jobs == 4
        # at some point two builds were in flight simultaneously
        depth = peak = 0
        for kind, _ in recorder.events:
            depth += 1 if kind == "start" else -1
            peak = max(peak, depth)
        assert peak >= 2


class TestFailurePropagation:
    def _corrupt(self, session, name):
        cls = session.repo.get_class(name)
        url = cls(Spec("%s@1.0" % name), session=session).url_for_version("1.0")
        session.web.corrupt(url)

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_dependents_skipped_disjoint_siblings_finish(
        self, bare_repo_session, jobs
    ):
        session = bare_repo_session
        _diamond(session)
        self._corrupt(session, "leaf")
        concrete, outcome, _ = _run(session, "top", jobs)
        failed = {t.node.name for t in outcome.failed}
        skipped = {t.node.name for t in outcome.skipped}
        assert failed == {"leaf"}
        assert skipped == {"mid-a", "mid-b", "top"}
        # the disjoint sibling still installed
        assert session.db.installed(concrete["solo"])
        assert isinstance(outcome.first_error, InstallError)

    def test_fail_fast_stops_dispatching(self, bare_repo_session):
        session = bare_repo_session
        _register(session, "bad")
        _register(session, "good-a")
        _register(session, "good-b")
        _register(session, "root", ["bad", "good-a", "good-b"])
        session.seed_web()
        self._corrupt(session, "bad")
        concrete = session.concretize("root")
        post = [n.name for n in concrete.traverse(order="post")]
        survivors = set(post[: post.index("bad")])  # built before the failure
        _, outcome, _ = _run(session, "root", jobs=1, fail_fast=True)
        installed = {
            r.spec.name for r in session.db.all_records()
        }
        assert installed == survivors
        skipped = {t.node.name for t in outcome.skipped}
        assert skipped == {"root", "good-a", "good-b"} - survivors

    def test_crash_mid_build_registers_nothing_partial(self, session):
        repo = session.repo.repos[0]

        class Exploder(Package):
            url = "https://mock.example.org/exploder/exploder-1.0.tar.gz"
            version("1.0", mock_checksum("exploder", "1.0"))

            def install(self, spec, prefix):
                from repro.build.shell import configure

                configure("--prefix=%s" % prefix)
                raise RuntimeError("boom mid-build")

        repo.add_class("exploder", Exploder)
        session.seed_web()
        concrete = session.concretize(Spec("exploder"))
        prefix = session.store.layout.path_for_spec(concrete)
        with pytest.raises(RuntimeError):
            session.install("exploder", jobs=4)
        assert not os.path.exists(prefix)
        assert not session.db.installed(concrete)


class TestParallelEquivalence:
    def _provenance(self, session):
        """dag_hash -> canonical spec.json bytes for every installed spec."""
        layout = session.store.layout
        out = {}
        for record in session.db.all_records():
            if record.spec.external:
                continue
            meta = os.path.join(layout.path_for_spec(record.spec), METADATA_DIR)
            with open(os.path.join(meta, "spec.json"), "rb") as f:
                out[record.spec.dag_hash()] = f.read()
        return out

    def test_j1_and_j4_produce_identical_stores(self, tmp_path):
        from repro.session import Session

        s1 = Session.create(str(tmp_path / "serial"))
        s4 = Session.create(str(tmp_path / "pooled"))
        spec1, r1 = s1.install("mpileaks", jobs=1)
        spec4, r4 = s4.install("mpileaks", jobs=4)
        assert spec1.dag_hash() == spec4.dag_hash()
        assert sorted(s.spec.name for s in r1.built) == sorted(
            s.spec.name for s in r4.built
        )
        p1, p4 = self._provenance(s1), self._provenance(s4)
        assert p1.keys() == p4.keys()
        assert p1 == p4  # byte-identical spec.json provenance
        assert (r1.jobs, r4.jobs) == (1, 4)
        assert r1.wall_seconds > 0 and r4.wall_seconds > 0

    def test_jobs_env_default_honored(self, tmp_path, monkeypatch):
        from repro.session import Session

        monkeypatch.setenv("REPRO_INSTALL_JOBS", "3")
        session = Session.create(str(tmp_path / "env"))
        assert session.install_jobs == 3
        _, result = session.install("libelf")
        assert result.jobs == 3


class TestSchedulerTelemetry:
    def test_spans_gauge_and_worker_attribution(self, session):
        from repro.telemetry import MemorySink

        sink = session.telemetry.add_sink(MemorySink())
        try:
            session.install("libdwarf", jobs=2)
        finally:
            session.telemetry.remove_sink(sink)
        hub = session.telemetry
        assert hub.gauge_value("scheduler.queue_depth") is not None
        assert hub.counter("install.built") >= 2
        runs = sink.spans("scheduler.run")
        assert runs and runs[0]["attrs"]["jobs"] == 2
        nodes = sink.spans("install.node")
        assert all(n["attrs"]["worker"].startswith("install-worker") for n in nodes)
        assert all(n["parent"] == runs[0]["span"] for n in nodes)
        dispatches = [e for e in sink.events() if e["name"] == "scheduler.dispatch"]
        assert len(dispatches) >= 2
