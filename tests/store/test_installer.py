"""Installer behaviour: artifacts, provenance, failures, uninstall."""

import json
import os

import pytest

from repro.directives import depends_on, version
from repro.package.package import Package
from repro.spec.spec import Spec
from repro.store.installer import InstallError, UninstallError
from repro.store.layout import METADATA_DIR


class TestArtifacts:
    def test_prefix_contents(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        prefix = session.store.layout.path_for_spec(spec)
        assert os.path.isfile(os.path.join(prefix, "include", "mpileaks.h"))
        assert os.path.isfile(os.path.join(prefix, "lib", "libmpileaks.so.json"))
        assert os.path.isfile(os.path.join(prefix, "bin", "mpileaks"))

    def test_binary_links_direct_deps(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        prefix = session.store.layout.path_for_spec(spec)
        with open(os.path.join(prefix, "bin", "mpileaks")) as f:
            artifact = json.load(f)
        assert sorted(artifact["needed"]) == [
            "libcallpath.so.json", "libmvapich2.so.json",
        ]

    def test_rpaths_embedded_for_all_deps(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        prefix = session.store.layout.path_for_spec(spec)
        with open(os.path.join(prefix, "bin", "mpileaks")) as f:
            artifact = json.load(f)
        layout = session.store.layout
        for dep in ("callpath", "mvapich2"):
            dep_lib = os.path.join(layout.path_for_spec(spec[dep]), "lib")
            assert dep_lib in artifact["rpaths"]

    def test_runs_with_empty_environment(self, installed_mpileaks):
        """The paper's headline build-methodology claim (§3.5.2)."""
        from repro.build.loader import ldd

        session, spec, _ = installed_mpileaks
        binary = os.path.join(session.store.layout.path_for_spec(spec), "bin", "mpileaks")
        resolved = ldd(binary, env={})
        assert set(resolved) == {
            "libcallpath.so.json", "libdyninst.so.json", "liblibdwarf.so.json",
            "liblibelf.so.json", "libmvapich2.so.json",
        }

    def test_hostile_environment_cannot_misdirect(self, installed_mpileaks, tmp_path):
        """§3.5.1's libelf two-ABI story: a wrong libelf on
        LD_LIBRARY_PATH must not shadow the RPATH-ed one."""
        from repro.build.loader import ldd

        session, spec, _ = installed_mpileaks
        decoy = tmp_path / "decoy"
        decoy.mkdir()
        (decoy / "liblibelf.so.json").write_text(
            json.dumps({"type": "library", "needed": [], "rpaths": [], "DECOY": True})
        )
        binary = os.path.join(session.store.layout.path_for_spec(spec), "bin", "mpileaks")
        resolved = ldd(binary, env={"LD_LIBRARY_PATH": str(decoy)})
        right_libelf = os.path.join(
            session.store.layout.path_for_spec(spec["libelf"]), "lib", "liblibelf.so.json"
        )
        assert resolved["liblibelf.so.json"] == right_libelf


class TestProvenance:
    def test_files_written(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        meta = os.path.join(session.store.layout.path_for_spec(spec), METADATA_DIR)
        for name in ("spec.json", "build.log", "package.py", "build_env.json",
                     "applied_patches.json"):
            assert os.path.isfile(os.path.join(meta, name)), name

    def test_spec_json_round_trips(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        meta = os.path.join(session.store.layout.path_for_spec(spec), METADATA_DIR)
        with open(os.path.join(meta, "spec.json")) as f:
            again = Spec.from_dict(json.load(f))
        assert again.dag_hash() == spec.dag_hash()

    def test_package_source_captured(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        meta = os.path.join(session.store.layout.path_for_spec(spec), METADATA_DIR)
        source = open(os.path.join(meta, "package.py")).read()
        assert "class Mpileaks" in source
        assert "depends_on" in source

    def test_build_log_has_phases(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        meta = os.path.join(session.store.layout.path_for_spec(spec), METADATA_DIR)
        log = open(os.path.join(meta, "build.log")).read()
        assert "configured" in log
        assert "compiled" in log
        assert "installed" in log


class TestStats:
    def test_virtual_time_accounted(self, installed_mpileaks):
        _, _, result = installed_mpileaks
        for stats in result.built:
            assert stats.virtual_seconds > 0
            assert stats.counts.get("compile_units", 0) > 0
            assert stats.real_seconds > 0

    def test_wrapper_invocations_counted(self, installed_mpileaks):
        _, _, result = installed_mpileaks
        mpileaks_stats = next(s for s in result.built if s.spec.name == "mpileaks")
        # one wrapper pass per compile unit + 2 links
        assert mpileaks_stats.counts["wrapper_invocations"] == 43 + 2


class TestFailureInjection:
    def test_failing_build_cleans_partial_prefix(self, session):
        repo = session.repo.repos[0]

        class Exploder(Package):
            url = "https://mock.example.org/exploder/exploder-1.0.tar.gz"
            version("1.0", __import__("repro.fetch.mockweb", fromlist=["mock_checksum"]).mock_checksum("exploder", "1.0"))

            def install(self, spec, prefix):
                from repro.build.shell import configure

                configure("--prefix=%s" % prefix)
                raise RuntimeError("boom mid-build")

        repo.add_class("exploder", Exploder)
        session.seed_web()
        concrete = session.concretize(Spec("exploder"))
        prefix = session.store.layout.path_for_spec(concrete)
        with pytest.raises(RuntimeError):
            session.install("exploder")
        assert not os.path.exists(prefix)
        assert not session.db.installed(concrete)

    def test_build_error_wrapped_with_log(self, session):
        repo = session.repo.repos[0]
        from repro.fetch.mockweb import mock_checksum

        class NoInstall(Package):
            url = "https://mock.example.org/noinstall/noinstall-1.0.tar.gz"
            version("1.0", mock_checksum("noinstall", "1.0"))

            def install(self, spec, prefix):
                from repro.build.shell import make

                make("install")  # no configure/make first

        repo.add_class("noinstall", NoInstall)
        session.seed_web()
        with pytest.raises(InstallError, match="noinstall"):
            session.install("noinstall")
        assert not session.db.query("noinstall")

    def test_empty_prefix_rejected(self, session):
        repo = session.repo.repos[0]
        from repro.fetch.mockweb import mock_checksum

        class DoesNothing(Package):
            url = "https://mock.example.org/lazy/lazy-1.0.tar.gz"
            version("1.0", mock_checksum("lazy", "1.0"))

            def install(self, spec, prefix):
                pass  # never installs anything

        repo.add_class("lazy", DoesNothing)
        session.seed_web()
        with pytest.raises(InstallError, match="empty prefix"):
            session.install("lazy")

    def test_checksum_failure_aborts_install(self, session):
        cls = session.repo.get_class("libelf")
        url = cls(Spec("libelf@0.8.13"), session=session).url_for_version("0.8.13")
        session.web.corrupt(url)
        with pytest.raises(InstallError, match="libelf"):
            session.install("libelf@0.8.13")

    def test_failed_dep_stops_dependents(self, session):
        url = session.repo.get_class("libelf")(
            Spec("libelf@0.8.13"), session=session
        ).url_for_version("0.8.13")
        session.web.corrupt(url)
        with pytest.raises(InstallError):
            session.install("libdwarf")  # depends on libelf
        assert not session.db.query("libdwarf")
        assert not session.db.query("libelf")


class TestUninstall:
    def test_leaf_uninstall(self, session):
        spec, _ = session.install("libelf")
        prefix = session.store.layout.path_for_spec(spec)
        record = session.uninstall("libelf")
        assert record.spec.name == "libelf"
        assert not os.path.exists(prefix)

    def test_dependents_protected(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        with pytest.raises(UninstallError, match="required by"):
            session.uninstall(spec["libelf"])

    def test_force(self, installed_mpileaks):
        session, spec, _ = installed_mpileaks
        session.installer.uninstall(spec["libelf"], force=True)
        assert not session.db.installed(spec["libelf"])

    def test_not_installed(self, session):
        with pytest.raises(Exception):
            session.uninstall("libelf")

    def test_ambiguous_query(self, session):
        session.install("libelf@0.8.13")
        session.install("libelf@0.8.12")
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="2 installed specs"):
            session.uninstall("libelf")


class TestExternalInstall:
    def test_external_registered_not_built(self, session):
        session.register_external("openmpi@1.8.2")
        spec, result = session.install("mpileaks ^openmpi")
        assert "openmpi" in [s.name for s in result.externals]
        assert "openmpi" not in result.built_names
        assert session.db.installed(spec["openmpi"])

    def test_dependent_links_against_external(self, session):
        prefix = session.register_external("openmpi@1.8.2")
        spec, _ = session.install("mpileaks ^openmpi")
        binary = os.path.join(session.store.layout.path_for_spec(spec), "bin", "mpileaks")
        from repro.build.loader import ldd

        resolved = ldd(binary, env={})
        assert resolved["libopenmpi.so.json"].startswith(prefix)
