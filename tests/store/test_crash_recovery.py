"""Crash-mid-build recovery and faulted parallel equivalence.

A build killed between stage creation and database registration (the
window modeled by ``executor.crash``) leaves an *orphan prefix*: bytes
on disk with no database record.  These tests pin down the recovery
contract — the planner must still classify the node as a build, and a
fresh install must heal the store completely — plus the scheduler
contract that a transient fetch fault does not perturb j=1 vs j=4
store equivalence.
"""

import os

import pytest

from repro.session import Session
from repro.store.layout import METADATA_DIR
from repro.store.plan import BUILD, Planner
from repro.store.verify import verify_store
from repro.testing.faults import Fault, SimulatedKill


@pytest.fixture
def session(tmp_path):
    return Session.create(str(tmp_path / "universe"), install_jobs=1)


def _crash(session, target, where):
    """Install ``target`` with a kill injected at ``where``; returns the
    concrete spec whose build died."""
    session.faults.arm([Fault("executor.crash", target=target, where=where)])
    with pytest.raises(SimulatedKill):
        session.install(target, jobs=1)
    session.faults.disarm()
    return session.concretize(target)


class TestCrashRecovery:
    @pytest.mark.parametrize("where", ["post-stage", "post-build"])
    def test_crash_leaves_orphan_prefix_and_no_record(self, session, where):
        concrete = _crash(session, "libelf", where)
        prefix = session.store.layout.path_for_spec(concrete)
        assert os.path.isdir(prefix)
        assert not session.db.query("libelf")

    def test_planner_reclassifies_orphan_as_build(self, session):
        """An orphan prefix must not fool the planner into reuse: only a
        database record proves an install completed."""
        concrete = _crash(session, "libelf", "post-build")
        plan = Planner(session).plan(concrete)
        task = plan.tasks[concrete.dag_hash()]
        assert task.action == BUILD

    def test_crash_in_dependency_aborts_dependents(self, session):
        """Killing libdwarf's dependency leaves the dependent unbuilt."""
        _crash(session, "libelf", "post-stage")
        assert not session.db.query("libelf")
        assert not session.db.query("libdwarf")

    @pytest.mark.parametrize("where", ["post-stage", "post-build"])
    def test_fresh_install_heals_the_store(self, session, where):
        concrete = _crash(session, "libdwarf", where)
        spec, _ = session.install("libdwarf", jobs=1)
        assert spec.dag_hash() == concrete.dag_hash()
        assert session.db.query("libdwarf")
        assert verify_store(session) == []
        # the healed prefix is a complete install, not leftover crash debris
        prefix = session.store.layout.path_for_spec(concrete)
        assert os.path.isfile(os.path.join(prefix, METADATA_DIR, "spec.json"))

    def test_healing_is_counted_once_per_orphan(self, session):
        from repro.telemetry import MemorySink

        session.telemetry.add_sink(MemorySink())
        _crash(session, "libelf", "post-build")
        session.install("libelf", jobs=1)
        assert session.telemetry.counter("store.orphan_prefixes_healed") == 1
        # a clean re-install has nothing to heal
        session.install("libelf", jobs=1)
        assert session.telemetry.counter("store.orphan_prefixes_healed") == 1

    def test_crash_spares_completed_dependencies(self, session):
        """Only the killed node needs rebuilding; its already-registered
        dependencies are reused."""
        _crash(session, "libdwarf", "post-build")
        assert session.db.query("libelf")  # dep finished before the kill
        concrete = session.concretize("libdwarf")
        plan = Planner(session).plan(concrete)
        actions = {t.node.name: t.action for t in plan.tasks.values()}
        assert actions["libdwarf"] == BUILD
        assert actions["libelf"] != BUILD


class TestFaultedParallelEquivalence:
    """Satellite: j=1 and j=4 installs produce byte-identical stores even
    when a transient fetch fault fires along the way."""

    def _provenance(self, session):
        layout = session.store.layout
        out = {}
        for record in session.db.all_records():
            if record.spec.external:
                continue
            meta = os.path.join(layout.path_for_spec(record.spec), METADATA_DIR)
            with open(os.path.join(meta, "spec.json"), "rb") as f:
                out[record.spec.dag_hash()] = f.read()
        return out

    def test_transient_fault_does_not_perturb_equivalence(self, tmp_path):
        stores = {}
        for jobs in (1, 4):
            s = Session.create(str(tmp_path / ("j%d" % jobs)))
            s.faults.arm([Fault("fetch.transient", target="libelf", times=1)])
            spec, _ = s.install("mpileaks", jobs=jobs)
            s.faults.disarm()
            assert s.faults.injection_counts() == {"fetch.transient": 1}
            stores[jobs] = (spec.dag_hash(), self._provenance(s))
            assert verify_store(s) == []
        assert stores[1] == stores[4]
