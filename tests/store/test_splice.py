"""Binary splicing: runtime-hash donors, the SPLICED plan action, and
the extract/relocate/splice/verify pipeline with source-build fallback."""

import json
import os

import pytest

from repro.session import Session
from repro.spec.spec import Spec
from repro.store.plan import BUILD, CACHED, SPLICED, Planner
from repro.telemetry import MemorySink, Telemetry
from repro.testing.campaign import (
    SPLICE_DONOR_REQUEST,
    SPLICE_TARGET_REQUEST,
    _splice_repo,
)
from repro.testing.faults import Fault


@pytest.fixture
def cache_root(tmp_path):
    return str(tmp_path / "buildcache")


@pytest.fixture
def donor_session(tmp_path, cache_root):
    """A warm session that built and pushed the donor DAG (tool@1.0)."""
    session = Session.create(
        str(tmp_path / "donor"), packages=_splice_repo(), install_jobs=1
    )
    session.enable_buildcache(root=cache_root, push=True)
    session.install(SPLICE_DONOR_REQUEST, jobs=1)
    return session


def _puller(tmp_path, cache_root, name="target", **kwargs):
    session = Session.create(
        str(tmp_path / name), packages=_splice_repo(), install_jobs=1,
        **kwargs
    )
    session.enable_buildcache(root=cache_root, pull=True)
    return session


def _meta(session, node, name):
    prefix = session.store.layout.path_for_spec(node)
    with open(os.path.join(prefix, ".spack", name)) as f:
        return json.load(f)


class TestDonorMatching:
    def test_twin_found_for_retooled_target(self, tmp_path, cache_root,
                                            donor_session):
        puller = _puller(tmp_path, cache_root)
        target = puller.concretize(SPLICE_TARGET_REQUEST)
        donor = donor_session.concretize(SPLICE_DONOR_REQUEST)

        top = target["splicetop"]
        found = puller.buildcache.find_splice_donor(top)
        assert found is not None
        donor_hash, entry = found
        assert donor_hash == donor["splicetop"].dag_hash()
        assert donor_hash != top.dag_hash()
        assert entry["runtime_hash"] == top.runtime_hash()

    def test_no_donor_for_link_level_change(self, tmp_path, cache_root,
                                            donor_session):
        """A donor only matches when the *runtime* closure is identical;
        the build tool itself (a different package version) has no twin."""
        puller = _puller(tmp_path, cache_root)
        target = puller.concretize(SPLICE_TARGET_REQUEST)
        assert puller.buildcache.find_splice_donor(target["splicetool"]) is None

    def test_exact_hash_prefers_cached_over_spliced(self, tmp_path,
                                                    cache_root,
                                                    donor_session):
        puller = _puller(tmp_path, cache_root)
        spec = puller.concretize(SPLICE_DONOR_REQUEST)
        plan = Planner(puller).plan(spec)
        actions = {t.node.name: t.action for t in plan.tasks.values()}
        assert actions["splicetop"] == CACHED
        assert actions["splicelib"] == CACHED


class TestPlanner:
    def test_plan_marks_runtime_twins_spliced(self, tmp_path, cache_root,
                                              donor_session):
        puller = _puller(tmp_path, cache_root)
        spec = puller.concretize(SPLICE_TARGET_REQUEST)
        plan = Planner(puller).plan(spec)
        tasks = {t.node.name: t for t in plan.tasks.values()}

        assert tasks["splicetool"].action == BUILD
        assert tasks["splicelib"].action == SPLICED
        assert tasks["splicetop"].action == SPLICED
        donor = donor_session.concretize(SPLICE_DONOR_REQUEST)
        assert tasks["splicetop"].donor == donor["splicetop"].dag_hash()
        assert tasks["splicetool"].donor is None

    def test_use_splice_false_plans_source_builds(self, tmp_path, cache_root,
                                                  donor_session):
        puller = _puller(tmp_path, cache_root)
        spec = puller.concretize(SPLICE_TARGET_REQUEST)
        plan = Planner(puller).plan(spec, use_splice=False)
        actions = {t.node.name: t.action for t in plan.tasks.values()}
        assert actions["splicelib"] == BUILD
        assert actions["splicetop"] == BUILD


class TestSplicedInstall:
    def test_end_to_end_splice_avoids_source_builds(self, tmp_path,
                                                    cache_root,
                                                    donor_session):
        hub = Telemetry()
        sink = MemorySink()
        hub.add_sink(sink)
        puller = _puller(tmp_path, cache_root, telemetry=hub)
        spec, result = puller.install(SPLICE_TARGET_REQUEST, jobs=1)

        # only the changed build tool compiles; the runtime sub-DAG splices
        assert [s.spec.name for s in result.built] == ["splicetool"]
        assert sorted(s.spec.name for s in result.spliced) == [
            "splicelib", "splicetop",
        ]
        assert result.cached == []
        built_spans = {
            s["attrs"].get("package")
            for s in sink.spans("install.phase.build")
        }
        assert built_spans == {"splicetool"}
        assert hub.counter("install.spliced") == 2
        assert all(s.spliced for s in result.spliced)

    def test_spliced_provenance_records_target_and_donor(self, tmp_path,
                                                         cache_root,
                                                         donor_session):
        puller = _puller(tmp_path, cache_root)
        spec, _ = puller.install(SPLICE_TARGET_REQUEST, jobs=1)
        donor = donor_session.concretize(SPLICE_DONOR_REQUEST)
        top = spec["splicetop"]

        spec_json = _meta(puller, top, "spec.json")
        assert Spec.from_dict(spec_json).dag_hash() == top.dag_hash()

        manifest = _meta(puller, top, "manifest.json")
        assert manifest["hash"] == top.dag_hash()
        assert manifest["spliced_from"] == donor["splicetop"].dag_hash()

        dist = _meta(puller, top, "binary_distribution.json")
        assert dist["spliced_from"] == donor["splicetop"].dag_hash()

    def test_spliced_bytes_match_a_source_build(self, tmp_path, cache_root,
                                                donor_session):
        """The splice-equivalence property: after prefix re-targeting,
        a spliced store is byte-identical (modulo root) to building the
        target DAG from source."""
        puller = _puller(tmp_path, cache_root)
        sspec, _ = puller.install(SPLICE_TARGET_REQUEST, jobs=1)

        built = Session.create(
            str(tmp_path / "scratch"), packages=_splice_repo(),
            install_jobs=1,
        )
        bspec, _ = built.install(SPLICE_TARGET_REQUEST, jobs=1)
        assert bspec.dag_hash() == sspec.dag_hash()

        for node in bspec.traverse():
            built_manifest = _meta(built, node, "manifest.json")
            spliced_manifest = _meta(puller, sspec[node.name], "manifest.json")
            assert built_manifest["files"] == spliced_manifest["files"], (
                node.name
            )

    def test_spliced_store_verifies_clean(self, tmp_path, cache_root,
                                          donor_session):
        from repro.store.verify import verify_store

        puller = _puller(tmp_path, cache_root)
        puller.install(SPLICE_TARGET_REQUEST, jobs=1)
        assert verify_store(puller) == []

    def test_no_splice_install_builds_from_source(self, tmp_path, cache_root,
                                                  donor_session):
        puller = _puller(tmp_path, cache_root)
        spec, result = puller.install(
            SPLICE_TARGET_REQUEST, jobs=1, use_splice=False
        )
        assert result.spliced == []
        assert sorted(s.spec.name for s in result.built) == [
            "splicelib", "splicetool", "splicetop",
        ]

    def test_spliced_prefixes_are_pushed_under_target_hash(self, tmp_path,
                                                           cache_root,
                                                           donor_session):
        """Cache convergence: a splice result is republished under the
        requested dag_hash, so the next cold session gets plain CACHED
        hits instead of re-splicing."""
        first = _puller(tmp_path, cache_root, name="first")
        first.enable_buildcache(root=cache_root, push=True, pull=True)
        spec, result = first.install(SPLICE_TARGET_REQUEST, jobs=1)
        assert result.spliced  # this run did splice
        assert first.buildcache.has(spec["splicetop"].dag_hash())

        second = _puller(tmp_path, cache_root, name="second")
        _, rerun = second.install(SPLICE_TARGET_REQUEST, jobs=1)
        assert rerun.built == [] and rerun.spliced == []
        assert sorted(s.spec.name for s in rerun.cached) == [
            "splicelib", "splicetool", "splicetop",
        ]


class TestFallback:
    def test_stale_donor_falls_back_to_source(self, tmp_path, cache_root,
                                              donor_session):
        hub = Telemetry()
        hub.add_sink(MemorySink())
        puller = _puller(tmp_path, cache_root, telemetry=hub)
        puller.faults.arm(
            [Fault("buildcache.splice_stale", target="splicelib")]
        )
        try:
            spec, result = puller.install(SPLICE_TARGET_REQUEST, jobs=1)
        finally:
            puller.faults.disarm()

        assert puller.faults.injection_counts() == {
            "buildcache.splice_stale": 1
        }
        # splicelib's donor payload was stale -> rebuilt from source;
        # splicetop still spliced successfully
        assert sorted(s.spec.name for s in result.built) == [
            "splicelib", "splicetool",
        ]
        assert [s.spec.name for s in result.spliced] == ["splicetop"]
        assert hub.counter("buildcache.splice_fallback") == 1

        from repro.store.verify import verify_store

        assert verify_store(puller) == []

    def test_fallback_store_matches_source_identity(self, tmp_path,
                                                    cache_root,
                                                    donor_session):
        puller = _puller(tmp_path, cache_root)
        puller.faults.arm([Fault("buildcache.splice_stale")])
        try:
            spec, _ = puller.install(SPLICE_TARGET_REQUEST, jobs=1)
        finally:
            puller.faults.disarm()

        built = Session.create(
            str(tmp_path / "scratch"), packages=_splice_repo(),
            install_jobs=1,
        )
        bspec, _ = built.install(SPLICE_TARGET_REQUEST, jobs=1)
        assert bspec.dag_hash() == spec.dag_hash()
        for node in bspec.traverse():
            assert (
                _meta(built, node, "manifest.json")["files"]
                == _meta(puller, spec[node.name], "manifest.json")["files"]
            )
