"""Database under concurrency: transactions, stale-snapshot merge, threads."""

import json
import threading

from repro.store.database import Database


def _concrete_specs(session, names):
    return [session.concretize(n) for n in names]


class TestTransaction:
    def test_batches_writes_into_one_save(self, session, monkeypatch):
        db = session.db
        saves = []
        real_save = db._save
        monkeypatch.setattr(
            db, "_save", lambda: (saves.append(1), real_save())[1]
        )
        specs = _concrete_specs(session, ["libelf", "zlib"])
        with db.transaction():
            for spec in specs:
                db.add(spec, "/fake/%s" % spec.name)
        assert len(saves) == 1  # nested adds piggyback on the outer txn
        assert all(db.installed(s) for s in specs)

    def test_nested_transactions_flatten(self, session):
        db = session.db
        spec = session.concretize("libelf")
        with db.transaction():
            with db.transaction():
                db.add(spec, "/fake/libelf")
            assert db._txn_depth == 1
        assert db._txn_depth == 0
        # persisted on outermost exit
        fresh = Database(db.root)
        assert fresh.installed(spec)

    def test_stale_snapshot_does_not_clobber_other_writer(self, session):
        """Two Database objects on one store: each writer's records survive
        the other's read-merge-write cycle."""
        db1 = session.db
        db2 = Database(db1.root)
        libelf, zlib = _concrete_specs(session, ["libelf", "zlib"])
        db1.add(libelf, "/fake/libelf")   # db2's snapshot is now stale
        db2.add(zlib, "/fake/zlib")       # must merge, not clobber
        fresh = Database(db1.root)
        assert fresh.installed(libelf)
        assert fresh.installed(zlib)

    def test_corrupt_index_mid_transaction_keeps_memory(self, session):
        db = session.db
        libelf, zlib = _concrete_specs(session, ["libelf", "zlib"])
        db.add(libelf, "/fake/libelf")
        with open(db.index_path, "w") as f:
            f.write("{not json")
        db.add(zlib, "/fake/zlib")  # reread tolerates garbage, then rewrites
        with open(db.index_path) as f:
            data = json.load(f)
        assert set(data["installs"]) == {libelf.dag_hash(), zlib.dag_hash()}


class TestThreadedWriters:
    def test_concurrent_adds_on_shared_database_all_persist(self, session):
        db = session.db
        specs = _concrete_specs(
            session, ["libelf", "zlib", "libdwarf", "bzip2"]
        )
        errors = []

        def add(spec):
            try:
                db.add(spec, "/fake/%s" % spec.name)
            except Exception as e:  # noqa: BLE001 — surfaced via assert
                errors.append(e)

        threads = [threading.Thread(target=add, args=(s,)) for s in specs]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        fresh = Database(db.root)
        for spec in specs:
            assert fresh.installed(spec), spec.name

    def test_lock_serializes_threads_sharing_one_lockfile(self, tmp_path):
        """The hybrid flock+thread lock: two threads never hold it at once
        (bare flock cannot arbitrate threads sharing a process)."""
        from repro.util.lock import Lock

        lock = Lock(str(tmp_path / "x.lock"))
        inside = []
        overlap = []

        def worker():
            for _ in range(20):
                with lock:
                    inside.append(1)
                    if len(inside) > 1:
                        overlap.append(1)
                    inside.pop()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not overlap

    def test_lock_is_reentrant_within_a_thread(self, tmp_path):
        from repro.util.lock import Lock

        lock = Lock(str(tmp_path / "r.lock"))
        with lock:
            with lock:  # same thread: re-entrant, no deadlock
                pass
        # and still acquirable afterwards
        with lock:
            pass
