"""Fault plans, the injector, and every fault point end to end.

The reachability tests double as the ISSUE's acceptance proof: each of
the five fault points is demonstrably injectable, and for each one the
pipeline either recovers or fails with a clean typed error.
"""

import os

import pytest

from repro.errors import ReproError
from repro.session import Session
from repro.store.database import FOREIGN_NAME
from repro.testing.faults import (
    ALL_FAULT_POINTS,
    Fault,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    SimulatedKill,
)
from repro.util.lock import LockTimeoutError


@pytest.fixture
def faulty_session(tmp_path):
    from repro.telemetry import MemorySink

    session = Session.create(str(tmp_path / "universe"), install_jobs=1)
    session.telemetry.add_sink(MemorySink())  # counters only count with a sink
    return session


class TestFaultPlan:
    def test_unknown_point_rejected(self):
        with pytest.raises(FaultPlanError):
            Fault("disk.full")

    def test_unknown_crash_site_rejected(self):
        with pytest.raises(FaultPlanError):
            Fault("executor.crash", where="mid-phase")

    def test_round_trips_through_dict(self):
        plan = FaultPlan(
            [Fault("fetch.transient", target="libelf", after=1, times=3)],
            seed=99,
        )
        again = FaultPlan.from_dict(plan.to_dict())
        assert again.seed == 99
        assert [f.to_dict() for f in again.faults] == [
            f.to_dict() for f in plan.faults
        ]

    def test_generation_is_deterministic(self):
        a = FaultPlan.generate(123, targets=("libelf", "libdwarf"))
        b = FaultPlan.generate(123, targets=("libelf", "libdwarf"))
        assert a.to_dict() == b.to_dict()
        assert 1 <= len(a) <= 3
        assert all(f.point in ALL_FAULT_POINTS for f in a.faults)

    def test_different_seeds_differ(self):
        dicts = {
            str(FaultPlan.generate(s, targets=("x",)).to_dict())
            for s in range(20)
        }
        assert len(dicts) > 1


class TestInjector:
    def test_disarmed_hit_is_inert(self):
        injector = FaultInjector()
        assert injector.hit("fetch.transient", target="anything") is None
        assert injector.journal == []
        assert not injector.armed

    def test_after_and_times_windows(self):
        from repro.fetch.mockweb import TransientWebError

        injector = FaultInjector()
        injector.arm([Fault("fetch.transient", after=1, times=2)])
        assert injector.hit("fetch.transient") is None  # let one pass
        for _ in range(2):
            with pytest.raises(TransientWebError):
                injector.hit("fetch.transient")
        assert injector.hit("fetch.transient") is None  # exhausted
        assert injector.injection_counts() == {"fetch.transient": 2}

    def test_target_scoping(self):
        injector = FaultInjector()
        injector.arm([Fault("lock.timeout", target="libdwarf")])
        assert injector.hit("lock.timeout", target="libelf") is None
        with pytest.raises(LockTimeoutError):
            injector.hit("lock.timeout", target="libdwarf")

    def test_rearm_resets_armed_state(self):
        fault = Fault("lock.timeout")
        injector = FaultInjector()
        injector.arm([fault])
        with pytest.raises(LockTimeoutError):
            injector.hit("lock.timeout")
        assert fault.exhausted
        injector.arm([fault])  # same plan object, fresh counters
        assert not fault.exhausted

    def test_firings_counted_on_telemetry(self):
        from repro.telemetry import MemorySink, Telemetry

        hub = Telemetry()
        hub.add_sink(MemorySink())
        injector = FaultInjector(telemetry=hub)
        injector.arm([Fault("executor.crash", where="post-stage")])
        with pytest.raises(SimulatedKill):
            injector.hit("executor.crash", target="pkg", where="post-stage")
        assert hub.counter("faults.injected") == 1
        assert hub.counter("faults.injected.executor.crash") == 1


class TestFaultPointsEndToEnd:
    """Each fault point reached through the real install pipeline."""

    def test_fetch_transient_within_budget_recovers(self, faulty_session):
        s = faulty_session
        s.faults.arm([Fault("fetch.transient", target="libelf", times=2)])
        s.install("libelf", jobs=1)
        assert s.faults.injection_counts() == {"fetch.transient": 2}
        assert s.db.query("libelf")

    def test_fetch_transient_beyond_budget_is_clean_error(self, faulty_session):
        s = faulty_session
        # default retry budget is 2 retries after the first attempt; four
        # transient failures exhaust it
        s.faults.arm([Fault("fetch.transient", target="libelf", times=4)])
        with pytest.raises(ReproError):
            s.install("libelf", jobs=1)
        s.faults.disarm()
        s.install("libelf", jobs=1)  # recovery: nothing was poisoned
        assert s.db.query("libelf")

    def test_fetch_permanent_is_clean_error_never_retried(self, faulty_session):
        s = faulty_session
        s.faults.arm([Fault("fetch.permanent", target="libelf")])
        with pytest.raises(ReproError):
            s.install("libelf", jobs=1)
        assert s.telemetry.counter("fetch.retries") == 0
        s.faults.disarm()
        s.install("libelf", jobs=1)
        assert s.db.query("libelf")

    @pytest.mark.parametrize("where", ["post-stage", "post-build"])
    def test_executor_crash_leaves_orphan_then_heals(self, faulty_session, where):
        s = faulty_session
        s.faults.arm([Fault("executor.crash", target="libelf", where=where)])
        with pytest.raises(SimulatedKill):
            s.install("libelf", jobs=1)
        s.faults.disarm()
        prefix = s.store.layout.path_for_spec(s.concretize("libelf"))
        assert os.path.isdir(prefix)        # the orphan
        assert not s.db.query("libelf")     # never registered
        s.install("libelf", jobs=1)         # heals: rebuilds the prefix
        assert s.db.query("libelf")
        assert s.telemetry.counter("store.orphan_prefixes_healed") == 1

    def test_db_write_race_record_survives_merge(self, faulty_session):
        s = faulty_session
        s.faults.arm([Fault("db.write_race")])
        s.install("libelf", jobs=1)
        s.faults.disarm()
        names = sorted(r.spec.name for r in s.db.all_records())
        # both the concurrent writer's record and ours survived
        assert FOREIGN_NAME in names
        assert "libelf" in names

    def test_lock_timeout_is_clean_error_then_recovers(self, faulty_session):
        s = faulty_session
        s.faults.arm([Fault("lock.timeout", target="libelf")])
        with pytest.raises(ReproError):
            s.install("libelf", jobs=1)
        s.faults.disarm()
        s.install("libelf", jobs=1)
        assert s.db.query("libelf")

    def test_telemetry_trace_drop_never_changes_outcomes(
        self, faulty_session, tmp_path
    ):
        """Sinks raising mid-emit cripple the telemetry stream, never
        the install: records are dropped and counted, and the store's
        provenance stays byte-identical to an unfaulted session's."""
        import json

        from repro.store.layout import METADATA_DIR

        def provenance(session, spec):
            out = {}
            for node in spec.traverse():
                meta = os.path.join(
                    session.store.layout.path_for_spec(node), METADATA_DIR
                )
                with open(os.path.join(meta, "spec.json"), "rb") as f:
                    out[node.dag_hash()] = f.read()
            return out

        s = faulty_session
        s.faults.arm([Fault("telemetry.trace.drop", times=10)])
        spec, result = s.install("libdwarf", jobs=1)
        s.faults.disarm()
        assert s.db.query("libdwarf")          # the install succeeded
        assert s.telemetry.drops == 10          # ...with records lost
        assert s.faults.injection_counts() == {"telemetry.trace.drop": 10}
        assert len(result.built) == 2

        clean = Session.create(str(tmp_path / "clean"), install_jobs=1)
        clean_spec, _ = clean.install("libdwarf", jobs=1)
        assert clean_spec.dag_hash() == spec.dag_hash()
        assert provenance(clean, clean_spec) == provenance(s, spec)

    def test_telemetry_trace_drop_concretize_identical(self, faulty_session):
        """Concretization results are identical whether or not every
        telemetry record is being dropped."""
        s = faulty_session
        quiet = s.concretize("mpileaks", use_cache=False)
        s.faults.arm([Fault("telemetry.trace.drop", times=100)])
        noisy = s.concretize("mpileaks", use_cache=False)
        s.faults.disarm()
        assert s.telemetry.drops > 0
        assert noisy.dag_hash() == quiet.dag_hash()
        assert noisy.to_dict() == quiet.to_dict()
