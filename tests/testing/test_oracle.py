"""The differential oracle: outcome classification and the minimizer."""

import pytest

from repro.compilers.registry import Compiler, CompilerRegistry
from repro.config.config import Config
from repro.repo.providers import ProviderIndex
from repro.spec.spec import Spec
from repro.testing.generators import RepoGenerator, SpecGenerator
from repro.testing.oracle import (
    AGREE_ERROR,
    AGREE_SUCCESS,
    DIVERGENCE,
    RESCUE,
    Comparison,
    DifferentialOracle,
)


@pytest.fixture(scope="module")
def oracle():
    repo = RepoGenerator(55, count=20, virtuals=2).build()
    index = ProviderIndex.from_repo(repo)
    registry = CompilerRegistry(
        [Compiler("gcc", "4.9.2"), Compiler("intel", "15.0.1")]
    )
    config = Config()
    config.update(
        "defaults",
        {"preferences": {"compiler_order": ["gcc@4.9.2"],
                         "architecture": "linux-x86_64"}},
    )
    return DifferentialOracle(repo, index, registry, config, max_attempts=64)


class TestClassification:
    def test_agreement_on_valid_request(self, oracle):
        comparison = oracle.compare("gen-000")
        assert comparison.kind == AGREE_SUCCESS
        assert comparison.greedy_hash == comparison.backtracking_hash
        assert not comparison.divergent

    def test_agreement_on_impossible_request(self, oracle):
        # no compiler named pgi is registered: both must fail, typed
        comparison = oracle.compare("gen-000 %pgi")
        assert comparison.kind == AGREE_ERROR
        assert comparison.greedy_error is not None
        assert comparison.backtracking_error is not None

    def test_generated_stream_never_diverges(self, oracle):
        generator = SpecGenerator(31, oracle.greedy.repo)
        kinds = set()
        for i in range(60):
            comparison = oracle.compare(generator.spec(i))
            kinds.add(comparison.kind)
            assert comparison.kind != DIVERGENCE, comparison.to_dict()
        assert AGREE_SUCCESS in kinds  # the stream exercises real successes

    def test_rescue_classified_when_only_greedy_fails(self, oracle, monkeypatch):
        """Greedy dead ends that the search survives are benign rescues —
        backtracking exists precisely to explore past them (§4.5)."""
        from repro.core.concretizer import ConcretizationError

        real_run = DifferentialOracle._run

        def run_with_greedy_dead_end(concretizer, request):
            if concretizer is oracle.greedy:
                return None, None, ConcretizationError.__name__
            return real_run(concretizer, request)

        monkeypatch.setattr(DifferentialOracle, "_run",
                            staticmethod(run_with_greedy_dead_end))
        comparison = oracle.compare("gen-000")
        assert comparison.kind == RESCUE
        assert not comparison.divergent

    def test_divergence_when_hashes_differ(self, oracle, monkeypatch):
        real_run = DifferentialOracle._run

        def run_with_skewed_backtracking(concretizer, request):
            g_hash, spec, err = real_run(concretizer, request)
            if concretizer is oracle.backtracking and g_hash is not None:
                return "deadbeef" + g_hash[8:], spec, err
            return g_hash, spec, err

        monkeypatch.setattr(DifferentialOracle, "_run",
                            staticmethod(run_with_skewed_backtracking))
        comparison = oracle.compare("gen-000", minimize=False)
        assert comparison.kind == DIVERGENCE
        assert comparison.divergent

    def test_divergence_when_backtracking_loses_a_solution(self, oracle,
                                                           monkeypatch):
        from repro.core.concretizer import ConcretizationError

        real_run = DifferentialOracle._run

        def run_with_backtracking_failure(concretizer, request):
            if concretizer is oracle.backtracking:
                return None, None, ConcretizationError.__name__
            return real_run(concretizer, request)

        monkeypatch.setattr(DifferentialOracle, "_run",
                            staticmethod(run_with_backtracking_failure))
        comparison = oracle.compare("gen-000", minimize=False)
        assert comparison.kind == DIVERGENCE


class TestMinimizer:
    def test_minimizer_strips_irrelevant_components(self, oracle, monkeypatch):
        """With divergence pinned to one variant flag, every other
        constraint must be shaved off the reproducer."""
        monkeypatch.setattr(
            oracle, "_diverges", lambda request: "+shared" in request
        )
        minimized = oracle.minimize(
            "gen-013@2:%gcc+shared=linux-x86_64 ^gen-000@1:"
        )
        assert "+shared" in minimized
        assert "@2:" not in minimized
        assert "%gcc" not in minimized
        assert "^gen-000" not in minimized

    def test_minimizer_is_identity_without_strippable_cause(self, oracle,
                                                            monkeypatch):
        monkeypatch.setattr(oracle, "_diverges", lambda request: True)
        # every component strippable: reduces to the bare name
        assert oracle.minimize("gen-013@2:%gcc+shared") == "gen-013"

    def test_comparison_serializes(self):
        comparison = Comparison("a", AGREE_SUCCESS, greedy_hash="h",
                                backtracking_hash="h", attempts=3)
        data = comparison.to_dict()
        assert data["kind"] == AGREE_SUCCESS
        assert data["attempts"] == 3
