"""The three-way differential oracle: classification and the minimizer."""

import pytest

from repro.compilers.registry import Compiler, CompilerRegistry
from repro.config.config import Config
from repro.repo.providers import ProviderIndex
from repro.repo.repository import Repository
from repro.spec.spec import Spec
from repro.testing.generators import RepoGenerator, SpecGenerator, _make_package
from repro.testing.oracle import (
    AGREE_ERROR,
    AGREE_SUCCESS,
    DIVERGENCE,
    IMPROVEMENT,
    OPTIMALITY_DIVERGENCE,
    RESCUE,
    Comparison,
    DifferentialOracle,
)


def _build_oracle(conflict_density=0.0, **kwargs):
    repo = RepoGenerator(55, count=20, virtuals=2,
                         conflict_density=conflict_density).build()
    index = ProviderIndex.from_repo(repo)
    registry = CompilerRegistry(
        [Compiler("gcc", "4.9.2"), Compiler("intel", "15.0.1")]
    )
    config = Config()
    config.update(
        "defaults",
        {"preferences": {"compiler_order": ["gcc@4.9.2"],
                         "architecture": "linux-x86_64"}},
    )
    return DifferentialOracle(repo, index, registry, config,
                              max_attempts=64, **kwargs)


@pytest.fixture(scope="module")
def oracle():
    return _build_oracle()


@pytest.fixture(scope="module")
def conflict_oracle():
    """An oracle over a conflict-rich universe: real greedy dead ends."""
    return _build_oracle(conflict_density=1.0)


class TestClassification:
    def test_agreement_on_valid_request(self, oracle):
        comparison = oracle.compare("gen-000")
        assert comparison.kind == AGREE_SUCCESS
        assert comparison.greedy_hash == comparison.backtracking_hash
        assert comparison.greedy_hash == comparison.solver_hash
        assert comparison.solver_score == comparison.best_score
        assert not comparison.divergent

    def test_agreement_on_impossible_request(self, oracle):
        # no compiler named pgi is registered: all three must fail, typed
        comparison = oracle.compare("gen-000 %pgi")
        assert comparison.kind == AGREE_ERROR
        assert comparison.greedy_error is not None
        assert comparison.backtracking_error is not None
        assert comparison.solver_error is not None
        assert comparison.solver_score is None

    def test_generated_stream_never_diverges(self, oracle):
        generator = SpecGenerator(31, oracle.greedy.repo)
        kinds = set()
        for i in range(60):
            comparison = oracle.compare(generator.spec(i))
            kinds.add(comparison.kind)
            assert not comparison.divergent, comparison.to_dict()
        assert AGREE_SUCCESS in kinds  # the stream exercises real successes

    def test_real_rescue_on_conflict_universe(self, conflict_oracle):
        """Requests for the knob-generated dead ends classify as benign
        rescues with the solver's search statistics attached."""
        names = conflict_oracle.greedy.repo.all_package_names()
        rescue_kinds = set()
        for name in names:
            if not (name.startswith(("hardpick", "varpick", "verpick",
                                     "clash", "needs-"))):
                continue
            comparison = conflict_oracle.compare(name)
            assert not comparison.divergent, comparison.to_dict()
            rescue_kinds.add(comparison.kind)
        assert RESCUE in rescue_kinds

    def test_improvement_when_solver_beats_a_greedy_success(self):
        """Greedy's myopic provider pick drags in a version downgrade a
        cheap provider deviation avoids entirely: the solver's strictly
        better score makes the hash mismatch benign, not a divergence."""
        repo = Repository(namespace="oracle.improve")
        repo.add_class("anchor", _make_package("anchor", ["2.0", "1.0"], []))
        # the alphabetically-preferred provider pins anchor to its
        # non-newest version (a W_STEP consequence greedy cannot see)
        repo.add_class("vpick-aaa", _make_package(
            "vpick-aaa", ["1.0"], [("anchor", "@1.0", None)],
            provided="vgood"))
        repo.add_class("vpick-zzz", _make_package(
            "vpick-zzz", ["1.0"], [], provided="vgood"))
        repo.add_class("top", _make_package(
            "top", ["1.0"], [("vgood", "", None)]))
        index = ProviderIndex.from_repo(repo)
        registry = CompilerRegistry(
            [Compiler("gcc", "4.9.2"), Compiler("intel", "15.0.1")]
        )
        config = Config()
        config.update(
            "defaults",
            {"preferences": {"compiler_order": ["gcc@4.9.2"],
                             "architecture": "linux-x86_64"}},
        )
        poisoned = DifferentialOracle(repo, index, registry, config,
                                      max_attempts=64)
        comparison = poisoned.compare("top")
        assert comparison.kind == IMPROVEMENT
        assert not comparison.divergent
        assert comparison.greedy_hash == comparison.backtracking_hash
        assert comparison.solver_hash != comparison.greedy_hash
        assert comparison.solver_score == comparison.best_score
        # backtracking must still reproduce greedy exactly...
        assert poisoned.solver.last_deviations == {("provider", "vgood"): 1}
        # ...and the improved DAG drops the poisoned subtree entirely
        greedy_score = poisoned.solver.score(
            poisoned.greedy.concretize(Spec("top")))
        assert comparison.solver_score < greedy_score

    def test_rescue_classified_when_only_greedy_fails(self, oracle, monkeypatch):
        """Greedy dead ends that the search survives are benign rescues —
        the searches exist precisely to explore past them (§4.5)."""
        from repro.core.concretizer import ConcretizationError

        real_run = DifferentialOracle._run

        def run_with_greedy_dead_end(concretizer, request):
            if concretizer is oracle.greedy:
                return None, None, ConcretizationError.__name__
            return real_run(concretizer, request)

        monkeypatch.setattr(DifferentialOracle, "_run",
                            staticmethod(run_with_greedy_dead_end))
        comparison = oracle.compare("gen-000")
        assert comparison.kind == RESCUE
        assert not comparison.divergent

    def test_rescue_when_backtracking_also_fails(self, oracle, monkeypatch):
        """Solver-only rescues are benign: the solver explores deviations
        (versions, variants, compilers) the provider-only search cannot."""
        from repro.core.concretizer import ConcretizationError

        real_run = DifferentialOracle._run

        def run_with_only_solver_succeeding(concretizer, request):
            if concretizer is oracle.solver:
                return real_run(concretizer, request)
            return None, None, ConcretizationError.__name__

        monkeypatch.setattr(DifferentialOracle, "_run",
                            staticmethod(run_with_only_solver_succeeding))
        comparison = oracle.compare("gen-000")
        assert comparison.kind == RESCUE
        assert not comparison.divergent

    def test_divergence_when_hashes_differ(self, oracle, monkeypatch):
        real_run = DifferentialOracle._run

        def run_with_skewed_backtracking(concretizer, request):
            g_hash, spec, err = real_run(concretizer, request)
            if concretizer is oracle.backtracking and g_hash is not None:
                return "deadbeef" + g_hash[8:], spec, err
            return g_hash, spec, err

        monkeypatch.setattr(DifferentialOracle, "_run",
                            staticmethod(run_with_skewed_backtracking))
        comparison = oracle.compare("gen-000", minimize=False)
        assert comparison.kind == DIVERGENCE
        assert comparison.divergent

    def test_divergence_when_backtracking_loses_a_solution(self, oracle,
                                                           monkeypatch):
        from repro.core.concretizer import ConcretizationError

        real_run = DifferentialOracle._run

        def run_with_backtracking_failure(concretizer, request):
            if concretizer is oracle.backtracking:
                return None, None, ConcretizationError.__name__
            return real_run(concretizer, request)

        monkeypatch.setattr(DifferentialOracle, "_run",
                            staticmethod(run_with_backtracking_failure))
        comparison = oracle.compare("gen-000", minimize=False)
        assert comparison.kind == DIVERGENCE

    def test_divergence_when_solver_loses_a_solution(self, oracle,
                                                     monkeypatch):
        """The solver's space subsumes both others: any solution it
        cannot reproduce is a bug, never a benign miss."""
        from repro.core.concretizer import ConcretizationError

        real_run = DifferentialOracle._run

        def run_with_solver_failure(concretizer, request):
            if concretizer is oracle.solver:
                return None, None, ConcretizationError.__name__
            return real_run(concretizer, request)

        monkeypatch.setattr(DifferentialOracle, "_run",
                            staticmethod(run_with_solver_failure))
        comparison = oracle.compare("gen-000", minimize=False)
        assert comparison.kind == DIVERGENCE

    def test_divergence_when_only_backtracking_succeeds(self, oracle,
                                                        monkeypatch):
        from repro.core.concretizer import ConcretizationError

        real_run = DifferentialOracle._run

        def run_with_only_backtracking(concretizer, request):
            if concretizer is oracle.backtracking:
                return real_run(concretizer, request)
            return None, None, ConcretizationError.__name__

        monkeypatch.setattr(DifferentialOracle, "_run",
                            staticmethod(run_with_only_backtracking))
        comparison = oracle.compare("gen-000", minimize=False)
        assert comparison.kind == DIVERGENCE

    def test_optimality_divergence_when_solver_scores_worse(self, oracle,
                                                            monkeypatch):
        """If another variant's DAG scores strictly better on the
        solver's own objective, the optimization contract is broken."""
        real_score = oracle.solver.score
        real_run = DifferentialOracle._run

        def run_with_private_solver_spec(concretizer, request):
            result = real_run(concretizer, request)
            if concretizer is oracle.solver:
                # hand the score shim a distinct spec object to inflate
                monkeypatch.setattr(
                    oracle.solver, "score",
                    lambda c: real_score(c) + (1 if c is result[1] else 0),
                )
            return result

        monkeypatch.setattr(DifferentialOracle, "_run",
                            staticmethod(run_with_private_solver_spec))
        comparison = oracle.compare("gen-000", minimize=False)
        assert comparison.kind == OPTIMALITY_DIVERGENCE
        assert comparison.divergent
        assert comparison.solver_score > comparison.best_score

    def test_classify_matrix(self):
        """The full decision table, driven directly (no concretizer).
        Arguments: greedy/backtracking/solver hash, greedy score,
        solver score, scores of the non-solver successes."""
        classify = DifferentialOracle._classify
        # all succeed, same hash
        assert classify("h", "h", "h", 5, 5, [5, 5]) == AGREE_SUCCESS
        # solver hash differs with a strictly better score: benign
        assert classify("h", "h", "x", 9, 5, [9, 9]) == IMPROVEMENT
        # solver hash differs at the same score: nondeterminism
        assert classify("h", "h", "x", 5, 5, [5, 5]) == DIVERGENCE
        # solver worse than an alternative
        assert classify("h", "h", "x", 5, 9, [5, 5]) == OPTIMALITY_DIVERGENCE
        assert classify(None, "h", "x", None, 9, [5]) == OPTIMALITY_DIVERGENCE
        # backtracking must reproduce greedy even when the solver improves
        assert classify("h", "x", "y", 9, 5, [9, 9]) == DIVERGENCE
        # greedy fails, solver rescues (backtracking either way)
        assert classify(None, None, "x", None, 9, []) == RESCUE
        assert classify(None, "h", "x", None, 5, [5]) == RESCUE
        # greedy ok, a search failed
        assert classify("h", None, "h", 5, 5, [5]) == DIVERGENCE
        assert classify("h", "h", None, 5, None, [5, 5]) == DIVERGENCE
        # solver failed where backtracking succeeded
        assert classify(None, "h", None, None, None, [5]) == DIVERGENCE
        # everyone failed
        assert classify(None, None, None, None, None, []) == AGREE_ERROR


class TestMinimizer:
    def test_minimizer_strips_irrelevant_components(self, oracle, monkeypatch):
        """With divergence pinned to one variant flag, every other
        constraint must be shaved off the reproducer."""
        monkeypatch.setattr(
            oracle, "_diverges", lambda request: "+shared" in request
        )
        minimized = oracle.minimize(
            "gen-013@2:%gcc+shared=linux-x86_64 ^gen-000@1:"
        )
        assert "+shared" in minimized
        assert "@2:" not in minimized
        assert "%gcc" not in minimized
        assert "^gen-000" not in minimized

    def test_minimizer_is_identity_without_strippable_cause(self, oracle,
                                                            monkeypatch):
        monkeypatch.setattr(oracle, "_diverges", lambda request: True)
        # every component strippable: reduces to the bare name
        assert oracle.minimize("gen-013@2:%gcc+shared") == "gen-013"

    def test_optimality_divergence_is_minimized_too(self, oracle, monkeypatch):
        """Both divergence kinds feed ddmin: Comparison.divergent is the
        single switch the minimizer keys on."""
        comparison = Comparison("r", OPTIMALITY_DIVERGENCE)
        assert comparison.divergent
        monkeypatch.setattr(
            oracle, "compare",
            lambda request, minimize=False: Comparison(
                request,
                OPTIMALITY_DIVERGENCE if "+shared" in request else AGREE_SUCCESS,
            ),
        )
        assert oracle.minimize("gen-013@2:+shared") == "gen-013+shared"

    def test_comparison_serializes(self):
        comparison = Comparison("a", AGREE_SUCCESS, greedy_hash="h",
                                backtracking_hash="h", solver_hash="h",
                                attempts=3, solver_attempts=7, solver_score=12)
        data = comparison.to_dict()
        assert data["kind"] == AGREE_SUCCESS
        assert data["attempts"] == 3
        assert data["solver_attempts"] == 7
        assert data["solver_score"] == 12
        assert data["solver_hash"] == "h"
