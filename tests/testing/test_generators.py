"""Generative models: determinism, replayability, and plannability."""

from repro.testing import derive_seed, session_seed
from repro.testing.generators import (
    FUZZ_ALPHABET,
    RepoGenerator,
    SpecGenerator,
    SpecTextGenerator,
)


def _fingerprint(repo):
    """A structural digest of a generated repository."""
    out = []
    for name in repo.all_package_names():
        cls = repo.get_class(name)
        deps = sorted(
            (d, str(dc.spec), str(dc.when))
            for d, dcs in cls.dependencies.items()
            for dc in dcs
        )
        out.append(
            (
                name,
                sorted(str(v) for v in cls.versions),
                sorted(cls.variants),
                deps,
                sorted(str(p.spec) for p in cls.provided),
            )
        )
    return out


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_distinguishes_names_and_master(self):
        seeds = {
            derive_seed(1, "a"),
            derive_seed(1, "b"),
            derive_seed(2, "a"),
            derive_seed(1, "a", 0),
        }
        assert len(seeds) == 4

    def test_session_seed_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SEED", "777")
        assert session_seed() == 777


class TestRepoGenerator:
    def test_same_seed_same_universe(self):
        a = RepoGenerator(33, count=20, virtuals=2).build()
        b = RepoGenerator(33, count=20, virtuals=2).build()
        assert _fingerprint(a) == _fingerprint(b)

    def test_different_seed_different_universe(self):
        a = RepoGenerator(33, count=20).build()
        b = RepoGenerator(34, count=20).build()
        assert _fingerprint(a) != _fingerprint(b)

    def test_virtuals_have_multiple_providers(self):
        from repro.repo.providers import ProviderIndex

        repo = RepoGenerator(5, count=10, virtuals=2).build()
        index = ProviderIndex.from_repo(repo)
        assert index.virtual_names() == ["vif-0", "vif-1"]
        for vname in index.virtual_names():
            assert len(index.providers_for(vname)) >= 2

    def test_universe_is_acyclic_and_concretizable(self):
        """Every generated package concretizes (the layered-DAG and
        leaf-provider guarantees hold)."""
        from repro.compilers.registry import Compiler, CompilerRegistry
        from repro.config.config import Config
        from repro.core.concretizer import Concretizer
        from repro.repo.providers import ProviderIndex
        from repro.spec.spec import Spec

        repo = RepoGenerator(8, count=15, virtuals=2).build()
        index = ProviderIndex.from_repo(repo)
        registry = CompilerRegistry([Compiler("gcc", "4.9.2")])
        config = Config()
        config.update(
            "defaults",
            {"preferences": {"compiler_order": ["gcc@4.9.2"],
                             "architecture": "linux-x86_64"}},
        )
        concretizer = Concretizer(repo, index, registry, config)
        for name in repo.all_package_names():
            concrete = concretizer.concretize(Spec(name))
            assert concrete.concrete


class TestSpecGenerator:
    def test_stream_is_deterministic(self):
        repo = RepoGenerator(3, count=10).build()
        a = SpecGenerator(9, repo).specs(25)
        b = SpecGenerator(9, repo).specs(25)
        assert a == b

    def test_per_index_replay(self):
        """spec(i) regenerates case i without replaying the stream."""
        repo = RepoGenerator(3, count=10).build()
        stream = SpecGenerator(9, repo).specs(25)
        assert SpecGenerator(9, repo).spec(17) == stream[17]

    def test_specs_name_known_packages(self):
        repo = RepoGenerator(3, count=10).build()
        names = set(repo.all_package_names())
        for text in SpecGenerator(9, repo).specs(30):
            root = text.split("@")[0].split("%")[0]
            root = root.split("+")[0].split("~")[0].split("=")[0].split(" ")[0]
            assert root in names


class TestSpecTextGenerator:
    def test_streams_are_deterministic(self):
        a, b = SpecTextGenerator(4), SpecTextGenerator(4)
        for i in range(20):
            assert a.soup(i) == b.soup(i)
            assert a.unicode_soup(i) == b.unicode_soup(i)
            assert a.plausible(i) == b.plausible(i)
            assert a.mutant(i) == b.mutant(i)

    def test_soup_stays_on_alphabet(self):
        gen = SpecTextGenerator(4)
        for i in range(50):
            assert set(gen.soup(i)) <= set(FUZZ_ALPHABET)

    def test_plausible_usually_parses(self):
        from repro.spec.errors import SpecError
        from repro.spec.parser import parse_specs
        from repro.version import VersionParseError

        gen = SpecTextGenerator(4)
        parsed = 0
        for i in range(100):
            try:
                parse_specs(gen.plausible(i))
                parsed += 1
            except (SpecError, VersionParseError):
                pass
        assert parsed > 80  # plausible means *usually* valid
