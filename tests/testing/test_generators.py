"""Generative models: determinism, replayability, and plannability."""

import pytest

from repro.testing import derive_seed, session_seed
from repro.testing.generators import (
    FUZZ_ALPHABET,
    GEN_COMPILERS,
    RepoGenerator,
    SpecGenerator,
    SpecTextGenerator,
    greedy_dead_end_corpus,
)


def _concretizer_stack(repo, extra_config=None, compilers=GEN_COMPILERS):
    """(greedy, backtracking, solver) over one repo with the generated
    universes' standard gcc-first configuration."""
    from repro.compilers.registry import Compiler, CompilerRegistry
    from repro.config.config import Config
    from repro.core.backtracking import BacktrackingConcretizer
    from repro.core.concretizer import Concretizer
    from repro.core.solver import SolverConcretizer
    from repro.repo.providers import ProviderIndex

    index = ProviderIndex.from_repo(repo)
    registry = CompilerRegistry([Compiler(*cs.split("@")) for cs in compilers])
    config = Config()
    config.update(
        "defaults",
        {"preferences": {"compiler_order": [GEN_COMPILERS[0]],
                         "architecture": "linux-x86_64"}},
    )
    if extra_config:
        config.update("user", extra_config)
    args = (repo, index, registry, config)
    return (
        Concretizer(*args),
        BacktrackingConcretizer(*args),
        SolverConcretizer(*args, max_attempts=128),
    )


def _fingerprint(repo):
    """A structural digest of a generated repository."""
    out = []
    for name in repo.all_package_names():
        cls = repo.get_class(name)
        deps = sorted(
            (d, str(dc.spec), str(dc.when))
            for d, dcs in cls.dependencies.items()
            for dc in dcs
        )
        out.append(
            (
                name,
                sorted(str(v) for v in cls.versions),
                sorted(cls.variants),
                deps,
                sorted(str(p.spec) for p in cls.provided),
            )
        )
    return out


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_distinguishes_names_and_master(self):
        seeds = {
            derive_seed(1, "a"),
            derive_seed(1, "b"),
            derive_seed(2, "a"),
            derive_seed(1, "a", 0),
        }
        assert len(seeds) == 4

    def test_session_seed_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SEED", "777")
        assert session_seed() == 777


class TestRepoGenerator:
    def test_same_seed_same_universe(self):
        a = RepoGenerator(33, count=20, virtuals=2).build()
        b = RepoGenerator(33, count=20, virtuals=2).build()
        assert _fingerprint(a) == _fingerprint(b)

    def test_different_seed_different_universe(self):
        a = RepoGenerator(33, count=20).build()
        b = RepoGenerator(34, count=20).build()
        assert _fingerprint(a) != _fingerprint(b)

    def test_virtuals_have_multiple_providers(self):
        from repro.repo.providers import ProviderIndex

        repo = RepoGenerator(5, count=10, virtuals=2).build()
        index = ProviderIndex.from_repo(repo)
        assert index.virtual_names() == ["vif-0", "vif-1"]
        for vname in index.virtual_names():
            assert len(index.providers_for(vname)) >= 2

    def test_universe_is_acyclic_and_concretizable(self):
        """Every generated package concretizes (the layered-DAG and
        leaf-provider guarantees hold)."""
        from repro.compilers.registry import Compiler, CompilerRegistry
        from repro.config.config import Config
        from repro.core.concretizer import Concretizer
        from repro.repo.providers import ProviderIndex
        from repro.spec.spec import Spec

        repo = RepoGenerator(8, count=15, virtuals=2).build()
        index = ProviderIndex.from_repo(repo)
        registry = CompilerRegistry([Compiler("gcc", "4.9.2")])
        config = Config()
        config.update(
            "defaults",
            {"preferences": {"compiler_order": ["gcc@4.9.2"],
                             "architecture": "linux-x86_64"}},
        )
        concretizer = Concretizer(repo, index, registry, config)
        for name in repo.all_package_names():
            concrete = concretizer.concretize(Spec(name))
            assert concrete.concrete


class TestNamePrefixing:
    """Regression: generated universes used unprefixed names (gen-NNN,
    vif-N), so registering two generated repos — or a generated repo
    next to another corpus — in one Session silently shadowed packages:
    the RepoPath answers with the first repo's class and the second
    universe's constraints are never seen."""

    def test_two_generated_repos_collide_without_prefixes(self):
        a = RepoGenerator(11, count=10, virtuals=1).build()
        b = RepoGenerator(22, count=10, virtuals=1).build()
        # the hazard this fixes: same names, different directive bodies
        assert set(a.all_package_names()) & set(b.all_package_names())

    def test_name_prefix_makes_universes_disjoint(self):
        a = RepoGenerator(11, count=10, virtuals=1, name_prefix="alpha").build()
        b = RepoGenerator(22, count=10, virtuals=1, name_prefix="beta").build()
        assert not set(a.all_package_names()) & set(b.all_package_names())
        assert all(n.startswith("alpha-") for n in a.all_package_names())

    def test_prefixed_knob_packages_stay_disjoint_too(self):
        kwargs = dict(count=12, virtuals=2, conflict_density=1.0,
                      when_depth=2, provider_overlap=1.0)
        a = RepoGenerator(11, name_prefix="alpha", **kwargs).build()
        b = RepoGenerator(11, name_prefix="beta", **kwargs).build()
        assert not set(a.all_package_names()) & set(b.all_package_names())

    def test_mixed_corpora_in_one_session_both_resolve(self, tmp_path):
        """A generated universe registered next to the builtin corpus:
        every name resolves to its own repo's class, and both sides
        concretize inside one Session."""
        from repro.session import Session

        session = Session.create(str(tmp_path / "u"))
        extra = RepoGenerator(11, count=8, virtuals=1,
                              namespace="gen.alpha", name_prefix="alpha").build()
        session.add_repo(extra)
        builtin_names = set(session.repo.repos[-1].all_package_names())
        assert not builtin_names & set(extra.all_package_names())
        assert session.concretize("mpileaks").concrete
        assert session.concretize(extra.all_package_names()[0]).concrete

    def test_prefixed_universe_concretizes(self):
        from repro.spec.spec import Spec

        repo = RepoGenerator(8, count=15, virtuals=2, name_prefix="px",
                             hub_bias=0.6, max_deps=4).build()
        greedy, _, _ = _concretizer_stack(repo)
        for name in repo.all_package_names():
            assert greedy.concretize(Spec(name)).concrete


class TestConflictKnobs:
    def test_default_knobs_preserve_old_universes(self):
        """Knobless builds must stay byte-identical to pre-knob builds:
        campaign seeds recorded before the knobs existed still replay."""
        plain = RepoGenerator(33, count=20, virtuals=2).build()
        explicit = RepoGenerator(33, count=20, virtuals=2,
                                 conflict_density=0.0, when_depth=0,
                                 provider_overlap=0.0).build()
        assert _fingerprint(plain) == _fingerprint(explicit)

    def test_knobbed_universe_is_deterministic(self):
        kwargs = dict(count=20, virtuals=3, conflict_density=0.8,
                      when_depth=2, provider_overlap=0.5)
        a = RepoGenerator(77, **kwargs).build()
        b = RepoGenerator(77, **kwargs).build()
        assert _fingerprint(a) == _fingerprint(b)

    def test_conflict_density_adds_dead_end_families(self):
        repo = RepoGenerator(77, count=20, virtuals=3,
                             conflict_density=1.0).build()
        names = repo.all_package_names()
        assert any(n.startswith("clash-") for n in names)
        assert any(n.endswith("-aaa-impl") for n in names)
        assert any(n.startswith("hardpick-") for n in names)
        assert any(n.startswith("varpick-") for n in names)
        assert any(n.startswith("verpick-") for n in names)

    def test_poisoned_provider_is_preferred(self):
        """The -aaa-impl provider must outrank the benign ones under the
        default name tie-break, or greedy would never dead-end on it."""
        from repro.core.policies import DefaultPolicy
        from repro.config.config import Config
        from repro.repo.providers import ProviderIndex

        repo = RepoGenerator(77, count=20, virtuals=3,
                             conflict_density=1.0).build()
        index = ProviderIndex.from_repo(repo)
        policy = DefaultPolicy(Config())
        for vname in index.virtual_names():
            ordered = policy.order_providers(
                vname, index.providers_for(vname))
            assert ordered[0].name.endswith("-aaa-impl"), vname

    def test_when_depth_builds_conditional_chains(self):
        repo = RepoGenerator(77, count=20, when_depth=3).build()
        cls = repo.get_class("chain-0-0")
        (dc,) = cls.dependencies["chain-0-1"]
        assert str(dc.when) == "@2:"
        # the tail link is a leaf
        assert not repo.get_class("chain-0-2").dependencies

    def test_overlap_provider_serves_adjacent_virtuals(self):
        from repro.repo.providers import ProviderIndex

        repo = RepoGenerator(77, count=20, virtuals=3,
                             provider_overlap=1.0).build()
        index = ProviderIndex.from_repo(repo)
        cls = repo.get_class("dual-0-aaa-impl")
        assert sorted(str(p.spec) for p in cls.provided) == ["vif-0", "vif-1"]
        assert "dual-0-aaa-impl" in [
            p.name for p in index.providers_for("vif-0")
        ]

    def test_conflict_universe_fails_typed_or_concretizes(self):
        """Every package either concretizes or fails with a *typed*
        concretization error — never an untyped crash — under all three
        concretizers."""
        from repro.core.concretizer import ConcretizationError
        from repro.spec.errors import SpecError

        repo = RepoGenerator(77, count=15, virtuals=2, conflict_density=1.0,
                             when_depth=2, provider_overlap=0.5).build()
        greedy, bt, solver = _concretizer_stack(repo)
        for name in repo.all_package_names():
            for concretizer in (greedy, bt, solver):
                try:
                    concrete = concretizer.concretize(name)
                    assert concrete.concrete
                except (ConcretizationError, SpecError):
                    pass

    def test_solver_rescues_what_the_knobs_poison(self):
        """The knobs must actually produce greedy-dead-end requests the
        solver rescues — the whole point of a conflict-rich universe."""
        from repro.core.concretizer import ConcretizationError

        repo = RepoGenerator(77, count=20, virtuals=3,
                             conflict_density=1.0).build()
        greedy, _, solver = _concretizer_stack(repo)
        rescued = 0
        for name in repo.all_package_names():
            try:
                greedy.concretize(name)
                continue
            except ConcretizationError:
                pass
            concrete = solver.concretize(name)
            assert concrete.concrete
            rescued += 1
        assert rescued >= 3


class TestDeadEndCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return greedy_dead_end_corpus()

    def test_corpus_is_deterministic(self, corpus):
        again = greedy_dead_end_corpus()
        assert [s.label for s in corpus] == [s.label for s in again]
        assert [s.request for s in corpus] == [s.request for s in again]

    def test_covers_both_rescuer_classes(self, corpus):
        rescuers = {s.rescuer for s in corpus}
        assert rescuers == {"backtracking", "solver"}

    def test_greedy_always_dead_ends(self, corpus):
        from repro.core.concretizer import ConcretizationError

        for scenario in corpus:
            greedy, _, _ = _concretizer_stack(scenario.repo, scenario.config)
            with pytest.raises(ConcretizationError):
                greedy.concretize(scenario.request)

    def test_named_rescuer_succeeds(self, corpus):
        from repro.core.concretizer import ConcretizationError

        for scenario in corpus:
            _, bt, solver = _concretizer_stack(scenario.repo, scenario.config)
            concrete = solver.concretize(scenario.request)
            assert concrete.concrete, scenario.label
            assert solver.last_proven_optimal, scenario.label
            if scenario.rescuer == "backtracking":
                assert bt.concretize(scenario.request).concrete
            else:
                # provider re-enumeration alone cannot fix these
                with pytest.raises(ConcretizationError):
                    bt.concretize(scenario.request)

    def test_solver_learns_nogoods_on_dead_ends(self, corpus):
        for scenario in corpus:
            _, _, solver = _concretizer_stack(scenario.repo, scenario.config)
            solver.concretize(scenario.request)
            assert solver.last_nogoods >= 1, scenario.label


class TestSpecGenerator:
    def test_stream_is_deterministic(self):
        repo = RepoGenerator(3, count=10).build()
        a = SpecGenerator(9, repo).specs(25)
        b = SpecGenerator(9, repo).specs(25)
        assert a == b

    def test_per_index_replay(self):
        """spec(i) regenerates case i without replaying the stream."""
        repo = RepoGenerator(3, count=10).build()
        stream = SpecGenerator(9, repo).specs(25)
        assert SpecGenerator(9, repo).spec(17) == stream[17]

    def test_specs_name_known_packages(self):
        repo = RepoGenerator(3, count=10).build()
        names = set(repo.all_package_names())
        for text in SpecGenerator(9, repo).specs(30):
            root = text.split("@")[0].split("%")[0]
            root = root.split("+")[0].split("~")[0].split("=")[0].split(" ")[0]
            assert root in names


class TestSpecTextGenerator:
    def test_streams_are_deterministic(self):
        a, b = SpecTextGenerator(4), SpecTextGenerator(4)
        for i in range(20):
            assert a.soup(i) == b.soup(i)
            assert a.unicode_soup(i) == b.unicode_soup(i)
            assert a.plausible(i) == b.plausible(i)
            assert a.mutant(i) == b.mutant(i)

    def test_soup_stays_on_alphabet(self):
        gen = SpecTextGenerator(4)
        for i in range(50):
            assert set(gen.soup(i)) <= set(FUZZ_ALPHABET)

    def test_plausible_usually_parses(self):
        from repro.spec.errors import SpecError
        from repro.spec.parser import parse_specs
        from repro.version import VersionParseError

        gen = SpecTextGenerator(4)
        parsed = 0
        for i in range(100):
            try:
                parse_specs(gen.plausible(i))
                parsed += 1
            except (SpecError, VersionParseError):
                pass
        assert parsed > 80  # plausible means *usually* valid
