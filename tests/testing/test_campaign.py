"""Campaign engine: determinism, coverage, and the verdict."""

import json

import pytest

from repro.testing.campaign import CampaignConfig, CampaignReport, run_campaign
from repro.testing.faults import ALL_FAULT_POINTS


@pytest.fixture(scope="module")
def small_campaign(tmp_path_factory):
    """One bounded campaign, shared by every assertion in this module."""
    config = CampaignConfig(seed=11, specs=20,
                            fault_plans=len(ALL_FAULT_POINTS) + 1,
                            packages=15, max_attempts=32, cache_specs=25,
                            solver_cases=80)
    workdir = tmp_path_factory.mktemp("campaign")
    return config, run_campaign(config, str(workdir))


class TestCampaign:
    def test_verdict_is_ok(self, small_campaign):
        _, report = small_campaign
        assert report.divergences() == []
        assert report.violations() == []
        assert report.unrecovered() == []
        assert report.ok

    def test_every_fault_point_injected(self, small_campaign):
        """The fixed coverage plans guarantee each point fires at least
        once per campaign — the ISSUE's reachability acceptance bar."""
        _, report = small_campaign
        totals = report.injection_totals()
        for point in ALL_FAULT_POINTS:
            assert totals.get(point, 0) >= 1, point

    def test_oracle_cases_cover_the_request_stream(self, small_campaign):
        config, report = small_campaign
        assert len(report.oracle_cases) == config.specs
        assert [c["case"] for c in report.oracle_cases] == list(range(config.specs))

    def test_cache_phase_has_no_divergences(self, small_campaign):
        config, report = small_campaign
        # one case per (request, variant)
        assert len(report.cache_cases) == 2 * config.cache_specs
        assert report.cache_divergences() == []
        counts = report.cache_outcome_counts()
        assert counts.get("match", 0) > 0
        # every tenth request runs its warm lookup under an armed
        # concretize.cache.corrupt fault and must still match
        faulted = [c for c in report.cache_cases if c["fault"]]
        assert faulted and all(c["kind"] == "match" for c in faulted)

    def test_splice_phase_proves_equivalence(self, small_campaign):
        config, report = small_campaign
        assert len(report.splice_cases) == config.splice_cases
        assert report.splice_divergences() == []
        # non-fault cases must actually exercise the splice path...
        clean = [c for c in report.splice_cases if not c["fault"]]
        assert clean and all(c["spliced"] for c in clean)
        # ...and fault cases prove the stale-donor fallback still
        # converges to the source-built store
        faulted = [c for c in report.splice_cases if c["fault"]]
        assert faulted and all(c["kind"] == "match" for c in faulted)

    def test_solver_phase_rescues_without_divergence(self, small_campaign):
        config, report = small_campaign
        assert len(report.solver_cases) == config.solver_cases
        assert report.solver_divergences() == []
        # the conflict-rich universe must produce real greedy dead ends
        # the solver survives — otherwise the sweep proves nothing
        assert report.solver_rescues()
        for case in report.solver_rescues():
            assert case["greedy_error"] is not None
            assert case["solver_error"] is None
        counts = report.solver_outcome_counts()
        assert counts.get("agree-success", 0) > 0

    def test_solver_phase_fault_cases_match(self, small_campaign):
        """Every tenth solver case re-concretizes through a corrupted
        on-disk cache; the fallback must fire and agree with the oracle."""
        _, report = small_campaign
        faulted = [c for c in report.solver_cases if c["fault"]]
        assert faulted and all(c["fault"] == "match" for c in faulted)

    def test_env_phase_unifies_without_divergence(self, small_campaign):
        config, report = small_campaign
        assert len(report.env_cases) == config.env_cases
        assert report.env_divergences() == []
        counts = report.env_outcome_counts()
        # the hub-biased universe must produce real sharing AND real
        # reconciliation work — otherwise the sweep proves nothing
        assert counts.get("unified", 0) > 0
        assert any(c.get("shared_packages") for c in report.env_cases)
        assert any(c.get("pins") for c in report.env_cases)
        # conflicts are legitimate outcomes and carry their demands
        for case in report.env_cases:
            if case["kind"] == "conflict":
                assert case["demands"]

    def test_report_lines_are_valid_jsonl(self, small_campaign):
        config, report = small_campaign
        lines = list(report.lines())
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "campaign"
        assert records[0]["config"]["seed"] == config.seed
        assert records[-1]["type"] == "summary"
        assert records[-1]["ok"] is True

    def test_same_seed_reports_are_byte_identical(self, small_campaign,
                                                  tmp_path):
        config, report = small_campaign
        again = run_campaign(config, str(tmp_path / "rerun"))
        assert list(report.lines()) == list(again.lines())

    def test_write_round_trips(self, small_campaign, tmp_path):
        _, report = small_campaign
        path = report.write(str(tmp_path / "report.jsonl"))
        with open(path) as f:
            assert f.read().splitlines() == list(report.lines())

    def test_different_seed_changes_the_stream(self, tmp_path):
        a = CampaignConfig(seed=1, specs=10, fault_plans=0, packages=10,
                           cache_specs=0, splice_cases=0, solver_cases=0,
                           env_cases=0)
        b = CampaignConfig(seed=2, specs=10, fault_plans=0, packages=10,
                           cache_specs=0, splice_cases=0, solver_cases=0,
                           env_cases=0)
        ra = run_campaign(a, str(tmp_path / "a"))
        rb = run_campaign(b, str(tmp_path / "b"))
        assert [c["request"] for c in ra.oracle_cases] != [
            c["request"] for c in rb.oracle_cases
        ]


class TestReportAggregation:
    def test_unrecovered_and_ok_flip_on_bad_case(self):
        config = CampaignConfig(seed=3, specs=0, fault_plans=1)
        report = CampaignReport(config)
        report.fault_cases.append({
            "case": 0, "plan": {}, "outcome": "errored", "error": "X",
            "injected": {p: 1 for p in config.points},
            "recovered": False, "recovery_error": "still broken",
        })
        assert len(report.unrecovered()) == 1
        assert not report.ok

    def test_ok_requires_full_point_coverage(self):
        config = CampaignConfig(seed=3, specs=0, fault_plans=1)
        report = CampaignReport(config)
        report.fault_cases.append({
            "case": 0, "plan": {}, "outcome": "absorbed", "error": None,
            "injected": {"fetch.transient": 2},  # only one of the points
            "recovered": True, "recovery_error": None,
        })
        assert not report.ok
