"""The invariant checkers: clean results pass, doctored results fail."""

import pytest

from repro.compilers.registry import Compiler, CompilerRegistry
from repro.config.config import Config
from repro.core.concretizer import Concretizer
from repro.repo.providers import ProviderIndex
from repro.spec.spec import Spec
from repro.testing.generators import RepoGenerator
from repro.testing.invariants import (
    InvariantViolation,
    assert_invariants,
    check_all,
    check_concretization,
    check_roundtrip,
)


@pytest.fixture(scope="module")
def universe():
    repo = RepoGenerator(21, count=15, virtuals=2).build()
    index = ProviderIndex.from_repo(repo)
    registry = CompilerRegistry(
        [Compiler("gcc", "4.9.2"), Compiler("intel", "15.0.1")]
    )
    config = Config()
    config.update(
        "defaults",
        {"preferences": {"compiler_order": ["gcc@4.9.2"],
                         "architecture": "linux-x86_64"}},
    )
    return repo, index, Concretizer(repo, index, registry, config)


def test_clean_results_pass_every_invariant(universe):
    repo, index, concretizer = universe
    for name in repo.all_package_names():
        concrete = concretizer.concretize(Spec(name))
        assert check_all(name, concrete, repo, index, concretizer) == []


def test_assert_invariants_raises_with_context(universe):
    repo, index, concretizer = universe
    concrete = concretizer.concretize(Spec("gen-000"))
    # doctor the result: un-stamp concreteness and drop the architecture
    # so the structural check fails too
    doctored = concrete.copy()
    doctored._concrete = False
    doctored.architecture = None
    with pytest.raises(InvariantViolation, match="case-7"):
        assert_invariants(
            "gen-000", doctored, repo, index, concretizer, context="case-7"
        )


def test_detects_unsatisfied_request(universe):
    repo, index, concretizer = universe
    concrete = concretizer.concretize(Spec("gen-000"))
    violations = check_concretization("gen-000 %intel", concrete, repo, index)
    assert any("satisfy" in v for v in violations)


def test_detects_unknown_package(universe):
    repo, index, concretizer = universe
    concrete = concretizer.concretize(Spec("gen-000"))
    foreign = Spec("no-such-package@1.0")
    foreign._concrete = foreign._normal = True
    violations = check_concretization("no-such-package", foreign, repo, index)
    assert any("unknown package" in v for v in violations)

    del concrete  # silence linters; the fixture result is exercised above


def test_roundtrip_detects_lossy_serialization(universe, monkeypatch):
    """If from_dict ever became lossy, check_roundtrip must notice."""
    repo, index, concretizer = universe
    concrete = concretizer.concretize(Spec("gen-003"))
    assert check_roundtrip(concrete, concretizer=concretizer) == []

    real_from_dict = Spec.from_dict.__func__

    def lossy_from_dict(cls, data):
        spec = real_from_dict(cls, data)
        spec.name = spec.name + "-mangled"
        return spec

    monkeypatch.setattr(Spec, "from_dict", classmethod(lossy_from_dict))
    violations = check_roundtrip(concrete)
    assert any("round-trip changed the spec" in v for v in violations)
