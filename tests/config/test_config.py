"""Configuration scopes, merging, and preference accessors (§4.3)."""

import json

import pytest

from repro.config.config import Config, ConfigError, ConfigScope, load_config_dir


class TestScopes:
    def test_priority_order(self):
        config = Config()
        config.update("defaults", {"preferences": {"architecture": "default-arch"}})
        config.update("site", {"preferences": {"architecture": "site-arch"}})
        assert config.default_architecture() == "site-arch"
        config.update("user", {"preferences": {"architecture": "user-arch"}})
        assert config.default_architecture() == "user-arch"
        config.update("command_line", {"preferences": {"architecture": "cli-arch"}})
        assert config.default_architecture() == "cli-arch"

    def test_deep_merge_dicts(self):
        config = Config()
        config.update("site", {"preferences": {"providers": {"mpi": ["mvapich2"]}}})
        config.update("user", {"preferences": {"providers": {"blas": ["atlas"]}}})
        assert config.provider_order("mpi") == ["mvapich2"]
        assert config.provider_order("blas") == ["atlas"]

    def test_lists_replace(self):
        config = Config()
        config.update("site", {"preferences": {"compiler_order": ["gcc"]}})
        config.update("user", {"preferences": {"compiler_order": ["icc", "gcc@4.4.7"]}})
        assert config.compiler_order() == ["icc", "gcc@4.4.7"]

    def test_unknown_scope_rejected(self):
        with pytest.raises(ConfigError):
            ConfigScope("bogus", {})

    def test_update_merges_within_scope(self):
        config = Config()
        config.update("user", {"a": {"x": 1}})
        config.update("user", {"a": {"y": 2}})
        assert config.get("a") == {"x": 1, "y": 2}


class TestLookups:
    def test_get_path(self):
        config = Config()
        config.update("site", {"preferences": {"providers": {"mpi": ["openmpi"]}}})
        assert config.get("preferences", "providers", "mpi") == ["openmpi"]
        assert config.get("preferences:providers:mpi") == ["openmpi"]
        assert config.get("nothing", "here", default=42) == 42

    def test_preferred_versions_and_variants(self):
        config = Config()
        config.update(
            "user",
            {
                "preferences": {
                    "packages": {
                        "mpileaks": {"version": ["1.1"], "variants": {"debug": True}}
                    }
                }
            },
        )
        assert config.preferred_versions("mpileaks") == ["1.1"]
        assert config.preferred_variants("mpileaks") == {"debug": True}
        assert config.preferred_versions("other") == []

    def test_externals(self):
        config = Config()
        config.update(
            "site",
            {
                "packages": {
                    "openmpi": {
                        "external": {"spec": "openmpi@1.8.2", "prefix": "/opt/ompi"},
                        "buildable": False,
                    }
                }
            },
        )
        assert config.external_for("openmpi") == ("openmpi@1.8.2", "/opt/ompi")
        assert config.external_for("mpich") is None
        assert config.is_buildable("openmpi") is False
        assert config.is_buildable("mpich") is True


class TestFiles:
    def test_from_file(self, tmp_path):
        path = tmp_path / "site.json"
        path.write_text(json.dumps({"preferences": {"architecture": "bgq"}}))
        scope = ConfigScope.from_file("site", str(path))
        assert scope.data["preferences"]["architecture"] == "bgq"

    def test_bad_file(self, tmp_path):
        path = tmp_path / "user.json"
        path.write_text("{ not json")
        with pytest.raises(ConfigError):
            ConfigScope.from_file("user", str(path))

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "user.json"
        path.write_text("[1,2,3]")
        with pytest.raises(ConfigError):
            ConfigScope.from_file("user", str(path))

    def test_load_config_dir(self, tmp_path):
        (tmp_path / "site.json").write_text(
            json.dumps({"preferences": {"architecture": "site-arch"}})
        )
        (tmp_path / "user.json").write_text(
            json.dumps({"preferences": {"architecture": "user-arch"}})
        )
        config = load_config_dir(str(tmp_path))
        assert config.default_architecture() == "user-arch"
