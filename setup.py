"""Shim for environments without the ``wheel`` package (offline CI):
``python setup.py develop`` performs a classic editable install using
the metadata from pyproject.toml."""

from setuptools import setup

setup()
