"""Figure 2: constraints applied to mpileaks specs.

Regenerates the three abstract DAGs — (a) unconstrained, (b) with a
version constraint on the root, (c) with recursive constraints on
dependencies — by normalizing each spec against the package files
without concretizing parameters (the DAG structure comes from
``depends_on`` directives, constraints stay where the user put them).
"""

from conftest import write_result

from repro.spec.graph import graph_ascii
from repro.spec.spec import Spec

FIG2 = {
    "a": "mpileaks",
    "b": "mpileaks@2.3",
    "c": "mpileaks@2.3 ^callpath@1.0+debug ^libelf@0.8.11",
}


def test_fig2_dags(bench_session, benchmark):
    session = bench_session

    def concretize_all():
        return {key: session.concretize(Spec(text)) for key, text in FIG2.items()}

    dags = benchmark(concretize_all)

    lines = ["Figure 2: Constraints applied to mpileaks specs", ""]
    for key, text in FIG2.items():
        abstract = Spec(text)
        lines.append("(%s) spack install %s" % (key, text))
        lines.append("    abstract constraints:")
        for node in [abstract] + sorted(
            abstract.flat_dependencies().values(), key=lambda s: s.name
        ):
            lines.append("      %s" % node.node_str())
        lines.append("    concretized DAG:")
        for line in graph_ascii(dags[key]).splitlines():
            lines.append("      " + line)
        lines.append("")
    write_result("fig2_constraints.txt", "\n".join(lines))

    # (a): unconstrained -> still expands to the full DAG
    a = dags["a"]
    assert sorted(n.name for n in a.traverse()) == [
        "callpath", "dyninst", "libdwarf", "libelf", "mpileaks", "mvapich2",
    ]
    # (b): version constraint only on the root
    assert str(dags["b"].version) == "2.3"
    # (c): constraints landed on the right nodes, three levels apart
    c = dags["c"]
    assert str(c["callpath"].version).startswith("1.0")
    assert c["callpath"].variants["debug"] is True
    assert str(c["libelf"].version) == "0.8.11"
    # and the user's root-level ^libelf constraint did not create a fake
    # direct edge: libelf hangs off dyninst/libdwarf only
    assert "libelf" not in c.dependencies
