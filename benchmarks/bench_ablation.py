"""Ablations of the design choices DESIGN.md calls out.

Three knobs, each isolated:

1. **Greedy vs. backtracking concretization** (§3.4 vs §4.5): the paper
   chose greedy because conflicts "have been rare so far".  Measured:
   when greedy succeeds, backtracking costs nothing extra (one identical
   pass); when greedy dead-ends on a provider choice, backtracking finds
   the consistent assignment at the cost of N extra greedy passes.
2. **Provider-index caching**: the reverse index (§3.3) is built once
   per repo change, not per concretization.  Measured: time per
   concretize with a cached index vs. rebuilding it each call.
3. **Sub-DAG reuse** (§3.4.2): hash-addressed prefixes let a second
   configuration skip shared subtree builds entirely.  Measured:
   virtual build seconds with reuse vs. a cold store.
"""

import time

from conftest import write_result

from repro.core.backtracking import BacktrackingConcretizer
from repro.core.concretizer import ConcretizationError, Concretizer
from repro.directives import depends_on, provides, version
from repro.package.package import Package
from repro.repo.providers import ProviderIndex
from repro.session import Session
from repro.spec.spec import Spec


def _timed(fn, repeats=20):
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def test_ablation_backtracking(bench_session, tmp_path_factory, benchmark):
    session = bench_session
    greedy_args = (
        session.repo, session.provider_index, session.compilers,
        session.config, session.policy,
    )
    greedy = Concretizer(*greedy_args)
    backtracking = BacktrackingConcretizer(*greedy_args)

    t_greedy = _timed(lambda: greedy.concretize(Spec("mpileaks")))
    t_backtrack_ok = _timed(lambda: backtracking.concretize(Spec("mpileaks")))

    # a conflict case (the §4.5 hwloc shape) in a scratch session
    scratch = Session.create(str(tmp_path_factory.mktemp("ablate")), packages=None)
    repo = scratch.repo.repos[0]

    @repo.register("hwloc")
    class Hwloc(Package):
        version("1.8", "x")
        version("1.9", "y")

    @repo.register("ampi")
    class Ampi(Package):
        version("1.0", "x")
        provides("mpi9")
        depends_on("hwloc@1.8")

    @repo.register("bmpi")
    class Bmpi(Package):
        version("1.0", "x")
        provides("mpi9")
        depends_on("hwloc@1.9")

    @repo.register("p")
    class P(Package):
        version("1.0", "x")
        depends_on("hwloc@1.9")
        depends_on("mpi9")

    scratch.config.update(
        "user", {"preferences": {"providers": {"mpi9": ["ampi", "bmpi"]}}}
    )
    bt = BacktrackingConcretizer(
        scratch.repo, scratch.provider_index, scratch.compilers,
        scratch.config, scratch.policy,
    )
    greedy_fails = False
    try:
        scratch.concretize(Spec("p"))
    except ConcretizationError:
        greedy_fails = True
    solved = bt.concretize(Spec("p"))
    attempts = bt.last_attempts

    lines = [
        "Ablation 1: greedy vs backtracking concretization",
        "",
        "mpileaks (no conflict):",
        "  greedy:        %.6f s" % t_greedy,
        "  backtracking:  %.6f s  (%.2fx)" % (t_backtrack_ok, t_backtrack_ok / t_greedy),
        "",
        "hwloc conflict case (the paper's §4.5 example):",
        "  greedy:        FAILS (as documented)" if greedy_fails else "  greedy: ok?!",
        "  backtracking:  solves with %s in %d greedy passes"
        % (solved["mpi9"].name, attempts),
    ]
    write_result("ablation_backtracking.txt", "\n".join(lines) + "\n")

    assert greedy_fails
    assert solved["mpi9"].name == "bmpi"
    assert t_backtrack_ok < t_greedy * 2.0  # no overhead when greedy works

    benchmark(backtracking.concretize, Spec("mpileaks"))


def test_ablation_provider_index_cache(universe_session, benchmark):
    # over the full 245-package universe, where index construction has a
    # real cost (it scans every package's provides() declarations)
    session = universe_session

    def with_cache():
        session.concretizer.concretize(Spec("mpileaks"))

    def rebuild_index_each_call():
        index = ProviderIndex.from_repo(session.repo)
        Concretizer(
            session.repo, index, session.compilers, session.config, session.policy
        ).concretize(Spec("mpileaks"))

    t_cached = _timed(with_cache)
    t_rebuilt = _timed(rebuild_index_each_call)
    t_index = _timed(lambda: ProviderIndex.from_repo(session.repo), repeats=50)

    lines = [
        "Ablation 2: provider-index caching (245-package universe)",
        "",
        "index construction alone:            %.6f s" % t_index,
        "concretize mpileaks, cached index:   %.6f s" % t_cached,
        "concretize mpileaks, rebuilt index:  %.6f s  (%.2fx)"
        % (t_rebuilt, t_rebuilt / t_cached),
        "",
        "index build is %.0f%% of one concretization; a session doing N"
        % (t_index / t_cached * 100),
        "concretizations saves (N-1) x %.6f s by caching." % t_index,
    ]
    write_result("ablation_provider_index.txt", "\n".join(lines) + "\n")
    # the scan really costs something, and skipping it can only help;
    # assert on the directly-measured component (ratios are noise-bound
    # because the scan is small relative to a whole concretization)
    assert t_index > 0
    assert t_rebuilt >= t_cached * 0.9

    benchmark(with_cache)


def test_ablation_subdag_reuse(tmp_path_factory, benchmark):
    # with reuse: second configuration in the same store
    shared = Session.create(str(tmp_path_factory.mktemp("reuse")))
    _, first = shared.install("mpileaks ^mpich")
    _, second = shared.install("mpileaks ^openmpi")
    reused_seconds = sum(s.virtual_seconds for s in second.built)

    # without reuse: same second configuration in a cold store
    cold = Session.create(str(tmp_path_factory.mktemp("cold")))
    _, cold_result = cold.install("mpileaks ^openmpi")
    cold_seconds = sum(s.virtual_seconds for s in cold_result.built)

    lines = [
        "Ablation 3: shared sub-DAG reuse (Figure 9's payoff)",
        "",
        "second config, shared store:  %6.2f model-seconds (%d packages built)"
        % (reused_seconds, len(second.built)),
        "second config, cold store:    %6.2f model-seconds (%d packages built)"
        % (cold_seconds, len(cold_result.built)),
        "saved by reuse:               %6.2f model-seconds (%.0f%%)"
        % (cold_seconds - reused_seconds,
           (1 - reused_seconds / cold_seconds) * 100),
    ]
    write_result("ablation_subdag_reuse.txt", "\n".join(lines) + "\n")

    assert len(second.built) == 3          # openmpi, callpath, mpileaks
    assert len(cold_result.built) == 6     # the whole stack
    assert reused_seconds < cold_seconds

    def fresh_reuse_install(counter=[0]):
        counter[0] += 1
        s = Session.create(str(tmp_path_factory.mktemp("bench-reuse-%d" % counter[0])))
        s.install("mpileaks ^mpich")
        s.install("mpileaks ^openmpi")

    benchmark.pedantic(fresh_reuse_install, rounds=2, iterations=1)
