"""Figure 8: concretization running time vs. package DAG size.

The paper concretized all 245 packages in its repository on three LLNL
front-end nodes (Intel Haswell 2.3GHz, Intel Sandy Bridge 2.6GHz, IBM
Power7 3.6GHz), 10 trials each, and observed: under ~2 seconds for all
but the largest DAGs, a quadratic trend for large DAGs, and <4–9 s even
at 50+ nodes depending on the machine.

Here: the same experiment over this reproduction's 245-package universe
(built-in corpus + seeded synthetic packages) on the host machine, with
the two other machines rendered as calibrated relative series (the paper
shows constant machine-to-machine ratios; we reuse its end-point ratios
Haswell:SandyBridge:Power7 ≈ 1 : 1.2 : 2.25 — substitution documented in
DESIGN.md §3 and EXPERIMENTS.md).

Expected shape (asserted): time grows superlinearly with DAG size; the
largest DAGs cost at least ~10x the single-node ones; absolute times
stay far under the paper's 2-second envelope (modern CPython on a
smaller spec grammar — shape, not absolutes).
"""

import json
import time

from conftest import write_result

from repro.spec.spec import Spec
from repro.telemetry import bench_report

#: Relative machine factors from the paper's Figure 8 end points.
MACHINE_FACTORS = [
    ("Linux, Intel Haswell, 2.3GHz (measured host)", 1.0),
    ("Linux, Intel Sandy Bridge, 2.6GHz (scaled)", 1.2),
    ("Linux, IBM Power7, 3.6GHz (scaled)", 2.25),
]

TRIALS = 5


def test_fig8_runtime_vs_dag_size(universe_session, benchmark):
    session = universe_session
    concretizer = session.concretizer

    points = []
    for name in session.repo.all_package_names():
        spec = Spec(name)
        # warm-up + correctness
        concrete = concretizer.concretize(spec)
        nodes = len(list(concrete.traverse()))
        start = time.perf_counter()
        for _ in range(TRIALS):
            concretizer.concretize(Spec(name))
        elapsed = (time.perf_counter() - start) / TRIALS
        points.append((nodes, elapsed, name))

    points.sort()
    max_nodes = points[-1][0]

    # bin by DAG size for the printed series
    bins = {}
    for nodes, elapsed, _name in points:
        bins.setdefault(nodes, []).append(elapsed)

    lines = [
        "Figure 8: concretization running time for %d packages" % len(points),
        "(average of %d trials per package; seconds)" % TRIALS,
        "",
        "%-10s %-8s %s" % ("DAG size", "count", "  ".join("%-26s" % m for m, _ in MACHINE_FACTORS)),
    ]
    for nodes in sorted(bins):
        avg = sum(bins[nodes]) / len(bins[nodes])
        row = "%-10d %-8d" % (nodes, len(bins[nodes]))
        for _machine, factor in MACHINE_FACTORS:
            row += "  %-26.6f" % (avg * factor)
        lines.append(row)

    small = [e for n, e, _ in points if n <= 10]
    large = [e for n, e, _ in points if n >= max(20, max_nodes - 15)]
    lines.append("")
    lines.append("largest DAG: %d nodes (%s)" % (max_nodes, points[-1][2]))
    lines.append("mean small-DAG (<=10 nodes) time: %.6f s" % (sum(small) / len(small)))
    lines.append("mean large-DAG time:              %.6f s" % (sum(large) / len(large)))
    lines.append(
        "growth factor (large/small):      %.1fx"
        % ((sum(large) / len(large)) / (sum(small) / len(small)))
    )
    write_result("fig8_concretization.txt", "\n".join(lines) + "\n")

    # --- shape assertions -------------------------------------------------
    assert len(points) == 245
    assert max_nodes >= 40  # x-axis reaches the paper's range
    # superlinear growth: per-node cost rises with DAG size
    small_avg = sum(small) / len(small)
    large_avg = sum(large) / len(large)
    assert large_avg > small_avg * 5
    # the paper's envelope: everything well under 2 seconds here
    assert all(e < 2.0 for _n, e, _ in points)

    # benchmark: one large-DAG concretization (the figure's worst case)
    worst = points[-1][2]
    result = benchmark(session.concretize, Spec(worst))
    assert result.concrete


def test_concretize_cache_cold_vs_warm(universe_session, benchmark):
    """The persistent concretization cache over the Figure 8 corpus:
    warm (disk-served) concretization of all 245 packages must be at
    least 5x faster than cold in aggregate, with every warm DAG hash
    equal to its cold twin — divergence fails the run (the CI
    ``bench-concretize`` job's gate)."""
    session = universe_session
    names = session.repo.all_package_names()

    start = time.perf_counter()
    cold = {name: session.concretize(Spec(name), use_cache=False)
            for name in names}
    cold_elapsed = time.perf_counter() - start

    for name in names:  # populate the persistent cache
        session.concretize(Spec(name))
    session.forget_concretizations()  # warm pass reads the on-disk payloads

    start = time.perf_counter()
    warm = {name: session.concretize(Spec(name)) for name in names}
    warm_elapsed = time.perf_counter() - start

    divergences = [
        name for name in names
        if warm[name].dag_hash() != cold[name].dag_hash()
    ]
    speedup = cold_elapsed / warm_elapsed if warm_elapsed else float("inf")
    write_result(
        "BENCH_concretize_cache.json",
        json.dumps(
            bench_report(
                "concretize_cache",
                {
                    "cold_seconds": round(cold_elapsed, 6),
                    "warm_seconds": round(warm_elapsed, 6),
                    "speedup": round(speedup, 2),
                    "divergences": len(divergences),
                },
                meta={"packages": len(names)},
            ),
            indent=1,
            sort_keys=True,
        ) + "\n",
    )

    assert divergences == []
    assert speedup >= 5.0

    # benchmark: one fully warm (in-process memo) lookup of the corpus root
    worst = max(names, key=lambda n: len(list(cold[n].traverse())))
    result = benchmark(session.concretize, Spec(worst))
    assert result.concrete
    assert result.dag_hash() == cold[worst].dag_hash()
