"""Figures 6 and 7: the concretization pipeline and its output.

Figure 6 is the algorithm itself (intersect constraints → resolve
virtuals → concretize parameters, iterate); this benchmark traces one
run stage by stage.  Figure 7 is the fully concrete DAG produced from
Figure 2(a)'s unconstrained ``mpileaks``: every node gains a version,
compiler+version, variants, and architecture.
"""

from conftest import write_result

from repro.spec.graph import graph_ascii
from repro.spec.spec import Spec


def test_fig6_pipeline_trace(bench_session, benchmark):
    session = bench_session
    concretizer = session.concretizer
    spec = Spec("mpileaks@2.3 ^callpath+debug")

    lines = ["Figure 6: concretization pipeline trace for %r" % str(spec), ""]
    work = spec.copy()

    changed = concretizer._expand_dependencies(work)
    lines.append("[intersect constraints / expand deps]  changed=%s" % changed)
    lines.append("  nodes: %s" % ", ".join(sorted(n.name for n in work.traverse())))
    virtuals = [n.name for n in work.traverse() if concretizer._is_virtual(n.name)]
    lines.append("  virtual nodes: %s" % (", ".join(virtuals) or "none"))

    changed = concretizer._resolve_virtuals(work)
    lines.append("[resolve virtual deps]  changed=%s" % changed)
    providers = [
        "%s provides %s" % (n.name, ",".join(sorted(n.provided_virtuals)))
        for n in work.traverse()
        if n.provided_virtuals
    ]
    lines.append("  %s" % "; ".join(providers))

    changed = concretizer._concretize_parameters(work)
    lines.append("[concretize parameters]  changed=%s" % changed)
    for node in work.traverse():
        lines.append("  %s" % node.node_str())
    write_result("fig6_pipeline.txt", "\n".join(lines) + "\n")

    assert virtuals == ["mpi"]
    assert any("mvapich2" in p for p in providers)

    # the benchmark: the full pipeline end to end
    result = benchmark(session.concretize, Spec("mpileaks@2.3 ^callpath+debug"))
    assert result.concrete


def test_fig7_concrete_dag(bench_session, benchmark):
    session = bench_session
    concrete = benchmark(session.concretize, Spec("mpileaks"))

    lines = ["Figure 7: concretized spec from Figure 2(a)", ""]
    lines.append(graph_ascii(concrete))
    write_result("fig7_concrete.txt", "\n".join(lines) + "\n")

    # Figure 7's property: every parameter of every node is resolved.
    for node in concrete.traverse():
        assert node.versions.concrete is not None
        assert node.compiler is not None and node.compiler.concrete
        assert node.architecture is not None
    # and rendering shows all of them, like the figure's node labels
    for node in concrete.traverse():
        label = node.node_str()
        assert "@" in label and "%" in label and "=" in label
