"""Figure 13: the ARES dependency DAG, colored by package category.

Concretizes the production ARES configuration and regenerates the
figure: 47 packages — ARES itself, 11 LLNL physics packages, 4 LLNL
math/meshing libraries, 8 LLNL utility libraries, 23 externals
(including the MPI and BLAS virtuals, resolved to providers) — emitted
as Graphviz DOT with the paper's category coloring.
"""

from collections import Counter

from conftest import write_result

from repro.packages import ares
from repro.spec.graph import edge_list, graph_dot
from repro.spec.spec import Spec

COLORS = {
    "ares": "firebrick",
    "physics": "lightblue",
    "math": "orange",
    "utility": "palegreen",
    "external": "lightgray",
}


def test_fig13_ares_dag(bench_session, benchmark):
    session = bench_session
    concrete = benchmark(
        session.concretize, Spec("ares@2015.06 %gcc =linux-x86_64 ^mvapich")
    )

    # map provider nodes back to 'external' via their virtuals
    def category(node):
        return ares.category_of(node.name)

    counts = Counter(category(n) for n in concrete.traverse())
    dot = graph_dot(
        concrete,
        name="ares",
        node_attrs=lambda n: {"style": "filled", "fillcolor": COLORS[category(n)]},
    )
    write_result("fig13_ares.dot", dot + "\n")

    edges = edge_list(concrete)
    lines = [
        "Figure 13: dependencies of ARES, by category",
        "",
        "nodes: %d   edges: %d" % (len(list(concrete.traverse())), len(edges)),
        "",
    ]
    for cat in ("ares", "physics", "math", "utility", "external"):
        members = sorted(n.name for n in concrete.traverse() if category(n) == cat)
        lines.append("%-9s (%2d): %s" % (cat, counts[cat], ", ".join(members)))
    write_result("fig13_ares_summary.txt", "\n".join(lines) + "\n")

    # the paper's inventory, exactly
    assert len(list(concrete.traverse())) == 47
    assert counts == Counter(
        {"external": 23, "physics": 11, "utility": 8, "math": 4, "ares": 1}
    )
    # virtuals resolved
    assert concrete["mpi"].name == "mvapich"
    assert concrete["blas"].name == "netlib-blas"
    assert concrete["lapack"].name == "netlib-lapack"
    # ARES is the sole root: everything is reachable from it
    assert ("ares", "teton") in edges and ("silo", "hdf5") in edges
