"""Table 2: spec syntax examples and their meanings.

Parses each of the paper's seven example spec expressions, verifies the
parsed structure, and regenerates the table with mechanically produced
English meanings (spec → prose via :mod:`repro.spec.explain`).
"""

from conftest import write_result

from repro.spec.explain import explain
from repro.spec.spec import Spec

TABLE2 = [
    "mpileaks",
    "mpileaks@1.1.2",
    "mpileaks@1.1.2 %gcc",
    "mpileaks@1.1.2 %intel@14.1 +debug",
    "mpileaks@1.1.2 =bgq",
    "mpileaks@1.1.2 ^mvapich2@1.9",
    "mpileaks @1.2:1.4 %gcc@4.7.5 ~debug =bgq ^callpath @1.1 %gcc@4.7.2 ^openmpi @1.4.7",
]


def test_table2_rows(benchmark):
    def parse_all():
        return [Spec(text) for text in TABLE2]

    specs = benchmark(parse_all)

    lines = ["Table 2: Spack build spec syntax examples and their meaning", ""]
    for i, (text, spec) in enumerate(zip(TABLE2, specs), start=1):
        lines.append("%d  %s" % (i, text))
        lines.append("   %s" % explain(spec))
    write_result("table2_specs.txt", "\n".join(lines) + "\n")

    # structural checks mirroring the table's "meaning" column
    assert specs[0].versions.universal
    assert str(specs[1].versions) == "1.1.2"
    assert specs[2].compiler.name == "gcc" and specs[2].compiler.versions.universal
    assert specs[3].variants["debug"] is True
    assert str(specs[3].compiler) == "intel@14.1"
    assert specs[4].architecture == "bgq"
    assert str(specs[5].dependencies["mvapich2"].versions) == "1.9"
    last = specs[6]
    assert str(last.versions) == "1.2:1.4"
    assert last.variants["debug"] is False
    assert str(last.dependencies["callpath"].compiler) == "gcc@4.7.2"
    assert str(last.dependencies["openmpi"].versions) == "1.4.7"
