"""Figure 9: mpileaks built with mpich, then openmpi — shared sub-DAGs.

"If two configurations share a sub-DAG, then Spack reuses the sub-DAG's
configuration": installing mpileaks with a second MPI must rebuild only
the MPI-dependent part (mpileaks, callpath, the new MPI) and reuse the
dyninst/libdwarf/libelf subtree — same hashes, same prefixes, no
rebuild.
"""

import os

from conftest import write_result

from repro.session import Session


def test_fig9_shared_subdags(tmp_path_factory, benchmark):
    session = Session.create(str(tmp_path_factory.mktemp("fig9")))

    spec1, result1 = session.install("mpileaks ^mpich")

    def second_install():
        return session.install("mpileaks ^openmpi")

    spec2, result2 = benchmark.pedantic(second_install, rounds=1, iterations=1)

    layout = session.store.layout
    lines = ["Figure 9: mpileaks built with mpich, then openmpi", ""]
    lines.append("first install built:   %s" % ", ".join(result1.built_names))
    lines.append("second install built:  %s" % ", ".join(result2.built_names))
    lines.append("second install reused: %s" % ", ".join(result2.reused_names))
    lines.append("")
    lines.append("shared prefixes:")
    for name in ("dyninst", "libdwarf", "libelf"):
        p1 = layout.path_for_spec(spec1[name])
        p2 = layout.path_for_spec(spec2[name])
        lines.append("  %-10s %s  (%s)" % (name, "SHARED" if p1 == p2 else "DISTINCT", p1))
    for name in ("callpath", "mpileaks"):
        p1 = layout.path_for_spec(spec1[name])
        p2 = layout.path_for_spec(spec2[name])
        lines.append("  %-10s %s" % (name, "SHARED" if p1 == p2 else "DISTINCT"))
    write_result("fig9_sharing.txt", "\n".join(lines) + "\n")

    assert set(result2.reused_names) == {"dyninst", "libdwarf", "libelf"}
    assert set(result2.built_names) == {"openmpi", "callpath", "mpileaks"}
    for name in ("dyninst", "libdwarf", "libelf"):
        assert spec1[name].dag_hash() == spec2[name].dag_hash()
        assert layout.path_for_spec(spec1[name]) == layout.path_for_spec(spec2[name])
    for name in ("callpath", "mpileaks"):
        assert layout.path_for_spec(spec1[name]) != layout.path_for_spec(spec2[name])
    # exactly one copy of the shared subtree on disk
    libelf_prefix = layout.path_for_spec(spec1["libelf"])
    assert os.path.isdir(libelf_prefix)
