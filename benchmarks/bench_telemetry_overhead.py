"""Telemetry must be free when nobody is listening.

Companion to ``bench_profile_hotspots.py``: the same Figure 8-style
concretization loop, run three ways —

* **baseline** — a ``Concretizer`` constructed with no telemetry hub at
  all (the pre-telemetry code path);
* **disabled** — the session's concretizer with its hub attached but no
  sinks (the default for every user who never asks for telemetry);
* **enabled** — the hub with a ``MemorySink`` collecting every record.

The contract asserted here (and recorded in
``results/BENCH_telemetry_overhead.json``): the *disabled* hub — now
carrying trace-context bookkeeping on every span — costs less than 3%
over baseline.  Instrumentation may therefore live unconditionally in
hot paths; only attaching a sink buys the records with measurable time.

Measurement notes: baseline and disabled loops are interleaved
(round-robin) and the per-variant minimum over all rounds is compared,
which cancels drift (thermal, page cache) that a sequential A-then-B
measurement would book to one side.
"""

import json
import time

from conftest import write_result

from repro.core.concretizer import Concretizer
from repro.spec.spec import Spec
from repro.telemetry import MemorySink, bench_report

#: round-robin rounds per variant; minimum-of-rounds is compared
ROUNDS = 5

#: packages per loop (Figure 8-style population slice)
LOOP_SIZE = 40

#: maximum tolerated disabled-path overhead over the no-hub baseline
BUDGET_PCT = 3.0


def _time_loop(concretizer, names):
    start = time.perf_counter()
    for name in names:
        concretizer.concretize(Spec(name))
    return time.perf_counter() - start


def test_telemetry_disabled_overhead(universe_session, benchmark):
    session = universe_session
    names = [n for n in session.repo.all_package_names()][:LOOP_SIZE]

    bare = Concretizer(
        session.repo,
        session.provider_index,
        session.compilers,
        session.config,
        session.policy,
    )
    wired = session.concretizer
    assert wired.telemetry is session.telemetry
    assert not session.telemetry.enabled  # no sinks: the disabled path

    # warm-up: imports, provider index, policy caches
    for name in names[:10]:
        bare.concretize(Spec(name))
        wired.concretize(Spec(name))

    baseline = disabled = None
    for _ in range(ROUNDS):
        b = _time_loop(bare, names)
        d = _time_loop(wired, names)
        baseline = b if baseline is None else min(baseline, b)
        disabled = d if disabled is None else min(disabled, d)

    sink = session.telemetry.add_sink(MemorySink())
    try:
        enabled = _time_loop(wired, names)
        records = len(sink.records)
    finally:
        session.telemetry.remove_sink(sink)

    overhead_pct = (disabled - baseline) / baseline * 100.0
    result = bench_report(
        "telemetry_overhead",
        {
            "baseline_s": baseline,
            "disabled_s": disabled,
            "enabled_s": enabled,
            "enabled_records": records,
            "disabled_overhead_pct": overhead_pct,
        },
        meta={
            "loop_packages": len(names),
            "rounds": ROUNDS,
            "budget_pct": BUDGET_PCT,
        },
    )
    write_result(
        "BENCH_telemetry_overhead.json",
        json.dumps(result, indent=1, sort_keys=True) + "\n",
    )

    assert overhead_pct < BUDGET_PCT, (
        "disabled telemetry costs %.2f%% over the no-hub baseline "
        "(budget: %.0f%%)" % (overhead_pct, BUDGET_PCT)
    )

    # benchmark fixture: one instrumented-but-disabled concretization
    concrete = benchmark(wired.concretize, Spec(names[-1]))
    assert concrete.concrete
