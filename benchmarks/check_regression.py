#!/usr/bin/env python
"""The CI performance regression gate.

Compares a directory of freshly-produced ``BENCH_*.json`` results
against the committed baselines in ``benchmarks/results/`` with
:mod:`repro.telemetry.compare` and exits nonzero when any key metric
regressed beyond tolerance — the ``bench-regression`` CI job's teeth.

Usage (what the CI job runs)::

    cp benchmarks/results/BENCH_*.json /tmp/baseline/   # before benches
    pytest benchmarks/... --benchmark-only               # overwrites results/
    python benchmarks/check_regression.py \
        --baseline /tmp/baseline --current benchmarks/results \
        --report regression-report.json

Tolerances: the default gate is **20%** in the bad direction
(``--tolerance``), with built-in per-key overrides for raw wall-clock
seconds (75% — shared CI runners jitter; the *ratios* those seconds
feed, ``speedup_*``, stay at the strict gate) and for the
telemetry-overhead percentage (gated by its own benchmark assert, and
its near-zero baseline makes relative deltas meaningless).

``--self-test`` verifies the gate itself: it injects a synthetic 25%
slowdown into a copy of one baseline and asserts the comparison trips,
then compares a file against itself and asserts it passes.
"""

import argparse
import copy
import glob
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.telemetry.compare import (  # noqa: E402
    compare_reports,
    format_comparison,
    load_report,
)

#: per-key tolerance overrides (fnmatch pattern, relative tolerance);
#: first match wins, everything else uses --tolerance
TOLERANCE_OVERRIDES = (
    # percent-overhead hovers around 0: relative deltas are noise, and
    # the overhead benchmark asserts its own absolute budget
    ("*overhead_pct*", float("inf")),
    # raw wall seconds on shared runners; their speedup ratios stay strict
    ("*_seconds*", 0.75),
    ("*_s", 0.75),
    # requests/second on shared runners jitters like raw wall time; the
    # deterministic coalescing counts next to it stay strict
    ("*throughput*", 0.75),
    # the environment lockfile's warm path is millisecond-scale, so its
    # cold/warm ratio inherits the raw-seconds jitter (unlike the
    # parallel-install speedups, whose numerators are full seconds);
    # the benchmark itself asserts the >=2x floor
    ("*warm_speedup*", 0.75),
    # per-lookup microseconds and RSS vary with the runner's
    # CPU/allocator; the scale benchmark asserts flatness across tiers
    ("*lookup_us*", 0.75),
    ("*_rss_mb*", 0.50),
)


def gate(baseline_dir, current_dir, tolerance, report_path=None,
         verbose=False, out=sys.stdout):
    """Compare every baseline BENCH_*.json against its fresh twin.
    Returns the number of failing benchmarks (missing or regressed)."""
    baselines = sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.json")))
    if not baselines:
        print("error: no BENCH_*.json baselines in %s" % baseline_dir,
              file=sys.stderr)
        return 1

    failures = 0
    results = []
    for base_path in baselines:
        name = os.path.basename(base_path)
        cur_path = os.path.join(current_dir, name)
        if not os.path.exists(cur_path):
            out.write("MISSING      %s (benchmark produced no result)\n" % name)
            results.append({"file": name, "ok": False, "missing": True})
            failures += 1
            continue
        report = compare_reports(
            load_report(base_path),
            load_report(cur_path),
            tolerance=tolerance,
            overrides=TOLERANCE_OVERRIDES,
        )
        out.write(format_comparison(report, verbose=verbose))
        out.write("\n")
        results.append({"file": name, "ok": report["ok"],
                        "regressions": report["regressions"],
                        "rows": report["rows"]})
        if not report["ok"]:
            failures += 1

    # new benchmarks without a committed baseline: informational only
    for cur_path in sorted(glob.glob(os.path.join(current_dir, "BENCH_*.json"))):
        name = os.path.basename(cur_path)
        if not os.path.exists(os.path.join(baseline_dir, name)):
            out.write("NEW          %s (no baseline yet — commit one)\n" % name)

    if report_path:
        with open(report_path, "w") as f:
            json.dump({"tolerance": tolerance, "failures": failures,
                       "benchmarks": results}, f, indent=1, sort_keys=True)
            f.write("\n")

    verdict = ("OK: %d benchmark(s) within tolerance" % len(results)
               if failures == 0
               else "FAILED: %d of %d benchmark(s) regressed or missing"
               % (failures, len(results)))
    out.write("==> %s\n" % verdict)
    return failures


def self_test(baseline_dir, tolerance):
    """Prove the gate can actually catch a slowdown.

    Clones one committed baseline, multiplies a lower-is-better wall
    metric by 1.25 (a 25% slowdown — past the 20% gate), and asserts
    the comparison reports a regression; then compares the untouched
    file against itself and asserts a clean pass.
    """
    baselines = sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.json")))
    assert baselines, "no baselines to self-test against"
    path = baselines[0]
    base = load_report(path)

    slowed = copy.deepcopy(base)
    victim = None
    for key in sorted(slowed["metrics"]):
        low = key.lower()
        if "seconds" in low or low.endswith("_s"):
            victim = key
            break
    assert victim is not None, "no wall-clock metric found in %s" % path
    slowed["metrics"][victim] = base["metrics"][victim] * 1.25

    # the seconds override (0.75) must not mask the injected slowdown
    # here: the self-test checks the *detector*, so run it at the bare
    # gate with no overrides
    tripped = compare_reports(base, slowed, tolerance=tolerance)
    assert not tripped["ok"], (
        "gate failed to flag a 25%% slowdown of %s" % victim
    )
    assert victim in tripped["regressions"]

    clean = compare_reports(base, load_report(path), tolerance=tolerance,
                            overrides=TOLERANCE_OVERRIDES)
    assert clean["ok"], "identical files must compare clean: %s" % (
        clean["regressions"],
    )
    print("self-test OK: +25%% on %s trips the %.0f%% gate; "
          "identical files pass" % (victim, tolerance * 100.0))
    return 0


def main(argv=None):
    here = os.path.dirname(os.path.abspath(__file__))
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=os.path.join(here, "results"),
                        help="directory of baseline BENCH_*.json files")
    parser.add_argument("--current", default=os.path.join(here, "results"),
                        help="directory of freshly-produced results")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="relative regression gate (default 0.20)")
    parser.add_argument("--report", metavar="FILE",
                        help="write the full comparison as JSON to FILE")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="list in-tolerance metrics too")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate detects an injected 25%% "
                             "slowdown, then exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test(args.baseline, args.tolerance)
    return 1 if gate(args.baseline, args.current, args.tolerance,
                     report_path=args.report, verbose=args.verbose) else 0


if __name__ == "__main__":
    sys.exit(main())
