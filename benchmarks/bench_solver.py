"""The optimizing solver on a conflict-rich universe: rescues and latency.

The greedy concretizer dead-ends whenever a preferred provider, version,
variant default, or compiler runs into a declared conflict; the solver
exists to search past those dead ends and return the *best-scoring*
consistent DAG.  This benchmark drives all three concretizers over the
same generated conflict-rich universe (the selftest campaign's phase-5
fixture shape) and records the two numbers the ISSUE gates on:

* **rescue rate** — the fraction of greedy failures the solver turns
  into solutions (backtracking's provider-only rescues are a strict
  subset; the delta is the solver's own contribution), and
* **solve latency** — wall-clock per solver concretization across the
  whole stream, plus the attempt counts behind it (branch-and-bound
  with request floors keeps constrained requests near one attempt).

Every count is derived from a fixed seed, so the JSON report is
deterministic run-to-run; only the wall-clock keys move.
"""

import json
import statistics
import time

from conftest import write_result

from repro.compilers.registry import Compiler, CompilerRegistry
from repro.config.config import Config
from repro.core.backtracking import BacktrackingConcretizer
from repro.core.concretizer import Concretizer
from repro.core.solver import SolverConcretizer
from repro.repo.providers import ProviderIndex
from repro.spec.spec import Spec
from repro.telemetry.metrics import bench_report
from repro.testing.generators import GEN_COMPILERS, RepoGenerator, SpecGenerator
from repro.testing.oracle import TYPED_ERRORS

#: the universe and stream are pinned — rescue counts are part of the gate
SEED = 1347

#: generated abstract requests swept per concretizer
CASES = 150

#: conflict-rich knobs, matching the selftest campaign's solver phase
UNIVERSE = dict(count=40, virtuals=3, conflict_density=0.8, when_depth=2,
                provider_overlap=0.5)


def _fixture():
    repo = RepoGenerator(SEED, **UNIVERSE).build()
    index = ProviderIndex.from_repo(repo)
    registry = CompilerRegistry(
        Compiler(*cs.split("@")) for cs in GEN_COMPILERS
    )
    config = Config()
    config.update(
        "defaults",
        {"preferences": {"compiler_order": [GEN_COMPILERS[0]],
                         "architecture": "linux-x86_64"}},
    )
    args = (repo, index, registry, config)
    return repo, args


def _attempt(concretizer, request):
    try:
        return concretizer.concretize(Spec(request))
    except TYPED_ERRORS:
        return None


def test_solver_rescue_rate_and_latency(benchmark):
    repo, args = _fixture()
    greedy = Concretizer(*args)
    backtracking = BacktrackingConcretizer(*args, max_attempts=64)
    solver = SolverConcretizer(*args, max_attempts=512)
    requests = SpecGenerator(SEED, repo).specs(CASES)

    # the stream contains duplicate requests, so every tally below is
    # index-aligned (dict-keying by request would collapse repeats)
    start = time.perf_counter()
    greedy_results = [_attempt(greedy, request) for request in requests]
    greedy_wall = time.perf_counter() - start

    backtracking_rescued = sum(
        1
        for request, g in zip(requests, greedy_results)
        if g is None and _attempt(backtracking, request) is not None
    )

    # -- the measured pass: the full stream through the solver ------------
    def solver_sweep():
        results = []
        attempts = []
        proven = 0
        start = time.perf_counter()
        for request in requests:
            concrete = _attempt(solver, request)
            results.append(concrete)
            if concrete is not None:
                attempts.append(solver.last_attempts)
                proven += bool(solver.last_proven_optimal)
        return results, attempts, proven, time.perf_counter() - start

    solver_results, attempts, proven, solver_wall = benchmark.pedantic(
        solver_sweep, rounds=1, iterations=1
    )

    greedy_failures = [
        i for i, g in enumerate(greedy_results) if g is None
    ]
    rescued = [
        i for i in greedy_failures if solver_results[i] is not None
    ]
    # a hash mismatch on a greedy success is benign exactly when the
    # solver's DAG scores strictly better (an "improvement" — greedy's
    # provider myopia corrected); anything else is a real divergence
    improvements = []
    divergences = []
    for i, (g, s) in enumerate(zip(greedy_results, solver_results)):
        if g is None or s is None or s.dag_hash() == g.dag_hash():
            continue
        if solver.score(s) < solver.score(g):
            improvements.append(i)
        else:
            divergences.append(i)
    solved = [s for s in solver_results if s is not None]

    report = bench_report(
        "solver",
        {
            "cases": CASES,
            "greedy_failures": len(greedy_failures),
            "rescued": len(rescued),
            "rescue_rate": round(len(rescued) / len(greedy_failures), 3),
            "backtracking_rescued": backtracking_rescued,
            "solver_only_rescues": len(rescued) - backtracking_rescued,
            "improvements": len(improvements),
            "divergences": len(divergences),
            "proven_optimal_rate": round(proven / len(solved), 3),
            "attempts_mean": round(statistics.mean(attempts), 2),
            "attempts_max": max(attempts),
            "solver_wall_seconds": round(solver_wall, 4),
            "greedy_wall_seconds": round(greedy_wall, 4),
            "solve_wall_seconds_mean": round(solver_wall / CASES, 5),
        },
        meta=dict(UNIVERSE, seed=SEED, max_attempts=512),
    )
    lines = [
        "Optimizing solver: conflict-rich universe, %d requests" % CASES,
        "",
        "greedy failures: %d; rescued by solver: %d (%.0f%%), by "
        "backtracking: %d" % (
            len(greedy_failures), len(rescued),
            100.0 * len(rescued) / len(greedy_failures),
            backtracking_rescued,
        ),
        "improvements over greedy: %d; divergences: %d; proven optimal: "
        "%d/%d" % (
            len(improvements), len(divergences), proven, len(solved),
        ),
        "attempts: mean %.2f, max %d; solver wall %.3fs (greedy %.3fs)" % (
            statistics.mean(attempts), max(attempts), solver_wall,
            greedy_wall,
        ),
    ]
    write_result(
        "BENCH_solver.json",
        json.dumps(report, indent=1, sort_keys=True) + "\n",
    )
    write_result("solver.txt", "\n".join(lines) + "\n")

    # the gates: any hash mismatch on a greedy success must be a strict
    # score improvement, backtracking's rescues are never missed, the
    # universe produces real dead ends, and every answer is proven
    assert not divergences
    assert len(rescued) >= backtracking_rescued
    assert rescued, "the conflict knobs produced no rescuable dead ends"
    assert proven == len(solved), "an unproven incumbent leaked through"
