"""Profiling the concretizer — the HPC-Python guides' "no optimization
without measuring" workflow, kept as a living artifact.

Runs cProfile over concretizations across the 245-package universe and
records the top hot spots.  The assertions pin the *shape* of the
profile so a regression (e.g. an accidental deep-copy in the hot loop)
turns the benchmark red rather than silently doubling Figure 8.
"""

import cProfile
import io
import pstats

from conftest import write_result

from repro.spec.spec import Spec


def test_profile_concretizer(universe_session, benchmark):
    session = universe_session
    concretizer = session.concretizer
    # a mix of DAG sizes, like Figure 8's population
    names = [n for n in session.repo.all_package_names()][:60]

    profiler = cProfile.Profile()
    profiler.enable()
    for name in names:
        concretizer.concretize(Spec(name))
    profiler.disable()

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative")
    stats.print_stats(18)
    text = stream.getvalue()

    write_result(
        "profile_hotspots.txt",
        "Concretizer profile over %d packages (cumulative):\n\n%s" % (len(names), text),
    )

    stats.sort_stats("tottime")
    rows = stats.get_stats_profile().func_profiles
    total = sum(p.tottime for p in rows.values())

    def tottime_of(substr):
        return sum(p.tottime for name, p in rows.items() if substr in name)

    # Shape pins: traversal/satisfies dominate (the algorithm's real
    # work); spec copying must stay a minority share — a naive deep copy
    # in the fixed-point loop is the classic regression.
    copy_share = (tottime_of("_dup") + tottime_of("_copy_deps_into")) / total
    assert copy_share < 0.35, "copying dominates the profile (%.0f%%)" % (
        copy_share * 100
    )

    result = benchmark(concretizer.concretize, Spec(names[-1]))
    assert result.concrete
