"""Table 1: software organization of various HPC sites.

Regenerates the table by rendering one concretized spec's install path
under every site convention, and demonstrates the paper's argument: the
conventional schemes collapse distinct configurations onto one path,
while the Spack default (with the dependency hash) does not.
"""

from conftest import write_result

from repro.spec.spec import Spec
from repro.store.layout import SITE_CONVENTIONS


def test_table1_rows(bench_session, benchmark):
    session = bench_session
    concrete = session.concretize(Spec("mpileaks@1.1.2"))

    def render_all():
        return [(c.site, c.path_for_spec(concrete)) for c in SITE_CONVENTIONS]

    rows = benchmark(render_all)

    lines = ["Table 1: Software organization of various HPC sites", ""]
    lines.append("%-16s %s" % ("Site", "Naming convention (rendered for %s)" % concrete.node_str()))
    for site, path in rows:
        lines.append("%-16s %s" % (site, path))

    # The collapse demonstration: same root parameters, different libelf.
    a = session.concretize(Spec("mpileaks@1.1.2 ^libelf@0.8.13"))
    b = session.concretize(Spec("mpileaks@1.1.2 ^libelf@0.8.12"))
    lines.append("")
    lines.append("Distinct builds (differ only in libelf version):")
    for convention in SITE_CONVENTIONS:
        pa, pb = convention.path_for_spec(a), convention.path_for_spec(b)
        verdict = "COLLIDES" if pa == pb else "distinct"
        lines.append("  %-16s %s" % (convention.site, verdict))

    write_result("table1_naming.txt", "\n".join(lines) + "\n")

    spack_row = rows[-1]
    assert spack_row[0] == "Spack default"
    assert concrete.dag_hash(8) in spack_row[1]
    collide = [c for c in SITE_CONVENTIONS[:-1]
               if c.path_for_spec(a) == c.path_for_spec(b)]
    assert len(collide) == len(SITE_CONVENTIONS) - 1
    assert SITE_CONVENTIONS[-1].path_for_spec(a) != SITE_CONVENTIONS[-1].path_for_spec(b)
