"""Shared benchmark fixtures and the results directory.

Every benchmark regenerates one table or figure from the paper's
evaluation.  Each writes its rows/series to ``benchmarks/results/`` (so
EXPERIMENTS.md can reference stable artifacts) *and* prints them, and
each contains at least one ``benchmark(...)`` measurement so the whole
directory runs under ``pytest benchmarks/ --benchmark-only``.
"""

import os

import pytest

from repro.session import Session

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(name, text):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as f:
        f.write(text)
    print("\n" + text)
    return path


@pytest.fixture(scope="session")
def bench_session(tmp_path_factory):
    """One builtin-corpus session shared by all benchmarks."""
    return Session.create(str(tmp_path_factory.mktemp("bench-universe")))


@pytest.fixture(scope="session")
def universe_session(tmp_path_factory):
    """The full 245-package universe (builtin + synthetic), Figure 8."""
    from repro.packages.synthetic import full_universe

    session = Session.create(str(tmp_path_factory.mktemp("bench-245")), packages=None)
    session.repo.repos = full_universe(total=245).repos
    session._provider_index = None
    session.seed_web()
    return session
