"""Binary splicing: a build-tool-only change rebuilds nothing but the tool.

The build cache's exact-hash pull (``bench_buildcache``) dies the moment
any node of the DAG changes, because every ``dag_hash`` downstream of
the change moves with it.  Splicing survives the most common such
change: retargeting a *build-only* tool.  This benchmark upgrades the
``buildtool`` that every node of the 16-node diamond fleet declares with
``type="build"`` and asserts the warm install compiles **only the tool**
— all 16 fleet nodes are SPLICED from their runtime-hash twins
(telemetry shows zero ``install.phase.build`` spans for fleet nodes),
the spliced store passes full verification, and the wall clock beats a
cold source rebuild of the retooled DAG by ``SPEEDUP_FLOOR``.
"""

import json
import os
import time

from conftest import write_result

from repro.session import Session
from repro.telemetry import MemorySink, Telemetry, bench_report

#: modeled build duration of every node (sleep: releases the GIL)
BUILD_SECONDS = 0.1

#: both installs run at this pool width
JOBS = 1

#: nodes in the diamond fleet (excluding the build tool)
FLEET_NODES = 16

#: required cold/spliced wall-clock ratio
SPEEDUP_FLOOR = 3.0


def _fleet_repo():
    """The 16-node diamond DAG, every node build-depending on a tool."""
    from repro.directives import depends_on, version
    from repro.directives.directives import DirectiveMeta
    from repro.fetch.mockweb import mock_checksum
    from repro.package.package import Package
    from repro.repo.repository import Repository
    from repro.util.naming import mod_to_class

    def sleepy_install(self, spec, prefix):
        time.sleep(BUILD_SECONDS)
        os.makedirs(os.path.join(prefix, "lib"), exist_ok=True)
        with open(os.path.join(prefix, "lib", "lib%s.so.json" % spec.name), "w") as f:
            json.dump({"type": "library", "needed": [], "rpaths": []}, f)

    repo = Repository(namespace="splicebench")

    ns = {
        "url": "https://mock.example.org/buildtool/buildtool-1.0.tar.gz",
        "__doc__": "the build-only tool whose upgrade the fleet splices over",
        "install": sleepy_install,
        "build_units": 1,
        "unit_cost": 0.001,
    }
    version("1.0", mock_checksum("buildtool", "1.0"))
    version("2.0", mock_checksum("buildtool", "2.0"))
    repo.add_class("buildtool", DirectiveMeta("Buildtool", (Package,), ns))

    layers = {
        0: ["leaf-%d" % i for i in range(6)],
        1: ["mid-%d" % i for i in range(5)],
        2: ["upper-%d" % i for i in range(4)],
        3: ["diamond-root"],
    }

    def deps_for(level, i):
        if level == 0:
            return []
        below = layers[level - 1]
        if level < 3:
            return [below[i % len(below)], below[(i + 1) % len(below)]]
        return list(below)

    for level, names in sorted(layers.items()):
        for i, name in enumerate(names):
            ns = {
                "url": "https://mock.example.org/%s/%s-1.0.tar.gz" % (name, name),
                "__doc__": "splice benchmark node %s" % name,
                "install": sleepy_install,
                "build_units": 1,
                "unit_cost": 0.001,
            }
            version("1.0", mock_checksum(name, "1.0"))
            depends_on("buildtool", type="build")
            for dep in deps_for(level, i):
                depends_on(dep)
            repo.add_class(name, DirectiveMeta(mod_to_class(name), (Package,), ns))
    return repo


def _session_with_cache(tmp_path_factory, tag, cache_root, push, pull, hub=None):
    session = Session.create(
        str(tmp_path_factory.mktemp("splice-%s" % tag)),
        packages=_fleet_repo(),
        telemetry=hub,
    )
    session.enable_buildcache(root=cache_root, push=push, pull=pull)
    return session


def test_splice_survives_build_tool_upgrade(tmp_path_factory, benchmark):
    cache_root = str(tmp_path_factory.mktemp("splice-shared") / "cache")

    # -- donor: source build against buildtool@1.0, auto-pushed -----------
    donor = _session_with_cache(
        tmp_path_factory, "donor", cache_root, push=True, pull=False
    )
    start = time.perf_counter()
    donor_spec, donor_result = donor.install(
        "diamond-root ^buildtool@1.0", jobs=JOBS
    )
    cold_wall = time.perf_counter() - start
    assert len(donor_result.built) == FLEET_NODES + 1
    assert len(donor.buildcache.read_index()) == FLEET_NODES + 1

    # -- spliced: retool to @2.0 in a fresh root (measured) ---------------
    hub = Telemetry()
    sink = MemorySink()
    hub.add_sink(sink)

    def spliced_install():
        session = _session_with_cache(
            tmp_path_factory, "warm", cache_root, push=False, pull=True,
            hub=hub,
        )
        start = time.perf_counter()
        spec, result = session.install(
            "diamond-root ^buildtool@2.0", jobs=JOBS
        )
        return session, spec, result, time.perf_counter() - start

    warm, warm_spec, warm_result, warm_wall = benchmark.pedantic(
        spliced_install, rounds=1, iterations=1
    )

    # -- the ISSUE's acceptance bars --------------------------------------
    # the retooled DAG is a different full identity...
    assert warm_spec.dag_hash() != donor_spec.dag_hash()
    # ...with the same runtime closure, which is why splicing applies
    assert warm_spec.runtime_hash() == donor_spec.runtime_hash()

    # the build tool is the ONLY source build; the whole fleet splices
    assert [s.spec.name for s in warm_result.built] == ["buildtool"]
    assert len(warm_result.spliced) == FLEET_NODES
    fleet_build_spans = [
        s for s in sink.spans("install.phase.build")
        if s["attrs"].get("package") != "buildtool"
    ]
    assert fleet_build_spans == [], (
        "splice leaked %d fleet build spans" % len(fleet_build_spans)
    )
    splice_hits = hub.counter("buildcache.splice_hit")
    assert splice_hits >= FLEET_NODES

    # every spliced prefix carries donor provenance and verifies clean
    from repro.store.layout import METADATA_DIR
    from repro.store.verify import verify_store

    donor_hashes = {n.name: n.dag_hash() for n in donor_spec.traverse()}
    for node in warm_spec.traverse():
        if node.name == "buildtool":
            continue
        meta = os.path.join(
            warm.store.layout.path_for_spec(node), METADATA_DIR
        )
        with open(os.path.join(meta, "manifest.json")) as f:
            manifest = json.load(f)
        assert manifest["hash"] == node.dag_hash()
        assert manifest["spliced_from"] == donor_hashes[node.name]
    assert verify_store(warm) == []

    speedup = cold_wall / warm_wall
    report = bench_report(
        "splice",
        {
            "cold_wall_seconds": round(cold_wall, 4),
            "spliced_wall_seconds": round(warm_wall, 4),
            "speedup_spliced_vs_cold": round(speedup, 3),
            "spliced_nodes": len(warm_result.spliced),
            "source_built_nodes": len(warm_result.built),
            "fleet_build_spans": len(fleet_build_spans),
            "splice_hits": splice_hits,
            "store_verify_issues": 0,
        },
        meta={
            "dag_nodes": FLEET_NODES + 1,
            "build_seconds_per_node": BUILD_SECONDS,
            "jobs": JOBS,
        },
    )
    lines = [
        "Binary splicing: build-tool upgrade, fleet reused from runtime twins",
        "",
        "%8s %12s" % ("run", "wall (s)"),
        "%8s %12.3f" % ("cold", cold_wall),
        "%8s %12.3f" % ("spliced", warm_wall),
        "",
        "spliced speedup: %.2fx (floor: %.1fx); %d/%d nodes spliced, "
        "%d source builds (the tool), %d fleet build spans"
        % (speedup, SPEEDUP_FLOOR, len(warm_result.spliced), FLEET_NODES,
           len(warm_result.built), len(fleet_build_spans)),
    ]
    write_result(
        "BENCH_splice.json",
        json.dumps(report, indent=1, sort_keys=True) + "\n",
    )
    write_result("splice.txt", "\n".join(lines) + "\n")
    assert speedup >= SPEEDUP_FLOOR, (
        "expected >=%.1fx spliced speedup, got %.2fx" % (SPEEDUP_FLOOR, speedup)
    )
