"""DAG-parallel install speedup: one diamond-heavy DAG at -j 1/2/4.

The paper's build methodology gives every concrete spec a hash-addressed
prefix, which makes independent sub-DAGs independent *builds* — the
planner/scheduler/executor stack exploits that with a bounded worker
pool.  This benchmark regenerates the headline claim: a 16-node,
diamond-heavy DAG (critical path 4 nodes) installs >= 2x faster at
``-j 4`` than serially, while the database contents and the per-prefix
``spec.json`` provenance stay byte-identical.

Each synthetic package's install sleeps a fixed ``BUILD_SECONDS`` —
``time.sleep`` releases the GIL, modeling the I/O- and subprocess-bound
reality of configure/make/install, so thread workers genuinely overlap.
"""

import json
import os
import time

from conftest import write_result

from repro.session import Session
from repro.telemetry import bench_report

#: modeled build duration of every node (sleep: releases the GIL)
BUILD_SECONDS = 0.1

#: worker-pool widths measured
JOBS = (1, 2, 4)


def _sleepy_repo():
    """A 16-node diamond-heavy DAG: 6 leaves, 5 mids, 4 uppers, 1 root."""
    from repro.directives import depends_on, version
    from repro.directives.directives import DirectiveMeta
    from repro.fetch.mockweb import mock_checksum
    from repro.package.package import Package
    from repro.repo.repository import Repository
    from repro.util.naming import mod_to_class

    def sleepy_install(self, spec, prefix):
        time.sleep(BUILD_SECONDS)
        os.makedirs(os.path.join(prefix, "lib"), exist_ok=True)
        with open(os.path.join(prefix, "lib", "lib%s.so.json" % spec.name), "w") as f:
            json.dump({"type": "library", "needed": [], "rpaths": []}, f)

    repo = Repository(namespace="parbench")
    layers = {
        0: ["leaf-%d" % i for i in range(6)],
        1: ["mid-%d" % i for i in range(5)],
        2: ["upper-%d" % i for i in range(4)],
        3: ["diamond-root"],
    }

    def deps_for(level, i):
        if level == 0:
            return []
        below = layers[level - 1]
        # each node fans in from two lower nodes (diamond shape)...
        if level < 3:
            return [below[i % len(below)], below[(i + 1) % len(below)]]
        return list(below)  # ...and the root gathers every upper

    for level, names in sorted(layers.items()):
        for i, name in enumerate(names):
            ns = {
                "url": "https://mock.example.org/%s/%s-1.0.tar.gz" % (name, name),
                "__doc__": "parallel-install benchmark node %s" % name,
                "install": sleepy_install,
                "build_units": 1,
                "unit_cost": 0.001,
            }
            version("1.0", mock_checksum(name, "1.0"))
            for dep in deps_for(level, i):
                depends_on(dep)
            repo.add_class(name, DirectiveMeta(mod_to_class(name), (Package,), ns))
    return repo


def _provenance(session):
    """dag_hash -> (spec.json bytes, deterministic timing.json fields).

    ``timing.json``'s phase durations are real wall seconds and so can't
    be byte-compared across runs; everything else in it (package, hash,
    modeled time, counts) must be identical whatever the pool width.
    """
    from repro.store.layout import METADATA_DIR

    layout = session.store.layout
    out = {}
    for record in session.db.all_records():
        meta = os.path.join(layout.path_for_spec(record.spec), METADATA_DIR)
        with open(os.path.join(meta, "spec.json"), "rb") as f:
            spec_bytes = f.read()
        with open(os.path.join(meta, "timing.json")) as f:
            timing = json.load(f)
        stable = {
            k: v for k, v in timing.items() if k not in ("phases", "total_s")
        }
        stable["phase_names"] = sorted(timing["phases"])
        out[record.spec.dag_hash()] = (spec_bytes, stable)
    return out


def _install_at(tmp_path_factory, jobs):
    session = Session.create(
        str(tmp_path_factory.mktemp("par-j%d" % jobs)), packages=_sleepy_repo()
    )
    session.seed_web()
    start = time.perf_counter()
    spec, result = session.install("diamond-root", jobs=jobs)
    wall = time.perf_counter() - start
    return session, spec, result, wall


def test_parallel_install_speedup(tmp_path_factory, benchmark):
    runs = {}
    for jobs in JOBS:
        if jobs == JOBS[-1]:
            # the headline measurement rides in the benchmark report
            session, spec, result, wall = benchmark.pedantic(
                lambda: _install_at(tmp_path_factory, JOBS[-1]),
                rounds=1, iterations=1,
            )
        else:
            session, spec, result, wall = _install_at(tmp_path_factory, jobs)
        runs[jobs] = (session, spec, result, wall)

    serial_wall = runs[1][3]
    metrics = {}
    lines = ["DAG-parallel install: 16-node diamond-heavy DAG", ""]
    lines.append("%6s %12s %10s %12s" % ("jobs", "wall (s)", "speedup", "aggregate"))
    for jobs in JOBS:
        _, _, result, wall = runs[jobs]
        aggregate = sum(s.real_seconds for s in result.built)
        speedup = serial_wall / wall
        metrics["j%d" % jobs] = {
            "wall_seconds": round(wall, 4),
            "speedup_vs_serial": round(speedup, 3),
            "aggregate_node_seconds": round(aggregate, 4),
            "built": len(result.built),
        }
        lines.append("%6d %12.3f %9.2fx %12.3f" % (jobs, wall, speedup, aggregate))

    # -- correctness: identical stores whatever the pool width ------------
    hashes = {runs[j][1].dag_hash() for j in JOBS}
    assert len(hashes) == 1, "concretization must not depend on -j"
    p1 = _provenance(runs[1][0])
    for jobs in JOBS[1:]:
        pj = _provenance(runs[jobs][0])
        assert pj.keys() == p1.keys()
        assert pj == p1, "-j %d provenance diverged from serial" % jobs
    for jobs in JOBS:
        assert len(runs[jobs][2].built) == 16

    # -- the speedup claim -------------------------------------------------
    speedup_j4 = serial_wall / runs[4][3]
    metrics["speedup_j4"] = round(speedup_j4, 3)
    lines.append("")
    lines.append("j=4 speedup: %.2fx (floor: 2.0x)" % speedup_j4)
    report = bench_report(
        "parallel_install",
        metrics,
        meta={
            "dag_nodes": len(runs[1][2].built),
            "build_seconds_per_node": BUILD_SECONDS,
        },
    )
    write_result(
        "BENCH_parallel_install.json",
        json.dumps(report, indent=1, sort_keys=True) + "\n",
    )
    write_result("parallel_install.txt", "\n".join(lines) + "\n")
    assert speedup_j4 >= 2.0, "expected >=2x at -j4, got %.2fx" % speedup_j4
