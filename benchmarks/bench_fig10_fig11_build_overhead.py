"""Figures 10 & 11: build time and overhead — wrappers × filesystem.

The paper timed seven real builds (libelf, libpng, mpileaks, libdwarf,
python, dyninst, LAPACK) in three configurations: compiler wrappers with
an NFS-mounted stage, wrappers with node-local temp, and no wrappers
with temp.  Findings: NFS staging costs up to 62.7% (libpng) and 33% on
average; wrappers cost ~10% on short builds (mpileaks 12.3%) and nothing
on long-compile-unit builds (dyninst −0.4%).

Substitution (DESIGN.md §3): our builds run the *real* wrapper/compiler
code path per unit but account time through the virtual cost model —
per-unit compile cost, per-invocation wrapper overhead (10 ms modeled;
the measured in-process argv-rewrite cost is also reported), and
per-file-op filesystem latency (NFS 4 ms vs temp 0.08 ms).  Percentages
are scale-invariant in the model, so the *shape* — which packages hurt,
which don't, and why — reproduces; absolute seconds are scaled down
(unit counts ÷10) to keep the benchmark fast.
"""

from conftest import write_result

from repro.session import Session
from repro.simfs import NFS, TMPFS, CostModel, measure_wrapper_overhead

#: Figure 10/11's seven packages, in the paper's bar order, with the
#: paper's Figure 11 percentages for side-by-side comparison.
PACKAGES = [
    # (name, paper NFS+wrappers %, paper wrappers-only %)
    ("libelf", 48.0, 9.5),
    ("libpng", 62.7, 9.4),
    ("mpileaks", 35.6, 12.3),
    ("libdwarf", 17.7, 6.6),
    ("python", 46.4, 10.2),
    ("dyninst", 4.9, -0.4),
    ("netlib-lapack", 16.6, 6.0),
]

WRAPPER_OVERHEAD_S = 0.010


def _build_times(tmp_path_factory, fs, use_wrappers, tag):
    session = Session.create(
        str(tmp_path_factory.mktemp("fig10-%s" % tag)),
        cost_model=CostModel(fs=fs, wrapper_overhead_s=WRAPPER_OVERHEAD_S,
                             install_fs=TMPFS),
        use_wrappers=use_wrappers,
    )
    times = {}
    for name, *_ in PACKAGES:
        _, result = session.install(name)
        # a target may already have been built as a dependency of an
        # earlier one (libdwarf builds inside the mpileaks install);
        # per-node stats were recorded whenever the build happened
        for stats in result.built:
            times.setdefault(stats.spec.name, stats.virtual_seconds)
    return {name: times[name] for name, *_ in PACKAGES}


def test_fig10_fig11_overheads(tmp_path_factory, benchmark):
    wrap_nfs = _build_times(tmp_path_factory, NFS, True, "wrap-nfs")
    wrap_tmp = _build_times(tmp_path_factory, TMPFS, True, "wrap-tmp")
    raw_tmp = _build_times(tmp_path_factory, TMPFS, False, "raw-tmp")

    # transparency: what one real in-process wrapper pass costs here
    from repro.build.wrappers import wrap_compiler_args

    measured_rewrite = measure_wrapper_overhead(
        lambda argv, env: wrap_compiler_args(argv, env),
        ["cc", "-c", "x.c", "-o", "x.o"],
        {"SPACK_CC": "/t/gcc", "SPACK_DEPENDENCIES": "/a:/b:/c", "SPACK_PREFIX": "/p"},
    )

    # ---- Figure 10: absolute (virtual) build times ------------------------
    lines = [
        "Figure 10: build time on NFS and temp, with and without wrappers",
        "(virtual seconds from the cost model; unit counts are 1/10 of the",
        " paper's builds, so bars are ~1/10 scale)",
        "",
        "%-15s %-18s %-18s %s" % ("package", "Wrappers, NFS", "Wrappers, Temp FS",
                                  "No Wrappers, Temp FS"),
    ]
    for name, *_ in PACKAGES:
        lines.append(
            "%-15s %-18.2f %-18.2f %.2f"
            % (name, wrap_nfs[name], wrap_tmp[name], raw_tmp[name])
        )
    write_result("fig10_build_time.txt", "\n".join(lines) + "\n")

    # ---- Figure 11: percentage overheads ---------------------------------
    lines = [
        "Figure 11: build overhead of NFS and compiler wrappers",
        "(% of the wrapper-less temp-FS build; paper values in parens)",
        "",
        "%-15s %-26s %s" % ("package", "Wrappers+NFS % (paper)", "Wrappers % (paper)"),
    ]
    nfs_pct, wrap_pct = {}, {}
    for name, paper_nfs, paper_wrap in PACKAGES:
        base = raw_tmp[name]
        nfs_pct[name] = (wrap_nfs[name] - base) / base * 100
        wrap_pct[name] = (wrap_tmp[name] - base) / base * 100
        lines.append(
            "%-15s %6.1f  (%5.1f)           %6.1f  (%5.1f)"
            % (name, nfs_pct[name], paper_nfs, wrap_pct[name], paper_wrap)
        )
    lines.append("")
    lines.append("mean NFS overhead: %.1f%% (paper: ~33%% mean, up to 62.7%%)"
                 % (sum(nfs_pct.values()) / len(nfs_pct)))
    lines.append("modeled wrapper overhead per invocation: %.3f s" % WRAPPER_OVERHEAD_S)
    lines.append("measured in-process argv rewrite:        %.6f s" % measured_rewrite)
    write_result("fig11_overhead.txt", "\n".join(lines) + "\n")

    # ---- shape assertions --------------------------------------------------
    # wrappers: ~10% on short-unit builds, ~0 on dyninst (long units),
    # mpileaks the worst (many small units)
    assert wrap_pct["dyninst"] < 2.0
    assert wrap_pct["mpileaks"] == max(wrap_pct.values())
    assert 8.0 < wrap_pct["mpileaks"] < 18.0
    for name in ("libelf", "libpng", "python"):
        assert 7.0 < wrap_pct[name] < 14.0
    # NFS: libpng hurts most, dyninst least; everything positive
    assert nfs_pct["libpng"] == max(nfs_pct.values())
    assert nfs_pct["dyninst"] == min(nfs_pct.values())
    assert nfs_pct["libpng"] > 45.0
    assert nfs_pct["dyninst"] < 10.0
    # NFS dominates wrapper overhead for every I/O-bound package
    for name, *_ in PACKAGES:
        assert nfs_pct[name] > wrap_pct[name]

    # the benchmark measurement: one wrapped temp-FS build end to end
    def one_build(tag=[0]):
        tag[0] += 1
        session = Session.create(
            str(tmp_path_factory.mktemp("fig10-bench-%d" % tag[0])),
            use_wrappers=True,
        )
        session.install("libelf")

    benchmark.pedantic(one_build, rounds=3, iterations=1)
