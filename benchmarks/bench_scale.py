"""Environment concretization at repository scale: 1k/5k/10k packages.

The paper's ordering argument is about *big* software stacks; the
builtin corpus is 63 packages.  This benchmark synthesizes hub-biased
universes of 1 000, 5 000, and 10 000 packages (the generator's
``hub_bias`` gives them the cmake/python/mpi funnel shape real
repositories have) and, per tier:

* **cold environment solve** — a 10-root environment concretized
  *together* (concurrent solves + merge/unify) with no lockfile;
* **warm environment solve** — the same environment restored from its
  lockfile (the environment-key hit path), which must be >=2x faster
  than cold at the 5k tier;
* **provider lookup latency** — a repeating stream of constrained
  virtual-spec lookups against the sharded ``ProviderIndex`` memo; the
  per-lookup cost must stay flat (within 2x) from 1k to 10k, the
  regression the bounded-LRU fix exists to prevent;
* **peak RSS** — the process high-water mark after the tier.

``REPRO_SCALE_TIERS`` (comma-separated package counts) restricts the
tiers; CI runs the 1k tier only, and the regression gate treats the
missing 5k/10k keys as removed-not-regressed.
"""

import gc
import json
import os
import resource
import time

from conftest import write_result

from repro.compilers.registry import Compiler, CompilerRegistry
from repro.config.config import Config
from repro.session import Session
from repro.spec.spec import Spec
from repro.telemetry.metrics import bench_report
from repro.testing.generators import GEN_COMPILERS, RepoGenerator

#: package counts per tier (overridable for CI via REPRO_SCALE_TIERS)
DEFAULT_TIERS = (1000, 5000, 10000)

#: one fixed seed: the universes are part of the benchmark's identity
SEED = 94

#: abstract roots per environment
ROOTS = 10

#: concurrent per-root solves
JOBS = 4

#: virtual interfaces per universe
VIRTUALS = 6

#: provider-lookup stream: LOOKUPS draws over DISTINCT distinct keys
#: (repetition engages the memo, like real concretization traffic)
LOOKUPS = 600
DISTINCT = 150


def _tiers():
    raw = os.environ.get("REPRO_SCALE_TIERS", "")
    if not raw.strip():
        return DEFAULT_TIERS
    return tuple(int(t) for t in raw.split(",") if t.strip())


def _label(count):
    return "%dk" % (count // 1000)


def _fixture_config():
    cfg = Config()
    cfg.update(
        "defaults",
        {
            "preferences": {
                "compiler_order": [GEN_COMPILERS[0]],
                "architecture": "linux-x86_64",
            }
        },
    )
    return cfg


def _peak_rss_mb():
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _provider_lookup_us(session, generator):
    """Mean per-lookup microseconds over the repeating vspec stream."""
    index = session.provider_index
    vnames = [generator.virtual_name(i) for i in range(VIRTUALS)]
    stream = [
        Spec("%s@:%d.%d" % (vnames[i % len(vnames)], i % 9 + 1, i % 7))
        for i in range(DISTINCT)
    ]
    for vspec in stream:  # parse + first-touch outside the timed loop
        index.providers_for(vspec)
    t0 = time.perf_counter()
    for i in range(LOOKUPS):
        index.providers_for(stream[i % DISTINCT])
    return (time.perf_counter() - t0) / LOOKUPS * 1e6


def _run_tier(count, base_dir):
    label = _label(count)
    generator = RepoGenerator(
        SEED, count=count, virtuals=VIRTUALS,
        name_prefix="scale", hub_bias=0.6, max_deps=4,
    )
    t0 = time.perf_counter()
    repo = generator.build()
    build_s = time.perf_counter() - t0

    session = Session(
        os.path.join(base_dir, "tier-%s" % label), repo,
        config=_fixture_config(),
        compilers=CompilerRegistry(
            Compiler(*cs.split("@")) for cs in GEN_COMPILERS
        ),
    )
    # ten spread-out roots: hub bias makes their dependency closures
    # overlap heavily, which is exactly what unification is for
    env = session.environment("scale-%s" % label)
    for i in range(ROOTS):
        env.add(generator.package_name((i * count) // ROOTS + count // 20))

    t0 = time.perf_counter()
    cold = env.concretize(session, jobs=JOBS, force=True)
    cold_s = time.perf_counter() - t0
    assert cold.resolves >= ROOTS

    t0 = time.perf_counter()
    warm = env.concretize(session, jobs=JOBS)
    warm_s = time.perf_counter() - t0
    assert warm.resolves == 0, "warm solve must restore from the lock"
    assert warm.dag_hashes() == cold.dag_hashes()

    # unification coherence at scale: one node per shared package
    by_name = {}
    for _, concrete in cold.roots:
        for node in concrete.traverse():
            by_name.setdefault(node.name, set()).add(node.dag_hash())
    assert all(len(hashes) == 1 for hashes in by_name.values())

    lookup_us = _provider_lookup_us(session, generator)
    hits = session.provider_index.memo_hits
    misses = session.provider_index.memo_misses

    tier = {
        "packages": len(repo.all_package_names()),
        "universe_build_seconds": round(build_s, 4),
        "cold_solve_seconds": round(cold_s, 4),
        "warm_solve_seconds": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 2),
        "unique_nodes": len(cold.nodes()),
        "shared_packages": len(cold.shared_packages()),
        "provider_lookup_us": round(lookup_us, 2),
        "provider_memo_hit_ratio": round(hits / float(hits + misses), 4),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }
    del session, repo, cold, warm
    gc.collect()
    return tier


def test_environment_scale(benchmark, tmp_path):
    tiers = _tiers()

    def drive():
        return {count: _run_tier(count, str(tmp_path)) for count in tiers}

    results = benchmark.pedantic(drive, rounds=1, iterations=1)

    # the ISSUE's floors, asserted whenever the relevant tiers ran
    if 5000 in results:
        assert results[5000]["warm_speedup"] >= 2.0, (
            "lockfile restore must be >=2x faster than a cold unification "
            "at 5k (got %.2fx)" % results[5000]["warm_speedup"]
        )
    if 1000 in results and 10000 in results:
        small = results[1000]["provider_lookup_us"]
        large = results[10000]["provider_lookup_us"]
        assert large <= 2.0 * small, (
            "provider lookups must stay flat 1k->10k "
            "(%.2fus -> %.2fus)" % (small, large)
        )
    for tier in results.values():
        assert tier["provider_memo_hit_ratio"] > 0
        assert tier["shared_packages"] >= 1

    metrics = {}
    for count, tier in results.items():
        suffix = _label(count)
        for key, value in tier.items():
            metrics["%s_%s" % (key, suffix)] = value

    report = bench_report(
        "scale",
        metrics,
        meta=dict(seed=SEED, tiers=list(tiers), roots=ROOTS, jobs=JOBS,
                  virtuals=VIRTUALS, lookups=LOOKUPS, distinct=DISTINCT,
                  hub_bias=0.6),
    )
    lines = [
        "Environment concretization at scale (%d roots, -j%d)"
        % (ROOTS, JOBS),
        "",
        "%8s %9s %10s %10s %9s %12s %9s" % (
            "packages", "build", "cold", "warm", "speedup",
            "lookup", "rss",
        ),
    ]
    for count in tiers:
        tier = results[count]
        lines.append(
            "%8d %8.2fs %9.3fs %9.3fs %8.1fx %10.2fus %7.0fMB" % (
                tier["packages"], tier["universe_build_seconds"],
                tier["cold_solve_seconds"], tier["warm_solve_seconds"],
                tier["warm_speedup"], tier["provider_lookup_us"],
                tier["peak_rss_mb"],
            )
        )
    write_result(
        "BENCH_scale.json",
        json.dumps(report, indent=1, sort_keys=True) + "\n",
    )
    write_result("scale.txt", "\n".join(lines) + "\n")
