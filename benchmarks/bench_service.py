"""The service daemon under sustained load: req/s and tail latency.

Two measurements over one warm daemon (docs/service.md):

* **sustained throughput** — N client threads each issuing a mixed
  stream of ``spack_spec`` / ``spack_list`` / ``spack_info`` /
  ``spack_find`` requests against a warm snapshot; reports requests per
  second and client-observed p50/p95/p99 latency.
* **thundering herd** — a barrier-released herd all requesting the same
  cold spec; the dispatcher must concretize **once** and coalesce the
  rest, so the cold-call and coalesced counts are deterministic and
  part of the gate (only the wall-clock keys move run to run).
"""

import json
import threading
import time

from conftest import write_result

from repro.service import ServiceDaemon
from repro.session import Session
from repro.telemetry.metrics import bench_report

#: client threads driving the daemon (requests in flight)
CLIENTS = 8

#: requests per client in the sustained phase
REQUESTS_EACH = 30

#: worker-pool width under test
WORKERS = 8

#: herd size for the coalescing phase: the whole worker pool at once
#: (a herd wider than the pool queues in the executor instead of
#: parking on the batch, and the queued tail would land as memo hits)
HERD = WORKERS

#: the warm mixed stream (endpoint, params), round-robined per client
MIX = (
    ("spack_spec", {"spec": "mpileaks"}),
    ("spack_list", {"query": "mpi"}),
    ("spack_spec", {"spec": "dyninst"}),
    ("spack_info", {"package": "callpath"}),
    ("spack_spec", {"spec": "libdwarf"}),
    ("spack_find", {}),
)


def _percentile(sorted_values, q):
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def test_service_throughput_latency_and_coalescing(benchmark, tmp_path):
    session = Session.create(str(tmp_path / "universe"))
    daemon = ServiceDaemon(session, workers=WORKERS)
    # warm the snapshot, memo, and disk cache: steady-state service
    for endpoint, params in MIX:
        daemon.call(endpoint, dict(params))

    # -- sustained phase: the measured pass -------------------------------
    def drive():
        latencies = [[] for _ in range(CLIENTS)]
        errors = []
        barrier = threading.Barrier(CLIENTS + 1)

        def client(bucket):
            try:
                barrier.wait()
                for i in range(REQUESTS_EACH):
                    endpoint, params = MIX[i % len(MIX)]
                    t0 = time.perf_counter()
                    daemon.call(endpoint, dict(params))
                    bucket.append(time.perf_counter() - t0)
            except Exception as e:
                errors.append(e)

        threads = [
            threading.Thread(target=client, args=(latencies[c],))
            for c in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        start = time.perf_counter()
        for t in threads:
            t.join()
        wall = time.perf_counter() - start
        flat = sorted(lat for bucket in latencies for lat in bucket)
        return flat, errors, wall

    flat, errors, wall = benchmark.pedantic(drive, rounds=1, iterations=1)
    assert errors == []
    total = CLIENTS * REQUESTS_EACH
    assert len(flat) == total

    # -- herd phase: one cold spec, HERD identical requests ----------------
    snapshot = daemon.snapshots.current()
    release = threading.Event()
    entered = threading.Event()
    cold_calls = []
    real_cold = snapshot._concretize_cold

    def gated_cold(spec, variant, database=None):
        cold_calls.append(str(spec))
        entered.set()
        release.wait(timeout=60)
        return real_cold(spec, variant, database)

    snapshot._concretize_cold = gated_cold
    herd_start = time.perf_counter()
    futures = [daemon.submit("spack_spec", {"spec": "ares"})]
    entered.wait(timeout=60)  # the leader is in the cold path
    futures += [
        daemon.submit("spack_spec", {"spec": "ares"})
        for _ in range(HERD - 1)
    ]
    deadline = time.time() + 60
    while time.time() < deadline:  # every follower parked on the batch
        with daemon._batch_lock:
            if sum(b.followers for b in daemon._inflight.values()) == HERD - 1:
                break
        time.sleep(0.002)
    release.set()
    herd_results = [f.result(timeout=120) for f in futures]
    herd_wall = time.perf_counter() - herd_start
    snapshot._concretize_cold = real_cold

    assert cold_calls == ["ares"]
    assert len({r["dag_hash"] for r in herd_results}) == 1
    assert daemon.coalesced == HERD - 1
    daemon.close()

    report = bench_report(
        "service",
        {
            "requests": total,
            "errors": len(errors),
            "throughput_rps": round(total / wall, 2),
            "sustained_wall_seconds": round(wall, 4),
            "latency_mean_s": round(sum(flat) / total, 6),
            "latency_p50_s": round(_percentile(flat, 0.50), 6),
            "latency_p95_s": round(_percentile(flat, 0.95), 6),
            "latency_p99_s": round(_percentile(flat, 0.99), 6),
            "herd_requests": HERD,
            "herd_cold_concretizations": len(cold_calls),
            "herd_coalesced": daemon.coalesced,
            "herd_wall_seconds": round(herd_wall, 4),
            "snapshot_forks": daemon.snapshots.forks,
        },
        meta=dict(workers=WORKERS, clients=CLIENTS,
                  requests_each=REQUESTS_EACH, herd=HERD,
                  mix=[endpoint for endpoint, _ in MIX]),
    )
    lines = [
        "Service daemon: %d clients x %d mixed requests, %d workers" % (
            CLIENTS, REQUESTS_EACH, WORKERS,
        ),
        "",
        "throughput: %.0f req/s over %.3fs (%d requests, %d errors)" % (
            total / wall, wall, total, len(errors),
        ),
        "latency: p50 %.2fms  p95 %.2fms  p99 %.2fms" % (
            _percentile(flat, 0.50) * 1e3,
            _percentile(flat, 0.95) * 1e3,
            _percentile(flat, 0.99) * 1e3,
        ),
        "thundering herd: %d identical requests -> %d cold concretization,"
        " %d coalesced (%.3fs)" % (
            HERD, len(cold_calls), daemon.coalesced, herd_wall,
        ),
    ]
    write_result(
        "BENCH_service.json",
        json.dumps(report, indent=1, sort_keys=True) + "\n",
    )
    write_result("service.txt", "\n".join(lines) + "\n")
