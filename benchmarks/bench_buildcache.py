"""Binary build cache: cold-vs-warm install speedup on the 16-node DAG.

The paper's hash-addressed prefixes make a concrete spec's identity
portable; the build cache exploits that by replacing fetch + stage +
build with extract + relocate + verify.  This benchmark regenerates the
headline claim: a warm-cache install of the same 16-node diamond-heavy
DAG used by ``bench_parallel_install`` skips **every** build phase
(telemetry shows 0 ``install.phase.build`` spans and a ``buildcache.hit``
per node) and lands >= 3x faster than the cold source build, while
``dag_hash`` and the per-prefix provenance stay byte-identical.
"""

import json
import os
import time

from conftest import write_result

from repro.session import Session
from repro.telemetry import MemorySink, Telemetry, bench_report

#: modeled build duration of every node (sleep: releases the GIL)
BUILD_SECONDS = 0.1

#: the cold and warm installs both run at this pool width
JOBS = 1

#: required cold/warm wall-clock ratio (the ISSUE's acceptance floor)
SPEEDUP_FLOOR = 3.0


def _sleepy_repo():
    """A 16-node diamond-heavy DAG: 6 leaves, 5 mids, 4 uppers, 1 root."""
    from repro.directives import depends_on, version
    from repro.directives.directives import DirectiveMeta
    from repro.fetch.mockweb import mock_checksum
    from repro.package.package import Package
    from repro.repo.repository import Repository
    from repro.util.naming import mod_to_class

    def sleepy_install(self, spec, prefix):
        time.sleep(BUILD_SECONDS)
        os.makedirs(os.path.join(prefix, "lib"), exist_ok=True)
        with open(os.path.join(prefix, "lib", "lib%s.so.json" % spec.name), "w") as f:
            json.dump({"type": "library", "needed": [], "rpaths": []}, f)

    repo = Repository(namespace="bcbench")
    layers = {
        0: ["leaf-%d" % i for i in range(6)],
        1: ["mid-%d" % i for i in range(5)],
        2: ["upper-%d" % i for i in range(4)],
        3: ["diamond-root"],
    }

    def deps_for(level, i):
        if level == 0:
            return []
        below = layers[level - 1]
        if level < 3:
            return [below[i % len(below)], below[(i + 1) % len(below)]]
        return list(below)

    for level, names in sorted(layers.items()):
        for i, name in enumerate(names):
            ns = {
                "url": "https://mock.example.org/%s/%s-1.0.tar.gz" % (name, name),
                "__doc__": "buildcache benchmark node %s" % name,
                "install": sleepy_install,
                "build_units": 1,
                "unit_cost": 0.001,
            }
            version("1.0", mock_checksum(name, "1.0"))
            for dep in deps_for(level, i):
                depends_on(dep)
            repo.add_class(name, DirectiveMeta(mod_to_class(name), (Package,), ns))
    return repo


def _provenance(session, spec):
    """dag_hash -> (spec.json bytes, manifest.json bytes) per node."""
    from repro.store.layout import METADATA_DIR

    layout = session.store.layout
    out = {}
    for node in spec.traverse():
        meta = os.path.join(layout.path_for_spec(node), METADATA_DIR)
        with open(os.path.join(meta, "spec.json"), "rb") as f:
            spec_bytes = f.read()
        with open(os.path.join(meta, "manifest.json"), "rb") as f:
            manifest_bytes = f.read()
        out[node.dag_hash()] = (spec_bytes, manifest_bytes)
    return out


def _session_with_cache(tmp_path_factory, tag, cache_root, push, hub=None):
    session = Session.create(
        str(tmp_path_factory.mktemp("bc-%s" % tag)),
        packages=_sleepy_repo(),
        telemetry=hub,
    )
    session.seed_web()
    session.enable_buildcache(root=cache_root, push=push)
    return session


def test_buildcache_cold_vs_warm(tmp_path_factory, benchmark):
    cache_root = str(tmp_path_factory.mktemp("bc-shared") / "cache")

    # -- cold: source build of all 16 nodes, auto-pushed ------------------
    cold = _session_with_cache(tmp_path_factory, "cold", cache_root, push=True)
    start = time.perf_counter()
    cold_spec, cold_result = cold.install("diamond-root", jobs=JOBS)
    cold_wall = time.perf_counter() - start
    assert len(cold_result.built) == 16
    assert len(cold.buildcache.read_index()) == 16

    # -- warm: fresh root, everything from the cache (measured) -----------
    hub = Telemetry()
    sink = MemorySink()
    hub.add_sink(sink)

    def warm_install():
        session = _session_with_cache(
            tmp_path_factory, "warm", cache_root, push=False, hub=hub
        )
        start = time.perf_counter()
        spec, result = session.install("diamond-root", jobs=JOBS)
        return session, spec, result, time.perf_counter() - start

    warm, warm_spec, warm_result, warm_wall = benchmark.pedantic(
        warm_install, rounds=1, iterations=1
    )

    # -- the ISSUE's acceptance bars --------------------------------------
    assert warm_spec.dag_hash() == cold_spec.dag_hash()
    assert warm_result.built == [], "warm install must compile nothing"
    assert len(warm_result.cached) == 16

    build_spans = sink.spans("install.phase.build")
    assert build_spans == [], "warm install leaked %d build spans" % len(
        build_spans
    )
    hits = hub.counter("buildcache.hit")
    assert hits >= 16, "expected >=1 buildcache.hit per node, got %d" % hits

    assert _provenance(warm, warm_spec) == _provenance(cold, cold_spec), (
        "cold and warm provenance diverged"
    )

    speedup = cold_wall / warm_wall
    report = bench_report(
        "buildcache",
        {
            "cold_wall_seconds": round(cold_wall, 4),
            "warm_wall_seconds": round(warm_wall, 4),
            "speedup_warm_vs_cold": round(speedup, 3),
            "warm_build_spans": len(build_spans),
            "buildcache_hits": hits,
            "warm_cached_nodes": len(warm_result.cached),
            "provenance_identical": True,
        },
        meta={
            "dag_nodes": 16,
            "build_seconds_per_node": BUILD_SECONDS,
            "jobs": JOBS,
        },
    )
    lines = [
        "Binary build cache: cold source build vs. warm cache install",
        "",
        "%8s %12s" % ("run", "wall (s)"),
        "%8s %12.3f" % ("cold", cold_wall),
        "%8s %12.3f" % ("warm", warm_wall),
        "",
        "warm speedup: %.2fx (floor: %.1fx); %d/16 nodes from cache, "
        "%d build spans" % (speedup, SPEEDUP_FLOOR, len(warm_result.cached),
                            len(build_spans)),
    ]
    write_result(
        "BENCH_buildcache.json",
        json.dumps(report, indent=1, sort_keys=True) + "\n",
    )
    write_result("buildcache.txt", "\n".join(lines) + "\n")
    assert speedup >= SPEEDUP_FLOOR, (
        "expected >=%.1fx warm speedup, got %.2fx" % (SPEEDUP_FLOOR, speedup)
    )
