"""Table 3: configurations of ARES built with Spack.

Concretizes every cell of the support matrix — 36 configurations over 10
architecture-compiler-MPI combinations — and regenerates the C/P/L/D
table.  The paper's exact cell layout is partially garbled in the
extracted text; the reconstruction (see EXPERIMENTS.md) preserves the
row/column structure, the per-row compilers, and the 36/10 totals.
"""

from conftest import write_result

from repro.packages import ares
from repro.spec.spec import Spec


def test_table3_matrix(bench_session, benchmark):
    session = bench_session

    def concretize_all():
        results = {}
        for compiler, arch, mpi, configs in ares.SUPPORT_MATRIX:
            built = ""
            for letter in configs:
                text = "%s %s %s %s" % (ares.CONFIGS[letter], compiler, arch, mpi)
                concrete = session.concretize(Spec(text))
                assert concrete.concrete
                built += letter
            results[(compiler, arch, mpi)] = built
        return results

    results = benchmark.pedantic(concretize_all, rounds=1, iterations=1)

    lines = [
        "Table 3: Configurations of ARES concretized with the reproduction",
        "(C)urrent and (P)revious production, (L)ite, (D)evelopment",
        "",
        "%-16s %-14s %-12s %s" % ("Compiler", "Architecture", "MPI", "Configs"),
    ]
    total = 0
    for (compiler, arch, mpi), built in results.items():
        lines.append(
            "%-16s %-14s %-12s %s" % (compiler, arch.lstrip("="), mpi.lstrip("^"), " ".join(built))
        )
        total += len(built)
    lines.append("")
    lines.append("combinations: %d   total configurations: %d" % (len(results), total))
    write_result("table3_ares_matrix.txt", "\n".join(lines) + "\n")

    assert len(results) == 10
    assert total == 36
    # every configuration is distinct
    hashes = {
        session.concretize(Spec(t)).dag_hash() for t in ares.matrix_spec_strings()
    }
    assert len(hashes) == 36
