"""Core version classes: :class:`Version`, :class:`VersionRange`,
:class:`VersionList`.

Semantics
---------
A version string is split into components at ``.``, ``-`` and ``_``
boundaries and at letter/digit transitions; numeric components compare
numerically and sort *after* alphabetic ones at the same position (so
``1.2a < 1.2.0``).  A shorter version that is a prefix of a longer one
compares less (``1.2 < 1.2.1`` and also ``1.2 < 1.2alpha`` — suffixes
always extend the family upward, exactly as in the 2015-era original;
"prerelease" ordering is *not* special-cased).

**Prefix families.**  A bare version constraint like ``@1.4`` denotes the
whole family ``1.4, 1.4.0, 1.4.2, ...`` — anything whose components start
with ``1.4``.  Range endpoints inherit this: ``@:1.4`` includes ``1.4.2``.
Internally every constraint is mapped to a closed interval in *key space*,
where the family of ``v`` is ``[key(v), key(v) + (SUP,)]`` with ``SUP`` a
sentinel sorting after any real component.  Intersection, union, and
subset then reduce to interval arithmetic — one code path for all nine
Version/Range/List combinations.
"""

import re

from repro.errors import ReproError
from repro.util.intern import InternPool
from repro.util.lang import key_ordering

__all__ = ["Version", "VersionRange", "VersionList", "ver", "any_version"]

#: Canonical instances per source text.  Version objects are immutable,
#: so one shared instance per distinct string is safe; identity then
#: short-circuits ``==`` before any key comparison (see util/intern.py).
_VERSION_POOL = InternPool()

#: Parsed constraint tuples per VersionList source text.  Lists are
#: mutable, so the pool stores immutable tuples of their (immutable)
#: members and every lookup builds a fresh list around them.
_LIST_PARSE_POOL = InternPool()

#: Canonical VersionRange per ``lo:hi`` atom text (ranges are immutable).
_RANGE_POOL = InternPool()

#: Marks "no argument given" in Version.__new__ so pickle's no-arg
#: reconstruction is distinguishable from an (invalid) Version(None).
_UNSET = object()


class VersionParseError(ReproError):
    """Raised for strings that cannot be parsed as a version constraint."""


#: Valid version text: like grammar ids but may not contain ':' or ','.
_VALID_VERSION = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.\-]*$")

#: Split into alternating digit / alpha runs; separators are dropped.
_SEGMENT_RE = re.compile(r"[0-9]+|[A-Za-z]+")

#: Sentinel component key that sorts after every real component key.
_SUP = (2,)

#: Interval endpoints for fully open ranges.
_NEG_INF = ()
_POS_INF = ((3,),)


def _component_key(component):
    """Key for one component: alphabetic sorts before numeric."""
    if isinstance(component, int):
        return (1, component)
    return (0, component)


@key_ordering
class Version:
    """A single version, e.g. ``1.4.2`` or ``2.0-beta1``.

    As a *constraint*, a Version denotes its whole prefix family (see
    module docstring); as a *concrete value* it is just a point.  The
    original, unnormalized string is preserved for display.
    """

    __slots__ = ("string", "components", "_key", "_ival")

    def __new__(cls, string=_UNSET):
        # The no-arg form exists only for pickle/copy reconstruction.
        if string is _UNSET:
            return super().__new__(cls)
        if isinstance(string, (int, float)):
            string = str(string)
        if cls is Version:
            cached = _VERSION_POOL.get(string)
            if cached is not None:
                return cached
        if not isinstance(string, str) or not _VALID_VERSION.match(string):
            raise VersionParseError("Invalid version string: %r" % (string,))
        self = super().__new__(cls)
        self.string = string
        self.components = tuple(
            int(seg) if seg.isdigit() else seg for seg in _SEGMENT_RE.findall(string)
        )
        self._key = tuple(_component_key(c) for c in self.components)
        # Precomputed prefix-family interval: [key, key + (SUP,)].
        self._ival = (self._key, self._key + (_SUP,))
        if cls is Version:
            self = _VERSION_POOL.put(string, self)
        return self

    def __init__(self, string=_UNSET):
        # All construction work happens in __new__ so interned instances
        # are never re-parsed; instances are immutable afterwards.
        pass

    def _cmp_key(self):
        return self._key

    @property
    def key(self):
        """Component-key tuple used for interval arithmetic."""
        return self._key

    def up_to(self, index):
        """The version formed by the first ``index`` components.

        ``Version('1.23.4').up_to(2) == Version('1.23')``.  Useful for
        family checks and for URL extrapolation.
        """
        return Version(".".join(str(c) for c in self.components[:index]))

    def is_predecessor(self, other):
        """True if ``other`` is this version with the last component + 1.

        Works for numeric components (``1.0`` → ``1.1``) and for alpha
        suffix components, where "+1" means incrementing the final letter
        (``1.0a`` → ``1.0b``, ``2.0rc1`` → ``2.0rc2`` via the numeric
        rule).  ``...z`` has no single-letter successor and returns False.
        """
        if len(self.components) != len(other.components):
            return False
        if self.components[:-1] != other.components[:-1]:
            return False
        a, b = self.components[-1], other.components[-1]
        if isinstance(a, int) and isinstance(b, int):
            return b == a + 1
        if isinstance(a, str) and isinstance(b, str):
            return (
                len(a) == len(b)
                and a[:-1] == b[:-1]
                and a[-1] not in "zZ"
                and ord(b[-1]) == ord(a[-1]) + 1
            )
        return False

    def __contains__(self, other):
        """Prefix-family membership: ``Version('1.4.2') in Version('1.4')``."""
        if isinstance(other, str):
            other = Version(other)
        if isinstance(other, Version):
            return other.components[: len(self.components)] == self.components
        return _interval(other)[0] >= self.key and _interval(other)[1] <= _family_sup(self)

    def satisfies(self, other, strict=False):
        """True if this version meets the constraint ``other``.

        ``other`` may be a Version (family membership), VersionRange,
        VersionList, or string form of any of these.  With ``strict``,
        the whole prefix family this version denotes must be contained
        in ``other``, not just the point itself.
        """
        other = ver(other)
        if strict:
            return VersionList([self]).satisfies(other, strict=True)
        if isinstance(other, Version):
            return self in other
        return other.contains_version(self)

    def __str__(self):
        return self.string

    def __repr__(self):
        return "Version(%r)" % self.string

    def __format__(self, spec):
        return format(self.string, spec)


def _family_sup(version):
    """Upper interval endpoint of a version's prefix family."""
    return version._ival[1]


def _interval(constraint):
    """Map a Version or VersionRange to a closed interval in key space.

    Both classes precompute the interval at construction (they are
    immutable), so this is a single attribute read on the hot path.
    """
    return constraint._ival


def _from_interval(lo_key, hi_key, lo_obj, hi_obj):
    """Map an interval back to a Version (if it is exactly one family) or
    a VersionRange.  ``lo_obj``/``hi_obj`` are the Version objects whose
    keys produced the endpoints (None for open ends)."""
    if lo_obj is not None and hi_obj is not None:
        if lo_key == lo_obj.key and hi_key == _family_sup(lo_obj) and lo_obj == hi_obj:
            return lo_obj
    return VersionRange(lo_obj, hi_obj)


@key_ordering
class VersionRange:
    """An inclusive range ``lo:hi``; either end may be open (None).

    Endpoints use prefix-family semantics: ``1.2:1.4`` contains ``1.4.2``
    (the paper's "between 2.3 and 2.5.6 inclusive" reading).
    """

    __slots__ = ("lo", "hi", "_ival")

    def __init__(self, lo, hi):
        if isinstance(lo, str):
            lo = Version(lo)
        if isinstance(hi, str):
            hi = Version(hi)
        self.lo = lo
        self.hi = hi
        ilo = lo._ival[0] if lo is not None else _NEG_INF
        ihi = hi._ival[1] if hi is not None else _POS_INF
        self._ival = (ilo, ihi)
        if lo is not None and hi is not None and ilo > ihi:
            raise VersionParseError("Empty version range: %s:%s" % (lo, hi))

    def _cmp_key(self):
        return self._ival

    def contains_version(self, version):
        lo, hi = self._ival
        return lo <= version.key <= hi

    __contains__ = contains_version

    def satisfies(self, other, strict=False):
        """Compatibility (overlap) or, with ``strict``, containment.

        The non-strict default answers "could some version satisfy both
        constraints?"; ``strict=True`` answers "is every version allowed
        by this range also allowed by ``other``?" — the question provider
        selection and ``Spec.satisfies(..., strict=True)`` actually ask.
        """
        return VersionList([self]).satisfies(other, strict=strict)

    def overlaps(self, other):
        return VersionList([self]).overlaps(other)

    def __str__(self):
        return "%s:%s" % (self.lo or "", self.hi or "")

    def __repr__(self):
        return "VersionRange(%r, %r)" % (
            str(self.lo) if self.lo else None,
            str(self.hi) if self.hi else None,
        )


def _parse_single(text):
    """Parse one constraint atom: ``1.2``, ``1.2:1.4``, ``:1.4``, ``1.2:``, ``:``."""
    text = text.strip()
    if ":" in text:
        cached = _RANGE_POOL.get(text)
        if cached is not None:
            return cached
        lo_s, _, hi_s = text.partition(":")
        lo = Version(lo_s) if lo_s else None
        hi = Version(hi_s) if hi_s else None
        return _RANGE_POOL.put(text, VersionRange(lo, hi))
    return Version(text)


class VersionList:
    """An ordered union of disjoint Versions and VersionRanges.

    This is the type stored on every spec node.  The universal constraint
    (no restriction at all) is ``VersionList(':')``; the empty list is
    unsatisfiable and only appears transiently during intersection.
    """

    def __init__(self, constraints=None):
        self.constraints = []
        if constraints is None:
            return
        if isinstance(constraints, str):
            parsed = _LIST_PARSE_POOL.get(constraints)
            if parsed is not None:
                self.constraints = list(parsed)
                return
            if not constraints.strip():
                raise VersionParseError("Empty version constraint string")
            parts = [p for p in constraints.split(",")]
            for part in parts:
                self.add(_parse_single(part))
            _LIST_PARSE_POOL.put(constraints, tuple(self.constraints))
        elif isinstance(constraints, (Version, VersionRange)):
            self.add(constraints)
        elif isinstance(constraints, VersionList):
            self.constraints = [c for c in constraints.constraints]
        else:
            for item in constraints:
                self.add(ver(item) if isinstance(item, str) else item)

    # -- construction ----------------------------------------------------
    def add(self, constraint):
        """Union a Version/VersionRange/VersionList into this list."""
        if isinstance(constraint, VersionList):
            for c in constraint.constraints:
                self.add(c)
            return
        if not isinstance(constraint, (Version, VersionRange)):
            raise TypeError("Cannot add %r to VersionList" % (constraint,))

        lo, hi = _interval(constraint)
        lo_obj = constraint if isinstance(constraint, Version) else constraint.lo
        hi_obj = constraint if isinstance(constraint, Version) else constraint.hi

        merged = []
        for existing in self.constraints:
            elo, ehi = _interval(existing)
            if ehi < lo or hi < elo:  # disjoint
                merged.append(existing)
                continue
            # overlapping: absorb into the new interval
            if elo < lo:
                lo, lo_obj = elo, existing if isinstance(existing, Version) else existing.lo
            if ehi > hi:
                hi, hi_obj = ehi, existing if isinstance(existing, Version) else existing.hi
        merged.append(_from_interval(lo, hi, lo_obj, hi_obj))
        merged.sort(key=_interval)
        self.constraints = merged

    def copy(self):
        new = VersionList()
        new.constraints = list(self.constraints)
        return new

    # -- queries ----------------------------------------------------------
    @property
    def concrete(self):
        """The single Version in this list, or None if not exactly one."""
        if len(self.constraints) == 1 and isinstance(self.constraints[0], Version):
            return self.constraints[0]
        return None

    def contains_version(self, version):
        """True if the concrete ``version`` falls in this union."""
        if isinstance(version, str):
            version = Version(version)
        return any(
            lo <= version.key <= hi
            for lo, hi in (_interval(c) for c in self.constraints)
        )

    __contains__ = contains_version

    def overlaps(self, other):
        """True if some version could satisfy both lists."""
        other = _as_list(other)
        for a in self.constraints:
            alo, ahi = _interval(a)
            for b in other.constraints:
                blo, bhi = _interval(b)
                if alo <= bhi and blo <= ahi:
                    return True
        return False

    def satisfies(self, other, strict=False):
        """Compatibility (overlap) or, with ``strict``, containment in other."""
        other = _as_list(other)
        if strict:
            return self.intersection(other) == self
        return self.overlaps(other)

    def intersection(self, other):
        """Return a new VersionList: pairwise interval intersection."""
        other = _as_list(other)
        result = VersionList()
        for a in self.constraints:
            alo, ahi = _interval(a)
            a_lo_obj = a if isinstance(a, Version) else a.lo
            a_hi_obj = a if isinstance(a, Version) else a.hi
            for b in other.constraints:
                blo, bhi = _interval(b)
                b_lo_obj = b if isinstance(b, Version) else b.lo
                b_hi_obj = b if isinstance(b, Version) else b.hi
                lo, lo_obj = max((alo, a_lo_obj), (blo, b_lo_obj), key=lambda t: t[0])
                hi, hi_obj = min((ahi, a_hi_obj), (bhi, b_hi_obj), key=lambda t: t[0])
                if lo <= hi:
                    result.add(_from_interval(lo, hi, lo_obj, hi_obj))
        return result

    def intersect(self, other):
        """Intersect in place; return True if this list changed."""
        new = self.intersection(other)
        changed = new != self
        self.constraints = new.constraints
        return changed

    def union(self, other):
        new = self.copy()
        new.add(_as_list(other))
        return new

    def highest(self):
        """Highest point version mentioned: top of the last interval."""
        if not self.constraints:
            return None
        last = self.constraints[-1]
        return last if isinstance(last, Version) else (last.hi or last.lo)

    def lowest(self):
        if not self.constraints:
            return None
        first = self.constraints[0]
        return first if isinstance(first, Version) else (first.lo or first.hi)

    @property
    def universal(self):
        """True if this is the unconstrained list ``:``."""
        return (
            len(self.constraints) == 1
            and isinstance(self.constraints[0], VersionRange)
            and self.constraints[0].lo is None
            and self.constraints[0].hi is None
        )

    # -- dunder ------------------------------------------------------------
    def __eq__(self, other):
        return isinstance(other, VersionList) and [
            _interval(c) for c in self.constraints
        ] == [_interval(c) for c in other.constraints]

    def __ne__(self, other):
        return not self == other

    def __hash__(self):
        return hash(tuple(_interval(c) for c in self.constraints))

    def __len__(self):
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    def __bool__(self):
        return bool(self.constraints)

    def __str__(self):
        return ",".join(str(c) for c in self.constraints)

    def __repr__(self):
        return "VersionList(%r)" % str(self)


def _as_list(obj):
    """Coerce any version constraint (or string) to a VersionList."""
    if isinstance(obj, VersionList):
        return obj
    if isinstance(obj, (Version, VersionRange)):
        return VersionList([obj])
    if isinstance(obj, str):
        return VersionList(obj)
    raise TypeError("Cannot coerce %r to a VersionList" % (obj,))


def ver(obj):
    """Coerce strings/objects into the narrowest version type.

    ``'1.2'`` → Version; ``'1.2:'`` → VersionList of one range... actually:
    strings with ``,`` or ``:`` become a VersionList; plain version strings
    become a Version; existing version objects pass through unchanged.
    """
    if isinstance(obj, (Version, VersionRange, VersionList)):
        return obj
    if isinstance(obj, (int, float)):
        return Version(str(obj))
    if isinstance(obj, str):
        if "," in obj:
            return VersionList(obj)
        if ":" in obj:
            return VersionList(obj)
        return Version(obj)
    if isinstance(obj, (list, tuple)):
        return VersionList(obj)
    raise TypeError("Cannot coerce %r to a version" % (obj,))


def any_version():
    """A fresh universal VersionList (``:``)."""
    return VersionList(":")
