"""Version algebra: points, ranges, and unions thereof (paper §3.2.3).

The spec grammar's ``version-list`` rule allows precise versions
(``@2.5.1``), ranges (``@2.5:4.4``), open ranges (``@2.5:``), and comma
unions (``@1.2,2.0:``).  This package implements the algebra the
concretizer needs over those constraints: membership, overlap,
intersection, union, and subset tests — with the original system's
*prefix family* semantics, where ``1.4.2`` satisfies ``@1.4`` and falls
inside ``@:1.4``.
"""

from repro.version.version import (
    Version,
    VersionList,
    VersionRange,
    VersionParseError,
    any_version,
    ver,
)
from repro.version.url import (
    UndetectableVersionError,
    parse_version_from_url,
    substitute_version,
    wildcard_version_pattern,
)

__all__ = [
    "Version",
    "VersionRange",
    "VersionList",
    "VersionParseError",
    "ver",
    "any_version",
    "parse_version_from_url",
    "substitute_version",
    "wildcard_version_pattern",
    "UndetectableVersionError",
]
