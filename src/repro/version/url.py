"""URL version extrapolation (paper §3.2.3, "Versions").

Packages give one example ``url`` for a known version; when a user asks for
a version the package file does not list, the system extrapolates the
download URL by substituting the new version into the example.  The same
machinery produces a wildcard regex used to *scrape* listing pages for new
versions (``spack checksum``-style behaviour against :mod:`repro.fetch`'s
mock web).
"""

import re

from repro.errors import ReproError
from repro.version.version import Version


class UndetectableVersionError(ReproError):
    """The version could not be located inside the URL."""

    def __init__(self, url):
        super().__init__("Could not detect a version in URL: %s" % url)
        self.url = url


#: Candidate version patterns, most specific first.  Each must expose a
#: single group capturing the version text.
_VERSION_PATTERNS = [
    # version right before an archive suffix: name-1.2.3.tar.gz,
    # v1.0.2.tar.gz, tcl8.6.3-src.tar.gz, libdwarf-20130729.tar.gz,
    # openssl-1.0.1h.tar.gz.  Leftmost-longest via greedy \d+.
    re.compile(r"(\d+(?:\.\d+)*[a-z]?(?:[-_]?(?:rc|alpha|beta)\d*)?)"
               r"(?=[-_.](?:tar|t[gbx]z|tgz|zip|gz|bz2|xz|src))"),
    # /v1.2.3/ or /1.2.3/ path components
    re.compile(r"/v?(\d+(?:\.\d+)+)/"),
    # trailing -1.2.3 before end
    re.compile(r"[-_](\d+(?:\.\d+)+)$"),
    # any dotted number sequence (last resort)
    re.compile(r"(\d+(?:\.\d+)+)"),
]


def parse_version_from_url(url):
    """Extract ``(version, start, end)`` from a download URL.

    Raises :class:`UndetectableVersionError` when nothing version-like is
    present.  When the version occurs several times (common: once in the
    path, once in the file name) the *first* occurrence anchors the span
    and all occurrences are substituted by :func:`substitute_version`.
    """
    for pattern in _VERSION_PATTERNS:
        match = pattern.search(url)
        if match:
            return Version(match.group(1)), match.start(1), match.end(1)
    raise UndetectableVersionError(url)


def substitute_version(url, new_version):
    """Return ``url`` with every occurrence of its version replaced.

    This implements the paper's footnote 2: extrapolation "works for
    packages with consistently named URLs".
    """
    old_version, _, _ = parse_version_from_url(url)
    old = str(old_version)
    new = str(new_version)
    # Replace whole-token occurrences only: not preceded by a digit (or
    # digit-dot) and not followed by a digit (or dot-digit), so 1.2 does
    # not match inside 11.22 or 1.2.3, but does match before ".tar.gz".
    token = re.compile(r"(?<!\d)(?<!\d\.)%s(?!\.?\d)" % re.escape(old))
    result = token.sub(new, url)
    if result == url and old != new:
        raise UndetectableVersionError(url)
    return result


def wildcard_version_pattern(url):
    """A regex matching sibling URLs of ``url`` with any version.

    The returned pattern has one group capturing the version.  Used to
    scrape listing pages for available versions.
    """
    old_version, _, _ = parse_version_from_url(url)
    old = str(old_version)
    escaped = re.escape(url)
    token = re.compile(r"(?<![0-9.])%s(?![0-9.])" % re.escape(re.escape(old)))
    # First occurrence becomes the capture group; later ones backreference it.
    count = [0]

    def _sub(_match):
        count[0] += 1
        return r"(\d+(?:\.\d+)*[a-z]?)" if count[0] == 1 else r"\1"

    pattern = token.sub(_sub, escaped)
    if count[0] == 0:
        raise UndetectableVersionError(url)
    return re.compile(pattern)
