"""Session-wide telemetry: spans, counters, and event streams.

The observability layer the original tool grew over years of production
use at LLNL, reproduced in miniature: every ``Session`` owns a
:class:`~repro.telemetry.hub.Telemetry` hub; concretization, fetching,
staging, building, the database, and module generation emit through it;
pluggable sinks decide what happens to the records (collect, stream as
JSONL, pretty-print).  With no sinks attached the whole layer costs one
attribute check per call site.

See ``docs/observability.md`` for the event taxonomy and sink API.
"""

from repro.telemetry.analysis import SpanNode, TraceAnalysis
from repro.telemetry.hub import (
    NULL_SPAN,
    Histogram,
    NullSpan,
    Span,
    Telemetry,
    TraceContext,
)
from repro.telemetry.metrics import bench_report, prometheus_text
from repro.telemetry.sinks import JSONLSink, MemorySink, Sink, TreeSink

__all__ = [
    "Telemetry",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "TraceContext",
    "Histogram",
    "Sink",
    "MemorySink",
    "JSONLSink",
    "TreeSink",
    "TraceAnalysis",
    "SpanNode",
    "bench_report",
    "prometheus_text",
]
