"""Session-wide telemetry: spans, counters, and event streams.

The observability layer the original tool grew over years of production
use at LLNL, reproduced in miniature: every ``Session`` owns a
:class:`~repro.telemetry.hub.Telemetry` hub; concretization, fetching,
staging, building, the database, and module generation emit through it;
pluggable sinks decide what happens to the records (collect, stream as
JSONL, pretty-print).  With no sinks attached the whole layer costs one
attribute check per call site.

See ``docs/observability.md`` for the event taxonomy and sink API.
"""

from repro.telemetry.hub import NULL_SPAN, Histogram, NullSpan, Span, Telemetry
from repro.telemetry.sinks import JSONLSink, MemorySink, Sink, TreeSink

__all__ = [
    "Telemetry",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "Histogram",
    "Sink",
    "MemorySink",
    "JSONLSink",
    "TreeSink",
]
