"""Trace analysis: reconstruct span trees and explain where time went.

The hub streams flat records (:mod:`repro.telemetry.sinks`); this module
turns any record list — a ``MemorySink.records``, a parsed
``--telemetry-log`` JSONL file — back into the original forest of span
trees and computes the operational summaries the ``repro-spack diag``
CLI renders:

* **critical path** — the chain of spans that actually bounded the wall
  clock of a trace, via last-finishing-child decomposition (the chain a
  ``-j N`` install could not have run any faster without shortening);
* **self-time rollups** — per span-name totals with *self* time
  (duration minus child durations), so "install.phase.build dominates"
  is one table away;
* **concurrency utilization** — busy-workers-over-time reconstructed
  from overlapping span intervals (did ``-j 4`` actually keep four
  workers busy?);
* **cache effectiveness** — buildcache / concretization-cache hit
  ratios with time-saved attribution, from the stream's
  ``telemetry.summary`` counters and the measured span durations.

Everything here is read-only over plain dicts: no hub, no session, no
clock — analysis of a trace is reproducible from its bytes.
"""

import json


#: seconds of timestamp slack tolerated when chaining sibling intervals
#: (span-start/span-end wall timestamps come from separate time.time()
#: calls and may jitter a few microseconds against each other)
EPSILON = 1e-6


class SpanNode:
    """One reconstructed span: identity, interval, attrs, children."""

    __slots__ = (
        "span_id", "parent_id", "trace_id", "name", "attrs",
        "start_ts", "end_ts", "duration_s", "error", "children",
    )

    def __init__(self, span_id, name, parent_id=None, trace_id=None):
        self.span_id = span_id
        self.name = name
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.attrs = {}
        self.start_ts = None
        self.end_ts = None
        self.duration_s = None
        self.error = None
        self.children = []

    @property
    def finished(self):
        return self.duration_s is not None

    @property
    def self_time_s(self):
        """Duration not covered by (finished) children."""
        if self.duration_s is None:
            return 0.0
        child_total = sum(
            c.duration_s for c in self.children if c.duration_s is not None
        )
        return max(0.0, self.duration_s - child_total)

    def walk(self):
        """This node and every descendant, depth-first, children in
        start order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def label(self):
        """``name [package]`` when the span carries package context."""
        pkg = self.attrs.get("package") or self.attrs.get("spec")
        return "%s [%s]" % (self.name, pkg) if pkg else self.name

    def __repr__(self):
        return "SpanNode(%r, id=%s, %d children)" % (
            self.name, self.span_id, len(self.children),
        )


class TraceAnalysis:
    """A reconstructed forest of span trees plus derived summaries."""

    def __init__(self, records):
        self.records = list(records)
        self.spans = {}     # span_id -> SpanNode
        self.roots = []     # spans with no parent, in start order
        self.orphans = []   # spans whose parent id never appeared
        self.events = []    # plain event records
        self.summary = None  # attrs of the last telemetry.summary event
        self._build()

    # -- construction ------------------------------------------------------
    @classmethod
    def from_jsonl(cls, path):
        """Analyze a ``--telemetry-log`` capture."""
        records = []
        with open(path) as f:
            for line in f:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return cls(records)

    def _build(self):
        for record in self.records:
            kind = record.get("event")
            if kind == "span-start":
                node = self.spans.get(record["span"])
                if node is None:
                    node = SpanNode(record["span"], record["name"])
                    self.spans[node.span_id] = node
                node.name = record["name"]
                node.parent_id = record.get("parent")
                node.trace_id = record.get("trace")
                node.start_ts = record.get("ts")
                node.attrs.update(record.get("attrs") or {})
            elif kind == "span-end":
                node = self.spans.get(record["span"])
                if node is None:  # end without start (truncated log head)
                    node = SpanNode(record["span"], record["name"])
                    node.parent_id = record.get("parent")
                    node.trace_id = record.get("trace")
                    self.spans[node.span_id] = node
                node.end_ts = record.get("ts")
                node.duration_s = record.get("duration_s")
                node.error = record.get("error")
                node.attrs.update(record.get("attrs") or {})
                if node.start_ts is None and node.end_ts is not None:
                    node.start_ts = node.end_ts - (node.duration_s or 0.0)
            elif kind == "event":
                self.events.append(record)
                if record.get("name") == "telemetry.summary":
                    self.summary = record.get("attrs") or {}
        # link children (start order keeps rendering deterministic)
        for node in self.spans.values():
            if node.parent_id is None:
                self.roots.append(node)
            else:
                parent = self.spans.get(node.parent_id)
                if parent is None:
                    self.orphans.append(node)
                else:
                    parent.children.append(node)
        ordering = lambda n: (  # noqa: E731 — local sort key
            n.start_ts if n.start_ts is not None else float("inf"),
            n.span_id,
        )
        self.roots.sort(key=ordering)
        self.orphans.sort(key=ordering)
        for node in self.spans.values():
            node.children.sort(key=ordering)

    # -- trace grouping ----------------------------------------------------
    def traces(self):
        """{trace_id: [root spans]} — one entry per trace in the stream.

        Pre-trace-context logs (no ``trace`` field) group under None.
        """
        by_trace = {}
        for root in self.roots:
            by_trace.setdefault(root.trace_id, []).append(root)
        # an orphan is still part of *some* trace; surface it there so
        # single-rootedness checks see it
        for orphan in self.orphans:
            by_trace.setdefault(orphan.trace_id, []).append(orphan)
        return by_trace

    def trace_root(self, name=None):
        """The root of the (single) trace of interest: the first root
        named ``name``, or the root owning the most spans when no name
        is given.  None when the stream has no finished root."""
        candidates = [r for r in self.roots if r.finished]
        if name is not None:
            candidates = [r for r in candidates if r.name == name]
        if not candidates:
            return None
        if name is not None:
            return candidates[0]
        return max(candidates, key=lambda r: sum(1 for _ in r.walk()))

    # -- critical path -----------------------------------------------------
    def critical_path(self, root=None):
        """The spans bounding ``root``'s wall clock, chronologically.

        Last-finishing-child decomposition: walking back from a span's
        end, the child that finished last was what the span was waiting
        on; before that child *started*, the previous last-finisher was;
        and so on.  Each chain element recursively contributes its own
        critical children.  The result always starts with the root; a
        parent precedes its children.
        """
        if root is None:
            root = self.trace_root()
        if root is None:
            return []
        path = []
        self._critical_visit(root, path)
        return path

    def _critical_visit(self, span, path):
        path.append(span)
        kids = [
            c for c in span.children
            if c.finished and c.start_ts is not None and c.end_ts is not None
        ]
        chain = []
        bound = span.end_ts if span.end_ts is not None else float("inf")
        while True:
            candidates = [c for c in kids if c.end_ts <= bound + EPSILON]
            if not candidates:
                break
            last = max(candidates, key=lambda c: (c.end_ts, c.span_id))
            chain.append(last)
            bound = last.start_ts
        for link in reversed(chain):  # chronological order
            self._critical_visit(link, path)

    def critical_path_seconds(self, root=None, path=None):
        """Self time summed along the critical path: the trace's wall
        clock minus any idle gaps the chain could not cover."""
        if path is None:
            path = self.critical_path(root)
        on_path = {s.span_id for s in path}
        total = 0.0
        for span in path:
            if span.duration_s is None:
                continue
            covered = sum(
                c.duration_s
                for c in span.children
                if c.span_id in on_path and c.duration_s is not None
            )
            total += max(0.0, span.duration_s - covered)
        return total

    # -- rollups -----------------------------------------------------------
    def self_time_rollup(self):
        """Per span-name totals over every finished span in the stream.

        Returns ``{name: {"count", "total_s", "self_s", "min_s",
        "max_s"}}`` — ``self_s`` is time not covered by child spans, so
        the column sums to wall clock instead of double-counting nested
        phases.
        """
        rollup = {}
        for node in self.spans.values():
            if not node.finished:
                continue
            row = rollup.setdefault(
                node.name,
                {"count": 0, "total_s": 0.0, "self_s": 0.0,
                 "min_s": None, "max_s": None},
            )
            row["count"] += 1
            row["total_s"] += node.duration_s
            row["self_s"] += node.self_time_s
            row["min_s"] = (
                node.duration_s if row["min_s"] is None
                else min(row["min_s"], node.duration_s)
            )
            row["max_s"] = (
                node.duration_s if row["max_s"] is None
                else max(row["max_s"], node.duration_s)
            )
        return rollup

    # -- concurrency -------------------------------------------------------
    def concurrency(self, names=("install.node", "install.cached")):
        """Busy-workers-over-time from overlapping span intervals.

        ``names``: span names counted as "a busy worker" (the two
        executor entry points by default).  Returns max/average
        concurrency, total busy seconds, the spanned window, and
        utilization (busy / (window * max)) — the fraction of the
        observed worker pool that was actually working.
        """
        names = set(names)
        intervals = [
            (s.start_ts, s.end_ts)
            for s in self.spans.values()
            if s.name in names and s.start_ts is not None and s.end_ts is not None
        ]
        if not intervals:
            return {
                "spans": 0, "max_concurrency": 0, "avg_concurrency": 0.0,
                "busy_seconds": 0.0, "window_seconds": 0.0, "utilization": 0.0,
            }
        edges = []
        for start, end in intervals:
            edges.append((start, 1))
            edges.append((end, -1))
        edges.sort()
        window_start, window_end = edges[0][0], edges[-1][0]
        busy = sum(end - start for start, end in intervals)
        level = 0
        max_level = 0
        prev_ts = window_start
        weighted = 0.0  # integral of concurrency over time
        for ts, delta in edges:
            weighted += level * (ts - prev_ts)
            level += delta
            max_level = max(max_level, level)
            prev_ts = ts
        window = max(window_end - window_start, 0.0)
        avg = weighted / window if window > 0 else 0.0
        return {
            "spans": len(intervals),
            "max_concurrency": max_level,
            "avg_concurrency": avg,
            "busy_seconds": busy,
            "window_seconds": window,
            "utilization": (
                busy / (window * max_level) if window > 0 and max_level else 0.0
            ),
        }

    # -- cache effectiveness -----------------------------------------------
    def cache_effectiveness(self):
        """Hit ratios and time-saved attribution for both caches.

        Counters come from the stream's ``telemetry.summary`` (or are 0
        when the log ended before one); time-saved is attributed from
        measured span durations: every ``install.cached`` node saved
        (mean source-build node time − its own time), every
        concretization-cache hit saved roughly one mean cold
        concretization.
        """
        counters = (self.summary or {}).get("counters", {})

        def ratio(hit, miss):
            total = hit + miss
            return hit / total if total else None

        built = [
            s.duration_s for s in self.spans.values()
            if s.name == "install.node" and s.finished
        ]
        cached = [
            s.duration_s for s in self.spans.values()
            if s.name == "install.cached" and s.finished
        ]
        mean_build = sum(built) / len(built) if built else None
        mean_cached = sum(cached) / len(cached) if cached else None
        bc_saved = None
        if cached and mean_build is not None:
            bc_saved = sum(max(0.0, mean_build - d) for d in cached)

        conc_cold = [
            s.duration_s for s in self.spans.values()
            if s.name == "concretize" and s.finished
        ]
        conc_hits = counters.get("concretize.cache.hit", 0)
        conc_misses = counters.get("concretize.cache.miss", 0)
        conc_saved = None
        if conc_hits and conc_cold:
            conc_saved = conc_hits * (sum(conc_cold) / len(conc_cold))

        return {
            "buildcache": {
                "hits": counters.get("buildcache.hit", 0),
                "misses": counters.get("buildcache.miss", 0),
                "hit_ratio": ratio(
                    counters.get("buildcache.hit", 0),
                    counters.get("buildcache.miss", 0),
                ),
                "nodes_from_cache": len(cached),
                "mean_build_s": mean_build,
                "mean_cached_s": mean_cached,
                "time_saved_s": bc_saved,
            },
            "concretize_cache": {
                "hits": conc_hits,
                "misses": conc_misses,
                "invalidations": counters.get("concretize.cache.invalidate", 0),
                "hit_ratio": ratio(conc_hits, conc_misses),
                "mean_cold_s": (
                    sum(conc_cold) / len(conc_cold) if conc_cold else None
                ),
                "time_saved_s": conc_saved,
            },
        }

    # -- rendering ---------------------------------------------------------
    def render_tree(self, stream, root=None, highlight_critical=True,
                    min_duration_s=0.0):
        """Print an indented tree (one line per span, parents first),
        the critical path marked with ``*``.  Returns the critical path
        so callers can report its length without recomputing."""
        roots = [root] if root is not None else self.roots
        critical = set()
        path = []
        if highlight_critical:
            path = self.critical_path(root)
            critical = {s.span_id for s in path}
        for top in roots:
            self._render_node(stream, top, 0, critical, min_duration_s)
        return path

    def _render_node(self, stream, node, depth, critical, min_duration_s):
        if node.finished and node.duration_s < min_duration_s:
            return
        marker = "*" if node.span_id in critical else " "
        duration = (
            "%10.1f ms" % (node.duration_s * 1000.0)
            if node.finished else "   (unfinished)"
        )
        error = "  ERROR:%s" % node.error if node.error else ""
        stream.write(
            "%s %s%-*s %s%s\n"
            % (marker, "  " * depth, max(1, 46 - 2 * depth),
               node.label(), duration, error)
        )
        for child in node.children:
            self._render_node(stream, child, depth + 1, critical, min_duration_s)
