"""Telemetry sinks: where the hub's records go.

A sink is anything with ``emit(record)`` (and optionally ``close()``).
Records are plain JSON-serializable dicts — see ``docs/observability.md``
for the exact taxonomy.  Three sinks ship:

* :class:`MemorySink` — keeps records in a list; the test/benchmark sink.
* :class:`JSONLSink` — one JSON object per line; the machine-readable
  stream behind ``repro --telemetry-log FILE``.
* :class:`TreeSink` — human-readable indented tree of spans as they
  close, for watching a long install breathe.
"""

import json


class Sink:
    """Interface: receive every record the hub emits."""

    def emit(self, record):
        raise NotImplementedError

    def close(self):
        """Flush/release resources; hubs never call this — owners do."""


class MemorySink(Sink):
    """Collects records in memory; convenience filters for tests."""

    def __init__(self):
        self.records = []

    def emit(self, record):
        self.records.append(record)

    def spans(self, name=None):
        """Completed spans (span-end records), optionally by name."""
        return [
            r
            for r in self.records
            if r["event"] == "span-end" and (name is None or r["name"] == name)
        ]

    def events(self, name=None):
        return [
            r
            for r in self.records
            if r["event"] == "event" and (name is None or r["name"] == name)
        ]

    def clear(self):
        self.records = []

    def __len__(self):
        return len(self.records)


class JSONLSink(Sink):
    """Append records to a file (or stream), one JSON object per line.

    Accepts a path (opened in append mode, closed by :meth:`close`) or an
    open file-like object (left open — the caller owns it).  By default
    every record is flushed immediately so a crashed process leaves a
    readable log; pass ``flush_on_emit=False`` for hot loops (a -j N
    install streaming thousands of spans) to let the OS buffer —
    :meth:`close` always flushes whatever is pending.

    Usable as a context manager: ``with JSONLSink(path) as sink: ...``
    guarantees the clean close either way.
    """

    def __init__(self, path_or_stream, flush_on_emit=True):
        if hasattr(path_or_stream, "write"):
            self._stream = path_or_stream
            self._owns = False
            self.path = getattr(path_or_stream, "name", None)
        else:
            self._stream = open(path_or_stream, "a")
            self._owns = True
            self.path = path_or_stream
        self.flush_on_emit = flush_on_emit

    def emit(self, record):
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        if self.flush_on_emit:
            self._stream.flush()

    def close(self):
        if self._stream.closed:
            return
        if self._owns:
            self._stream.close()
        elif not self.flush_on_emit:
            self._stream.flush()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    @staticmethod
    def read(path):
        """Parse a JSONL log back into the list of record dicts."""
        records = []
        with open(path) as f:
            for line in f:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records


class TreeSink(Sink):
    """Print an indented line per completed span (children first, the
    ``pytest --durations`` convention — a span's duration is only known
    when it closes)."""

    def __init__(self, stream=None, min_duration_s=0.0, show_events=False):
        import sys

        self.stream = stream if stream is not None else sys.stdout
        self.min_duration_s = min_duration_s
        self.show_events = show_events
        self._depth = {}  # span id -> depth, learned from span-start

    def emit(self, record):
        kind = record["event"]
        if kind == "span-start":
            parent = record.get("parent")
            self._depth[record["span"]] = (
                self._depth.get(parent, -1) + 1 if parent is not None else 0
            )
            return
        indent = "  " * self._depth.get(record.get("span"), 0)
        if kind == "span-end":
            if record["duration_s"] < self.min_duration_s:
                return
            attrs = self._format_attrs(record["attrs"])
            self.stream.write(
                "%s%-30s %8.1f ms%s\n"
                % (indent, record["name"], record["duration_s"] * 1000.0, attrs)
            )
        elif kind == "event" and self.show_events:
            attrs = self._format_attrs(record["attrs"])
            self.stream.write("%s* %s%s\n" % (indent, record["name"], attrs))

    @staticmethod
    def _format_attrs(attrs):
        if not attrs:
            return ""
        return "  (%s)" % ", ".join("%s=%s" % kv for kv in sorted(attrs.items()))
