"""Benchmark comparison: direction-aware regression detection.

:func:`compare_reports` takes two benchmark result files — a committed
baseline and a fresh run — and classifies every shared metric as
``ok`` / ``improved`` / ``regression`` under a relative tolerance.  It
is the engine behind ``repro-spack diag compare`` and the CI gate
(``benchmarks/check_regression.py``).

The subtlety a naive percent-diff misses is **direction**: for
``wall_seconds`` up is bad, for ``speedup_j4`` *down* is bad.
:func:`higher_is_better` encodes the convention used across
``benchmarks/results/``; per-key tolerance overrides handle the fact
that wall-clock seconds on shared CI runners jitter far more than
counters do.

Loading is tolerant: files on the ``repro-bench/v1`` schema (see
:mod:`repro.telemetry.metrics`) are read as-is, legacy flat/nested JSON
is flattened to dotted numeric keys — so the gate kept working across
the schema migration and old artifacts stay diffable.
"""

import fnmatch
import json
import os

from repro.telemetry.metrics import BENCH_SCHEMA, flatten_metrics

#: default relative tolerance: >20% in the bad direction is a regression
DEFAULT_TOLERANCE = 0.20

#: key fragments marking metrics where *larger* is the good direction
_HIGHER_BETTER = ("speedup", "hit_ratio", "throughput", "utilization",
                  "hits", "ops_per_s")

#: key fragments forcing lower-is-better even when a higher-better
#: fragment also matches (checked first)
_LOWER_BETTER = ("seconds", "_s", "wall", "overhead", "misses", "drops",
                 "divergences", "spans", "duration")


def higher_is_better(key):
    """True when an increase in ``key`` is an improvement."""
    low = key.lower()
    for fragment in _LOWER_BETTER:
        if fragment in low:
            return False
    for fragment in _HIGHER_BETTER:
        if fragment in low:
            return True
    return False  # unknown metrics default to lower-is-better


def load_report(path):
    """Read one result file into ``{"bench", "schema", "metrics", "meta"}``.

    ``repro-bench/v1`` files pass through; anything else (legacy flat or
    nested JSON) gets its numeric leaves flattened to dotted keys and a
    bench name derived from the filename (``BENCH_buildcache.json`` ->
    ``buildcache``).
    """
    with open(path) as f:
        data = json.load(f)
    if isinstance(data, dict) and data.get("schema") == BENCH_SCHEMA:
        return {
            "schema": BENCH_SCHEMA,
            "bench": data.get("bench"),
            "metrics": dict(data.get("metrics", {})),
            "meta": dict(data.get("meta", {})),
        }
    stem = os.path.splitext(os.path.basename(path))[0]
    if stem.startswith("BENCH_"):
        stem = stem[len("BENCH_"):]
    return {
        "schema": "legacy",
        "bench": stem,
        "metrics": flatten_metrics(data),
        "meta": {},
    }


def tolerance_for(key, default=DEFAULT_TOLERANCE, overrides=None):
    """The relative tolerance for ``key``: the first matching
    ``(glob_pattern, tolerance)`` override wins, else ``default``."""
    for pattern, tol in overrides or ():
        if fnmatch.fnmatch(key, pattern):
            return tol
    return default


def compare_reports(baseline, current, tolerance=DEFAULT_TOLERANCE,
                    overrides=None):
    """Compare two loaded reports; return rows plus a verdict.

    Every key present in both is classified:

    * ``regression`` — moved more than its tolerance in the bad
      direction (or appeared from a zero baseline in a lower-is-better
      key: 0 build spans becoming 1 is a broken cache, not 100% noise);
    * ``improved`` — moved more than its tolerance in the good direction;
    * ``ok`` — within tolerance.

    Keys only in one file are reported as ``added``/``removed`` (never
    fatal: schema growth is normal).  Changed ``meta`` values are
    reported as ``config-changed`` — the comparison is still performed,
    but the caller knows the experiment differs.
    """
    rows = []
    base_metrics = baseline["metrics"]
    cur_metrics = current["metrics"]

    for key in sorted(set(base_metrics) | set(cur_metrics)):
        if key not in base_metrics:
            rows.append({"key": key, "status": "added",
                         "baseline": None, "current": cur_metrics[key]})
            continue
        if key not in cur_metrics:
            rows.append({"key": key, "status": "removed",
                         "baseline": base_metrics[key], "current": None})
            continue
        old = float(base_metrics[key])
        new = float(cur_metrics[key])
        tol = tolerance_for(key, tolerance, overrides)
        up_good = higher_is_better(key)
        row = {
            "key": key,
            "baseline": old,
            "current": new,
            "tolerance": tol,
            "direction": "higher-better" if up_good else "lower-better",
        }
        if old == 0.0:
            # no scale for a relative delta: any appearance in the bad
            # direction is a regression, the rest is ok
            row["delta_pct"] = None
            if not up_good and new > 0.0:
                row["status"] = "regression"
            elif up_good and new < 0.0:
                row["status"] = "regression"
            else:
                row["status"] = "ok"
        else:
            delta = (new - old) / abs(old)
            row["delta_pct"] = delta * 100.0
            bad = -delta if up_good else delta
            if bad > tol:
                row["status"] = "regression"
            elif bad < -tol:
                row["status"] = "improved"
            else:
                row["status"] = "ok"
        rows.append(row)

    for key in sorted(set(baseline.get("meta", {})) | set(current.get("meta", {}))):
        old = baseline.get("meta", {}).get(key)
        new = current.get("meta", {}).get(key)
        if old != new:
            rows.append({"key": "meta.%s" % key, "status": "config-changed",
                         "baseline": old, "current": new})

    regressions = [r for r in rows if r["status"] == "regression"]
    return {
        "bench": current.get("bench") or baseline.get("bench"),
        "rows": rows,
        "regressions": [r["key"] for r in regressions],
        "ok": not regressions,
    }


def format_comparison(report, verbose=False):
    """Human-readable comparison table (the ``diag compare`` output)."""
    lines = []
    header = "benchmark: %s — %s" % (
        report["bench"] or "(unnamed)",
        "OK" if report["ok"]
        else "%d REGRESSION(S)" % len(report["regressions"]),
    )
    lines.append(header)
    lines.append("%-12s %-44s %14s %14s %9s" % (
        "status", "metric", "baseline", "current", "delta",
    ))
    for row in report["rows"]:
        if not verbose and row["status"] == "ok":
            continue
        delta = row.get("delta_pct")
        delta_text = "%+8.1f%%" % delta if delta is not None else "        -"
        lines.append("%-12s %-44s %14s %14s %s" % (
            row["status"].upper() if row["status"] == "regression"
            else row["status"],
            row["key"],
            _fmt(row["baseline"]),
            _fmt(row["current"]),
            delta_text,
        ))
    shown = len([r for r in report["rows"]
                 if verbose or r["status"] != "ok"])
    if shown == 0:
        lines.append("  (all %d metrics within tolerance)" % len(report["rows"]))
    return "\n".join(lines) + "\n"


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return "%.4f" % value
    if isinstance(value, (int, float)):
        return "%g" % value
    return str(value)
