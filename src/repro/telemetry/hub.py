"""The telemetry hub: spans, counters, histograms — per Session.

One :class:`Telemetry` instance hangs off each ``Session`` (DESIGN.md §5:
no global state — two sessions in one process never share a hub).
Instrumented code asks the hub for :meth:`~Telemetry.span` context
managers around units of work (concretize, fetch, a build phase),
:meth:`~Telemetry.event` for point-in-time facts, and
:meth:`~Telemetry.count`/:meth:`~Telemetry.observe` for aggregates.

**The disabled path is free.**  With no sinks attached every entry point
early-outs before allocating anything: ``span()`` returns a shared
singleton null span, ``event()``/``count()``/``observe()`` return
immediately.  Instrumentation can therefore stay unconditionally in hot
paths (the overhead budget is checked by
``benchmarks/bench_telemetry_overhead.py``).

Span records carry monotonically-timed durations (``time.perf_counter``)
plus wall-clock timestamps, and integer span/parent IDs so a JSONL
stream can be reassembled into the original tree.  The current-span
stack is thread-local: concurrent sessions or threads each see their own
nesting.
"""

import itertools
import threading
import time


class NullSpan:
    """The shared do-nothing span the disabled path hands out."""

    __slots__ = ()

    span_id = None
    parent_id = None
    name = None
    duration_s = 0.0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        return self

    def event(self, name, **attrs):
        return self


#: singleton: ``span()`` with no sinks returns this, allocating nothing
NULL_SPAN = NullSpan()


class Span:
    """One timed, attributed unit of work; usable as a context manager."""

    __slots__ = ("hub", "name", "attrs", "span_id", "parent_id", "_start", "duration_s")

    def __init__(self, hub, name, attrs):
        self.hub = hub
        self.name = name
        self.attrs = attrs
        self.span_id = None
        self.parent_id = None
        self._start = None
        self.duration_s = None

    def set(self, **attrs):
        """Attach attributes mid-span; they ride on the span-end record."""
        self.attrs.update(attrs)
        return self

    def event(self, name, **attrs):
        """Emit a point event parented to this span."""
        self.hub._emit(
            {
                "event": "event",
                "name": name,
                "span": self.span_id,
                "ts": time.time(),
                "attrs": attrs,
            }
        )
        return self

    def __enter__(self):
        stack = self.hub._stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.span_id = next(self.hub._ids)
        self._start = time.perf_counter()
        stack.append(self)
        self.hub._emit(
            {
                "event": "span-start",
                "name": self.name,
                "span": self.span_id,
                "parent": self.parent_id,
                "ts": time.time(),
                "attrs": dict(self.attrs),
            }
        )
        return self

    def __exit__(self, exc_type, exc, tb):
        self.duration_s = time.perf_counter() - self._start
        stack = self.hub._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # unbalanced exit (generator GC'd mid-span): drop by identity
            try:
                stack.remove(self)
            except ValueError:
                pass
        record = {
            "event": "span-end",
            "name": self.name,
            "span": self.span_id,
            "parent": self.parent_id,
            "ts": time.time(),
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self.hub._emit(record)
        self.hub.observe(self.name, self.duration_s)
        return False

    def __repr__(self):
        return "Span(%r, id=%s, parent=%s)" % (self.name, self.span_id, self.parent_id)


class Histogram:
    """Streaming aggregate of observed values (no samples retained)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def add(self, value):
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def to_dict(self):
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self):
        return "Histogram(n=%d, mean=%g)" % (self.count, self.mean)


class Telemetry:
    """A session's telemetry hub; see the module docstring."""

    def __init__(self):
        self._sinks = []
        self.counters = {}
        self.histograms = {}
        self.gauges = {}
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- sinks ------------------------------------------------------------
    @property
    def enabled(self):
        """True when at least one sink is attached (anything can emit)."""
        return bool(self._sinks)

    def add_sink(self, sink):
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink):
        if sink in self._sinks:
            self._sinks.remove(sink)
        return sink

    # -- emission ---------------------------------------------------------
    def span(self, name, **attrs):
        """A context manager timing one unit of work.

        Free when disabled: no sinks means the shared :data:`NULL_SPAN`
        comes back before ``attrs`` dicts or Span objects are created.
        """
        if not self._sinks:
            return NULL_SPAN
        return Span(self, name, attrs)

    def event(self, name, **attrs):
        """A point-in-time event, parented to the current span if any."""
        if not self._sinks:
            return
        stack = self._stack()
        self._emit(
            {
                "event": "event",
                "name": name,
                "span": stack[-1].span_id if stack else None,
                "ts": time.time(),
                "attrs": attrs,
            }
        )

    def count(self, name, n=1):
        """Bump a counter (aggregate only — no per-increment records)."""
        if not self._sinks:
            return
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name, value):
        """Feed one value into the named histogram."""
        if not self._sinks:
            return
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.add(value)

    def adopt(self, span):
        """Parent this *thread's* subsequent spans to an existing span.

        Cross-thread propagation for worker pools: the span stack is
        thread-local, so a span opened on a worker thread has no parent
        unless the dispatching thread's span is adopted first.  Accepts
        (and ignores) ``None`` and the null span.
        """
        import contextlib

        @contextlib.contextmanager
        def _adopted():
            if span is None or span.span_id is None:
                yield
                return
            stack = self._stack()
            stack.append(span)
            try:
                yield
            finally:
                if stack and stack[-1] is span:
                    stack.pop()
                else:
                    try:
                        stack.remove(span)
                    except ValueError:
                        pass

        return _adopted()

    def gauge(self, name, value):
        """Record the current value of a fluctuating quantity.

        The latest value is kept (``gauges[name]``) and every sample is
        folded into a same-named histogram, so min/max/mean of e.g.
        ``scheduler.queue_depth`` come for free.
        """
        if not self._sinks:
            return
        self.gauges[name] = value
        self.observe(name, value)

    # -- inspection -------------------------------------------------------
    def counter(self, name):
        return self.counters.get(name, 0)

    def gauge_value(self, name, default=None):
        return self.gauges.get(name, default)

    def current_span(self):
        stack = self._stack()
        return stack[-1] if stack else None

    def snapshot(self):
        """Counters + histogram aggregates, JSON-serializable."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.to_dict() for k, h in self.histograms.items()},
        }

    def emit_summary(self):
        """Emit the aggregate snapshot as a final ``telemetry.summary``
        event (e.g. last line of a JSONL log)."""
        self.event("telemetry.summary", **self.snapshot())

    # -- internals --------------------------------------------------------
    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _emit(self, record):
        for sink in self._sinks:
            sink.emit(record)

    def __repr__(self):
        return "Telemetry(%d sinks, %d counters)" % (
            len(self._sinks),
            len(self.counters),
        )
