"""The telemetry hub: traces, spans, counters, histograms — per Session.

One :class:`Telemetry` instance hangs off each ``Session`` (DESIGN.md §5:
no global state — two sessions in one process never share a hub).
Instrumented code asks the hub for :meth:`~Telemetry.span` context
managers around units of work (concretize, fetch, a build phase),
:meth:`~Telemetry.event` for point-in-time facts, and
:meth:`~Telemetry.count`/:meth:`~Telemetry.observe` for aggregates.

**The disabled path is free.**  With no sinks attached every entry point
early-outs before allocating anything: ``span()`` returns a shared
singleton null span, ``event()``/``count()``/``observe()`` return
immediately.  Instrumentation can therefore stay unconditionally in hot
paths (the overhead budget is checked by
``benchmarks/bench_telemetry_overhead.py``).

**Trace contexts.**  Every *root* span (one opened with no enclosing
span on its thread) starts a new trace and is assigned a fresh
``trace_id``; descendants inherit it, so one ``Session`` operation —
a concretize, an install — is one trace.  The current-span stack is
thread-local; cross-thread propagation (the install scheduler's worker
pool) goes through :meth:`~Telemetry.capture`, which snapshots the
calling thread's position as a :class:`TraceContext`, and
:meth:`~Telemetry.adopt`, which parents another thread's spans to it.
A ``-j 4`` install therefore yields one coherent, single-rooted trace
tree instead of orphaned per-thread spans
(:mod:`repro.telemetry.analysis` reconstructs and analyzes it).

**Telemetry never changes outcomes.**  A sink that raises mid-emit (a
full disk, a closed stream, or the ``telemetry.trace.drop`` fault site)
has its record dropped and counted on :attr:`Telemetry.drops` — the
exception is never allowed back into the instrumented operation.

Span records carry monotonically-timed durations (``time.perf_counter``)
plus wall-clock timestamps, and integer trace/span/parent IDs so a JSONL
stream can be reassembled into the original forest of trees.
Aggregates (counters, gauges, histograms) are guarded by one lock so
:meth:`~Telemetry.snapshot` is safe while worker threads keep emitting.
"""

import itertools
import random
import threading
import time

#: how many raw samples a Histogram retains for percentile estimates
#: (reservoir sampling: bounded memory however many values stream in)
RESERVOIR_SIZE = 512

#: percentiles exposed by ``Histogram.to_dict()``
PERCENTILES = (50, 95, 99)


class NullSpan:
    """The shared do-nothing span the disabled path hands out."""

    __slots__ = ()

    span_id = None
    parent_id = None
    trace_id = None
    name = None
    duration_s = 0.0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        return self

    def event(self, name, **attrs):
        return self


#: singleton: ``span()`` with no sinks returns this, allocating nothing
NULL_SPAN = NullSpan()


class TraceContext:
    """A portable snapshot of "where am I in the trace tree".

    Carries just the two IDs a child span needs — the trace it belongs
    to and the span it should parent to — so it can cross thread (or,
    serialized, process) boundaries.  :meth:`Telemetry.capture` makes
    one; :meth:`Telemetry.adopt` installs it on another thread.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id, span_id):
        self.trace_id = trace_id
        self.span_id = span_id

    def to_dict(self):
        return {"trace": self.trace_id, "span": self.span_id}

    @classmethod
    def from_dict(cls, data):
        return cls(data.get("trace"), data.get("span"))

    def __repr__(self):
        return "TraceContext(trace=%s, span=%s)" % (self.trace_id, self.span_id)


class Span:
    """One timed, attributed unit of work; usable as a context manager."""

    __slots__ = (
        "hub", "name", "attrs", "span_id", "parent_id", "trace_id",
        "_start", "duration_s",
    )

    def __init__(self, hub, name, attrs):
        self.hub = hub
        self.name = name
        self.attrs = attrs
        self.span_id = None
        self.parent_id = None
        self.trace_id = None
        self._start = None
        self.duration_s = None

    def set(self, **attrs):
        """Attach attributes mid-span; they ride on the span-end record."""
        self.attrs.update(attrs)
        return self

    def event(self, name, **attrs):
        """Emit a point event parented to this span."""
        self.hub._emit(
            {
                "event": "event",
                "name": name,
                "span": self.span_id,
                "trace": self.trace_id,
                "ts": time.time(),
                "attrs": attrs,
            }
        )
        return self

    def __enter__(self):
        stack = self.hub._stack()
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            self.trace_id = parent.trace_id
        else:
            self.parent_id = None
            self.trace_id = next(self.hub._trace_ids)
        self.span_id = next(self.hub._ids)
        self._start = time.perf_counter()
        stack.append(self)
        self.hub._emit(
            {
                "event": "span-start",
                "name": self.name,
                "span": self.span_id,
                "parent": self.parent_id,
                "trace": self.trace_id,
                "ts": time.time(),
                "attrs": dict(self.attrs),
            }
        )
        return self

    def __exit__(self, exc_type, exc, tb):
        self.duration_s = time.perf_counter() - self._start
        stack = self.hub._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # unbalanced exit (generator GC'd mid-span): drop by identity
            try:
                stack.remove(self)
            except ValueError:
                pass
        record = {
            "event": "span-end",
            "name": self.name,
            "span": self.span_id,
            "parent": self.parent_id,
            "trace": self.trace_id,
            "ts": time.time(),
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self.hub._emit(record)
        self.hub.observe(self.name, self.duration_s)
        return False

    def __repr__(self):
        return "Span(%r, id=%s, parent=%s, trace=%s)" % (
            self.name, self.span_id, self.parent_id, self.trace_id,
        )


class Histogram:
    """Streaming aggregate of observed values plus a bounded reservoir.

    Exact count/total/min/max/mean whatever the stream length; on top of
    that a fixed-size uniform sample (Vitter's algorithm R, deterministic
    RNG — same insertion order, same reservoir) supports
    :meth:`percentile` estimates without unbounded memory.
    """

    __slots__ = ("count", "total", "min", "max", "samples", "_rng")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        #: bounded uniform sample of the stream (not time-ordered)
        self.samples = []
        self._rng = random.Random(0x5E5A)

    def add(self, value):
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self.samples) < RESERVOIR_SIZE:
            self.samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < RESERVOIR_SIZE:
                self.samples[slot] = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, p):
        """Nearest-rank percentile estimate from the reservoir (exact
        while fewer than ``RESERVOIR_SIZE`` values have streamed in);
        None before the first observation."""
        if not self.samples:
            return None
        import math

        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1,
                          int(math.ceil(p / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    def to_dict(self):
        out = {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        for p in PERCENTILES:
            out["p%d" % p] = self.percentile(p)
        return out

    def __repr__(self):
        return "Histogram(n=%d, mean=%g)" % (self.count, self.mean)


class Telemetry:
    """A session's telemetry hub; see the module docstring."""

    def __init__(self):
        self._sinks = []
        self.counters = {}
        self.histograms = {}
        self.gauges = {}
        self._ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._local = threading.local()
        #: guards the aggregate dicts: snapshot() is safe mid-emission
        self._agg_lock = threading.Lock()
        #: records dropped because a sink raised mid-emit (telemetry
        #: must never change outcomes — the exception stops here)
        self.drops = 0
        #: optional FaultInjector consulted at the emit fault site
        #: (bound by Session so ``telemetry.trace.drop`` plans can fire)
        self._faults = None

    # -- sinks ------------------------------------------------------------
    @property
    def enabled(self):
        """True when at least one sink is attached (anything can emit)."""
        return bool(self._sinks)

    def add_sink(self, sink):
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink):
        if sink in self._sinks:
            self._sinks.remove(sink)
        return sink

    def bind_faults(self, injector):
        """Wire the session's fault switchboard into the emit path so a
        ``telemetry.trace.drop`` plan can make sinks raise mid-emit."""
        self._faults = injector
        return injector

    # -- emission ---------------------------------------------------------
    def span(self, name, **attrs):
        """A context manager timing one unit of work.

        Free when disabled: no sinks means the shared :data:`NULL_SPAN`
        comes back before ``attrs`` dicts or Span objects are created.
        """
        if not self._sinks:
            return NULL_SPAN
        return Span(self, name, attrs)

    def event(self, name, **attrs):
        """A point-in-time event, parented to the current span if any."""
        if not self._sinks:
            return
        stack = self._stack()
        current = stack[-1] if stack else None
        self._emit(
            {
                "event": "event",
                "name": name,
                "span": current.span_id if current else None,
                "trace": current.trace_id if current else None,
                "ts": time.time(),
                "attrs": attrs,
            }
        )

    def count(self, name, n=1):
        """Bump a counter (aggregate only — no per-increment records)."""
        if not self._sinks:
            return
        with self._agg_lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name, value):
        """Feed one value into the named histogram."""
        if not self._sinks:
            return
        with self._agg_lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.add(value)

    def gauge(self, name, value):
        """Record the current value of a fluctuating quantity.

        The latest value is kept (``gauges[name]``) and every sample is
        folded into a same-named histogram, so min/max/mean/percentiles
        of e.g. ``scheduler.queue_depth`` come for free.
        """
        if not self._sinks:
            return
        with self._agg_lock:
            self.gauges[name] = value
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.add(value)

    # -- trace-context propagation ----------------------------------------
    def capture(self):
        """Snapshot this thread's trace position as a
        :class:`TraceContext` (None when no span is open or telemetry is
        disabled).  Hand the result to another thread and enter
        :meth:`adopt` there to keep its spans in this trace."""
        stack = self._stack()
        if not stack:
            return None
        current = stack[-1]
        if current.span_id is None:
            return None
        return TraceContext(current.trace_id, current.span_id)

    def adopt(self, context):
        """Parent this *thread's* subsequent spans to an existing trace
        position.

        Cross-thread propagation for worker pools: the span stack is
        thread-local, so a span opened on a worker thread starts a new
        trace unless the dispatching thread's context is adopted first.
        Accepts a :class:`TraceContext` (from :meth:`capture`), a live
        :class:`Span`, ``None``, or the null span (the latter two no-op).
        """
        import contextlib

        @contextlib.contextmanager
        def _adopted():
            if context is None or context.span_id is None:
                yield
                return
            stack = self._stack()
            stack.append(context)
            try:
                yield
            finally:
                if stack and stack[-1] is context:
                    stack.pop()
                else:
                    try:
                        stack.remove(context)
                    except ValueError:
                        pass

        return _adopted()

    # -- inspection -------------------------------------------------------
    def counter(self, name):
        return self.counters.get(name, 0)

    def gauge_value(self, name, default=None):
        return self.gauges.get(name, default)

    def current_span(self):
        stack = self._stack()
        return stack[-1] if stack else None

    def snapshot(self):
        """Counters + gauges + histogram aggregates, JSON-serializable.

        Taken under the aggregate lock: safe to call from any thread
        while workers keep emitting (the hub never stops).
        """
        with self._agg_lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {k: h.to_dict() for k, h in self.histograms.items()},
                "drops": self.drops,
            }

    def emit_summary(self):
        """Emit the aggregate snapshot as a final ``telemetry.summary``
        event (e.g. last line of a JSONL log)."""
        self.event("telemetry.summary", **self.snapshot())

    # -- internals --------------------------------------------------------
    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _emit(self, record):
        faults = self._faults
        for sink in self._sinks:
            try:
                if faults is not None:
                    # fault site: the sink "raises" mid-emit
                    faults.hit("telemetry.trace.drop")
                sink.emit(record)
            except Exception:
                # a broken sink must never break the instrumented
                # operation — drop the record, keep the count
                self.drops += 1

    def __repr__(self):
        return "Telemetry(%d sinks, %d counters)" % (
            len(self._sinks),
            len(self.counters),
        )
