"""Metrics export: Prometheus text format and the shared bench schema.

Two consumers pull numbers out of a running session's hub:

* **scrapers** — :func:`prometheus_text` renders a
  :meth:`~repro.telemetry.hub.Telemetry.snapshot` in the Prometheus text
  exposition format (counters, gauges, and histograms-as-summaries with
  the reservoir's p50/p95/p99 quantiles), so an operator can point any
  standard collector at a service-mode endpoint or just cat the file;

* **benchmarks** — every ``benchmarks/bench_*.py`` writes its headline
  numbers through :func:`bench_report` onto one stable schema
  (``repro-bench/v1``), which is what makes
  :mod:`repro.telemetry.compare` and the CI regression gate
  (``benchmarks/check_regression.py``) possible: old and new runs are
  comparable because they are the *same shape*.

The ``repro-bench/v1`` schema::

    {
      "schema":  "repro-bench/v1",
      "bench":   "parallel_install",        # stable bench name
      "metrics": {"wall_seconds.j4": 0.72}, # flat str -> number
      "meta":    {"dag_nodes": 16}          # config, not compared
    }

``metrics`` holds only scalars (dotted keys for hierarchy) so a
comparison is a dictionary walk, never a schema negotiation.  ``meta``
carries run configuration — compared for *identity* (a changed node
count is a changed experiment), never for tolerance.
"""

#: schema tag stamped on (and required in) every bench report
BENCH_SCHEMA = "repro-bench/v1"


def flatten_metrics(obj, prefix=""):
    """Flatten nested dicts to dotted-key scalars.

    Numbers pass through, booleans become 0/1, lists contribute their
    length (``divergences: []`` -> ``divergences: 0``), strings and
    None are dropped — the comparable surface of any legacy result file.
    """
    flat = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            dotted = "%s.%s" % (prefix, key) if prefix else str(key)
            flat.update(flatten_metrics(value, dotted))
    elif isinstance(obj, bool):
        if prefix:
            flat[prefix] = int(obj)
    elif isinstance(obj, (int, float)):
        if prefix:
            flat[prefix] = obj
    elif isinstance(obj, (list, tuple)):
        if prefix:
            flat[prefix] = len(obj)
    return flat


def bench_report(bench, metrics, meta=None):
    """Assemble a ``repro-bench/v1`` report dict.

    ``metrics`` may be nested; it is flattened to dotted scalar keys.
    Raises ``ValueError`` when a metric survives flattening as nothing
    (all-string payloads are a schema bug, not a quiet success).
    """
    flat = flatten_metrics(metrics)
    if not flat:
        raise ValueError("bench %r produced no numeric metrics" % bench)
    return {
        "schema": BENCH_SCHEMA,
        "bench": bench,
        "metrics": {k: flat[k] for k in sorted(flat)},
        "meta": dict(meta or {}),
    }


# -- Prometheus text exposition ---------------------------------------------

def _prom_name(prefix, name, suffix=""):
    """``repro`` + ``buildcache.hit`` -> ``repro_buildcache_hit``."""
    cleaned = []
    for ch in name:
        cleaned.append(ch if ch.isalnum() else "_")
    base = "%s_%s%s" % (prefix, "".join(cleaned), suffix)
    if base and base[0].isdigit():
        base = "_" + base
    return base


def _prom_value(value):
    if value is None:
        return "NaN"
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def prometheus_text(snapshot, prefix="repro"):
    """Render a hub snapshot in the Prometheus text exposition format.

    Counters become ``counter`` samples, gauges become ``gauge``
    samples, histograms become ``summary`` families: ``_count``,
    ``_sum``, and one ``{quantile="..."}`` sample per reservoir
    percentile (plus min/max as labeled quantiles 0 and 1).  Output is
    sorted, so two snapshots of identical state render byte-identically.
    """
    lines = []

    for name in sorted(snapshot.get("counters", {})):
        metric = _prom_name(prefix, name, "_total")
        lines.append("# HELP %s %s (session counter)" % (metric, name))
        lines.append("# TYPE %s counter" % metric)
        lines.append("%s %s" % (metric, _prom_value(snapshot["counters"][name])))

    for name in sorted(snapshot.get("gauges", {})):
        metric = _prom_name(prefix, name)
        lines.append("# HELP %s %s (session gauge)" % (metric, name))
        lines.append("# TYPE %s gauge" % metric)
        lines.append("%s %s" % (metric, _prom_value(snapshot["gauges"][name])))

    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        metric = _prom_name(prefix, name, "_seconds")
        lines.append("# HELP %s %s (span/observation histogram)"
                     % (metric, name))
        lines.append("# TYPE %s summary" % metric)
        quantiles = [("0", hist.get("min"))]
        for p in (50, 95, 99):
            quantiles.append(("0.%02d" % p, hist.get("p%d" % p)))
        quantiles.append(("1", hist.get("max")))
        for q, value in quantiles:
            lines.append('%s{quantile="%s"} %s' % (metric, q, _prom_value(value)))
        lines.append("%s_sum %s" % (metric, _prom_value(hist.get("total", 0.0))))
        lines.append("%s_count %d" % (metric, hist.get("count", 0)))

    drops = snapshot.get("drops")
    if drops is not None:
        metric = _prom_name(prefix, "telemetry.drops", "_total")
        lines.append("# HELP %s records dropped by raising sinks" % metric)
        lines.append("# TYPE %s counter" % metric)
        lines.append("%s %s" % (metric, _prom_value(drops)))

    return "\n".join(lines) + "\n"
