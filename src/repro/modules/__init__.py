"""Environment-module generation: dotkit and TCL modules (paper §3.5.4)."""

from repro.modules.generator import (
    DotkitModule,
    ModuleGenerator,
    TclModule,
)

__all__ = ["ModuleGenerator", "DotkitModule", "TclModule"]
