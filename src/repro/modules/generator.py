"""Generate dotkit and TCL environment-module files for installed specs.

"Spack can automatically create simple dotkit and Module configuration
files for its packages, allowing users to setup their runtime
environment using familiar systems" (§3.5.4).  Although RPATH-built
packages do not need ``LD_LIBRARY_PATH`` to run, the generated modules
set it anyway — build systems and non-RPATH dependents use it — along
with ``PATH``, ``MANPATH``, ``PKG_CONFIG_PATH`` and
``CMAKE_PREFIX_PATH``.

Module file names use the readable spec rendering plus the DAG hash, so
every configuration gets a distinct module (no "matrix problem").
"""

import os

from repro.build.environment import dependency_prefixes, runtime_environment
from repro.util.environment import (
    AppendPath,
    PrependPath,
    RemovePath,
    SetEnv,
    UnsetEnv,
)
from repro.util.filesystem import mkdirp


class ModuleFile:
    """Base: computes content from a spec's runtime environment mods."""

    #: subdirectory under the module root; subclasses override
    kind = None

    def __init__(self, spec, layout):
        self.spec = spec
        self.layout = layout
        self.prefix = spec.external or layout.path_for_spec(spec)

    @property
    def file_name(self):
        return "%s-%s-%s" % (
            self.spec.name,
            self.spec.versions,
            self.spec.dag_hash(8),
        )

    def path_in(self, module_root):
        return os.path.join(
            module_root, self.kind, self.spec.architecture or "any", self.file_name
        )

    def environment(self):
        deps = dependency_prefixes(self.spec, self.layout)
        return runtime_environment(self.spec, self.prefix, deps)

    def content(self):
        raise NotImplementedError

    def write(self, module_root):
        path = self.path_in(module_root)
        mkdirp(os.path.dirname(path))
        with open(path, "w") as f:
            f.write(self.content())
        return path


class DotkitModule(ModuleFile):
    """LLNL dotkit format (§2's LC convention)."""

    kind = "dotkit"

    def content(self):
        lines = [
            "#c spack",
            "#d %s @%s" % (self.spec.name, self.spec.versions),
            "#h built with %s for %s"
            % (self.spec.compiler, self.spec.architecture),
        ]
        for op in self.environment():
            if isinstance(op, (PrependPath, AppendPath)):
                lines.append("dk_alter %s %s" % (op.name, op.value))
            elif isinstance(op, SetEnv):
                lines.append("dk_setenv %s %s" % (op.name, op.value))
            elif isinstance(op, (RemovePath, UnsetEnv)):
                lines.append("dk_unalter %s %s" % (op.name, op.value or ""))
        return "\n".join(lines) + "\n"


class TclModule(ModuleFile):
    """Classic TCL environment-modules format."""

    kind = "tcl"

    def content(self):
        lines = [
            "#%Module1.0",
            "## %s @%s built with %s"
            % (self.spec.name, self.spec.versions, self.spec.compiler),
            "proc ModulesHelp { } {",
            '    puts stderr "%s"' % (self.spec.name,),
            "}",
            'module-whatis "%s @%s"' % (self.spec.name, self.spec.versions),
        ]
        for op in self.environment():
            if isinstance(op, PrependPath):
                lines.append("prepend-path %s %s" % (op.name, op.value))
            elif isinstance(op, AppendPath):
                lines.append("append-path %s %s" % (op.name, op.value))
            elif isinstance(op, SetEnv):
                lines.append("setenv %s %s" % (op.name, op.value))
            elif isinstance(op, UnsetEnv):
                lines.append("unsetenv %s" % op.name)
        return "\n".join(lines) + "\n"


class ModuleGenerator:
    """Write module files for installed specs under ``<root>/modules``."""

    FORMATS = {"dotkit": DotkitModule, "tcl": TclModule}

    def __init__(self, session):
        self.session = session
        self.module_root = os.path.join(session.root, "modules")

    def write_for_spec(self, spec, kinds=("dotkit", "tcl")):
        hub = self.session.telemetry
        with hub.span("modules.write", package=spec.name, kinds=list(kinds)):
            paths = []
            layout = self.session.store.layout
            for kind in kinds:
                module = self.FORMATS[kind](spec, layout)
                paths.append(module.write(self.module_root))
            hub.count("modules.files_written", len(paths))
        return paths

    def refresh(self, kinds=("dotkit", "tcl")):
        """Regenerate modules for everything installed."""
        paths = []
        for record in self.session.db.all_records():
            paths.extend(self.write_for_spec(record.spec, kinds))
        return paths

    def remove_for_spec(self, spec):
        removed = []
        layout = self.session.store.layout
        for kind, cls in self.FORMATS.items():
            path = cls(spec, layout).path_in(self.module_root)
            if os.path.isfile(path):
                os.unlink(path)
                removed.append(path)
        return removed
