"""The environment merge/unify engine.

An environment's roots are concretized *together*: first every root is
solved independently (concurrently — per-root concretization is a pure
function, so the result set is identical at ``-j 1`` and ``-j N``),
then a merge phase reconciles the results so that any package appearing
in several root DAGs resolves to **one** concrete node (one
``dag_hash``) environment-wide, and any virtual interface resolves to
one provider.

Reconciliation is pin-and-resolve: when two roots disagree on a shared
package, each distinct concrete candidate is tried — in a deterministic
preference order — as a forced ``^pin`` constraint on every affected
root, and the first candidate every root accepts wins.  When *no*
candidate satisfies all roots, the environment is genuinely
inconsistent and :class:`EnvironmentConflictError` reports which roots
demand what, in one diagnostic.

This is the coherent-set semantics Guix-style environments argue for
(PAPERS.md: *Reproducible and User-Controlled Software Environments in
HPC*): per-root resolution that is allowed to drift is exactly where
"dependency chaos" breakage hides.
"""

from concurrent.futures import ThreadPoolExecutor

from repro.errors import ReproError
from repro.spec.errors import SpecError
from repro.spec.spec import Spec


class EnvironmentConflictError(ReproError):
    """Two (or more) roots demand incompatible constraints on a shared
    package: no single concrete node can satisfy every root.

    Carries ``package`` (the contested package or virtual name) and
    ``demands`` — ``(root_text, node_str)`` pairs naming each root and
    the concrete node it insists on.
    """

    def __init__(self, package, demands, attempts=()):
        self.package = package
        self.demands = list(demands)
        lines = ["environment roots disagree on %r:" % package]
        for root_text, node in self.demands:
            lines.append("  root %r demands %s" % (root_text, node))
        for node, root_text, error in attempts:
            lines.append(
                "  candidate %s rejected: root %r failed (%s: %s)"
                % (node, root_text, type(error).__name__, error)
            )
        super().__init__(
            "cannot unify environment: no single %r satisfies every root"
            % package,
            long_message="\n".join(lines),
        )


class UnificationDivergedError(ReproError):
    """Pin-and-resolve kept uncovering new divergences past the round
    bound — the universe couples packages faster than pinning settles
    them (not observed in practice; the bound is a safety valve)."""


class _Root:
    """One abstract root plus its accumulated pins and current solve."""

    __slots__ = ("text", "pins", "concrete")

    def __init__(self, text):
        self.text = text
        self.pins = {}  # contested key -> pinned node_str
        self.concrete = None

    def request(self):
        """The abstract Spec to solve: the root text with every accepted
        pin folded in as a forced dependency constraint."""
        spec = Spec(self.text)
        for key in sorted(self.pins):
            pin = Spec(self.pins[key])
            existing = None
            if spec.name == pin.name:
                existing = spec
            else:
                existing = spec.flat_dependencies().get(pin.name)
            if existing is not None:
                existing.constrain(pin, deps=False)
            else:
                spec._add_dependency(pin.copy())
        return spec


class UnifiedEnvironment:
    """The result of :func:`unify_roots`: every root's concrete DAG,
    with shared packages resolved to identical nodes."""

    def __init__(self, roots, rounds, resolves, pins):
        #: list of (root_text, concrete Spec)
        self.roots = roots
        #: merge rounds it took to reach a coherent fixpoint
        self.rounds = rounds
        #: total per-root concretizations issued (initial + re-solves)
        self.resolves = resolves
        #: accepted reconciliation pins: {package: node_str}
        self.pins = dict(pins)

    def nodes(self):
        """{dag_hash: node} over every root DAG — the environment's
        deduplicated install set."""
        out = {}
        for _, concrete in self.roots:
            for node in concrete.traverse():
                out.setdefault(node.dag_hash(), node)
        return out

    def dag_hashes(self):
        """Sorted dag_hash list of the unified node set."""
        return sorted(self.nodes())

    def shared_packages(self):
        """{package name: root count} for packages in 2+ root DAGs."""
        counts = {}
        for _, concrete in self.roots:
            for name in {n.name for n in concrete.traverse()}:
                counts[name] = counts.get(name, 0) + 1
        return {name: n for name, n in counts.items() if n >= 2}

    def stats(self):
        return {
            "roots": len(self.roots),
            "unique_nodes": len(self.nodes()),
            "shared_packages": len(self.shared_packages()),
            "rounds": self.rounds,
            "resolves": self.resolves,
            "pins": len(self.pins),
        }


class _RootFailure(Exception):
    """Internal: one root's solve raised; carries which root and what."""

    def __init__(self, root, error):
        super().__init__(str(error))
        self.root = root
        self.error = error


def _solve_all(roots, concretize_fn, jobs, telemetry):
    """Concretize every listed root, concurrently when jobs > 1.

    Results are assigned back positionally, and per-root concretization
    is pure, so the outcome is independent of pool width and completion
    order.  Worker spans adopt the caller's trace context (the PR 6
    discipline) so an environment solve is one coherent trace.  A
    failing root raises :class:`_RootFailure` — deterministically the
    *first* failing root by position, no matter which worker finished
    first.
    """
    requests = []
    for root in roots:
        try:
            requests.append((root, root.request()))
        except (SpecError, ReproError) as error:
            # a pin can contradict the root's own text (app ^dep@1.5
            # pinned to dep@2.5): that is this root rejecting the
            # candidate, reported exactly like a failed solve
            raise _RootFailure(root, error) from error
    if jobs <= 1 or len(requests) <= 1:
        for root, request in requests:
            try:
                root.concrete = concretize_fn(request)
            except (SpecError, ReproError) as error:
                raise _RootFailure(root, error) from error
        return
    context = telemetry.capture() if telemetry is not None else None

    def solve(request):
        if telemetry is not None:
            with telemetry.adopt(context):
                return concretize_fn(request)
        return concretize_fn(request)

    with ThreadPoolExecutor(
        max_workers=jobs, thread_name_prefix="env-solve"
    ) as pool:
        futures = [pool.submit(solve, request) for _, request in requests]
        failure = None
        for (root, _), future in zip(requests, futures):
            exc = future.exception()
            if exc is not None:
                if failure is None and isinstance(exc, (SpecError, ReproError)):
                    failure = _RootFailure(root, exc)
                elif failure is None:
                    raise exc  # not a typed error: propagate raw
            else:
                root.concrete = future.result()
        if failure is not None:
            raise failure


def _divergences(roots):
    """Contested keys, in deterministic processing order.

    Returns ``[(key, contested_name, candidates, demands)]`` where
    *candidates* maps dag_hash -> (node, root_count) and *demands*
    names each root's current choice.  Two kinds of key:

    * a package name — roots hold different concrete nodes of it;
    * ``virtual:<name>`` — roots chose different provider *packages*
      for one interface (same-name grouping can't see this: the nodes
      have different names entirely).
    """
    by_name = {}
    by_virtual = {}
    for root in roots:
        for node in root.concrete.traverse():
            slot = by_name.setdefault(node.name, {})
            entry = slot.setdefault(node.dag_hash(), [node, []])
            entry[1].append(root)
            for vname in getattr(node, "provided_virtuals", ()):
                vslot = by_virtual.setdefault(vname, {})
                ventry = vslot.setdefault(node.name, [node, []])
                ventry[1].append(root)

    out = []
    for name in sorted(by_name):
        slot = by_name[name]
        if len(slot) > 1:
            out.append(("package", name, slot))
    for vname in sorted(by_virtual):
        vslot = by_virtual[vname]
        if len(vslot) > 1:
            # re-key provider candidates by dag_hash like package slots
            slot = {
                node.dag_hash(): [node, hit_roots]
                for node, hit_roots in vslot.values()
            }
            out.append(("virtual", vname, slot))
    return out


def _ordered_candidates(slot):
    """Deterministic preference order over a contested slot: majority
    choice first (fewest re-solves), then newest version (what the
    default policy would pick), then canonical text."""
    cands = [(node, len(hit_roots)) for node, hit_roots in slot.values()]
    cands.sort(key=lambda c: c[0].node_str())
    cands.sort(key=lambda c: c[0].version, reverse=True)
    cands.sort(key=lambda c: c[1], reverse=True)
    return [node for node, _ in cands]


def _affected_roots(roots, kind, name):
    """Roots whose current DAG contains the contested package (or a
    provider of the contested virtual)."""
    hit = []
    for root in roots:
        for node in root.concrete.traverse():
            if node.name == name or (
                kind == "virtual"
                and name in getattr(node, "provided_virtuals", ())
            ):
                hit.append(root)
                break
    return hit


def unify_roots(root_texts, concretize_fn, jobs=1, telemetry=None,
                max_rounds=None):
    """Concretize many roots into one coherent environment.

    ``concretize_fn(spec) -> concrete Spec`` must be pure and
    thread-safe (``Session.concretize`` and
    ``StateSnapshot.concretize`` both qualify).  Raises
    :class:`EnvironmentConflictError` when roots genuinely conflict;
    per-root typed errors (unknown package, unsatisfiable request)
    propagate as-is.
    """
    texts = [str(t) for t in root_texts]
    if not texts:
        return UnifiedEnvironment([], rounds=0, resolves=0, pins={})
    jobs = max(1, int(jobs or 1))
    roots = [_Root(text) for text in texts]
    try:
        _solve_all(roots, concretize_fn, jobs, telemetry)
    except _RootFailure as failure:
        raise failure.error  # an unpinned root failed on its own terms
    resolves = len(roots)

    if max_rounds is None:
        max_rounds = 8 + 4 * len(roots)
    pins = {}
    rounds = 0
    while True:
        contested = _divergences(roots)
        if not contested:
            break
        # only *actionable* divergences are pinnable: the candidate
        # nodes must differ in their own parameters (node_str).  Nodes
        # that differ only through their dependencies converge for free
        # once the deepest divergent descendant — which by induction IS
        # actionable — gets reconciled.
        actionable = [
            entry for entry in contested
            if len({node.node_str() for node, _ in entry[2].values()}) > 1
        ]
        if not actionable:
            raise UnificationDivergedError(
                "environment divergence is not pin-reconcilable",
                long_message="contested but identical node-for-node: %s"
                % ", ".join(name for _, name, _ in contested),
            )
        rounds += 1
        if rounds > max_rounds:
            raise UnificationDivergedError(
                "environment unification did not converge after %d rounds"
                % max_rounds,
                long_message="still contested: %s"
                % ", ".join(name for _, name, _ in contested),
            )
        kind, name, slot = actionable[0]
        affected = _affected_roots(roots, kind, name)
        demands = [
            (root.text, node.node_str())
            for node, hit_roots in sorted(
                slot.values(), key=lambda e: e[0].node_str()
            )
            for root in hit_roots
        ]
        attempts = []
        accepted = False
        for candidate in _ordered_candidates(slot):
            pin_text = candidate.node_str()
            trial = []
            for root in affected:
                saved = dict(root.pins)
                root.pins[name] = pin_text
                trial.append((root, saved))
            try:
                _solve_all(affected, concretize_fn, jobs, telemetry)
                resolves += len(affected)
            except _RootFailure as failure:
                # typed rejection: some root cannot live with this
                # candidate; restore and try the next one
                attempts.append((pin_text, failure.root.text, failure.error))
                for root, saved in trial:
                    root.pins = saved
                _solve_all(affected, concretize_fn, jobs, telemetry)
                resolves += len(affected)
                continue
            pins[name] = pin_text
            accepted = True
            break
        if not accepted:
            raise EnvironmentConflictError(name, demands, attempts)

    return UnifiedEnvironment(
        [(root.text, root.concrete) for root in roots],
        rounds=rounds,
        resolves=resolves,
        pins=pins,
    )
