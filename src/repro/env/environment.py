"""Environments: a named *set* of abstract roots managed as one unit.

An environment is a manifest (``env.json``: the abstract roots, in the
order they were added) plus a lockfile (``env.lock.json``: the unified
concrete DAGs from the last ``concretize``).  The lockfile is keyed by
an *environment key* — a digest over the root set, the concretizer
variant, and the session's environment digest — so any change to the
roots, the package universe, the configuration, or the algorithm makes
the lock stale and the next concretize recomputes; an unchanged key is
a warm hit that restores the unified result straight from disk (with
the same hash-verification discipline the concretization cache uses).

The heavy lifting lives in :mod:`repro.env.unify`; this module is the
durable state around it.
"""

import hashlib
import json
import os

from repro.env.unify import UnifiedEnvironment, unify_roots
from repro.errors import ReproError
from repro.spec.spec import Spec
from repro.util.filesystem import mkdirp

MANIFEST_NAME = "env.json"
LOCK_NAME = "env.lock.json"


class EnvironmentStateError(ReproError):
    """The environment's on-disk state is unusable for the request
    (e.g. installing from a stale or missing lockfile)."""


class Environment:
    """One environment rooted at a directory.

    >>> env = Environment(path, name="dev")
    >>> env.add("mpileaks"); env.add("dyninst ^libelf@0.8.12")
    >>> unified = env.concretize(session, jobs=4)
    """

    def __init__(self, path, name=None):
        self.path = os.path.abspath(path)
        self.name = name or os.path.basename(self.path)
        self.roots = []
        self._load_manifest()

    # -- manifest ----------------------------------------------------------
    def _manifest_path(self):
        return os.path.join(self.path, MANIFEST_NAME)

    def _lock_path(self):
        return os.path.join(self.path, LOCK_NAME)

    def _load_manifest(self):
        try:
            with open(self._manifest_path()) as f:
                manifest = json.load(f)
        except OSError:
            return
        except ValueError:
            raise EnvironmentStateError(
                "environment manifest %s is not valid JSON"
                % self._manifest_path()
            )
        self.name = manifest.get("name", self.name)
        self.roots = list(manifest.get("roots", []))

    def save(self):
        mkdirp(self.path)
        blob = json.dumps(
            {"name": self.name, "roots": self.roots},
            indent=1, sort_keys=True,
        )
        with open(self._manifest_path(), "w") as f:
            f.write(blob + "\n")

    def add(self, spec_text):
        """Add one abstract root (validated by parsing); returns True if
        it was new."""
        text = str(Spec(str(spec_text)))
        if text in self.roots:
            return False
        self.roots.append(text)
        self.save()
        return True

    def remove(self, spec_text):
        """Remove a root by its canonical text; returns True if found."""
        text = str(Spec(str(spec_text)))
        if text not in self.roots:
            return False
        self.roots.remove(text)
        self.save()
        return True

    # -- the environment key -----------------------------------------------
    def environment_key(self, session, variant):
        """Digest over the root *set*, the variant, and everything
        per-root concretization depends on (the session's environment
        digest) — the lockfile's validity key."""
        digest = hashlib.sha256()
        digest.update(session._env_digest.current().encode())
        digest.update(b"\n")
        digest.update(variant.encode())
        for text in sorted(self.roots):
            digest.update(b"\n")
            digest.update(text.encode())
        return digest.hexdigest()

    # -- concretization ----------------------------------------------------
    def concretize(self, session, jobs=None, concretizer=None,
                   use_cache=None, force=False):
        """Concretize every root *together* (see :mod:`repro.env.unify`).

        Warm path: an up-to-date lockfile (same environment key) is
        restored directly — every stored DAG is deserialized and its
        ``dag_hash`` re-verified, so a corrupted lock falls back to a
        fresh unification instead of lying.
        """
        variant = session._concretizer_variant(concretizer, False)
        env_key = self.environment_key(session, variant)
        if not force:
            restored = self._restore_lock(env_key)
            if restored is not None:
                session.telemetry.count("env.lock.hit")
                return restored
        session.telemetry.count("env.lock.miss")
        if jobs is None:
            jobs = session.install_jobs
        with session.telemetry.span(
            "env.concretize", environment=self.name, roots=len(self.roots),
            jobs=jobs, variant=variant,
        ):
            unified = unify_roots(
                self.roots,
                lambda spec: session.concretize(
                    spec, concretizer=variant, use_cache=use_cache
                ),
                jobs=jobs,
                telemetry=session.telemetry,
            )
        self._write_lock(env_key, variant, unified)
        return unified

    def _write_lock(self, env_key, variant, unified):
        mkdirp(self.path)
        blob = json.dumps(
            {
                "environment_key": env_key,
                "variant": variant,
                "pins": unified.pins,
                "rounds": unified.rounds,
                "roots": [
                    {
                        "root": text,
                        "dag_hash": concrete.dag_hash(),
                        "spec": concrete.to_dict(),
                    }
                    for text, concrete in unified.roots
                ],
            },
            indent=1, sort_keys=True,
        )
        with open(self._lock_path(), "w") as f:
            f.write(blob + "\n")

    def _read_lock(self):
        try:
            with open(self._lock_path()) as f:
                return json.load(f)
        except (OSError, ValueError):
            return None

    def _restore_lock(self, env_key):
        """The UnifiedEnvironment recorded under ``env_key``, or None
        when absent, keyed differently, or corrupt."""
        lock = self._read_lock()
        if not lock or lock.get("environment_key") != env_key:
            return None
        entries = lock.get("roots", [])
        if [e.get("root") for e in entries] != self.roots:
            return None
        restored = []
        for entry in entries:
            try:
                spec = Spec.from_dict(entry["spec"])
                ok = spec.dag_hash() == entry["dag_hash"]
            except Exception:
                ok = False
            if not ok:
                return None
            restored.append((entry["root"], spec))
        return UnifiedEnvironment(
            restored,
            rounds=lock.get("rounds", 0),
            resolves=0,
            pins=lock.get("pins", {}),
        )

    def lock_state(self, session, variant="greedy"):
        """'fresh', 'stale', or 'absent' — what `env status` reports."""
        lock = self._read_lock()
        if lock is None:
            return "absent"
        if lock.get("environment_key") == self.environment_key(
            session, lock.get("variant", variant)
        ) and [e.get("root") for e in lock.get("roots", [])] == self.roots:
            return "fresh"
        return "stale"

    # -- status / install --------------------------------------------------
    def status(self, session):
        """A report dict for the CLI/daemon: roots, lock freshness, and
        per-node install state of the unified set."""
        lock = self._read_lock()
        report = {
            "name": self.name,
            "path": self.path,
            "roots": list(self.roots),
            "lock": self.lock_state(session),
        }
        if lock and report["lock"] == "fresh":
            nodes = {}
            for entry in lock.get("roots", []):
                spec = Spec.from_dict(entry["spec"])
                for node in spec.traverse():
                    nodes[node.dag_hash()] = node
            installed = {
                record.spec.dag_hash() for record in session.db.query()
            }
            report["unique_nodes"] = len(nodes)
            report["installed"] = sum(
                1 for h in nodes if h in installed
            )
            report["root_hashes"] = {
                entry["root"]: entry["dag_hash"]
                for entry in lock.get("roots", [])
            }
        return report

    def install(self, session, jobs=None, **kwargs):
        """Install every concrete root from the (fresh) lockfile.

        Concretizes first when the lock is stale or absent, so the
        installed set is exactly the unified one — shared nodes install
        once and every root links against the same builds.
        """
        unified = self.concretize(session, jobs=jobs)
        results = []
        for text, concrete in unified.roots:
            concrete_result = session.install(
                concrete.copy(), jobs=jobs, **kwargs
            )
            results.append((text,) + tuple(concrete_result))
        return unified, results
