"""Environments: many abstract roots concretized together (ROADMAP 4).

Public surface:

* :class:`~repro.env.environment.Environment` — durable manifest +
  lockfile around a root set.
* :func:`~repro.env.unify.unify_roots` — the concurrent solve +
  merge/unify engine.
* :class:`~repro.env.unify.UnifiedEnvironment` — the unified result.
* :class:`~repro.env.unify.EnvironmentConflictError` — two roots
  demand incompatible constraints on a shared package.
"""

from repro.env.environment import Environment, EnvironmentStateError
from repro.env.unify import (
    EnvironmentConflictError,
    UnificationDivergedError,
    UnifiedEnvironment,
    unify_roots,
)

__all__ = [
    "Environment",
    "EnvironmentStateError",
    "EnvironmentConflictError",
    "UnificationDivergedError",
    "UnifiedEnvironment",
    "unify_roots",
]
