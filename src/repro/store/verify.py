"""Install-tree integrity checking.

Verifies that what the database believes matches what is on disk:
prefix present, provenance spec identical (by DAG hash) to the database
record, artifacts well-formed, and every binary's libraries resolvable
through its RPATHs alone — the §3.5.2 guarantee, re-checked at rest.
Used by operators after filesystem mishaps, and by the failure-injection
tests.
"""

import json
import os

from repro.spec.spec import Spec
from repro.store.layout import METADATA_DIR


class VerificationIssue:
    """One problem found with one installed spec."""

    def __init__(self, spec, kind, detail):
        self.spec = spec
        self.kind = kind
        self.detail = detail

    def __repr__(self):
        return "VerificationIssue(%s: %s, %s)" % (self.spec.name, self.kind, self.detail)

    def __str__(self):
        return "%s /%s: %s (%s)" % (
            self.spec.name,
            self.spec.dag_hash(8),
            self.kind,
            self.detail,
        )


def verify_install(session, record):
    """Issues for one install record (empty list == healthy)."""
    issues = []
    spec = record.spec
    prefix = record.prefix

    if not os.path.isdir(prefix):
        return [VerificationIssue(spec, "missing-prefix", prefix)]
    if spec.external:
        return issues  # externals: presence is all we can promise

    meta = os.path.join(prefix, METADATA_DIR)
    spec_file = os.path.join(meta, "spec.json")
    if not os.path.isfile(spec_file):
        issues.append(VerificationIssue(spec, "missing-provenance", spec_file))
    else:
        try:
            with open(spec_file) as f:
                on_disk = Spec.from_dict(json.load(f))
            if on_disk.dag_hash() != spec.dag_hash():
                issues.append(
                    VerificationIssue(
                        spec, "provenance-mismatch",
                        "disk=%s db=%s" % (on_disk.dag_hash(8), spec.dag_hash(8)),
                    )
                )
        except (ValueError, KeyError) as e:
            issues.append(VerificationIssue(spec, "corrupt-provenance", str(e)))

    manifest = _load_manifest(spec, prefix, issues)
    if manifest is not None:
        binaries = _check_manifest_artifacts(
            session, spec, prefix, manifest, issues
        )
    else:
        # No manifest (a pre-manifest install, or a hand-made prefix):
        # verify whatever artifacts are actually present instead of
        # assuming the bin/<name> + lib/lib<name>.so.json layout —
        # packages without that shape must not false-fail.
        binaries = _check_discovered_artifacts(spec, prefix, issues)

    from repro.build.loader import LoaderError, load_binary

    for binary in binaries:
        try:
            load_binary(binary, env={})  # RPATHs only — the paper's promise
        except LoaderError as e:
            issues.append(VerificationIssue(spec, "unresolvable-libraries", e.message))
        except ValueError:
            pass  # malformed binary already reported as corrupt-artifact
    return issues


def _load_manifest(spec, prefix, issues):
    """The install's artifact manifest, or None when absent/corrupt."""
    path = os.path.join(prefix, METADATA_DIR, "manifest.json")
    if not os.path.isfile(path):
        return None
    try:
        with open(path) as f:
            manifest = json.load(f)
        return manifest if isinstance(manifest.get("files"), dict) else None
    except (ValueError, AttributeError):
        issues.append(VerificationIssue(spec, "corrupt-provenance", path))
        return None


def _check_manifest_artifacts(session, spec, prefix, manifest, issues):
    """Check every manifest-listed file: present, well-formed, and
    hashing (with the session root normalized out, so a relocated cache
    extraction compares equal) to the recorded digest.  Returns the
    ``bin/`` entries for the loadability check."""
    from repro.store.buildcache import normalized_digest

    binaries = []
    for rel, digest in sorted(manifest["files"].items()):
        path = os.path.join(prefix, *rel.split("/"))
        if not os.path.isfile(path):
            issues.append(VerificationIssue(spec, "missing-artifact", path))
            continue
        with open(path, "rb") as f:
            data = f.read()
        if _looks_like_json_artifact(rel):
            try:
                json.loads(data.decode(errors="replace"))
            except ValueError:
                issues.append(
                    VerificationIssue(spec, "corrupt-artifact", path)
                )
                continue
        if normalized_digest(data, session.root) != digest:
            issues.append(
                VerificationIssue(spec, "artifact-digest-mismatch", path)
            )
            continue
        if rel.startswith("bin/"):
            binaries.append(path)
    return binaries


def _check_discovered_artifacts(spec, prefix, issues):
    """Legacy discovery: scan ``lib/*.so.json`` and ``bin/*`` for
    whatever exists; absence of either directory is not an error."""
    binaries = []
    artifacts = []
    lib_dir = os.path.join(prefix, "lib")
    if os.path.isdir(lib_dir):
        for name in sorted(os.listdir(lib_dir)):
            if name.endswith(".so.json"):
                artifacts.append(os.path.join(lib_dir, name))
    bin_dir = os.path.join(prefix, "bin")
    if os.path.isdir(bin_dir):
        for name in sorted(os.listdir(bin_dir)):
            path = os.path.join(bin_dir, name)
            if os.path.isfile(path):
                artifacts.append(path)
                binaries.append(path)
    for artifact in artifacts:
        try:
            with open(artifact) as f:
                json.load(f)
        except ValueError:
            issues.append(VerificationIssue(spec, "corrupt-artifact", artifact))
    return binaries


def _looks_like_json_artifact(rel):
    """Artifacts in this simulated world are JSON payloads: shared
    objects (``*.so.json``) and the ``bin/`` pseudo-ELF binaries."""
    return rel.endswith(".so.json") or rel.startswith("bin/")


def verify_store(session):
    """Issues across every installed record."""
    issues = []
    for record in session.db.all_records():
        issues.extend(verify_install(session, record))
    return issues
