"""Install-tree integrity checking.

Verifies that what the database believes matches what is on disk:
prefix present, provenance spec identical (by DAG hash) to the database
record, artifacts well-formed, and every binary's libraries resolvable
through its RPATHs alone — the §3.5.2 guarantee, re-checked at rest.
Used by operators after filesystem mishaps, and by the failure-injection
tests.
"""

import json
import os

from repro.spec.spec import Spec
from repro.store.layout import METADATA_DIR


class VerificationIssue:
    """One problem found with one installed spec."""

    def __init__(self, spec, kind, detail):
        self.spec = spec
        self.kind = kind
        self.detail = detail

    def __repr__(self):
        return "VerificationIssue(%s: %s, %s)" % (self.spec.name, self.kind, self.detail)

    def __str__(self):
        return "%s /%s: %s (%s)" % (
            self.spec.name,
            self.spec.dag_hash(8),
            self.kind,
            self.detail,
        )


def verify_install(session, record):
    """Issues for one install record (empty list == healthy)."""
    issues = []
    spec = record.spec
    prefix = record.prefix

    if not os.path.isdir(prefix):
        return [VerificationIssue(spec, "missing-prefix", prefix)]
    if spec.external:
        return issues  # externals: presence is all we can promise

    meta = os.path.join(prefix, METADATA_DIR)
    spec_file = os.path.join(meta, "spec.json")
    if not os.path.isfile(spec_file):
        issues.append(VerificationIssue(spec, "missing-provenance", spec_file))
    else:
        try:
            with open(spec_file) as f:
                on_disk = Spec.from_dict(json.load(f))
            if on_disk.dag_hash() != spec.dag_hash():
                issues.append(
                    VerificationIssue(
                        spec, "provenance-mismatch",
                        "disk=%s db=%s" % (on_disk.dag_hash(8), spec.dag_hash(8)),
                    )
                )
        except (ValueError, KeyError) as e:
            issues.append(VerificationIssue(spec, "corrupt-provenance", str(e)))

    lib = os.path.join(prefix, "lib", "lib%s.so.json" % spec.name)
    binary = os.path.join(prefix, "bin", spec.name)
    for artifact in (lib, binary):
        if not os.path.isfile(artifact):
            issues.append(VerificationIssue(spec, "missing-artifact", artifact))
            continue
        try:
            with open(artifact) as f:
                json.load(f)
        except ValueError:
            issues.append(VerificationIssue(spec, "corrupt-artifact", artifact))

    if os.path.isfile(binary):
        from repro.build.loader import LoaderError, load_binary

        try:
            load_binary(binary, env={})  # RPATHs only — the paper's promise
        except LoaderError as e:
            issues.append(VerificationIssue(spec, "unresolvable-libraries", e.message))
    return issues


def verify_store(session):
    """Issues across every installed record."""
    issues = []
    for record in session.db.all_records():
        issues.extend(verify_install(session, record))
    return issues
