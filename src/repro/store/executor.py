"""The build executor: one node's fetch → stage → build → provenance.

This is the execution layer of the planner/scheduler/executor stack —
the old ``Installer._build_one`` logic made self-contained and safe to
run from any scheduler worker:

* all per-build state (stage, log, clock, phase timers) is local to the
  call; the ambient pieces (:func:`~repro.build.context.build_context`,
  the virtual working directory) are thread-private;
* a **per-prefix lock** (an ``fcntl`` lock file under the database
  directory) serializes builds of the same DAG hash across workers *and*
  across sessions sharing one store — after acquiring it the executor
  re-checks the database, so a build another session just finished is
  reused instead of re-built;
* stages are tagged with the spec's DAG hash, so same-name-same-version
  specs concretized differently never share a build tree.

A failing build tears down its partial prefix before the error
propagates: the scheduler registers a node in the database only after
the executor returns, so a crash mid-build can never leave a partial
prefix registered.
"""

import contextlib
import inspect
import json
import os
import shutil
import threading
import time

from repro.build.context import BuildContext, build_context
from repro.build.environment import build_environment, dependency_prefixes
from repro.build.wrappers import write_wrappers
from repro.errors import ReproError
from repro.fetch.stage import Stage
from repro.simfs import VirtualClock
from repro.store.layout import METADATA_DIR
from repro.util.filesystem import mkdirp
from repro.util.lock import Lock

#: ``inspect.getsource`` is not thread-safe: it mutates the global
#: ``linecache`` and drives ``ast.parse``, whose C-level recursion
#: accounting races under concurrent ``compile`` on CPython 3.11
#: ("AST constructor recursion depth mismatch").  Provenance writes
#: from parallel workers serialize their source lookups here.
_GETSOURCE_LOCK = threading.Lock()


class BuildStats:
    """Per-build accounting: virtual (modeled) and real elapsed seconds."""

    def __init__(self, spec, virtual_seconds, real_seconds, counts, phases=None,
                 cache_hit=False, spliced=False):
        self.spec = spec
        self.virtual_seconds = virtual_seconds
        self.real_seconds = real_seconds
        self.counts = counts
        #: wall seconds per install phase (fetch/stage/build/install for a
        #: source build; extract/relocate/verify for a cache install)
        self.phases = dict(phases or {})
        #: True when this node came from the binary build cache
        self.cache_hit = cache_hit
        #: True when a runtime-hash twin's binaries were spliced in
        self.spliced = spliced

    def __repr__(self):
        return "BuildStats(%s, %.3fs virtual)" % (self.spec.name, self.virtual_seconds)


class _PhaseTimer:
    """Times named install phases into a dict, mirroring them as spans.

    The wall-clock measurement always happens — ``timing.json`` is part
    of every install's provenance — while the telemetry span alongside it
    costs nothing unless a sink is listening.
    """

    def __init__(self, phases, hub, **attrs):
        self.phases = phases
        self.hub = hub
        self.attrs = attrs

    def phase(self, name):
        @contextlib.contextmanager
        def _timed():
            span = self.hub.span("install.phase." + name, **self.attrs)
            start = time.perf_counter()
            with span:
                try:
                    yield
                finally:
                    self.phases[name] = time.perf_counter() - start

        return _timed()


class BuildExecutor:
    """Executes one node's build against a session's store."""

    def __init__(self, session):
        self.session = session

    def _prefix_lock(self, node):
        """The cross-worker, cross-session lock for this node's prefix."""
        return Lock(
            os.path.join(
                self.session.db.db_dir, "prefix-locks", node.dag_hash() + ".lock"
            ),
            faults=self.session.faults,
            owner=node.name,
        )

    def execute(self, node, keep_stage=False):
        """Build ``node``; returns :class:`BuildStats`, or None if another
        session finished the same prefix while we waited for its lock
        (the caller should then treat the node as reused)."""
        with self._prefix_lock(node):
            if self.session.db.installed(node):
                return None
            self._heal_orphan_prefix(node)
            return self._build(node, keep_stage=keep_stage)

    def execute_cached(self, node, keep_stage=False):
        """Install ``node`` from the binary build cache (same locking
        discipline as :meth:`execute`); falls back to a source build if
        the cache entry is missing, corrupt, or fails verification."""
        with self._prefix_lock(node):
            if self.session.db.installed(node):
                return None
            self._heal_orphan_prefix(node)
            return self._install_from_cache(node, keep_stage=keep_stage)

    def execute_spliced(self, node, donor_hash, keep_stage=False):
        """Install ``node`` by splicing a cached runtime-hash twin's
        binaries (same locking discipline as :meth:`execute`); falls back
        to a source build if the donor is missing, corrupt, or the
        spliced prefix fails verification."""
        with self._prefix_lock(node):
            if self.session.db.installed(node):
                return None
            self._heal_orphan_prefix(node)
            return self._install_from_splice(
                node, donor_hash, keep_stage=keep_stage
            )

    def _heal_orphan_prefix(self, node):
        """Remove a prefix the database does not know about.

        A crash between prefix creation and database registration (a
        killed build) leaves an orphan directory; since registration is
        always last, an unregistered prefix is never trustworthy.  We
        hold both the prefix lock and a db miss here, so deleting it is
        safe — and required, or the layout would refuse to create the
        prefix and the store could never heal.
        """
        if node.external:
            return  # an external's prefix is not ours to manage
        prefix = self.session.store.layout.path_for_spec(node)
        if os.path.isdir(prefix):
            shutil.rmtree(prefix, ignore_errors=True)
            hub = self.session.telemetry
            hub.count("store.orphan_prefixes_healed")
            hub.event("store.orphan_healed", package=node.name,
                      hash=node.dag_hash(8))

    # -- installing one node from the build cache -------------------------------
    def _install_from_cache(self, node, keep_stage=False):
        """Extract + relocate + verify one cached node; returns
        :class:`BuildStats` with ``cache_hit=True``.

        Phases are named ``extract``/``relocate``/``verify`` — a warm
        install emits **zero** ``install.phase.build`` spans, which is
        how telemetry proves no compilation happened.  Any cache-layer
        failure (digest mismatch — including the ``buildcache.corrupt``
        fault — unsafe tarball, or post-extract verification issues)
        tears down the partial prefix and falls back to a source build:
        the cache is an accelerator, never a correctness risk.
        """
        from repro.store.buildcache import BuildCacheError, relocate_tree
        from repro.store.database import InstallRecord
        from repro.store.verify import verify_install

        session = self.session
        hub = session.telemetry
        cache = session.buildcache
        layout = session.store.layout
        dag_hash = node.dag_hash()
        prefix = None
        start = time.perf_counter()
        phases = {}
        timer = _PhaseTimer(phases, hub, package=node.name)
        try:
            with hub.span(
                "install.cached",
                package=node.name,
                version=str(node.version),
                worker=threading.current_thread().name,
            ) as span:
                with timer.phase("extract"):
                    data = cache.fetch_tarball(node, dag_hash)
                    sidecar = cache.load_sidecar(dag_hash)
                    prefix = layout.create_install_directory(node)
                    files = cache.extract(data, prefix)
                with timer.phase("relocate"):
                    old_root = sidecar.get("root") or ""
                    rewritten = relocate_tree(prefix, old_root, session.root)
                    hub.count("buildcache.relocations")
                    hub.count("buildcache.relocated_files", rewritten)
                with timer.phase("verify"):
                    issues = verify_install(
                        session, InstallRecord(node, prefix)
                    )
                    if issues:
                        raise BuildCacheError(
                            "Extracted cache entry for %s failed verification"
                            % node.name,
                            long_message="; ".join(str(i) for i in issues),
                        )
                self._write_binary_distribution(node, prefix, sidecar)
                span.set(files=files, relocated=rewritten,
                         digest=sidecar.get("digest", "")[:12])
                stats = BuildStats(
                    node, 0.0, time.perf_counter() - start, {},
                    phases=phases, cache_hit=True,
                )
                self._write_timing(node, prefix, stats)
                return stats
        except BuildCacheError as e:
            if prefix and os.path.isdir(prefix):
                shutil.rmtree(prefix, ignore_errors=True)
            hub.count("buildcache.fallback")
            hub.event(
                "buildcache.fallback",
                package=node.name,
                hash=dag_hash[:8],
                error=type(e).__name__,
            )
            return self._build(node, keep_stage=keep_stage)
        except Exception:
            if prefix and os.path.isdir(prefix):
                shutil.rmtree(prefix, ignore_errors=True)
            raise

    # -- splicing one node from a runtime-hash twin -----------------------------
    def _install_from_splice(self, node, donor_hash, keep_stage=False):
        """Extract a donor's prefix, relocate it, and re-identify it as
        ``node``; returns :class:`BuildStats` with ``spliced=True``.

        The donor was built from a DAG whose *full* hash differs from the
        requested node's — but its link/run closure (the only thing baked
        into the binaries) is identical, so its artifacts are valid for
        ``node`` byte-for-byte after relocation.  What must change is the
        *identity* metadata: ``spec.json`` is rewritten to the requested
        node's DAG and ``manifest.json``/``binary_distribution.json``
        record both the new hash and the donor (``spliced_from``) —
        provenance says what the prefix *is* and where its bytes came
        from.  Any failure (stale donor payload — including the
        ``buildcache.splice_stale`` fault — digest mismatch, or
        post-splice verification issues) tears the prefix down and falls
        back to a source build: splicing is an accelerator, never a
        correctness risk.
        """
        from repro.store.buildcache import (
            BuildCacheError,
            relocate_paths,
            relocate_tree,
        )
        from repro.store.database import InstallRecord
        from repro.store.verify import verify_install

        session = self.session
        hub = session.telemetry
        cache = session.buildcache
        layout = session.store.layout
        prefix = None
        start = time.perf_counter()
        phases = {}
        timer = _PhaseTimer(phases, hub, package=node.name)
        try:
            with hub.span(
                "install.spliced",
                package=node.name,
                version=str(node.version),
                worker=threading.current_thread().name,
            ) as span:
                with timer.phase("extract"):
                    data = cache.fetch_tarball(node, donor_hash, splice=True)
                    sidecar = cache.load_sidecar(donor_hash)
                    prefix = layout.create_install_directory(node)
                    files = cache.extract(data, prefix)
                with timer.phase("relocate"):
                    old_root = sidecar.get("root") or ""
                    rewritten = relocate_tree(prefix, old_root, session.root)
                    hub.count("buildcache.relocations")
                    hub.count("buildcache.relocated_files", rewritten)
                with timer.phase("splice"):
                    # the donor's binaries reference *its* DAG's
                    # hash-addressed prefixes (own RPATH, link deps);
                    # re-target every renamed prefix onto the requested
                    # DAG's paths, then re-identify the metadata
                    respliced = relocate_paths(
                        prefix,
                        self._splice_prefix_map(node, sidecar, layout),
                    )
                    hub.count("buildcache.spliced_files", respliced)
                    self._rewrite_spliced_provenance(node, prefix, donor_hash)
                with timer.phase("verify"):
                    issues = verify_install(
                        session, InstallRecord(node, prefix)
                    )
                    if issues:
                        raise BuildCacheError(
                            "Spliced prefix for %s failed verification"
                            % node.name,
                            long_message="; ".join(str(i) for i in issues),
                        )
                self._write_binary_distribution(
                    node, prefix, sidecar, spliced_from=donor_hash
                )
                span.set(files=files, relocated=rewritten,
                         donor=donor_hash[:8],
                         digest=sidecar.get("digest", "")[:12])
                stats = BuildStats(
                    node, 0.0, time.perf_counter() - start, {},
                    phases=phases, cache_hit=True, spliced=True,
                )
                self._write_timing(node, prefix, stats)
                return stats
        except BuildCacheError as e:
            if prefix and os.path.isdir(prefix):
                shutil.rmtree(prefix, ignore_errors=True)
            hub.count("buildcache.splice_fallback")
            hub.event(
                "buildcache.splice_fallback",
                package=node.name,
                hash=node.dag_hash(8),
                donor=donor_hash[:8],
                error=type(e).__name__,
            )
            return self._build(node, keep_stage=keep_stage)
        except Exception:
            if prefix and os.path.isdir(prefix):
                shutil.rmtree(prefix, ignore_errors=True)
            raise

    def _splice_prefix_map(self, node, sidecar, layout):
        """{donor prefix: target prefix} for every renamed DAG node.

        Matches the donor's nodes to the requested DAG's by name (splice
        donors have identical link/run closures, so names pair 1:1) and
        maps every node whose full hash — and therefore hash-addressed
        prefix path — changed.  Both sides resolve through this session's
        layout: the donor's root was already rewritten to ours.
        """
        from repro.spec.spec import Spec

        targets = {n.name: n for n in node.traverse()}
        mapping = {}
        donor_spec = Spec.from_dict(sidecar.get("spec", {}))
        for dnode in donor_spec.traverse():
            tnode = targets.get(dnode.name)
            if tnode is None or tnode.external:
                continue
            if dnode.dag_hash() == tnode.dag_hash():
                continue
            mapping[layout.path_for_spec(dnode)] = layout.path_for_spec(tnode)
        return mapping

    def _rewrite_spliced_provenance(self, node, prefix, donor_hash):
        """Re-identify an extracted donor prefix as ``node``.

        The donor's metadata describes *its* DAG; after splicing, the
        prefix belongs to the requested spec.  ``spec.json`` becomes the
        requested node's full DAG (what verification and the database
        compare against) and the manifest is recomputed over the spliced
        bytes — the prefix re-targeting rewrote RPATHs beyond what root
        normalization covers, so the donor's digests no longer describe
        these files — with a ``spliced_from`` back-pointer recording
        where the bytes came from.  Integrity against the donor was
        already enforced upstream by the tarball digest check.
        """
        meta = os.path.join(prefix, METADATA_DIR)
        mkdirp(meta)
        with open(os.path.join(meta, "spec.json"), "w") as f:
            json.dump(node.to_dict(), f, indent=1, sort_keys=True)
        self._write_manifest(node, prefix, spliced_from=donor_hash)

    def _write_binary_distribution(self, node, prefix, sidecar,
                                   spliced_from=None):
        """Mark the prefix as cache-extracted (origin root + digest)."""
        from repro.store.buildcache import BINARY_DISTRIBUTION

        meta = os.path.join(prefix, METADATA_DIR)
        mkdirp(meta)
        record = {
            "hash": node.dag_hash(),
            "digest": sidecar.get("digest"),
            "relocated_from": sidecar.get("root"),
        }
        if spliced_from is not None:
            record["spliced_from"] = spliced_from
        with open(os.path.join(meta, BINARY_DISTRIBUTION), "w") as f:
            json.dump(record, f, indent=1, sort_keys=True)

    # -- building one node ------------------------------------------------------
    def _build(self, node, keep_stage=False):
        from repro.store.installer import InstallError

        session = self.session
        hub = session.telemetry
        pkg = session.package_for(node)
        layout = session.store.layout
        compiler = session.compilers.compiler_for(node.compiler)

        stage = Stage(session.stage_root, pkg, tag=node.dag_hash(8)).create()
        pkg.stage = stage
        prefix = None
        log_file = None
        start = time.perf_counter()
        # Wall-clock per phase, measured unconditionally (independent of
        # telemetry sinks): every install persists these in timing.json.
        phases = {}
        timer = _PhaseTimer(phases, hub, package=pkg.name)
        try:
            with hub.span(
                "install.node",
                package=pkg.name,
                version=str(node.version),
                worker=threading.current_thread().name,
            ):
                with timer.phase("fetch"):
                    tarball = session.fetcher.fetch(pkg, node.version)
                with timer.phase("stage"):
                    stage.expand_tarball(tarball)
                    for patch_decl in pkg.patches_for_spec():
                        stage.apply_patch(patch_decl)
                    pkg.applied_patches = list(stage.applied_patches)

                prefix = layout.create_install_directory(node)
                if session.faults is not None:
                    # fault site: killed right after the prefix appeared
                    # on disk — SimulatedKill is a BaseException, so the
                    # partial-prefix cleanup below never sees it (a real
                    # SIGKILL would not either) and the orphan survives
                    session.faults.hit(
                        "executor.crash", target=node.name, where="post-stage"
                    )
                dep_prefixes = dependency_prefixes(node, layout)
                link_prefixes = dependency_prefixes(
                    node, layout, deptype=("link",)
                )
                wrapper_paths = None
                if session.subprocess_mode and session.use_wrappers:
                    wrapper_paths = write_wrappers(os.path.join(stage.path, "wrappers"))
                platform = session.platforms.get(node.architecture)
                env = build_environment(
                    node,
                    compiler,
                    prefix,
                    dep_prefixes,
                    wrapper_paths=wrapper_paths,
                    use_wrappers=session.use_wrappers,
                    target_flags=platform.flags_for(compiler.name),
                    link_prefixes=link_prefixes,
                )
                self._apply_env_hooks(pkg, node, env)

                log_path = os.path.join(prefix, METADATA_DIR, "build.log")
                log_file = open(log_path, "w")
                clock = VirtualClock()
                ctx = BuildContext(
                    pkg,
                    prefix,
                    env,
                    stage=stage,
                    cost_model=session.cost_model,
                    clock=clock,
                    use_wrappers=session.use_wrappers,
                    subprocess_mode=session.subprocess_mode,
                    build_log=log_file,
                    platform=platform,
                    telemetry=hub,
                )
                with timer.phase("build"):
                    with build_context(ctx):
                        pkg.install(node, prefix)

                with timer.phase("install"):
                    self._sanity_check(node, prefix)
                    self._write_provenance(node, pkg, prefix, env)
                    self._write_manifest(node, prefix)
                real = time.perf_counter() - start
                stats = BuildStats(
                    node, clock.seconds, real, clock.snapshot(), phases=phases
                )
                self._write_timing(node, prefix, stats)
                if session.faults is not None:
                    # fault site: killed after a complete, provenance-
                    # bearing prefix was written but before the caller
                    # can register it in the database
                    session.faults.hit(
                        "executor.crash", target=node.name, where="post-build"
                    )
            return stats
        except Exception as e:
            tail = self._log_tail(log_file)
            if prefix and os.path.isdir(prefix):
                shutil.rmtree(prefix, ignore_errors=True)
            if isinstance(e, ReproError):
                raise InstallError(
                    "Install of %s failed: %s" % (node.name, e.message),
                    long_message=tail or e.long_message,
                ) from e
            raise
        finally:
            if log_file is not None:
                log_file.close()
            if not keep_stage:
                stage.destroy()

    def _apply_env_hooks(self, pkg, node, env):
        """Run the package's and its dependencies' environment hooks."""
        from repro.util.environment import EnvironmentModifications

        build_mods = EnvironmentModifications()
        run_mods = EnvironmentModifications()
        pkg.setup_environment(build_mods, run_mods)
        for dep in node.traverse(root=False):
            if not self.session.repo.exists(dep.name):
                continue
            dep_pkg = self.session.package_for(dep)
            dep_pkg.setup_dependent_environment(build_mods, node)
        build_mods.apply(env)

    def _sanity_check(self, node, prefix):
        """The paper's "did the install actually do anything" check."""
        from repro.store.installer import InstallError

        contents = [
            entry for entry in os.listdir(prefix) if entry != METADATA_DIR
        ]
        if not contents:
            raise InstallError(
                "Install of %s produced an empty prefix %s" % (node.name, prefix)
            )

    def _write_provenance(self, node, pkg, prefix, env):
        meta = os.path.join(prefix, METADATA_DIR)
        mkdirp(meta)
        with open(os.path.join(meta, "spec.json"), "w") as f:
            json.dump(node.to_dict(), f, indent=1, sort_keys=True)
        try:
            with _GETSOURCE_LOCK:
                source = inspect.getsource(type(pkg))
        except (OSError, TypeError, SystemError):
            source = "# source unavailable for %s\n" % type(pkg).__name__
        with open(os.path.join(meta, "package.py"), "w") as f:
            f.write(source)
        with open(os.path.join(meta, "build_env.json"), "w") as f:
            json.dump(env, f, indent=1, sort_keys=True)
        with open(os.path.join(meta, "applied_patches.json"), "w") as f:
            json.dump(pkg.applied_patches, f)

    def _write_manifest(self, node, prefix, spliced_from=None):
        """Record every installed artifact with a relocation-invariant digest.

        ``.spack/manifest.json`` maps each non-metadata file (relative
        path) to its :func:`~repro.store.buildcache.normalized_digest` —
        the session root's bytes are hashed as a fixed placeholder, so
        the digest survives build-cache relocation.  Verification uses
        the manifest as the authoritative artifact list instead of
        assuming a ``bin/<name>`` + ``lib/lib<name>.so.json`` layout.
        """
        from repro.store.buildcache import normalized_digest

        root = self.session.root
        files = {}
        for dirpath, dirnames, filenames in os.walk(prefix):
            if dirpath == prefix and METADATA_DIR in dirnames:
                dirnames.remove(METADATA_DIR)
            dirnames.sort()
            for name in sorted(filenames):
                full = os.path.join(dirpath, name)
                with open(full, "rb") as f:
                    data = f.read()
                rel = os.path.relpath(full, prefix).replace(os.sep, "/")
                files[rel] = normalized_digest(data, root)
        meta = os.path.join(prefix, METADATA_DIR)
        mkdirp(meta)
        manifest = {
            "package": node.name,
            "hash": node.dag_hash(),
            "files": files,
        }
        if spliced_from is not None:
            manifest["spliced_from"] = spliced_from
        with open(os.path.join(meta, "manifest.json"), "w") as f:
            json.dump(manifest, f, indent=1, sort_keys=True)

    def _write_timing(self, node, prefix, stats):
        """Persist per-phase wall times next to the other provenance.

        Written for *every* build, telemetry sinks or not — timing is
        provenance (schema documented in docs/observability.md).
        """
        meta = os.path.join(prefix, METADATA_DIR)
        mkdirp(meta)
        with open(os.path.join(meta, "timing.json"), "w") as f:
            json.dump(
                {
                    "package": node.name,
                    "version": str(node.version),
                    "hash": node.dag_hash(),
                    "phases": stats.phases,
                    "total_s": stats.real_seconds,
                    "virtual_seconds": stats.virtual_seconds,
                    "counts": stats.counts,
                },
                f,
                indent=1,
                sort_keys=True,
            )

    @staticmethod
    def _log_tail(log_file, lines=20):
        if log_file is None:
            return None
        try:
            log_file.flush()
            with open(log_file.name) as f:
                content = f.readlines()
            return "".join(content[-lines:]) if content else None
        except OSError:
            return None
