"""The build executor: one node's fetch → stage → build → provenance.

This is the execution layer of the planner/scheduler/executor stack —
the old ``Installer._build_one`` logic made self-contained and safe to
run from any scheduler worker:

* all per-build state (stage, log, clock, phase timers) is local to the
  call; the ambient pieces (:func:`~repro.build.context.build_context`,
  the virtual working directory) are thread-private;
* a **per-prefix lock** (an ``fcntl`` lock file under the database
  directory) serializes builds of the same DAG hash across workers *and*
  across sessions sharing one store — after acquiring it the executor
  re-checks the database, so a build another session just finished is
  reused instead of re-built;
* stages are tagged with the spec's DAG hash, so same-name-same-version
  specs concretized differently never share a build tree.

A failing build tears down its partial prefix before the error
propagates: the scheduler registers a node in the database only after
the executor returns, so a crash mid-build can never leave a partial
prefix registered.
"""

import contextlib
import inspect
import json
import os
import shutil
import threading
import time

from repro.build.context import BuildContext, build_context
from repro.build.environment import build_environment, dependency_prefixes
from repro.build.wrappers import write_wrappers
from repro.errors import ReproError
from repro.fetch.stage import Stage
from repro.simfs import VirtualClock
from repro.store.layout import METADATA_DIR
from repro.util.filesystem import mkdirp
from repro.util.lock import Lock

#: ``inspect.getsource`` is not thread-safe: it mutates the global
#: ``linecache`` and drives ``ast.parse``, whose C-level recursion
#: accounting races under concurrent ``compile`` on CPython 3.11
#: ("AST constructor recursion depth mismatch").  Provenance writes
#: from parallel workers serialize their source lookups here.
_GETSOURCE_LOCK = threading.Lock()


class BuildStats:
    """Per-build accounting: virtual (modeled) and real elapsed seconds."""

    def __init__(self, spec, virtual_seconds, real_seconds, counts, phases=None):
        self.spec = spec
        self.virtual_seconds = virtual_seconds
        self.real_seconds = real_seconds
        self.counts = counts
        #: wall seconds per install phase (fetch/stage/build/install)
        self.phases = dict(phases or {})

    def __repr__(self):
        return "BuildStats(%s, %.3fs virtual)" % (self.spec.name, self.virtual_seconds)


class _PhaseTimer:
    """Times named install phases into a dict, mirroring them as spans.

    The wall-clock measurement always happens — ``timing.json`` is part
    of every install's provenance — while the telemetry span alongside it
    costs nothing unless a sink is listening.
    """

    def __init__(self, phases, hub, **attrs):
        self.phases = phases
        self.hub = hub
        self.attrs = attrs

    def phase(self, name):
        @contextlib.contextmanager
        def _timed():
            span = self.hub.span("install.phase." + name, **self.attrs)
            start = time.perf_counter()
            with span:
                try:
                    yield
                finally:
                    self.phases[name] = time.perf_counter() - start

        return _timed()


class BuildExecutor:
    """Executes one node's build against a session's store."""

    def __init__(self, session):
        self.session = session

    def _prefix_lock(self, node):
        """The cross-worker, cross-session lock for this node's prefix."""
        return Lock(
            os.path.join(
                self.session.db.db_dir, "prefix-locks", node.dag_hash() + ".lock"
            ),
            faults=self.session.faults,
            owner=node.name,
        )

    def execute(self, node, keep_stage=False):
        """Build ``node``; returns :class:`BuildStats`, or None if another
        session finished the same prefix while we waited for its lock
        (the caller should then treat the node as reused)."""
        with self._prefix_lock(node):
            if self.session.db.installed(node):
                return None
            self._heal_orphan_prefix(node)
            return self._build(node, keep_stage=keep_stage)

    def _heal_orphan_prefix(self, node):
        """Remove a prefix the database does not know about.

        A crash between prefix creation and database registration (a
        killed build) leaves an orphan directory; since registration is
        always last, an unregistered prefix is never trustworthy.  We
        hold both the prefix lock and a db miss here, so deleting it is
        safe — and required, or the layout would refuse to create the
        prefix and the store could never heal.
        """
        if node.external:
            return  # an external's prefix is not ours to manage
        prefix = self.session.store.layout.path_for_spec(node)
        if os.path.isdir(prefix):
            shutil.rmtree(prefix, ignore_errors=True)
            hub = self.session.telemetry
            hub.count("store.orphan_prefixes_healed")
            hub.event("store.orphan_healed", package=node.name,
                      hash=node.dag_hash(8))

    # -- building one node ------------------------------------------------------
    def _build(self, node, keep_stage=False):
        from repro.store.installer import InstallError

        session = self.session
        hub = session.telemetry
        pkg = session.package_for(node)
        layout = session.store.layout
        compiler = session.compilers.compiler_for(node.compiler)

        stage = Stage(session.stage_root, pkg, tag=node.dag_hash(8)).create()
        pkg.stage = stage
        prefix = None
        log_file = None
        start = time.perf_counter()
        # Wall-clock per phase, measured unconditionally (independent of
        # telemetry sinks): every install persists these in timing.json.
        phases = {}
        timer = _PhaseTimer(phases, hub, package=pkg.name)
        try:
            with hub.span(
                "install.node",
                package=pkg.name,
                version=str(node.version),
                worker=threading.current_thread().name,
            ):
                with timer.phase("fetch"):
                    tarball = session.fetcher.fetch(pkg, node.version)
                with timer.phase("stage"):
                    stage.expand_tarball(tarball)
                    for patch_decl in pkg.patches_for_spec():
                        stage.apply_patch(patch_decl)
                    pkg.applied_patches = list(stage.applied_patches)

                prefix = layout.create_install_directory(node)
                if session.faults is not None:
                    # fault site: killed right after the prefix appeared
                    # on disk — SimulatedKill is a BaseException, so the
                    # partial-prefix cleanup below never sees it (a real
                    # SIGKILL would not either) and the orphan survives
                    session.faults.hit(
                        "executor.crash", target=node.name, where="post-stage"
                    )
                dep_prefixes = dependency_prefixes(node, layout)
                wrapper_paths = None
                if session.subprocess_mode and session.use_wrappers:
                    wrapper_paths = write_wrappers(os.path.join(stage.path, "wrappers"))
                platform = session.platforms.get(node.architecture)
                env = build_environment(
                    node,
                    compiler,
                    prefix,
                    dep_prefixes,
                    wrapper_paths=wrapper_paths,
                    use_wrappers=session.use_wrappers,
                    target_flags=platform.flags_for(compiler.name),
                )
                self._apply_env_hooks(pkg, node, env)

                log_path = os.path.join(prefix, METADATA_DIR, "build.log")
                log_file = open(log_path, "w")
                clock = VirtualClock()
                ctx = BuildContext(
                    pkg,
                    prefix,
                    env,
                    stage=stage,
                    cost_model=session.cost_model,
                    clock=clock,
                    use_wrappers=session.use_wrappers,
                    subprocess_mode=session.subprocess_mode,
                    build_log=log_file,
                    platform=platform,
                    telemetry=hub,
                )
                with timer.phase("build"):
                    with build_context(ctx):
                        pkg.install(node, prefix)

                with timer.phase("install"):
                    self._sanity_check(node, prefix)
                    self._write_provenance(node, pkg, prefix, env)
                real = time.perf_counter() - start
                stats = BuildStats(
                    node, clock.seconds, real, clock.snapshot(), phases=phases
                )
                self._write_timing(node, prefix, stats)
                if session.faults is not None:
                    # fault site: killed after a complete, provenance-
                    # bearing prefix was written but before the caller
                    # can register it in the database
                    session.faults.hit(
                        "executor.crash", target=node.name, where="post-build"
                    )
            return stats
        except Exception as e:
            tail = self._log_tail(log_file)
            if prefix and os.path.isdir(prefix):
                shutil.rmtree(prefix, ignore_errors=True)
            if isinstance(e, ReproError):
                raise InstallError(
                    "Install of %s failed: %s" % (node.name, e.message),
                    long_message=tail or e.long_message,
                ) from e
            raise
        finally:
            if log_file is not None:
                log_file.close()
            if not keep_stage:
                stage.destroy()

    def _apply_env_hooks(self, pkg, node, env):
        """Run the package's and its dependencies' environment hooks."""
        from repro.util.environment import EnvironmentModifications

        build_mods = EnvironmentModifications()
        run_mods = EnvironmentModifications()
        pkg.setup_environment(build_mods, run_mods)
        for dep in node.traverse(root=False):
            if not self.session.repo.exists(dep.name):
                continue
            dep_pkg = self.session.package_for(dep)
            dep_pkg.setup_dependent_environment(build_mods, node)
        build_mods.apply(env)

    def _sanity_check(self, node, prefix):
        """The paper's "did the install actually do anything" check."""
        from repro.store.installer import InstallError

        contents = [
            entry for entry in os.listdir(prefix) if entry != METADATA_DIR
        ]
        if not contents:
            raise InstallError(
                "Install of %s produced an empty prefix %s" % (node.name, prefix)
            )

    def _write_provenance(self, node, pkg, prefix, env):
        meta = os.path.join(prefix, METADATA_DIR)
        mkdirp(meta)
        with open(os.path.join(meta, "spec.json"), "w") as f:
            json.dump(node.to_dict(), f, indent=1, sort_keys=True)
        try:
            with _GETSOURCE_LOCK:
                source = inspect.getsource(type(pkg))
        except (OSError, TypeError, SystemError):
            source = "# source unavailable for %s\n" % type(pkg).__name__
        with open(os.path.join(meta, "package.py"), "w") as f:
            f.write(source)
        with open(os.path.join(meta, "build_env.json"), "w") as f:
            json.dump(env, f, indent=1, sort_keys=True)
        with open(os.path.join(meta, "applied_patches.json"), "w") as f:
            json.dump(pkg.applied_patches, f)

    def _write_timing(self, node, prefix, stats):
        """Persist per-phase wall times next to the other provenance.

        Written for *every* build, telemetry sinks or not — timing is
        provenance (schema documented in docs/observability.md).
        """
        meta = os.path.join(prefix, METADATA_DIR)
        mkdirp(meta)
        with open(os.path.join(meta, "timing.json"), "w") as f:
            json.dump(
                {
                    "package": node.name,
                    "version": str(node.version),
                    "hash": node.dag_hash(),
                    "phases": stats.phases,
                    "total_s": stats.real_seconds,
                    "virtual_seconds": stats.virtual_seconds,
                    "counts": stats.counts,
                },
                f,
                indent=1,
                sort_keys=True,
            )

    @staticmethod
    def _log_tail(log_file, lines=20):
        if log_file is None:
            return None
        try:
            log_file.flush()
            with open(log_file.name) as f:
                content = f.readlines()
            return "".join(content[-lines:]) if content else None
        except OSError:
            return None
