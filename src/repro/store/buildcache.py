"""The binary build cache: relocatable, hash-addressed prefix tarballs.

The paper's hash-addressed prefixes (§3.4.2) give every concrete spec a
portable identity: the *relative* install path depends only on the spec
(``<arch>/<compiler>/<name>-<version><variants>-<hash8>``), so a prefix
built under one session root can be replanted under another by
rewriting the embedded root — the relocation step binary Spack made
standard ("Bridging the Gap Between Binary and Source Based Package
Management in Spack", PAPERS.md).

A cache is a directory, Mirror-style::

    <cache-root>/index.json                      {hash: {name, version, digest}}
    <cache-root>/<hh>/<name>-<version>-<hash>.tar.gz
    <cache-root>/<hash>.spec.json                metadata/provenance sidecar

where ``<hh>`` is the first two hash characters (fanout).  The sidecar
records the full concrete spec, the session root the prefix was built
under (the relocation source), and the tarball's SHA-256.  Tarballs are
**deterministic** — members sorted, mtimes/uids zeroed, gzip timestamp
pinned — so pushing the same prefix twice yields byte-identical
archives and digests.

Integrity is digest-first: :meth:`BuildCache.fetch_tarball` re-hashes
the bytes it read and refuses a mismatch (the ``require_digest``
stand-in for signature checking), which is also where the
``buildcache.corrupt`` fault site lives — the injected corruption must
be caught by exactly the check that would catch a real bit-flip.

File digests recorded in install manifests use
:func:`normalized_digest`: the session root's bytes are replaced by a
fixed placeholder before hashing, so a file's digest is invariant under
relocation and cold/warm installs can be compared byte-for-byte.
"""

import gzip
import hashlib
import io
import json
import os
import tarfile

from repro.errors import ReproError
from repro.util.filesystem import mkdirp
from repro.util.lock import Lock

#: stands in for the session root when hashing file content, so digests
#: survive relocation (the only bytes relocation may change)
ROOT_PLACEHOLDER = b"@@REPRO_PLACEHOLDER@@"

#: name of the marker written into an extracted prefix's metadata dir
BINARY_DISTRIBUTION = "binary_distribution.json"


class BuildCacheError(ReproError):
    """Cache layout, packing, or extraction problems."""


class DigestMismatchError(BuildCacheError):
    """A cache entry's bytes do not hash to the indexed digest."""

    def __init__(self, name, expected, actual):
        super().__init__(
            "Build cache digest mismatch for %s" % name,
            long_message="expected sha256 %s, got %s" % (expected, actual),
        )
        self.expected = expected
        self.actual = actual


def normalized_digest(data, root):
    """SHA-256 of ``data`` with ``root``'s bytes replaced by a placeholder.

    Relocation rewrites exactly one thing — the session root embedded in
    artifact payloads (RPATHs, recorded prefixes) — so hashing with the
    root normalized out makes a file's digest stable across push,
    relocation, and re-extraction under any other root.
    """
    if isinstance(root, str):
        root = root.encode()
    if root:
        data = data.replace(root, ROOT_PLACEHOLDER)
    return hashlib.sha256(data).hexdigest()


def relocate_tree(prefix, old_root, new_root):
    """Rewrite ``old_root`` to ``new_root`` in every file under ``prefix``.

    Returns the number of files actually rewritten.  Artifacts here are
    text/JSON (the simulated ELF of :mod:`repro.build.loader`), so a
    byte-level replace covers RPATH entries, recorded prefixes, and
    provenance alike — the moral equivalent of binary Spack's
    padded-path/patchelf rewriting.
    """
    if old_root == new_root:
        return 0
    old_bytes, new_bytes = old_root.encode(), new_root.encode()
    rewritten = 0
    for dirpath, _dirnames, filenames in os.walk(prefix):
        for filename in filenames:
            path = os.path.join(dirpath, filename)
            with open(path, "rb") as f:
                data = f.read()
            if old_bytes not in data:
                continue
            with open(path, "wb") as f:
                f.write(data.replace(old_bytes, new_bytes))
            rewritten += 1
    return rewritten


def relocate_paths(prefix, mapping):
    """Rewrite several path prefixes at once in every file under ``prefix``.

    ``mapping`` is ``{old_path: new_path}``.  One walk applies every
    replacement (longest keys first, so nested prefixes cannot clobber
    each other).  This is the *splice* half of relocation: a donor's
    binaries reference its dependencies' hash-addressed prefixes, and a
    splice re-targets those onto the requested DAG's prefixes — the
    by-name equivalent of patchelf'ing new RPATHs into an ELF.
    Returns the number of files rewritten.
    """
    pairs = [
        (old.encode(), new.encode())
        for old, new in sorted(
            mapping.items(), key=lambda kv: (-len(kv[0]), kv[0])
        )
        if old != new
    ]
    if not pairs:
        return 0
    rewritten = 0
    for dirpath, _dirnames, filenames in os.walk(prefix):
        for filename in filenames:
            path = os.path.join(dirpath, filename)
            with open(path, "rb") as f:
                data = f.read()
            new_data = data
            for old_bytes, new_bytes in pairs:
                new_data = new_data.replace(old_bytes, new_bytes)
            if new_data != data:
                with open(path, "wb") as f:
                    f.write(new_data)
                rewritten += 1
    return rewritten


class BuildCache:
    """A directory of relocatable prefix tarballs plus a JSON index."""

    def __init__(self, root, telemetry=None, faults=None, require_digest=True):
        self.root = os.path.abspath(root)
        self.telemetry = telemetry
        self.faults = faults
        #: refuse entries whose bytes do not match the indexed sha256
        self.require_digest = bool(require_digest)
        self._index_lock = Lock(os.path.join(self.root, ".index.lock"))

    # -- paths -------------------------------------------------------------
    def _index_path(self):
        return os.path.join(self.root, "index.json")

    def tarball_path(self, node, dag_hash=None):
        dag_hash = dag_hash or node.dag_hash()
        return os.path.join(
            self.root,
            dag_hash[:2],
            "%s-%s-%s.tar.gz" % (node.name, node.version, dag_hash),
        )

    def sidecar_path(self, dag_hash):
        return os.path.join(self.root, dag_hash + ".spec.json")

    # -- index -------------------------------------------------------------
    def read_index(self):
        """{dag_hash: {name, version, digest}} — empty when absent."""
        try:
            with open(self._index_path()) as f:
                return json.load(f)
        except (OSError, ValueError):
            return {}

    def _update_index(self, dag_hash, entry):
        """Read-merge-write the index under the cache's lock, so racing
        pushers (parallel workers, concurrent sessions) never lose each
        other's entries."""
        mkdirp(self.root)
        with self._index_lock:
            index = self.read_index()
            index[dag_hash] = entry
            self._atomic_write(
                self._index_path(),
                json.dumps(index, indent=1, sort_keys=True).encode(),
            )

    @staticmethod
    def _atomic_write(path, data):
        tmp = "%s.%d.tmp" % (path, os.getpid())
        with open(tmp, "wb") as f:
            f.write(data)
        os.replace(tmp, path)

    # -- queries -----------------------------------------------------------
    def has(self, dag_hash):
        return dag_hash in self.read_index()

    def lookup(self, dag_hash):
        """The index entry for a hash, or None."""
        return self.read_index().get(dag_hash)

    def entries(self):
        """(dag_hash, entry) pairs, deterministically ordered."""
        return sorted(self.read_index().items())

    def find_splice_donor(self, node):
        """A cached entry whose binaries are reusable for ``node``.

        A donor matches when its *runtime* sub-DAG (link/run closure,
        :meth:`Spec.runtime_hash`) is identical to the requested node's
        but its full ``dag_hash`` differs — i.e. the cached prefix was
        built against the same ABI surface with different build-only
        tooling.  Returns ``(donor_hash, entry)`` or ``None``; ties are
        broken by sorted hash so concurrent planners pick the same donor.
        """
        runtime_hash = node.runtime_hash()
        for donor_hash, entry in self.entries():
            if donor_hash == node.dag_hash():
                continue
            if entry.get("name") != node.name:
                continue
            if entry.get("runtime_hash") == runtime_hash:
                return donor_hash, entry
        return None

    def load_sidecar(self, dag_hash):
        """The metadata sidecar: {"spec": dict, "root": str, "digest": str}."""
        try:
            with open(self.sidecar_path(dag_hash)) as f:
                return json.load(f)
        except OSError:
            raise BuildCacheError(
                "Build cache has no sidecar for %s" % dag_hash
            ) from None
        except ValueError as e:
            raise BuildCacheError(
                "Corrupt build cache sidecar for %s" % dag_hash,
                long_message=str(e),
            ) from e

    # -- push --------------------------------------------------------------
    def push(self, node, prefix, root):
        """Pack ``prefix`` (built under session ``root``) into the cache.

        Returns the tarball's sha256.  The archive is deterministic, the
        writes atomic, and the index entry last — a reader who sees the
        hash in the index can always open the tarball and sidecar.
        """
        dag_hash = node.dag_hash()
        data = self._pack(prefix)
        digest = hashlib.sha256(data).hexdigest()

        tar_path = self.tarball_path(node, dag_hash)
        mkdirp(os.path.dirname(tar_path))
        self._atomic_write(tar_path, data)
        sidecar = {
            "spec": node.to_dict(),
            "root": root,
            "digest": digest,
        }
        self._atomic_write(
            self.sidecar_path(dag_hash),
            json.dumps(sidecar, indent=1, sort_keys=True).encode(),
        )
        self._update_index(
            dag_hash,
            {
                "name": node.name,
                "version": str(node.version),
                "digest": digest,
                "runtime_hash": node.runtime_hash(),
            },
        )
        if self.telemetry is not None:
            self.telemetry.count("buildcache.push")
            self.telemetry.event(
                "buildcache.pushed",
                package=node.name,
                hash=dag_hash[:8],
                digest=digest[:12],
                bytes=len(data),
            )
        return digest

    @staticmethod
    def _pack(prefix):
        """Deterministic tar.gz bytes of a prefix's contents.

        Members are sorted, mtimes/uids/gids zeroed, and the gzip header
        timestamp pinned, so identical trees give identical digests on
        every machine and every run.
        """
        members = []
        for dirpath, dirnames, filenames in os.walk(prefix):
            dirnames.sort()
            for name in sorted(filenames):
                full = os.path.join(dirpath, name)
                members.append((os.path.relpath(full, prefix), full))
        members.sort()

        raw = io.BytesIO()
        with tarfile.open(fileobj=raw, mode="w", format=tarfile.PAX_FORMAT) as tar:
            for arcname, full in members:
                info = tarfile.TarInfo(arcname)
                with open(full, "rb") as f:
                    data = f.read()
                info.size = len(data)
                info.mtime = 0
                info.uid = info.gid = 0
                info.uname = info.gname = ""
                info.mode = 0o755 if os.access(full, os.X_OK) else 0o644
                tar.addfile(info, io.BytesIO(data))
        out = io.BytesIO()
        with gzip.GzipFile(fileobj=out, mode="wb", mtime=0) as gz:
            gz.write(raw.getvalue())
        return out.getvalue()

    # -- pull --------------------------------------------------------------
    def fetch_tarball(self, node, dag_hash=None, splice=False):
        """Verified tarball bytes for a cached node.

        Re-hashes what was read and (with ``require_digest``) raises
        :class:`DigestMismatchError` on mismatch — the single choke
        point both real corruption and the ``buildcache.corrupt`` /
        ``buildcache.splice_stale`` faults must pass through.  Pass
        ``splice=True`` when fetching a *donor* tarball for splicing so
        the splice-specific fault site can arm independently.
        """
        dag_hash = dag_hash or node.dag_hash()
        entry = self.lookup(dag_hash)
        if entry is None:
            raise BuildCacheError("Build cache has no entry for %s" % node.name)
        path = self.tarball_path(node, dag_hash)
        try:
            with open(path, "rb") as f:
                data = f.read()
        except OSError as e:
            raise BuildCacheError(
                "Build cache tarball missing for %s: %s" % (node.name, path),
                long_message=str(e),
            ) from e

        if self.faults is not None:
            # fault site: bytes corrupted between index read and digest
            # check, as an on-disk bit-flip or truncated upload would be
            if self.faults.hit("buildcache.corrupt", target=node.name):
                data = b"\x00CORRUPT\x00" + data[16:]
            # fault site: a runtime-hash hit whose payload went stale —
            # the donor was re-uploaded corrupt, or the mirror served a
            # half-written object.  Must be caught by the digest check
            # and answered by falling back to a source build.
            if splice and self.faults.hit(
                "buildcache.splice_stale", target=node.name
            ):
                data = b"\x00STALE-SPLICE\x00" + data[16:]

        if self.require_digest:
            actual = hashlib.sha256(data).hexdigest()
            if actual != entry.get("digest"):
                if self.telemetry is not None:
                    self.telemetry.count("buildcache.digest_mismatch")
                raise DigestMismatchError(node.name, entry.get("digest"), actual)
        return data

    @staticmethod
    def extract(data, prefix):
        """Safely unpack tarball bytes into ``prefix``.

        Members are re-validated (no absolute paths, no ``..`` escapes)
        and written manually — a cache tarball is still foreign input.
        Returns the number of files written.
        """
        mkdirp(prefix)
        written = 0
        with tarfile.open(fileobj=io.BytesIO(data), mode="r:gz") as tar:
            for member in tar.getmembers():
                name = member.name
                if name.startswith(("/", "..")) or ".." in name.split("/"):
                    raise BuildCacheError(
                        "Refusing unsafe tar member %r" % name
                    )
                if not member.isfile():
                    continue
                dest = os.path.join(prefix, name)
                mkdirp(os.path.dirname(dest))
                src = tar.extractfile(member)
                with open(dest, "wb") as f:
                    f.write(src.read())
                os.chmod(dest, member.mode & 0o777)
                written += 1
        return written

    def __repr__(self):
        return "BuildCache(%r, %d entries)" % (self.root, len(self.read_index()))
