"""The install planner: a concrete DAG leveled into schedulable tasks.

The paper's build methodology (§3.4) gives every concrete spec its own
hash-addressed prefix, which makes independent sub-DAGs embarrassingly
parallel.  The planner turns a concrete spec into an
:class:`InstallPlan` — one :class:`NodeTask` per DAG node, each
classified (BUILD / REUSE / EXTERNAL), wired to its dependencies by DAG
hash, and driven through an explicit state machine::

    WAITING ──► READY ──► BUILDING ──► INSTALLED
       │           │           │
       │           │           └──────► FAILED
       └───────────┴──────────────────► SKIPPED   (a dependency failed)

The scheduler (:mod:`repro.store.scheduler`) owns the transitions; the
plan enforces their legality, answers "what is ready now?", and
propagates failure to transitive dependents while leaving disjoint
sub-DAGs runnable.  Task indices are the post-order positions of the
old recursive installer, so a single-worker run executes in exactly the
historical order.
"""

from repro.errors import ReproError

# -- states -----------------------------------------------------------------

#: not all dependencies installed yet
WAITING = "WAITING"
#: all dependencies installed; eligible for dispatch
READY = "READY"
#: claimed by a worker; executor running
BUILDING = "BUILDING"
#: terminal: installed (built, reused, or registered external)
INSTALLED = "INSTALLED"
#: terminal: the executor raised
FAILED = "FAILED"
#: terminal: a (transitive) dependency failed; never dispatched
SKIPPED = "SKIPPED"

#: legal transitions of the task state machine
_TRANSITIONS = {
    WAITING: {READY, SKIPPED},
    READY: {BUILDING, SKIPPED},
    BUILDING: {INSTALLED, FAILED},
    INSTALLED: set(),
    FAILED: set(),
    SKIPPED: set(),
}

#: states a task can never leave
TERMINAL_STATES = frozenset((INSTALLED, FAILED, SKIPPED))

# -- actions ----------------------------------------------------------------

#: fetch + stage + build into a fresh prefix
BUILD = "build"
#: already in the database: nothing to do (Figure 9's shared sub-DAGs)
REUSE = "reuse"
#: configured external (§4.4's vendor MPI): register, never build
EXTERNAL = "external"
#: in the binary build cache: extract + relocate instead of building
CACHED = "cached"
#: a runtime-hash twin is cached: splice its prefix in instead of building
SPLICED = "spliced"


class PlanError(ReproError):
    """Illegal plan construction or state transition."""


class NodeTask:
    """One DAG node's unit of schedulable work."""

    __slots__ = (
        "node", "key", "action", "index", "level", "is_root",
        "state", "deps", "dependents", "error", "stats", "worker",
        "donor",
    )

    def __init__(self, node, action, index, is_root=False, donor=None):
        self.node = node
        self.key = node.dag_hash()
        self.action = action
        #: for SPLICED tasks: the cached donor's dag_hash (runtime twin)
        self.donor = donor
        #: post-order position — the old recursive installer's execution
        #: order, used as the deterministic dispatch tie-break
        self.index = index
        #: topological level: 0 for leaves, 1 + max(dep levels) otherwise
        self.level = 0
        self.is_root = is_root
        self.state = WAITING
        #: DAG hashes of direct dependencies (within this plan)
        self.deps = set()
        #: DAG hashes of direct dependents (within this plan)
        self.dependents = set()
        #: the exception that FAILED this task
        self.error = None
        #: BuildStats when the executor built this node
        self.stats = None
        #: name of the worker thread that executed this task
        self.worker = None

    def to(self, new_state):
        """Transition, enforcing the state machine's legality."""
        if new_state not in _TRANSITIONS[self.state]:
            raise PlanError(
                "Illegal task transition for %s: %s -> %s"
                % (self.node.name, self.state, new_state)
            )
        self.state = new_state
        return self

    @property
    def terminal(self):
        return self.state in TERMINAL_STATES

    def __repr__(self):
        return "NodeTask(%s, %s, %s)" % (self.node.name, self.action, self.state)


class InstallPlan:
    """The tasks of one install request, with dependency bookkeeping."""

    def __init__(self, spec):
        self.spec = spec
        self.tasks = {}
        self._order = []  # keys in post-order (task.index order)

    # -- construction (used by the Planner) --------------------------------
    def _add_task(self, task):
        if task.key in self.tasks:
            return self.tasks[task.key]
        self.tasks[task.key] = task
        self._order.append(task.key)
        return task

    def _wire_edges(self):
        for task in self.tasks.values():
            for dep in task.node.dependencies.values():
                dep_key = dep.dag_hash()
                if dep_key in self.tasks and dep_key != task.key:
                    task.deps.add(dep_key)
                    self.tasks[dep_key].dependents.add(task.key)
        # levels: tasks in post-order see their dependencies first
        for key in self._order:
            task = self.tasks[key]
            if task.deps:
                task.level = 1 + max(self.tasks[d].level for d in task.deps)

    def seed_ready(self):
        """Move every dependency-free WAITING task to READY."""
        for task in self.ordered_tasks():
            if task.state == WAITING and not task.deps:
                task.to(READY)

    # -- queries ------------------------------------------------------------
    def ordered_tasks(self):
        """All tasks in deterministic (post-order) sequence."""
        return [self.tasks[k] for k in self._order]

    def ready_tasks(self):
        """READY tasks, lowest post-order index first."""
        return [t for t in self.ordered_tasks() if t.state == READY]

    def in_state(self, *states):
        return [t for t in self.ordered_tasks() if t.state in states]

    def levels(self):
        """Topological levels: list of task-key lists, leaves first."""
        by_level = {}
        for task in self.ordered_tasks():
            by_level.setdefault(task.level, []).append(task.key)
        return [by_level[lvl] for lvl in sorted(by_level)]

    @property
    def done(self):
        """True when every task reached a terminal state."""
        return all(t.terminal for t in self.tasks.values())

    @property
    def failed_tasks(self):
        return self.in_state(FAILED)

    # -- transitions driven by the scheduler --------------------------------
    def mark_installed(self, key):
        """Complete a task; return dependents that just became READY."""
        self.tasks[key].to(INSTALLED)
        newly_ready = []
        for dep_key in sorted(self.tasks[key].dependents):
            dependent = self.tasks[dep_key]
            if dependent.state != WAITING:
                continue
            if all(self.tasks[d].state == INSTALLED for d in dependent.deps):
                dependent.to(READY)
                newly_ready.append(dependent)
        return sorted(newly_ready, key=lambda t: t.index)

    def mark_failed(self, key, error=None):
        """Fail a task and SKIP every transitive dependent not yet started.

        Disjoint sub-DAGs are untouched: only tasks that (transitively)
        require the failed node become SKIPPED.  Returns the skipped
        tasks in deterministic order.
        """
        task = self.tasks[key]
        task.error = error if error is not None else task.error
        task.to(FAILED)
        skipped = []
        frontier = sorted(task.dependents)
        while frontier:
            dep_key = frontier.pop(0)
            dependent = self.tasks[dep_key]
            if dependent.state in (WAITING, READY):
                dependent.to(SKIPPED)
                skipped.append(dependent)
                frontier.extend(sorted(dependent.dependents))
        return sorted(skipped, key=lambda t: t.index)

    def skip_pending(self):
        """SKIP everything not yet started (the --fail-fast sweep)."""
        skipped = []
        for task in self.ordered_tasks():
            if task.state in (WAITING, READY):
                task.to(SKIPPED)
                skipped.append(task)
        return skipped

    def __len__(self):
        return len(self.tasks)

    def __repr__(self):
        states = {}
        for t in self.tasks.values():
            states[t.state] = states.get(t.state, 0) + 1
        return "InstallPlan(%s: %s)" % (self.spec.name, states)


class Planner:
    """Builds an :class:`InstallPlan` from a concrete spec."""

    def __init__(self, session):
        self.session = session

    def plan(self, spec, use_cache=None, use_splice=None):
        """Level the concrete DAG into tasks with classified actions.

        Classification consults the session state exactly as the old
        recursive walk did: configured externals are registered without
        building; DAG hashes already in the database are reused
        (Figure 9's shared sub-DAGs); hashes published in the binary
        build cache are CACHED (extract + relocate instead of build,
        when the session's pull policy — or the per-call ``use_cache``
        override — allows); nodes that miss on ``dag_hash`` but whose
        *runtime* sub-DAG matches a cached entry are SPLICED — the
        donor's binaries are reused because only build-time tooling
        differs ("Bridging the Gap", PAPERS.md); everything else is
        built.  Each node's ``prefix`` attribute is resolved here so
        downstream layers (environment assembly, RPATH wiring) see it
        regardless of which worker builds which node.
        """
        if not spec.concrete:
            raise PlanError("Only concrete specs can be planned: %s" % spec)
        session = self.session
        db = session.db
        layout = session.store.layout
        hub = session.telemetry
        cache = session.buildcache
        pull = session.buildcache_pull if use_cache is None else bool(use_cache)
        consult_cache = cache is not None and pull
        splice = (
            getattr(session, "buildcache_splice", True)
            if use_splice is None
            else bool(use_splice)
        )

        plan = InstallPlan(spec)
        with hub.span("install.plan", spec=str(spec.name)) as span:
            for index, node in enumerate(spec.traverse(order="post")):
                node.prefix = node.external or layout.path_for_spec(node)
                donor = None
                if node.external:
                    action = EXTERNAL
                elif db.installed(node):
                    action = REUSE
                elif consult_cache and cache.has(node.dag_hash()):
                    action = CACHED
                    hub.count("buildcache.hit")
                else:
                    found = (
                        cache.find_splice_donor(node)
                        if consult_cache and splice
                        else None
                    )
                    if found is not None:
                        action = SPLICED
                        donor = found[0]
                        hub.count("buildcache.splice_hit")
                    else:
                        action = BUILD
                    if consult_cache:
                        hub.count("buildcache.miss")
                plan._add_task(
                    NodeTask(
                        node, action, index,
                        is_root=(node is spec), donor=donor,
                    )
                )
            plan._wire_edges()
            plan.seed_ready()
            span.set(
                tasks=len(plan),
                build=sum(1 for t in plan.tasks.values() if t.action == BUILD),
                reuse=sum(1 for t in plan.tasks.values() if t.action == REUSE),
                external=sum(
                    1 for t in plan.tasks.values() if t.action == EXTERNAL
                ),
                cached=sum(
                    1 for t in plan.tasks.values() if t.action == CACHED
                ),
                spliced=sum(
                    1 for t in plan.tasks.values() if t.action == SPLICED
                ),
                levels=len(plan.levels()),
            )
        return plan
