"""The installed-package database.

A JSON index under the store root records every installed spec by DAG
hash: the full serialized spec, its prefix, whether the user asked for it
*explicitly* or it came in as a dependency, and when it was installed.
``spack find``-style queries and safe uninstalls (refusing to remove a
package something else links against) are answered from here.

The database is rebuildable: if the index file is corrupt or missing, it
is reconstructed from the per-prefix provenance files the installer
writes (§3.4.3) — tested by the failure-injection suite.

Concurrency: every mutation is a read-merge-write cycle under the index
lock — the on-disk index is re-read *inside* the critical section and
merged into the in-memory snapshot before this writer's change is
applied, so records added by a concurrent writer (another process, or a
scheduler worker thread) are never clobbered by a stale snapshot.
:meth:`Database.transaction` batches several mutations into one such
cycle: the DAG-parallel scheduler registers a whole drain of finished
builds with a single lock acquisition and a single index write.
"""

import contextlib
import json
import os
import time

from repro.errors import ReproError
from repro.spec.spec import Spec
from repro.store.layout import METADATA_DIR
from repro.util.filesystem import mkdirp


class DatabaseError(ReproError):
    """Database file problems."""


#: spec written into the index by the ``db.write_race`` fault, standing in
#: for a record a concurrent session registered behind our snapshot
FOREIGN_NAME = "injected-foreign"
FOREIGN_SPEC = FOREIGN_NAME + "@9.9%gcc@4.9.2=linux-x86_64"


class InstallRecord:
    """One installed spec: the spec, its prefix, and bookkeeping."""

    def __init__(self, spec, prefix, explicit=False, installed_at=None):
        self.spec = spec
        self.prefix = prefix
        self.explicit = explicit
        self.installed_at = installed_at if installed_at is not None else time.time()

    def to_dict(self):
        return {
            "spec": self.spec.to_dict(),
            "prefix": self.prefix,
            "explicit": self.explicit,
            "installed_at": self.installed_at,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            Spec.from_dict(data["spec"]),
            data["prefix"],
            explicit=data.get("explicit", False),
            installed_at=data.get("installed_at"),
        )

    def __repr__(self):
        return "InstallRecord(%s, %r)" % (self.spec, self.prefix)


class Database:
    """Hash-keyed index of installed specs, persisted as JSON."""

    _INDEX_NAME = "index.json"

    def __init__(self, root, telemetry=None, faults=None):
        from repro.util.lock import Lock

        self.root = os.path.abspath(root)
        self.db_dir = os.path.join(self.root, ".spack-db")
        self.index_path = os.path.join(self.db_dir, self._INDEX_NAME)
        #: optional session FaultInjector (db.write_race, lock.timeout)
        self.faults = faults
        #: serializes read-modify-write cycles across sessions/processes
        self.lock = Lock(
            os.path.join(self.db_dir, "index.lock"),
            faults=faults,
            owner="db.index",
        )
        #: optional session Telemetry hub (lock waits, reindex spans)
        self.telemetry = telemetry
        self._records = {}
        #: depth > 0 while inside transaction(); saves are deferred
        self._txn_depth = 0
        self._load()

    @contextlib.contextmanager
    def _locked(self):
        """Hold the index lock, recording how long acquisition took."""
        start = time.perf_counter()
        with self.lock:
            if self.telemetry is not None:
                self.telemetry.count("db.lock_acquires")
                self.telemetry.observe("db.lock_wait_s", time.perf_counter() - start)
            yield

    def _reread_index(self):
        """Merge the on-disk index into memory (call while locked).

        Unlike :meth:`refresh` this never discards in-memory records that
        the disk does not know about yet and never falls back to a prefix
        scan — it only folds in what other writers have persisted since
        our snapshot, with the disk winning for keys both sides know.
        """
        if not os.path.isfile(self.index_path):
            return
        try:
            with open(self.index_path) as f:
                data = json.load(f)
            disk = {
                h: InstallRecord.from_dict(rd)
                for h, rd in data.get("installs", {}).items()
            }
        except (ValueError, KeyError, OSError):
            return  # corrupt index: keep our snapshot; _save rewrites it
        self._records.update(disk)

    def _write_foreign_record(self):
        """Write :data:`FOREIGN_SPEC` straight to the on-disk index,
        bypassing this Database's snapshot — the ``db.write_race`` fault's
        stand-in for a concurrent session's writer."""
        spec = Spec(FOREIGN_SPEC)
        spec._concrete = spec._normal = True
        record = InstallRecord(
            spec, os.path.join(self.root, "opt", "foreign"), installed_at=0.0
        )
        try:
            with open(self.index_path) as f:
                data = json.load(f)
        except (OSError, ValueError):
            data = {"installs": {}}
        data.setdefault("installs", {})[spec.dag_hash()] = record.to_dict()
        mkdirp(self.db_dir)
        tmp = self.index_path + ".foreign.tmp"
        with open(tmp, "w") as f:
            json.dump(data, f, indent=1, sort_keys=True)
        os.replace(tmp, self.index_path)

    @contextlib.contextmanager
    def transaction(self):
        """One read-merge-write cycle batching any number of mutations.

        Acquires the index lock, re-reads the on-disk index, lets the
        body apply mutations (``add``/``remove``/``mark_explicit``), and
        persists once on exit.  Nests: inner transactions piggyback on
        the outermost one's read and write.
        """
        if self.faults is not None and self._txn_depth == 0:
            # fault site: a concurrent session wrote the index between our
            # snapshot and this transaction's lock; the re-read merge below
            # must fold its record in rather than clobber it
            if self.faults.hit("db.write_race") is not None:
                self._write_foreign_record()
        with self._locked():
            if self._txn_depth == 0:
                self._reread_index()
            self._txn_depth += 1
            try:
                yield self
            finally:
                self._txn_depth -= 1
            if self._txn_depth == 0:
                self._save()

    # -- persistence ---------------------------------------------------------
    def _load(self):
        if not os.path.isfile(self.index_path):
            # Missing index with existing prefixes (deleted, new mount):
            # reconstruct from provenance.  A fresh store scans nothing.
            self.rebuild_from_prefixes()
            return
        try:
            with open(self.index_path) as f:
                data = json.load(f)
            self._records = {
                h: InstallRecord.from_dict(rd) for h, rd in data.get("installs", {}).items()
            }
        except (ValueError, KeyError, OSError):
            # Corrupt index: rebuild from provenance files.
            self._records = {}
            self.rebuild_from_prefixes()

    def _save(self):
        mkdirp(self.db_dir)
        tmp = self.index_path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(
                {"installs": {h: r.to_dict() for h, r in self._records.items()}},
                f,
                indent=1,
                sort_keys=True,
            )
        os.replace(tmp, self.index_path)

    def rebuild_from_prefixes(self):
        """Reconstruct the index from per-prefix ``spec.json`` provenance."""
        from repro.store.layout import DirectoryLayout
        from repro.telemetry.hub import NULL_SPAN

        span = (
            self.telemetry.span("db.reindex", root=self.root)
            if self.telemetry is not None
            else NULL_SPAN
        )
        with span:
            layout = DirectoryLayout(os.path.join(self.root, "opt"))
            found = 0
            skipped = 0
            for prefix in layout.all_specs_dirs():
                spec_file = os.path.join(prefix, METADATA_DIR, "spec.json")
                if not os.path.isfile(spec_file):
                    skipped += 1
                    continue
                try:
                    with open(spec_file) as f:
                        spec = Spec.from_dict(json.load(f))
                except (ValueError, KeyError):
                    skipped += 1
                    continue
                self._records[spec.dag_hash()] = InstallRecord(spec, prefix)
                found += 1
            if found:
                self._save()
            span.set(found=found, skipped=skipped)
        return found

    def refresh(self):
        """Re-read the index (pick up other sessions' writes)."""
        self._records = {}
        self._load()

    # -- mutation --------------------------------------------------------------
    def add(self, spec, prefix, explicit=False):
        if not spec.concrete:
            raise DatabaseError("Only concrete specs can be installed: %s" % spec)
        with self.transaction():
            record = InstallRecord(spec.copy(), prefix, explicit=explicit)
            self._records[spec.dag_hash()] = record
        return record

    def remove(self, spec):
        with self.transaction():
            key = spec.dag_hash()
            if key not in self._records:
                raise DatabaseError("Spec is not installed: %s" % spec)
            record = self._records.pop(key)
        return record

    def mark_explicit(self, spec, explicit=True):
        with self.transaction():
            record = self.get(spec)
            if record:
                record.explicit = explicit

    # -- queries ----------------------------------------------------------------
    def get(self, spec):
        return self._records.get(spec.dag_hash())

    def installed(self, spec):
        return spec.dag_hash() in self._records

    def all_records(self):
        # list() snapshots: a scheduler worker may be adding concurrently
        return sorted(list(self._records.values()), key=lambda r: str(r.spec))

    def query(self, query_spec=None, explicit=None):
        """Installed specs satisfying an (abstract) query spec.

        ``session.find('mpileaks@1.0 %gcc')`` resolves here: each installed
        concrete spec is matched with strict satisfaction against the query.
        """
        results = []
        for record in list(self._records.values()):
            if explicit is not None and record.explicit != explicit:
                continue
            if query_spec is not None:
                qs = query_spec if isinstance(query_spec, Spec) else Spec(query_spec)
                if not record.spec.satisfies(qs, strict=True):
                    continue
            results.append(record)
        return sorted(results, key=lambda r: str(r.spec))

    def get_by_hash(self, hash_prefix):
        """Records whose DAG hash starts with ``hash_prefix`` (the CLI's
        ``find /db4650`` syntax)."""
        return [
            record
            for full_hash, record in sorted(list(self._records.items()))
            if full_hash.startswith(hash_prefix)
        ]

    def dependents_of(self, spec):
        """Installed specs that depend (transitively) on ``spec``."""
        key = spec.dag_hash()
        dependents = []
        for record in list(self._records.values()):
            if record.spec.dag_hash() == key:
                continue
            for node in record.spec.traverse(root=False):
                if node.dag_hash() == key:
                    dependents.append(record)
                    break
        return dependents

    def __len__(self):
        return len(self._records)

    def __iter__(self):
        return iter(self.all_records())
