"""The Store: a root directory holding prefixes, the database, and stages."""

import os

from repro.store.database import Database
from repro.store.layout import DirectoryLayout
from repro.util.filesystem import mkdirp


class Store:
    """One installation tree: ``<root>/opt/...`` prefixes + the database."""

    def __init__(self, root, telemetry=None, faults=None):
        self.root = os.path.abspath(root)
        mkdirp(self.root)
        self.layout = DirectoryLayout(os.path.join(self.root, "opt"))
        self.db = Database(self.root, telemetry=telemetry, faults=faults)

    def __repr__(self):
        return "Store(%r)" % self.root
