"""The installer: bottom-up DAG builds, sub-DAG reuse, provenance.

``install(spec)`` walks a *concrete* spec post-order (dependencies
first, §3.4) and, per node:

* **reuses** an existing installation when the node's DAG hash is already
  in the database — this is the shared sub-DAG behaviour of Figure 9
  (mpileaks built with mpich, then with openmpi, shares the whole dyninst
  subtree);
* **registers** configured externals without building them (§4.4's
  vendor MPI);
* otherwise **builds**: fetch + verify, stage, patch, set up the isolated
  environment with wrappers, run the package's ``install()``, sanity-check
  the result, and write provenance (§3.4.3: the spec, the package file
  used, the build log, the applied patches, the environment).

A failing build tears down its partial prefix and raises
:class:`InstallError` carrying the tail of the build log.
"""

import inspect
import json
import os
import shutil
import time

from repro.build.context import BuildContext, build_context
from repro.build.environment import build_environment, dependency_prefixes
from repro.build.wrappers import write_wrappers
from repro.errors import ReproError
from repro.fetch.stage import Stage
from repro.simfs import VirtualClock
from repro.store.layout import METADATA_DIR
from repro.util.filesystem import mkdirp, working_dir


class InstallError(ReproError):
    """A package failed to install."""


class UninstallError(ReproError):
    """Removal refused (dependents exist) or failed."""


class BuildStats:
    """Per-build accounting: virtual (modeled) and real elapsed seconds."""

    def __init__(self, spec, virtual_seconds, real_seconds, counts, phases=None):
        self.spec = spec
        self.virtual_seconds = virtual_seconds
        self.real_seconds = real_seconds
        self.counts = counts
        #: wall seconds per install phase (fetch/stage/build/install)
        self.phases = dict(phases or {})

    def __repr__(self):
        return "BuildStats(%s, %.3fs virtual)" % (self.spec.name, self.virtual_seconds)


class _PhaseTimer:
    """Times named install phases into a dict, mirroring them as spans.

    The wall-clock measurement always happens — ``timing.json`` is part
    of every install's provenance — while the telemetry span alongside it
    costs nothing unless a sink is listening.
    """

    def __init__(self, phases, hub, **attrs):
        self.phases = phases
        self.hub = hub
        self.attrs = attrs

    def phase(self, name):
        import contextlib

        @contextlib.contextmanager
        def _timed():
            span = self.hub.span("install.phase." + name, **self.attrs)
            start = time.perf_counter()
            with span:
                try:
                    yield
                finally:
                    self.phases[name] = time.perf_counter() - start

        return _timed()


class InstallResult:
    """What an ``install()`` call did: built / reused / external nodes."""

    def __init__(self, spec):
        self.spec = spec
        self.built = []
        self.reused = []
        self.externals = []

    @property
    def built_names(self):
        return [s.spec.name for s in self.built]

    @property
    def reused_names(self):
        return [s.name for s in self.reused]


class Installer:
    """Installs concrete specs into a session's store."""

    def __init__(self, session):
        self.session = session

    # -- public ------------------------------------------------------------
    def install(self, spec, explicit=True, keep_stage=False):
        if not spec.concrete:
            raise InstallError("Only concrete specs can be installed: %s" % spec)
        db = self.session.db
        layout = self.session.store.layout
        hub = self.session.telemetry
        result = InstallResult(spec)

        with hub.span("install", spec=str(spec.name)) as span:
            for node in spec.traverse(order="post"):
                node.prefix = node.external or layout.path_for_spec(node)
                if node.external:
                    if not db.installed(node):
                        db.add(node, node.external, explicit=False)
                    result.externals.append(node)
                    hub.count("install.external")
                    continue
                if db.installed(node):
                    result.reused.append(node)
                    hub.count("install.reused")
                    continue
                stats = self._build_one(node, keep_stage=keep_stage)
                db.add(node, node.prefix, explicit=(node is spec and explicit))
                result.built.append(stats)
                hub.count("install.built")
                if self.session.generate_modules:
                    from repro.modules.generator import ModuleGenerator

                    ModuleGenerator(self.session).write_for_spec(node)

            if db.installed(spec):
                db.mark_explicit(spec, explicit)
            span.set(
                built=len(result.built),
                reused=len(result.reused),
                externals=len(result.externals),
            )
        return result

    def uninstall(self, spec, force=False):
        db = self.session.db
        record = db.get(spec)
        if record is None:
            raise UninstallError("Spec is not installed: %s" % spec)
        dependents = db.dependents_of(spec)
        if dependents and not force:
            raise UninstallError(
                "Cannot uninstall %s: required by %s"
                % (spec.name, ", ".join(str(d.spec.name) for d in dependents)),
            )
        if not record.spec.external and os.path.isdir(record.prefix):
            shutil.rmtree(record.prefix)
        db.remove(spec)
        if self.session.generate_modules:
            from repro.modules.generator import ModuleGenerator

            ModuleGenerator(self.session).remove_for_spec(record.spec)
        return record

    # -- building one node ------------------------------------------------------
    def _build_one(self, node, keep_stage=False):
        session = self.session
        hub = session.telemetry
        pkg = session.package_for(node)
        layout = session.store.layout
        compiler = session.compilers.compiler_for(node.compiler)

        stage = Stage(session.stage_root, pkg).create()
        pkg.stage = stage
        prefix = None
        log_file = None
        start = time.perf_counter()
        # Wall-clock per phase, measured unconditionally (independent of
        # telemetry sinks): every install persists these in timing.json.
        phases = {}
        timer = _PhaseTimer(phases, hub, package=pkg.name)
        try:
            with hub.span("install.node", package=pkg.name, version=str(node.version)):
                with timer.phase("fetch"):
                    tarball = session.fetcher.fetch(pkg, node.version)
                with timer.phase("stage"):
                    stage.expand_tarball(tarball)
                    for patch_decl in pkg.patches_for_spec():
                        stage.apply_patch(patch_decl)
                    pkg.applied_patches = list(stage.applied_patches)

                prefix = layout.create_install_directory(node)
                dep_prefixes = dependency_prefixes(node, layout)
                wrapper_paths = None
                if session.subprocess_mode and session.use_wrappers:
                    wrapper_paths = write_wrappers(os.path.join(stage.path, "wrappers"))
                platform = session.platforms.get(node.architecture)
                env = build_environment(
                    node,
                    compiler,
                    prefix,
                    dep_prefixes,
                    wrapper_paths=wrapper_paths,
                    use_wrappers=session.use_wrappers,
                    target_flags=platform.flags_for(compiler.name),
                )
                self._apply_env_hooks(pkg, node, env)

                log_path = os.path.join(prefix, METADATA_DIR, "build.log")
                log_file = open(log_path, "w")
                clock = VirtualClock()
                ctx = BuildContext(
                    pkg,
                    prefix,
                    env,
                    stage=stage,
                    cost_model=session.cost_model,
                    clock=clock,
                    use_wrappers=session.use_wrappers,
                    subprocess_mode=session.subprocess_mode,
                    build_log=log_file,
                    platform=platform,
                    telemetry=hub,
                )
                with timer.phase("build"):
                    with build_context(ctx), working_dir(stage.source_path):
                        pkg.install(node, prefix)

                with timer.phase("install"):
                    self._sanity_check(node, prefix)
                    self._write_provenance(node, pkg, prefix, env)
                real = time.perf_counter() - start
                stats = BuildStats(
                    node, clock.seconds, real, clock.snapshot(), phases=phases
                )
                self._write_timing(node, prefix, stats)
            return stats
        except Exception as e:
            tail = self._log_tail(log_file)
            if prefix and os.path.isdir(prefix):
                shutil.rmtree(prefix, ignore_errors=True)
            if isinstance(e, ReproError):
                raise InstallError(
                    "Install of %s failed: %s" % (node.name, e.message),
                    long_message=tail or e.long_message,
                ) from e
            raise
        finally:
            if log_file is not None:
                log_file.close()
            if not keep_stage:
                stage.destroy()

    def _apply_env_hooks(self, pkg, node, env):
        """Run the package's and its dependencies' environment hooks."""
        from repro.util.environment import EnvironmentModifications

        build_mods = EnvironmentModifications()
        run_mods = EnvironmentModifications()
        pkg.setup_environment(build_mods, run_mods)
        for dep in node.traverse(root=False):
            if not self.session.repo.exists(dep.name):
                continue
            dep_pkg = self.session.package_for(dep)
            dep_pkg.setup_dependent_environment(build_mods, node)
        build_mods.apply(env)

    def _sanity_check(self, node, prefix):
        """The paper's "did the install actually do anything" check."""
        contents = [
            entry for entry in os.listdir(prefix) if entry != METADATA_DIR
        ]
        if not contents:
            raise InstallError(
                "Install of %s produced an empty prefix %s" % (node.name, prefix)
            )

    def _write_provenance(self, node, pkg, prefix, env):
        meta = os.path.join(prefix, METADATA_DIR)
        mkdirp(meta)
        with open(os.path.join(meta, "spec.json"), "w") as f:
            json.dump(node.to_dict(), f, indent=1, sort_keys=True)
        try:
            source = inspect.getsource(type(pkg))
        except (OSError, TypeError):
            source = "# source unavailable for %s\n" % type(pkg).__name__
        with open(os.path.join(meta, "package.py"), "w") as f:
            f.write(source)
        with open(os.path.join(meta, "build_env.json"), "w") as f:
            json.dump(env, f, indent=1, sort_keys=True)
        with open(os.path.join(meta, "applied_patches.json"), "w") as f:
            json.dump(pkg.applied_patches, f)

    def _write_timing(self, node, prefix, stats):
        """Persist per-phase wall times next to the other provenance.

        Written for *every* build, telemetry sinks or not — timing is
        provenance (schema documented in docs/observability.md).
        """
        meta = os.path.join(prefix, METADATA_DIR)
        mkdirp(meta)
        with open(os.path.join(meta, "timing.json"), "w") as f:
            json.dump(
                {
                    "package": node.name,
                    "version": str(node.version),
                    "hash": node.dag_hash(),
                    "phases": stats.phases,
                    "total_s": stats.real_seconds,
                    "virtual_seconds": stats.virtual_seconds,
                    "counts": stats.counts,
                },
                f,
                indent=1,
                sort_keys=True,
            )

    @staticmethod
    def _log_tail(log_file, lines=20):
        if log_file is None:
            return None
        try:
            log_file.flush()
            with open(log_file.name) as f:
                content = f.readlines()
            return "".join(content[-lines:]) if content else None
        except OSError:
            return None
