"""The installer: a thin facade over plan → schedule → execute.

``install(spec)`` used to be a single-threaded recursive post-order
walk.  It is now three explicit layers (the paper's §3.4 build
methodology makes independent sub-DAGs embarrassingly parallel, since
every concrete spec owns a hash-addressed prefix):

* the **planner** (:mod:`repro.store.plan`) levels the concrete DAG
  into per-node tasks with an explicit state machine, classifying each
  node: **reuse** an existing installation when its DAG hash is already
  in the database (Figure 9's shared sub-DAGs), **register** configured
  externals without building (§4.4's vendor MPI), **build** the rest;
* the **scheduler** (:mod:`repro.store.scheduler`) dispatches READY
  tasks to a bounded worker pool (``jobs``; default 1 keeps the old
  deterministic order), skipping dependents of failures while disjoint
  sub-DAGs finish;
* the **executor** (:mod:`repro.store.executor`) runs one node's
  fetch + verify, stage, patch, isolated-environment build, sanity
  check, and provenance write (§3.4.3) — session-safe, so any worker
  can run any node.

A failing build tears down its partial prefix; after the plan drains,
the first failure (in deterministic post-order) is re-raised —
:class:`InstallError` carrying the tail of the build log, or the
original exception for non-Repro errors.

Existing callers are untouched: ``Installer.install`` has the same
signature (plus optional ``jobs``/``fail_fast``) and the same
single-worker behavior, and :class:`BuildStats` still lives importably
here (its implementation moved to the executor).
"""

import os
import shutil

from repro.errors import ReproError
from repro.store.executor import BuildExecutor, BuildStats  # noqa: F401  (compat re-export)
from repro.store.plan import Planner
from repro.store.scheduler import Scheduler


class InstallError(ReproError):
    """A package failed to install."""


class UninstallError(ReproError):
    """Removal refused (dependents exist) or failed."""


class InstallResult:
    """What an ``install()`` call did: built / reused / external nodes."""

    def __init__(self, spec):
        self.spec = spec
        self.built = []
        self.reused = []
        self.externals = []
        #: nodes installed by extracting + relocating a build-cache entry
        self.cached = []
        #: nodes installed by splicing a runtime-hash twin's binaries
        self.spliced = []
        #: nodes SKIPPED because a dependency failed (empty on success)
        self.skipped = []
        #: worker-pool width the scheduler ran with
        self.jobs = 1
        #: wall-clock seconds of the scheduler drive; compare with the
        #: sum of per-node real_seconds to see DAG-parallel overlap
        self.wall_seconds = 0.0

    @property
    def built_names(self):
        return [s.spec.name for s in self.built]

    @property
    def reused_names(self):
        return [s.name for s in self.reused]


class Installer:
    """Installs concrete specs into a session's store."""

    def __init__(self, session):
        self.session = session

    # -- public ------------------------------------------------------------
    def install(self, spec, explicit=True, keep_stage=False, jobs=None,
                fail_fast=False, use_cache=None, use_splice=None):
        """Plan, schedule, and execute the install of a concrete spec.

        ``jobs`` bounds the worker pool (None: the session's
        ``install_jobs``, itself defaulting to 1 — the historical
        sequential behavior).  With ``fail_fast`` the scheduler stops
        dispatching new tasks after the first failure instead of
        finishing disjoint sub-DAGs.  ``use_cache`` overrides the
        session's build-cache pull policy for this install, and
        ``use_splice`` its splice policy (whether a runtime-hash twin's
        cached binaries may stand in for a full-hash miss).
        """
        if not spec.concrete:
            raise InstallError("Only concrete specs can be installed: %s" % spec)
        session = self.session
        db = session.db
        hub = session.telemetry
        jobs = session.install_jobs if jobs is None else max(1, int(jobs))
        result = InstallResult(spec)

        with hub.span("install", spec=str(spec.name), jobs=jobs) as span:
            plan = Planner(session).plan(
                spec, use_cache=use_cache, use_splice=use_splice
            )
            outcome = Scheduler(session, jobs=jobs, fail_fast=fail_fast).run(
                plan, keep_stage=keep_stage
            )
            result.built = outcome.built
            result.reused = outcome.reused
            result.externals = outcome.externals
            result.cached = outcome.cached
            result.spliced = outcome.spliced
            result.skipped = [t.node for t in outcome.skipped]
            result.jobs = jobs
            result.wall_seconds = outcome.wall_seconds
            error = outcome.first_error
            if error is not None:
                raise error
            if db.installed(spec):
                db.mark_explicit(spec, explicit)
            span.set(
                built=len(result.built),
                reused=len(result.reused),
                externals=len(result.externals),
                cached=len(result.cached),
                spliced=len(result.spliced),
                wall_s=result.wall_seconds,
            )
        return result

    def uninstall(self, spec, force=False):
        db = self.session.db
        record = db.get(spec)
        if record is None:
            raise UninstallError("Spec is not installed: %s" % spec)
        dependents = db.dependents_of(spec)
        if dependents and not force:
            raise UninstallError(
                "Cannot uninstall %s: required by %s"
                % (spec.name, ", ".join(str(d.spec.name) for d in dependents)),
            )
        if not record.spec.external and os.path.isdir(record.prefix):
            shutil.rmtree(record.prefix)
        db.remove(spec)
        if self.session.generate_modules:
            from repro.modules.generator import ModuleGenerator

            ModuleGenerator(self.session).remove_for_spec(record.spec)
        return record

    # -- compat -------------------------------------------------------------
    def _build_one(self, node, keep_stage=False):
        """Deprecated passthrough to the executor (kept for old callers)."""
        return BuildExecutor(self.session).execute(node, keep_stage=keep_stage)
