"""The install store: layout, database, and the install pipeline
(§3.4.2–3.4.3) split into planner / scheduler / executor layers.

``Installer`` (and its errors), the ``Planner``/``InstallPlan``, the
``Scheduler``, and the ``BuildExecutor`` are resolved lazily via module
``__getattr__``: the install pipeline pulls in the whole build
subsystem (:mod:`repro.build`), which lightweight store consumers — the
database, layout math, ``spack find``-style queries — never need.
"""

from repro.store.layout import DirectoryLayout, SiteConvention, SITE_CONVENTIONS
from repro.store.database import Database, InstallRecord
from repro.store.store import Store

__all__ = [
    "Store",
    "DirectoryLayout",
    "SiteConvention",
    "SITE_CONVENTIONS",
    "Database",
    "InstallRecord",
    "Installer",
    "InstallError",
    "UninstallError",
    "Planner",
    "InstallPlan",
    "Scheduler",
    "BuildExecutor",
    "BuildStats",
]

_LAZY_NAMES = {
    "Installer": "repro.store.installer",
    "InstallError": "repro.store.installer",
    "UninstallError": "repro.store.installer",
    "Planner": "repro.store.plan",
    "InstallPlan": "repro.store.plan",
    "Scheduler": "repro.store.scheduler",
    "BuildExecutor": "repro.store.executor",
    "BuildStats": "repro.store.executor",
}


def __getattr__(name):
    module_name = _LAZY_NAMES.get(name)
    if module_name is not None:
        import importlib

        return getattr(importlib.import_module(module_name), name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


def __dir__():
    return sorted(set(globals()) | set(_LAZY_NAMES))
