"""The install store: directory layout, database, installer (§3.4.2–3.4.3).

``Installer`` (and its errors) are resolved lazily via module
``__getattr__``: the installer pulls in the whole build subsystem
(:mod:`repro.build`), which lightweight store consumers — the database,
layout math, ``spack find``-style queries — never need.
"""

from repro.store.layout import DirectoryLayout, SiteConvention, SITE_CONVENTIONS
from repro.store.database import Database, InstallRecord
from repro.store.store import Store

__all__ = [
    "Store",
    "DirectoryLayout",
    "SiteConvention",
    "SITE_CONVENTIONS",
    "Database",
    "InstallRecord",
    "Installer",
    "InstallError",
    "UninstallError",
]

_LAZY_INSTALLER_NAMES = ("Installer", "InstallError", "UninstallError")


def __getattr__(name):
    if name in _LAZY_INSTALLER_NAMES:
        from repro.store import installer

        return getattr(installer, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


def __dir__():
    return sorted(set(globals()) | set(_LAZY_INSTALLER_NAMES))
