"""The install store: directory layout, database, installer (§3.4.2–3.4.3)."""

from repro.store.layout import DirectoryLayout, SiteConvention, SITE_CONVENTIONS
from repro.store.database import Database, InstallRecord
from repro.store.installer import Installer, InstallError, UninstallError
from repro.store.store import Store

__all__ = [
    "Store",
    "DirectoryLayout",
    "SiteConvention",
    "SITE_CONVENTIONS",
    "Database",
    "InstallRecord",
    "Installer",
    "InstallError",
    "UninstallError",
]
