"""The install scheduler: READY tasks onto a bounded worker pool.

Middle layer of the planner/scheduler/executor stack.  The scheduler
owns the plan's state transitions: it dispatches READY tasks (lowest
post-order index first) to at most ``jobs`` workers, completes them as
their builds finish, and propagates failure by SKIPPING transitive
dependents while disjoint sub-DAGs keep building.  ``--fail-fast``
tightens that to "stop dispatching anything new after the first
failure".

Two execution modes, one state machine:

* ``jobs == 1`` — fully deterministic in-thread loop, no pool.  Tasks
  run in exactly the old recursive installer's post-order; tests and
  reproducible runs get bit-stable behavior.
* ``jobs > 1`` — a ``ThreadPoolExecutor``.  Completions are handled on
  the scheduler thread (database registration, module generation, state
  transitions), so workers only ever run the session-safe executor.
  Finished builds are registered in **write-batched** database
  transactions: one index read-merge-write per drain of completions
  rather than per node.

Telemetry: a ``scheduler.run`` span wraps the whole drive; the
``scheduler.queue_depth`` gauge tracks the READY backlog at every
dispatch; per-task ``scheduler.dispatch`` events carry worker
attribution; ``install.built/cached/spliced/reused/external/failed/skipped`` counters
aggregate outcomes.
"""

import time

from repro.store import plan as _plan


class SchedulerOutcome:
    """What one scheduler drive did, in deterministic (post-order) order."""

    def __init__(self, plan, jobs, wall_seconds):
        self.plan = plan
        self.jobs = jobs
        #: wall-clock of the whole scheduler drive (compare with the sum
        #: of per-node ``BuildStats.real_seconds`` to see the overlap)
        self.wall_seconds = wall_seconds
        self.built = [
            t.stats
            for t in plan.ordered_tasks()
            if t.state == _plan.INSTALLED and t.stats is not None
            and not t.stats.cache_hit
        ]
        #: BuildStats of nodes extracted + relocated from the build cache
        self.cached = [
            t.stats
            for t in plan.ordered_tasks()
            if t.state == _plan.INSTALLED and t.stats is not None
            and t.stats.cache_hit and not t.stats.spliced
        ]
        #: BuildStats of nodes spliced from a runtime-hash twin's binaries
        self.spliced = [
            t.stats
            for t in plan.ordered_tasks()
            if t.state == _plan.INSTALLED and t.stats is not None
            and t.stats.spliced
        ]
        self.reused = [
            t.node
            for t in plan.ordered_tasks()
            if t.state == _plan.INSTALLED and t.stats is None
            and t.action != _plan.EXTERNAL
        ]
        self.externals = [
            t.node
            for t in plan.ordered_tasks()
            if t.state == _plan.INSTALLED and t.action == _plan.EXTERNAL
        ]
        self.failed = plan.in_state(_plan.FAILED)
        self.skipped = plan.in_state(_plan.SKIPPED)

    @property
    def first_error(self):
        """The first failure in deterministic order, or None."""
        return self.failed[0].error if self.failed else None


class Scheduler:
    """Drives an :class:`~repro.store.plan.InstallPlan` to completion."""

    def __init__(self, session, jobs=1, fail_fast=False, executor=None):
        from repro.store.executor import BuildExecutor

        self.session = session
        self.jobs = max(1, int(jobs))
        self.fail_fast = fail_fast
        self.executor = executor or BuildExecutor(session)

    # -- public -------------------------------------------------------------
    def run(self, plan, keep_stage=False):
        """Execute every task; returns a :class:`SchedulerOutcome`.

        Never raises for build failures — they are recorded on the
        tasks (``state == FAILED``, ``task.error``) and surfaced via the
        outcome, so the caller decides the error policy.
        """
        hub = self.session.telemetry
        start = time.perf_counter()
        with hub.span(
            "scheduler.run", spec=str(plan.spec.name), jobs=self.jobs
        ) as span:
            if self.jobs == 1:
                self._run_serial(plan, keep_stage)
            else:
                self._run_pooled(plan, keep_stage)
            outcome = SchedulerOutcome(
                plan, self.jobs, time.perf_counter() - start
            )
            span.set(
                built=len(outcome.built),
                reused=len(outcome.reused),
                externals=len(outcome.externals),
                cached=len(outcome.cached),
                spliced=len(outcome.spliced),
                failed=len(outcome.failed),
                skipped=len(outcome.skipped),
                wall_s=outcome.wall_seconds,
            )
        return outcome

    # -- serial mode --------------------------------------------------------
    def _run_serial(self, plan, keep_stage):
        hub = self.session.telemetry
        while True:
            ready = plan.ready_tasks()
            if not ready:
                break
            hub.gauge("scheduler.queue_depth", len(ready))
            task = ready[0]
            task.to(_plan.BUILDING)
            hub.event(
                "scheduler.dispatch", package=task.node.name, worker="main"
            )
            try:
                stats = self._execute(task, keep_stage)
            except Exception as e:  # noqa: BLE001 — policy decided upstream
                self._complete_failure(plan, task, e)
                if self.fail_fast:
                    plan.skip_pending()
                    break
                continue
            self._complete_success(plan, task, stats)

    # -- pooled mode --------------------------------------------------------
    def _run_pooled(self, plan, keep_stage):
        import concurrent.futures

        hub = self.session.telemetry
        stop_dispatch = False
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="install-worker"
        ) as pool:
            in_flight = {}

            def dispatch():
                # captured on the scheduler thread, inside the live
                # ``scheduler.run`` span: every worker's spans join THIS
                # trace instead of starting orphaned per-thread ones
                context = hub.capture()
                for task in plan.ready_tasks():
                    if len(in_flight) >= self.jobs:
                        break
                    task.to(_plan.BUILDING)
                    hub.event("scheduler.dispatch", package=task.node.name)
                    in_flight[
                        pool.submit(self._execute, task, keep_stage, context)
                    ] = task
                hub.gauge("scheduler.queue_depth", len(plan.ready_tasks()))

            dispatch()
            while in_flight:
                finished, _ = concurrent.futures.wait(
                    in_flight, return_when=concurrent.futures.FIRST_COMPLETED
                )
                # Deterministic completion handling: drain the whole batch
                # in post-order, registering successes in ONE database
                # transaction (write batching under the index lock).
                batch = sorted(
                    ((in_flight.pop(f), f) for f in finished),
                    key=lambda pair: pair[0].index,
                )
                successes = [
                    (task, f) for task, f in batch if f.exception() is None
                ]
                if successes:
                    with self.session.db.transaction():
                        for task, f in successes:
                            self._complete_success(plan, task, f.result())
                for task, f in batch:
                    if f.exception() is not None:
                        self._complete_failure(plan, task, f.exception())
                        if self.fail_fast:
                            stop_dispatch = True
                if stop_dispatch:
                    continue  # drain in-flight; dispatch nothing new
                dispatch()
            if stop_dispatch:
                plan.skip_pending()

    # -- task execution (worker side) ---------------------------------------
    def _execute(self, task, keep_stage, context=None):
        """Run one task's action; returns BuildStats or None (trivial).

        ``context`` is the scheduler thread's :class:`TraceContext` at
        dispatch time; adopting it parents this worker's spans into the
        install trace (serial mode runs on the scheduler thread, where
        the ``scheduler.run`` span is already current — no adoption).
        """
        import threading

        task.worker = threading.current_thread().name
        hub = self.session.telemetry
        if hub.current_span() is not None:
            context = None
        with hub.adopt(context):
            if task.action == _plan.BUILD:
                return self.executor.execute(task.node, keep_stage=keep_stage)
            if task.action == _plan.CACHED:
                return self.executor.execute_cached(
                    task.node, keep_stage=keep_stage
                )
            if task.action == _plan.SPLICED:
                return self.executor.execute_spliced(
                    task.node, task.donor, keep_stage=keep_stage
                )
            return None  # REUSE and EXTERNAL are pure bookkeeping

    # -- completion handling (scheduler side) -------------------------------
    def _complete_success(self, plan, task, stats):
        db = self.session.db
        hub = self.session.telemetry
        node = task.node
        if task.action == _plan.EXTERNAL:
            if not db.installed(node):
                db.add(node, node.external, explicit=False)
            hub.count("install.external")
        elif task.action == _plan.REUSE or stats is None:
            # planned reuse, or another session won the prefix lock race
            hub.count("install.reused")
        else:
            task.stats = stats
            db.add(node, node.prefix, explicit=False)
            push_enabled = (
                self.session.buildcache is not None
                and self.session.buildcache_push
            )
            if stats.spliced:
                hub.count("install.spliced")
                if push_enabled:
                    # publish the spliced prefix under the *requested*
                    # hash so the next install of this exact DAG is a
                    # direct cache hit (the cache converges on splices)
                    self.session.buildcache.push(
                        node, node.prefix, self.session.root
                    )
            elif stats.cache_hit:
                hub.count("install.cached")
            else:
                hub.count("install.built")
                if push_enabled:
                    # auto-publish only genuine builds: a cache-extracted
                    # prefix would re-pack with its distribution marker
                    self.session.buildcache.push(
                        node, node.prefix, self.session.root
                    )
            if self.session.generate_modules:
                from repro.modules.generator import ModuleGenerator

                ModuleGenerator(self.session).write_for_spec(node)
        plan.mark_installed(task.key)

    def _complete_failure(self, plan, task, error):
        hub = self.session.telemetry
        hub.count("install.failed")
        skipped = plan.mark_failed(task.key, error)
        if skipped:
            hub.count("install.skipped", len(skipped))
        hub.event(
            "scheduler.task_failed",
            package=task.node.name,
            error=type(error).__name__,
            skipped=[t.node.name for t in skipped],
        )
