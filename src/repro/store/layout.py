"""Install-prefix layout and the site naming conventions of Table 1.

The default layout is the paper's "Spack default" row::

    <root>/opt/<arch>/<compiler>-<comp_version>/<package>-<version>-<options>-<hash>

Every concrete spec gets a unique prefix; the trailing component is a
SHA1 prefix of the dependency DAG (§3.4.2), so two builds that differ
only in a transitive dependency still land in different directories,
while identical sub-DAGs are shared (Figure 9).

:class:`SiteConvention` renders the other rows of Table 1 (LLNL, ORNL,
TACC/Lmod) so the naming-convention comparison can be regenerated
mechanically — including the ways those conventions *lose information*
(no dependency identity, at most one distinguishing build tag).
"""

import os

from repro.errors import ReproError
from repro.util.filesystem import mkdirp

#: length of the hash component in directory names
HASH_LEN = 8

#: name of the per-prefix metadata directory (provenance, §3.4.3)
METADATA_DIR = ".spack"


class DirectoryLayoutError(ReproError):
    """Prefix computation or creation failed."""


class DirectoryLayout:
    """Hash-addressed install prefixes under a store root."""

    def __init__(self, root):
        self.root = os.path.abspath(root)

    def relative_path_for_spec(self, spec):
        if not spec.concrete:
            raise DirectoryLayoutError(
                "Cannot compute a prefix for abstract spec %s" % spec
            )
        compiler = "%s-%s" % (spec.compiler.name, spec.compiler.versions)
        dir_name = "%s-%s%s-%s" % (
            spec.name,
            spec.versions,
            str(spec.variants),
            spec.dag_hash(HASH_LEN),
        )
        return os.path.join(spec.architecture, compiler, dir_name)

    def path_for_spec(self, spec):
        """The unique install prefix for a concrete spec.

        Externals (§4.4's vendor MPI) keep their configured prefix.
        """
        if spec.external:
            return spec.external
        return os.path.join(self.root, self.relative_path_for_spec(spec))

    def metadata_path(self, spec):
        return os.path.join(self.path_for_spec(spec), METADATA_DIR)

    def create_install_directory(self, spec):
        prefix = self.path_for_spec(spec)
        if os.path.exists(prefix):
            raise DirectoryLayoutError("Install prefix already exists: %s" % prefix)
        mkdirp(prefix, self.metadata_path(spec))
        return prefix

    def all_specs_dirs(self):
        """Yield every install prefix currently present under the root."""
        if not os.path.isdir(self.root):
            return
        for arch in sorted(os.listdir(self.root)):
            arch_dir = os.path.join(self.root, arch)
            if not os.path.isdir(arch_dir):
                continue
            for compiler in sorted(os.listdir(arch_dir)):
                comp_dir = os.path.join(arch_dir, compiler)
                if not os.path.isdir(comp_dir):
                    continue
                for pkg_dir in sorted(os.listdir(comp_dir)):
                    yield os.path.join(comp_dir, pkg_dir)


class SiteConvention:
    """A named path-template convention from Table 1 of the paper."""

    def __init__(self, site, template, description=""):
        self.site = site
        self.template = template
        self.description = description

    def path_for_spec(self, spec, build_tag="1"):
        """Render the convention's path for a concrete spec.

        ``build_tag`` stands in for the ad-hoc "$build" identifiers sites
        invent; the conventions cannot derive it from the spec — which is
        exactly the paper's point.
        """
        mpi = spec.format("${MPINAME}") or "nompi"
        mpi_version = spec.format("${MPIVER}") or "0"
        return spec.format(
            self.template,
            BUILD=build_tag,
            MPI=mpi,
            MPI_VERSION=mpi_version,
        )

    def __repr__(self):
        return "SiteConvention(%r)" % self.site


#: The rows of Table 1.  ``${...}`` tokens expand via Spec.format().
SITE_CONVENTIONS = [
    SiteConvention(
        "LLNL (global)",
        "/usr/global/tools/${ARCHITECTURE}/${PACKAGE}/${VERSION}",
        "architecture/package/version",
    ),
    SiteConvention(
        "LLNL (local)",
        "/usr/local/tools/${PACKAGE}-${COMPILERNAME}-${BUILD}-${VERSION}",
        "package-compiler-build-version",
    ),
    SiteConvention(
        "ORNL",
        "/${ARCHITECTURE}/${PACKAGE}/${VERSION}/${BUILD}",
        "arch/package/version/build",
    ),
    SiteConvention(
        "TACC / Lmod",
        "/${COMPILERNAME}-${COMPILERVER}/${MPI}/${MPI_VERSION}/${PACKAGE}/${VERSION}",
        "compiler/mpi/package/version hierarchy",
    ),
    SiteConvention(
        "Spack default",
        "/${ARCHITECTURE}/${COMPILERNAME}-${COMPILERVER}/${PACKAGE}-${VERSION}-${OPTIONS}-${HASH:8}",
        "every parameter plus a dependency hash",
    ),
]
