"""The provider index: versioned virtual dependencies (paper §3.3).

A *virtual* package (``mpi``, ``blas``) is an interface name, not a
package file.  Concrete packages declare what they provide::

    class Mvapich2(Package):
        provides('mpi@:2.2', when='@1.9')
        provides('mpi@:3.0', when='@2.0')

The :class:`ProviderIndex` is the reverse map the concretizer consults
(Figure 6, "Resolve Virtual Deps"): virtual name → candidate providers,
each with the interface versions it offers and the provider constraint
under which it offers them.
"""

import threading
from collections import OrderedDict

from repro.spec.spec import Spec
from repro.spec.errors import SpecError
from repro.version import any_version

#: per-virtual memo shards hold at most this many distinct constraint
#: keys; beyond it the least-recently-used entry is evicted (the memo
#: keeps serving hot constraints instead of freezing at the cap)
MEMO_SHARD_CAP = 1024


class ProviderEntry:
    """One (provider, interface, condition) triple from a provides()."""

    __slots__ = ("provider_name", "provided_spec", "when")

    def __init__(self, provider_name, provided_spec, when):
        self.provider_name = provider_name
        self.provided_spec = provided_spec
        self.when = when

    def __repr__(self):
        return "ProviderEntry(%s provides %s when %s)" % (
            self.provider_name,
            self.provided_spec,
            self.when,
        )


class ProviderIndex:
    """Reverse index from virtual interface names to provider packages."""

    def __init__(self, package_classes=None):
        self._index = {}
        #: memo of providers_for results, sharded by virtual name: each
        #: shard is a bounded LRU (OrderedDict) keyed by the virtual
        #: spec's canonical DAG tuple.  update() drops only the shards
        #: of the virtuals the new provider touches, so registering one
        #: package does not flush memo state for unrelated interfaces.
        self._memo_shards = {}
        self._memo_lock = threading.Lock()
        self.memo_hits = 0
        self.memo_misses = 0
        if package_classes:
            for name, cls in package_classes.items():
                self.update(name, cls)

    @classmethod
    def from_repo(cls, repo):
        """Build an index over every package in a Repository/RepoPath."""
        return cls(repo.all_classes())

    def update(self, provider_name, package_class):
        touched = set()
        for interface in getattr(package_class, "provided", ()):
            self._index.setdefault(interface.spec.name, []).append(
                ProviderEntry(provider_name, interface.spec, interface.when)
            )
            touched.add(interface.spec.name)
        if touched:
            with self._memo_lock:
                for vname in touched:
                    self._memo_shards.pop(vname, None)

    # -- queries ------------------------------------------------------------
    def is_virtual(self, name):
        return name in self._index

    def virtual_names(self):
        return sorted(self._index)

    def providers_for(self, virtual_spec):
        """Candidate provider specs satisfying a virtual constraint.

        ``virtual_spec`` may be a name or a constrained spec (``mpi@2:``).
        Each returned provider spec carries the ``when`` condition's
        constraints (e.g. ``mvapich2@2.0`` for an ``mpi@2.1:`` request —
        only the 2.0 series of mvapich2 provides MPI 3).  Non-version
        constraints on the virtual (compiler, variants, arch) transfer to
        the provider, since an implementation node stands in for the
        interface node in the DAG.
        """
        vspec = virtual_spec if isinstance(virtual_spec, Spec) else Spec(virtual_spec)
        if vspec.name not in self._index:
            return []
        # Memo hit: the candidate list for this exact constraint has been
        # built before.  Return fresh copies — callers constrain/reorder
        # the candidates, and the memoized originals must stay pristine.
        memo_key = vspec._dag_key()
        with self._memo_lock:
            shard = self._memo_shards.get(vspec.name)
            cached = shard.get(memo_key) if shard is not None else None
            if cached is not None:
                shard.move_to_end(memo_key)
                self.memo_hits += 1
                return [c.copy() for c in cached]
            self.memo_misses += 1
        candidates = []
        for entry in self._index[vspec.name]:
            if not entry.provided_spec.versions.overlaps(vspec.versions):
                continue
            provider = Spec(name=entry.provider_name)
            if entry.when is not None:
                try:
                    provider.constrain(entry.when)
                except SpecError:
                    continue
            # Transfer non-version constraints from the virtual request.
            carried = vspec.copy(deps=False)
            carried.name = entry.provider_name
            carried.versions = any_version()
            try:
                provider.constrain(carried)
            except SpecError:
                continue
            candidates.append(provider)
        result = _dedupe_specs(candidates)
        with self._memo_lock:
            shard = self._memo_shards.setdefault(vspec.name, OrderedDict())
            shard[memo_key] = [c.copy() for c in result]
            shard.move_to_end(memo_key)
            while len(shard) > MEMO_SHARD_CAP:
                shard.popitem(last=False)
        return result

    def providers_for_name(self, virtual_name):
        """All provider package names for a virtual, unconstrained."""
        return sorted({e.provider_name for e in self._index.get(virtual_name, ())})

    def satisfies_virtual(self, provider_spec, virtual_spec, package_class):
        """Does a (possibly concrete) provider spec satisfy a virtual
        constraint?  Used to validate existing DAG nodes against
        ``depends_on('mpi@2:')`` requirements."""
        vspec = virtual_spec if isinstance(virtual_spec, Spec) else Spec(virtual_spec)
        for interface in getattr(package_class, "provided", ()):
            if interface.spec.name != vspec.name:
                continue
            if interface.when is not None and not provider_spec.satisfies(interface.when):
                continue
            if interface.spec.versions.overlaps(vspec.versions):
                return True
        return False

    def __contains__(self, name):
        return self.is_virtual(name)


def _dedupe_specs(specs):
    result = []
    for spec in specs:
        if not any(spec == existing for existing in result):
            result.append(spec)
    return result
