"""Package repositories: where package classes live and how they layer.

A :class:`Repository` maps package names to :class:`~repro.package.Package`
subclasses.  On-disk repositories use the layout::

    repo_root/
        mpileaks/package.py
        sgeos_xml/package.py          # names may contain '_' or '-'
        ...

where the *directory name* is the package name verbatim and ``package.py``
defines a class whose name is the CamelCase form of it.

:class:`RepoPath` stacks repositories: earlier repos shadow later ones, so
a site can override or extend built-in recipes without touching them
(§4.3.2).  Site package classes may subclass the built-in class they
replace; directive metadata is inherited by copy (see
:class:`~repro.directives.directives.DirectiveMeta`).
"""

import importlib.util
import os
import sys

from repro.errors import ReproError
from repro.package.package import Package
from repro.util.naming import mod_to_class, valid_name


class RepoError(ReproError):
    """Problem loading or using a package repository."""


class NoSuchPackageError(RepoError):
    """The named package is in no repository on the path."""

    def __init__(self, name, repo=None):
        where = " in repository %s" % repo if repo else ""
        super().__init__("Package %r not found%s" % (name, where))
        self.name = name


class Repository:
    """One namespace of package classes.

    Parameters
    ----------
    root:
        Directory in the layout described above, or None for a purely
        programmatic repository (the synthetic corpus uses this).
    namespace:
        Short dotted name, used to keep imported modules distinct.
    """

    def __init__(self, root=None, namespace="repo"):
        self.root = os.path.abspath(root) if root else None
        self.namespace = namespace
        self._classes = {}
        self._scanned = False
        #: bumped on every registration; cheap change detector used to
        #: invalidate derived digests (see core/conc_cache.py)
        self._mtoken = 0

    # -- registration -----------------------------------------------------
    def add_class(self, name, cls):
        """Register a package class programmatically."""
        if not valid_name(name):
            raise RepoError("Invalid package name %r" % name)
        if not (isinstance(cls, type) and issubclass(cls, Package)):
            raise RepoError("%r is not a Package subclass" % (cls,))
        cls.name = name
        cls.namespace = self.namespace
        self._classes[name] = cls
        self._mtoken += 1
        return cls

    def mutation_token(self):
        """Monotonic token changing whenever the package set changes."""
        self._scan()
        return self._mtoken

    def register(self, name):
        """Decorator form of :meth:`add_class`."""

        def _register(cls):
            return self.add_class(name, cls)

        return _register

    # -- on-disk scanning ----------------------------------------------------
    def _scan(self):
        if self._scanned or self.root is None:
            self._scanned = True
            return
        if not os.path.isdir(self.root):
            raise RepoError("Repository root does not exist: %s" % self.root)
        for entry in sorted(os.listdir(self.root)):
            pkg_dir = os.path.join(self.root, entry)
            pkg_file = os.path.join(pkg_dir, "package.py")
            if not os.path.isfile(pkg_file):
                continue
            if not valid_name(entry):
                raise RepoError("Invalid package directory name %r" % entry)
            self._load_package(entry, pkg_file)
        self._scanned = True

    def _load_package(self, name, pkg_file):
        module_name = "repro._repos.%s.%s" % (
            self.namespace,
            name.replace("-", "_").replace(".", "_"),
        )
        spec = importlib.util.spec_from_file_location(module_name, pkg_file)
        module = importlib.util.module_from_spec(spec)
        # Give package files the DSL without imports, as the original does:
        # directives and common helpers are pre-seeded into the module.
        _seed_package_module(module)
        sys.modules[module_name] = module
        try:
            spec.loader.exec_module(module)
        except Exception as e:
            raise RepoError("Error loading package %r: %s" % (name, e)) from e

        expected = mod_to_class(name)
        cls = getattr(module, expected, None)
        if cls is None:
            candidates = [
                v
                for v in vars(module).values()
                if isinstance(v, type)
                and issubclass(v, Package)
                and v.__module__ == module_name
            ]
            if len(candidates) != 1:
                raise RepoError(
                    "Package file for %r must define class %s" % (name, expected)
                )
            cls = candidates[0]
        self.add_class(name, cls)

    # -- queries ----------------------------------------------------------------
    def exists(self, name):
        self._scan()
        return name in self._classes

    def get_class(self, name):
        self._scan()
        try:
            return self._classes[name]
        except KeyError:
            raise NoSuchPackageError(name, self.namespace) from None

    def all_package_names(self):
        self._scan()
        return sorted(self._classes)

    def all_classes(self):
        self._scan()
        return dict(self._classes)

    def __contains__(self, name):
        return self.exists(name)

    def __len__(self):
        self._scan()
        return len(self._classes)

    def __repr__(self):
        return "Repository(%r, namespace=%r)" % (self.root, self.namespace)


def _seed_package_module(module):
    """Pre-seed a package module's namespace with the DSL (Figure 1 uses
    ``version``/``depends_on``/``Package`` without imports)."""
    from repro import directives
    from repro.spec.spec import Spec
    from repro.util.filesystem import join_path, working_dir
    from repro.version import Version

    from repro.build import shell

    module.Package = Package
    module.Spec = Spec
    module.Version = Version
    module.working_dir = working_dir
    module.join_path = join_path
    # Build-tool proxies resolve the active build context at call time,
    # so seeding them at import time is safe.
    module.configure = shell.configure
    module.make = shell.make
    module.cmake = shell.cmake
    for directive_name in (
        "version",
        "depends_on",
        "provides",
        "patch",
        "variant",
        "extends",
        "conflicts",
        "when",
    ):
        setattr(module, directive_name, getattr(directives, directive_name))


class RepoPath:
    """An ordered stack of repositories; earlier entries win (§4.3.2)."""

    def __init__(self, repos=()):
        self.repos = list(repos)

    def prepend(self, repo):
        self.repos.insert(0, repo)

    def append(self, repo):
        self.repos.append(repo)

    def mutation_token(self):
        """Token combining the stack shape and every member's token."""
        return tuple(
            (repo.namespace, repo.root, repo.mutation_token())
            for repo in self.repos
        )

    def exists(self, name):
        return any(repo.exists(name) for repo in self.repos)

    def get_class(self, name):
        for repo in self.repos:
            if repo.exists(name):
                return repo.get_class(name)
        raise NoSuchPackageError(name)

    def repo_for(self, name):
        for repo in self.repos:
            if repo.exists(name):
                return repo
        raise NoSuchPackageError(name)

    def all_package_names(self):
        names = []
        seen = set()
        for repo in self.repos:
            for name in repo.all_package_names():
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        return sorted(names)

    def all_classes(self):
        return {name: self.get_class(name) for name in self.all_package_names()}

    def __contains__(self, name):
        return self.exists(name)

    def __iter__(self):
        return iter(self.repos)

    def __len__(self):
        return len(self.all_package_names())
