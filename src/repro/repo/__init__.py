"""Package repositories and virtual-dependency providers (§3.3, §4.3.2)."""

from repro.repo.repository import (
    NoSuchPackageError,
    RepoError,
    RepoPath,
    Repository,
)
from repro.repo.providers import ProviderIndex

__all__ = [
    "Repository",
    "RepoPath",
    "ProviderIndex",
    "RepoError",
    "NoSuchPackageError",
]
