"""``create``: generate package boilerplate from a download URL.

The original tool's ``spack create <url>`` workflow: detect the package
name and version from the URL, scrape the listing page for sibling
versions, checksum what is available, and write a ready-to-edit
``package.py`` into a repository directory.
"""

import hashlib
import os
import posixpath
import re

from repro.errors import ReproError
from repro.util.filesystem import mkdirp
from repro.util.naming import mod_to_class, valid_name
from repro.version.url import parse_version_from_url


class PackageCreationError(ReproError):
    """Could not derive a package skeleton from the URL."""


_NAME_RE = re.compile(r"([A-Za-z][A-Za-z0-9_+-]*?)[-_.]?v?\d")


def guess_name_from_url(url):
    """Package name from the archive file name (``libelf-0.8.13.tar.gz``
    → ``libelf``)."""
    base = posixpath.basename(url)
    match = _NAME_RE.match(base)
    if not match:
        raise PackageCreationError("Cannot guess a package name from %r" % url)
    name = match.group(1).lower().rstrip("-_.")
    if not valid_name(name):
        raise PackageCreationError("Guessed name %r is not a valid package name" % name)
    return name


_TEMPLATE = '''\
class {class_name}(Package):
    """FIXME: describe {name} here."""

    homepage = "{homepage}"
    url = "{url}"

{versions}
    # FIXME: add dependencies, e.g.:
    # depends_on('mpi')

    def install(self, spec, prefix):
        configure("--prefix=" + prefix)
        make()
        make("install")
'''


def create_package_skeleton(session, url, repo_root, name=None):
    """Write ``<repo_root>/<name>/package.py``; return (name, path, versions).

    Versions come from scraping the URL's listing page on the session's
    web; each available tarball is downloaded and checksummed so the
    generated ``version()`` directives verify out of the box.
    """
    name = name or guess_name_from_url(url)
    version, _, _ = parse_version_from_url(url)

    # a throwaway package object just for URL machinery
    from repro.package.package import Package
    from repro.spec.spec import Spec

    probe_cls = type(mod_to_class(name), (Package,), {"url": url})
    probe_cls.name = name
    probe = probe_cls(Spec(name=name), session=session)

    found = session.fetcher.available_versions(probe)
    if not found:
        found = [version]

    version_lines = []
    for v in sorted(found, reverse=True):
        try:
            content = session.web.get(probe.url_for_version(v))
            digest = hashlib.sha256(content).hexdigest()
            version_lines.append("    version('%s', sha256='%s')" % (v, digest))
        except Exception:
            version_lines.append("    # version('%s', sha256='FIXME')" % v)

    text = _TEMPLATE.format(
        class_name=mod_to_class(name),
        name=name,
        homepage=posixpath.dirname(url) or url,
        url=url,
        versions="\n".join(version_lines) + "\n",
    )
    pkg_dir = os.path.join(repo_root, name)
    mkdirp(pkg_dir)
    path = os.path.join(pkg_dir, "package.py")
    with open(path, "w") as f:
        f.write(text)
    return name, path, found
