"""Deterministic synthetic package corpus (Figure 8's 245-package universe).

The paper timed concretization over all 245 packages in its repository.
Our hand-written corpus covers every package the paper names (~60); this
generator manufactures the rest with realistic shape: a layered random
DAG whose transitive closures range from singletons to 50+ nodes (the
x-axis of Figure 8), a few version choices per package, and a sprinkle
of virtual interfaces so provider resolution stays on the measured path.

Everything is seeded — the same corpus is generated on every machine, so
the benchmark's package population is reproducible.
"""

import random

from repro.directives import depends_on, provides, variant, version
from repro.directives.directives import DirectiveMeta
from repro.fetch.mockweb import mock_checksum
from repro.package.package import Package
from repro.repo.repository import Repository
from repro.util.naming import mod_to_class

#: every 17th package provides this virtual; every 11th depends on it
SYN_VIRTUAL = "synapi"


def _make_package(name, dep_names, versions, provides_virtual=None, with_variant=False):
    ns = {
        "homepage": "https://mock.example.org/%s" % name,
        "url": "https://mock.example.org/%s/%s-%s.tar.gz" % (name, name, versions[0]),
        "__doc__": "Synthetic package %s (generated, seeded)." % name,
        "build_units": 4,
        "unit_cost": 0.02,
    }
    for v in versions:
        version(v, mock_checksum(name, v))
    for dep in dep_names:
        depends_on(dep)
    if provides_virtual:
        provides(provides_virtual)
    if with_variant:
        variant("shared", default=True, description="build shared library")
    return DirectiveMeta(mod_to_class(name), (Package,), ns)


def synthetic_repo(count=185, seed=42, namespace="synthetic"):
    """Generate ``count`` packages into a fresh Repository.

    Layered DAG construction: package *i* may only depend on packages
    with smaller indices, so the result is acyclic by construction.  Most
    packages have 0–4 direct dependencies; every 23rd is a "big
    application" with up to 12, which pushes transitive DAG sizes past 50
    nodes — matching the population Figure 8 plots.
    """
    rng = random.Random(seed)
    repo = Repository(namespace=namespace)
    names = []

    for i in range(count):
        name = "syn-%03d" % i
        provides_virtual = i % 17 == 3
        if i == 0 or provides_virtual:
            # interface providers are leaves (like MPI implementations),
            # so virtual resolution can never introduce a cycle
            deps = []
        elif i % 23 == 0:
            deps = rng.sample(names, min(len(names), rng.randint(6, 12)))
        else:
            deps = rng.sample(names, min(len(names), rng.randint(0, 4)))
        if i % 11 == 7 and i > 17 and not provides_virtual:
            deps.append(SYN_VIRTUAL)
        n_versions = rng.randint(2, 4)
        versions = ["%d.%d" % (1 + v, rng.randint(0, 9)) for v in range(n_versions)]
        cls = _make_package(
            name,
            deps,
            versions,
            provides_virtual=SYN_VIRTUAL if provides_virtual else None,
            with_variant=(i % 5 == 0),
        )
        repo.add_class(name, cls)
        names.append(name)
    return repo


def full_universe(total=245, seed=42):
    """Built-in corpus + enough synthetic packages to reach ``total``.

    Returns a RepoPath layering the two, mirroring the paper's single
    245-package repository.
    """
    from repro.packages import builtin_repo
    from repro.repo.repository import RepoPath

    builtin = builtin_repo()
    need = max(0, total - len(builtin))
    return RepoPath([builtin, synthetic_repo(count=need, seed=seed)])
