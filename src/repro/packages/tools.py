"""Utility and external libraries: gperftools (§4.1) and the common
dependencies the ARES and Python stacks pull in.

``Gperftools`` is Figure 12 nearly verbatim: a patch for 2.4 + XL, and
per-platform/compiler configure lines.  The rest are small, plain
packages — exactly the kind the default ``Package.install`` handles.
"""

from repro.directives import depends_on, patch, variant, version
from repro.fetch.mockweb import mock_checksum
from repro.package.package import Package


class Gperftools(Package):
    """Google performance tools: thread-safe heap + lightweight profilers."""

    homepage = "https://github.com/gperftools/gperftools"
    url = homepage + "/releases/download/gperftools-2.4/gperftools-2.4.tar.gz"

    version("2.4", mock_checksum("gperftools", "2.4"))
    version("2.3", mock_checksum("gperftools", "2.3"))
    version("2.1", mock_checksum("gperftools", "2.1"))

    patch("patch.gperftools2.4_xlc", when="@2.4 %xl")

    build_units = 20
    unit_cost = 0.1

    def install(self, spec, prefix):
        from repro.build.shell import configure, make

        # Figure 12: per-platform, per-compiler configure lines.
        if spec.architecture == "bgq" and self.spec.compiler.name == "xl":
            configure("--prefix=" + str(prefix), "LDFLAGS=-qnostaticlink")
        elif spec.architecture == "bgq":
            configure("--prefix=" + str(prefix), "LDFLAGS=-dynamic")
        else:
            configure("--prefix=" + str(prefix))
        make()
        make("install")


def _simple(class_name, pkg_name, url, versions, deps=(), units=12, cost=0.08,
            variants=()):
    """Manufacture a small library package class.

    These are ordinary DSL classes (the directives run in the class body
    via ``type()``'s namespace execution); using a factory just avoids
    sixteen near-identical class statements for leaf libraries.  A dep
    may be a plain spec string (default build+link edge) or a
    ``(spec, type)`` pair forwarded to ``depends_on(..., type=...)``.
    """
    from repro.directives.directives import DirectiveMeta

    def body(ns):
        ns["homepage"] = url.rsplit("/", 2)[0]
        ns["url"] = url
        ns["build_units"] = units
        ns["unit_cost"] = cost
        ns["__doc__"] = "External library %s (mock)." % pkg_name
        for v in versions:
            version(v, mock_checksum(pkg_name, v))
        for dep in deps:
            if isinstance(dep, tuple):
                depends_on(dep[0], type=dep[1])
            else:
                depends_on(dep)
        for vname, default, desc in variants:
            variant(vname, default=default, description=desc)

    return DirectiveMeta(class_name, (Package,), _exec_body(body))


def _exec_body(body):
    ns = {}
    body(ns)
    return ns


Zlib = _simple("Zlib", "zlib", "https://zlib.net/zlib-1.2.8.tar.gz", ["1.2.8", "1.2.7"])
Bzip2 = _simple("Bzip2", "bzip2", "https://www.bzip.org/bzip2-1.0.6.tar.gz", ["1.0.6"])
Ncurses = _simple("Ncurses", "ncurses", "https://ftp.gnu.org/gnu/ncurses/ncurses-5.9.tar.gz", ["5.9"])
Readline = _simple(
    "Readline", "readline", "https://ftp.gnu.org/gnu/readline/readline-6.3.tar.gz",
    ["6.3"], deps=["ncurses"],
)
Sqlite = _simple("Sqlite", "sqlite", "https://sqlite.org/2015/sqlite-3.8.5.tar.gz", ["3.8.5"])
Openssl = _simple(
    "Openssl", "openssl", "https://www.openssl.org/source/openssl-1.0.1h.tar.gz",
    ["1.0.1h"], deps=["zlib"], units=40, cost=0.1,
)
Boost = _simple(
    "Boost", "boost", "https://downloads.sourceforge.net/boost/boost-1.55.0.tar.gz",
    ["1.55.0", "1.54.0", "1.52.0"], units=60, cost=0.15,
)
Cmake = _simple(
    "Cmake", "cmake", "https://cmake.org/files/v3.0/cmake-3.0.2.tar.gz",
    ["3.0.2", "2.8.12"], units=30, cost=0.1,
)
Gsl = _simple("Gsl", "gsl", "https://ftp.gnu.org/gnu/gsl/gsl-1.16.tar.gz", ["1.16"],
              units=25, cost=0.12)
Hdf5 = _simple(
    "Hdf5", "hdf5", "https://www.hdfgroup.org/ftp/HDF5/hdf5-1.8.13.tar.gz",
    ["1.8.13", "1.8.12"], deps=["zlib", "mpi"], units=35, cost=0.12,
    variants=(("debug", False, "debug build"),),
)
Papi = _simple("Papi", "papi", "https://icl.utk.edu/projects/papi/downloads/papi-5.3.0.tar.gz",
               ["5.3.0"], units=15, cost=0.1)
Hpdf = _simple("Hpdf", "hpdf", "https://github.com/libharu/libharu/archive/hpdf-2.3.0.tar.gz",
               ["2.3.0"], deps=["zlib"])
Opclient = _simple("Opclient", "opclient",
                   "https://mock.llnl.gov/opclient/opclient-2.0.1.tar.gz", ["2.0.1"])
Ga = _simple("Ga", "ga", "https://hpc.pnl.gov/globalarrays/download/ga-5.3.tar.gz",
             ["5.3"], deps=["mpi"], units=20, cost=0.1)


class Rose(Package):
    """ROSE compiler: the §3.2.4 conditional-boost-dependency example."""

    homepage = "http://rosecompiler.org"
    url = "https://github.com/rose-compiler/rose/archive/v0.9.6.tar.gz"

    version("0.9.6", mock_checksum("rose", "0.9.6"))

    # §3.2.4, verbatim semantics: boost version depends on the compiler.
    depends_on("boost@1.54.0", when="%gcc@:4")
    depends_on("boost@1.55.0", when="%gcc@5:")
    depends_on("boost@1.55.0", when="%intel")
    depends_on("boost@1.55.0", when="%clang")
    depends_on("boost@1.55.0", when="%pgi")
    depends_on("boost@1.55.0", when="%xl")

    build_units = 50
    unit_cost = 0.3


def register(repo):
    repo.add_class("gperftools", Gperftools)
    repo.add_class("zlib", Zlib)
    repo.add_class("bzip2", Bzip2)
    repo.add_class("ncurses", Ncurses)
    repo.add_class("readline", Readline)
    repo.add_class("sqlite", Sqlite)
    repo.add_class("openssl", Openssl)
    repo.add_class("boost", Boost)
    repo.add_class("cmake", Cmake)
    repo.add_class("gsl", Gsl)
    repo.add_class("hdf5", Hdf5)
    repo.add_class("papi", Papi)
    repo.add_class("hpdf", Hpdf)
    repo.add_class("opclient", Opclient)
    repo.add_class("ga", Ga)
    repo.add_class("rose", Rose)
