"""BLAS/LAPACK providers — the paper's second virtual-interface family.

"Another example is the Basic Linear Algebra Subroutines (BLAS), which
has many fungible implementations (e.g., ATLAS, LAPACK-BLAS, and MKL)"
(§3.3).  The ``blas`` virtual is versioned by BLAS *level* (1–3), so
``depends_on('blas@3:')`` expresses "needs level-3 routines".
"""

from repro.directives import depends_on, provides, variant, version
from repro.fetch.mockweb import mock_checksum
from repro.package.package import Package


class NetlibBlas(Package):
    """Reference BLAS from netlib (the paper's "LAPACK-BLAS")."""

    homepage = "https://www.netlib.org/blas"
    url = "https://www.netlib.org/blas/blas-3.5.0.tar.gz"

    version("3.5.0", mock_checksum("netlib-blas", "3.5.0"))
    version("3.4.2", mock_checksum("netlib-blas", "3.4.2"))

    provides("blas@:3")

    build_units = 20
    unit_cost = 0.1


class NetlibLapack(Package):
    """Reference LAPACK (the 'LAPACK' build of Figures 10/11)."""

    homepage = "https://www.netlib.org/lapack"
    url = "https://www.netlib.org/lapack/lapack-3.5.0.tar.gz"

    version("3.5.0", mock_checksum("netlib-lapack", "3.5.0"))
    version("3.4.2", mock_checksum("netlib-lapack", "3.4.2"))

    provides("lapack@:3")
    depends_on("blas")

    # Figure 10/11 calibration ("LAPACK" bars).
    build_units = 45
    unit_cost = 0.167
    io_ops_per_unit = 7

    def install(self, spec, prefix):
        from repro.build import shell
        from repro.util.filesystem import working_dir

        with working_dir("spack-build", create=True):
            shell.cmake("..", *shell.std_cmake_args)
            shell.make()
            shell.make("install")


class Atlas(Package):
    """ATLAS: auto-tuned BLAS + a subset of LAPACK."""

    homepage = "http://math-atlas.sourceforge.net"
    url = "https://downloads.sourceforge.net/math-atlas/atlas-3.10.2.tar.gz"

    version("3.10.2", mock_checksum("atlas", "3.10.2"))
    version("3.8.4", mock_checksum("atlas", "3.8.4"))

    provides("blas@:3")
    provides("lapack@:3", when="@3.10:")

    build_units = 40
    unit_cost = 0.2


class Mkl(Package):
    """Intel MKL (vendor library; usually configured external)."""

    homepage = "https://software.intel.com/mkl"
    url = "https://mock.intel.com/mkl/mkl-11.2.tar.gz"

    version("11.2", mock_checksum("mkl", "11.2"))

    provides("blas@:3")
    provides("lapack@:3")
    provides("fft@:3")

    build_units = 8
    unit_cost = 0.1


class Fftw(Package):
    """FFTW: fast Fourier transforms (one of §4.2's "fast, compiled
    numerical libraries").  The ``fft`` interface is versioned by API
    generation: FFTW 2 and 3 are source-incompatible."""

    homepage = "http://www.fftw.org"
    url = "http://www.fftw.org/fftw-3.3.4.tar.gz"

    version("3.3.4", mock_checksum("fftw", "3.3.4"))
    version("3.3.3", mock_checksum("fftw", "3.3.3"))
    version("2.1.5", mock_checksum("fftw", "2.1.5"))

    provides("fft@3", when="@3:")
    provides("fft@2", when="@2.1:2.9")

    variant("mpi", default=False, description="Build distributed transforms")
    depends_on("mpi", when="+mpi")

    build_units = 28
    unit_cost = 0.12


def register(repo):
    repo.add_class("netlib-blas", NetlibBlas)
    repo.add_class("netlib-lapack", NetlibLapack)
    repo.add_class("atlas", Atlas)
    repo.add_class("mkl", Mkl)
    repo.add_class("fftw", Fftw)
