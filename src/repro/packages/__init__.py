"""The built-in package corpus.

Every package the paper names is here, written in the Figure 1 DSL:

* the mpileaks stack of the running example (Figures 1, 2, 7, 9);
* the MPI implementations and their versioned ``provides`` (Figure 5);
* BLAS/LAPACK providers (§3.3's second archetype);
* gperftools with its per-compiler/platform patches (§4.1, Figure 12);
* Python and extension packages (§4.2);
* the full 47-package ARES stack with its support matrix (Figure 13,
  Table 3);
* assorted external libraries those stacks depend on.

``builtin_repo()`` assembles them into a Repository; the deterministic
synthetic corpus (:mod:`repro.packages.synthetic`) extends the universe
to the paper's 245 packages for the Figure 8 benchmark.

Cost-model calibration: the seven packages of Figures 10–11 carry
``build_units`` / ``unit_cost`` / ``io_ops_per_unit`` attributes chosen
so the *percentage* overheads match the paper's bars (the percentages
are scale-invariant in the model; see EXPERIMENTS.md).
"""

from repro.repo.repository import Repository


def builtin_repo():
    """A Repository containing the whole built-in corpus."""
    repo = Repository(namespace="builtin")
    from repro.packages import (
        ares,
        blas_providers,
        mpi_providers,
        mpileaks_stack,
        python_stack,
        tools,
    )

    for module in (
        mpileaks_stack,
        mpi_providers,
        blas_providers,
        python_stack,
        tools,
        ares,
    ):
        module.register(repo)
    return repo
