"""The paper's running example: mpileaks and its dependency stack.

``Mpileaks`` is a near-verbatim transcription of Figure 1; ``Dyninst``
demonstrates ``@when`` build specialization exactly as Figure 4 (CMake
by default, autotools at or below 8.1).  ``build_units``/``unit_cost``/
``io_ops_per_unit`` on libelf/libpng/mpileaks/libdwarf/dyninst are the
Figure 10–11 calibration (see EXPERIMENTS.md).
"""

from repro.directives import depends_on, variant, version, when
from repro.fetch.mockweb import mock_checksum
from repro.package.package import Package


class Mpileaks(Package):
    """Tool to detect and report leaked MPI objects."""

    homepage = "https://github.com/hpc/mpileaks"
    url = homepage + "/releases/download/v1.0/mpileaks-1.0.tar.gz"

    version("1.0", mock_checksum("mpileaks", "1.0"))
    version("1.1", mock_checksum("mpileaks", "1.1"))
    version("1.1.2", mock_checksum("mpileaks", "1.1.2"))
    version("2.3", mock_checksum("mpileaks", "2.3"))

    variant("debug", default=False, description="Build with debugging symbols")

    depends_on("mpi")
    depends_on("callpath")

    build_units = 43
    unit_cost = 0.081
    io_ops_per_unit = 7

    def install(self, spec, prefix):
        from repro.build.shell import configure, make

        configure(
            "--prefix=" + str(prefix),
            "--with-callpath=" + str(spec["callpath"].prefix),
        )
        make()
        make("install")


class Callpath(Package):
    """Library for representing and manipulating call paths."""

    homepage = "https://github.com/llnl/callpath"
    url = homepage + "/archive/v1.0.2.tar.gz"

    version("0.9", mock_checksum("callpath", "0.9"))
    version("1.0.1", mock_checksum("callpath", "1.0.1"))
    version("1.0.2", mock_checksum("callpath", "1.0.2"))
    version("1.1", mock_checksum("callpath", "1.1"))

    variant("debug", default=False, description="Debug variant (Figure 2c)")

    depends_on("dyninst")
    depends_on("mpi")

    build_units = 16
    unit_cost = 0.09


class Dyninst(Package):
    """Dynamic binary instrumentation; Figure 4's build specialization."""

    homepage = "https://www.dyninst.org"
    url = "https://www.dyninst.org/sites/default/files/downloads/dyninst-8.2.tar.gz"

    version("8.2", mock_checksum("dyninst", "8.2"))
    version("8.1.2", mock_checksum("dyninst", "8.1.2"))
    version("8.1.1", mock_checksum("dyninst", "8.1.1"))
    version("8.0", mock_checksum("dyninst", "8.0"))

    depends_on("libelf")
    depends_on("libdwarf")

    build_units = 14
    unit_cost = 2.0
    io_ops_per_unit = 25

    def install(self, spec, prefix):  # default build uses cmake
        from repro.build import shell
        from repro.util.filesystem import working_dir

        with working_dir("spack-build", create=True):
            shell.cmake("..", *shell.std_cmake_args)
            shell.make()
            shell.make("install")

    @when("@:8.1")  # <= 8.1 uses autotools
    def install(self, spec, prefix):
        from repro.build.shell import configure, make

        configure("--prefix=" + str(prefix))
        make()
        make("install")


class Libdwarf(Package):
    """DWARF debugging-information library."""

    homepage = "https://www.prevanders.net/dwarf.html"
    url = "https://www.prevanders.net/libdwarf-20130729.tar.gz"

    version("20130729", mock_checksum("libdwarf", "20130729"))
    version("20130207", mock_checksum("libdwarf", "20130207"))
    version("20111030", mock_checksum("libdwarf", "20111030"))

    depends_on("libelf")

    build_units = 33
    unit_cost = 0.152
    io_ops_per_unit = 7


class Libelf(Package):
    """ELF object-file access library (the paper's two-ABI cautionary
    tale, §3.5.1)."""

    homepage = "https://directory.fsf.org/wiki/Libelf"
    url = "https://www.mr511.de/software/libelf-0.8.13.tar.gz"

    version("0.8.13", mock_checksum("libelf", "0.8.13"))
    version("0.8.12", mock_checksum("libelf", "0.8.12"))
    version("0.8.11", mock_checksum("libelf", "0.8.11"))

    build_units = 14
    unit_cost = 0.107
    io_ops_per_unit = 13


class Libpng(Package):
    """PNG reference library (a Figure 10/11 subject)."""

    homepage = "http://www.libpng.org"
    url = "https://download.sourceforge.net/libpng/libpng-1.6.16.tar.gz"

    version("1.6.16", mock_checksum("libpng", "1.6.16"))
    version("1.6.15", mock_checksum("libpng", "1.6.15"))

    depends_on("zlib")

    build_units = 19
    unit_cost = 0.106
    io_ops_per_unit = 17


def register(repo):
    repo.add_class("mpileaks", Mpileaks)
    repo.add_class("callpath", Callpath)
    repo.add_class("dyninst", Dyninst)
    repo.add_class("libdwarf", Libdwarf)
    repo.add_class("libelf", Libelf)
    repo.add_class("libpng", Libpng)
