"""MPI implementations: the archetypal versioned virtual (§3.3, Figure 5).

The ``provides('mpi@...', when='@...')`` declarations for mvapich2 and
mpich are verbatim from Figure 5.  ``bgq-mpi`` and ``cray-mpich`` are the
vendor MPIs of the ARES study (§4.4) — normally configured as externals
so the host's optimized network drivers are used.
"""

from repro.directives import depends_on, provides, variant, version
from repro.fetch.mockweb import mock_checksum
from repro.package.package import Package


class Mvapich2(Package):
    """MVAPICH2: MPI over InfiniBand."""

    homepage = "http://mvapich.cse.ohio-state.edu"
    url = "http://mvapich.cse.ohio-state.edu/download/mvapich2-1.9.tar.gz"

    version("1.9", mock_checksum("mvapich2", "1.9"))
    version("2.0", mock_checksum("mvapich2", "2.0"))

    provides("mpi@:2.2", when="@1.9")  # Figure 5, verbatim
    provides("mpi@:3.0", when="@2.0")

    build_units = 30
    unit_cost = 0.12


class Mvapich(Package):
    """MVAPICH 1.x (the Table 3 Linux columns distinguish it from 2.x)."""

    homepage = "http://mvapich.cse.ohio-state.edu"
    url = "http://mvapich.cse.ohio-state.edu/download/mvapich-1.2.tar.gz"

    version("1.2", mock_checksum("mvapich", "1.2"))

    provides("mpi@:1", when="@1.2")

    build_units = 24
    unit_cost = 0.12


class Mpich(Package):
    """MPICH: portable reference MPI."""

    homepage = "https://www.mpich.org"
    url = "https://www.mpich.org/static/downloads/3.0.4/mpich-3.0.4.tar.gz"

    version("3.0.4", mock_checksum("mpich", "3.0.4"))
    version("3.0.3", mock_checksum("mpich", "3.0.3"))
    version("1.5", mock_checksum("mpich", "1.5"))
    version("1.4.1", mock_checksum("mpich", "1.4.1"))

    provides("mpi@:3", when="@3:")  # Figure 5, verbatim
    provides("mpi@:1", when="@:1.5")

    build_units = 30
    unit_cost = 0.12


class Openmpi(Package):
    """Open MPI."""

    homepage = "https://www.open-mpi.org"
    url = "https://www.open-mpi.org/software/ompi/v1.8/downloads/openmpi-1.8.2.tar.gz"

    version("1.4.7", mock_checksum("openmpi", "1.4.7"))
    version("1.6.5", mock_checksum("openmpi", "1.6.5"))
    version("1.8.2", mock_checksum("openmpi", "1.8.2"))

    provides("mpi@:2.2")

    variant("verbs", default=False, description="Build with InfiniBand verbs")

    build_units = 34
    unit_cost = 0.12


class BgqMpi(Package):
    """IBM Blue Gene/Q system MPI (vendor-supplied; usually external)."""

    homepage = "https://www.ibm.com"
    url = "https://mock.ibm.com/bgq-mpi/bgq-mpi-1.0.tar.gz"

    version("1.0", mock_checksum("bgq-mpi", "1.0"))

    provides("mpi@:2.2")

    build_units = 10
    unit_cost = 0.1


class CrayMpich(Package):
    """Cray MPT / cray-mpich (vendor-supplied; usually external)."""

    homepage = "https://www.cray.com"
    url = "https://mock.cray.com/cray-mpich/cray-mpich-7.0.0.tar.gz"

    version("7.0.0", mock_checksum("cray-mpich", "7.0.0"))

    provides("mpi@:3")

    build_units = 10
    unit_cost = 0.1


class Gerris(Package):
    """CFD solver; needs MPI-2 or higher (the §3.3 example dependent)."""

    homepage = "http://gfs.sourceforge.net"
    url = "http://gfs.sourceforge.net/gerris/gerris-1.0.tar.gz"

    version("1.0", mock_checksum("gerris", "1.0"))

    depends_on("mpi@2:")

    build_units = 12
    unit_cost = 0.1


def register(repo):
    repo.add_class("mvapich2", Mvapich2)
    repo.add_class("mvapich", Mvapich)
    repo.add_class("mpich", Mpich)
    repo.add_class("openmpi", Openmpi)
    repo.add_class("bgq-mpi", BgqMpi)
    repo.add_class("cray-mpich", CrayMpich)
    repo.add_class("gerris", Gerris)
