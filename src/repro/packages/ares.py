"""The ARES multi-physics stack (paper §4.4, Figure 13, Table 3).

ARES is the paper's flagship use case: a production radiation-
hydrodynamics code with 46 dependencies — 11 LLNL physics packages, 4
LLNL math/meshing libraries, 8 LLNL utility libraries, and 23 external
packages (including MPI and BLAS as virtuals).  This module defines the
whole stack and the Table 3 support matrix.

Four code configurations (Table 3): **C**\\urrent production
(``ares@2015.06``), **P**\\revious production (``ares@2014.11``),
**L**\\ite (``ares@2015.06+lite`` — fewer features and dependencies), and
**D**\\evelopment (``ares@develop``).  The matrix cells reconstruct the
paper's table: 10 architecture-compiler-MPI combinations, 36 total
configurations (the extracted text garbles the exact cell layout; the
reconstruction preserves the row/column structure and the 36/10 totals —
see EXPERIMENTS.md).
"""

from repro.directives import depends_on, variant, version
from repro.directives.directives import DirectiveMeta
from repro.fetch.mockweb import mock_checksum
from repro.package.package import Package
from repro.util.naming import mod_to_class

#: Figure 13's node categories (colors).
PHYSICS = [
    "leos", "mslib", "laser", "cretin", "tdf", "cheetah",
    "dsd", "teton", "nuclear", "asclaser", "matprop",
]
MATH = ["samrai", "hypre", "qd", "overlink"]
UTILITY = [
    "bdivxml", "sgeos_xml", "scallop", "rng",
    "perflib", "memusage", "timers", "silo",
]
#: External packages (Figure 13 right-hand legend); 'mpi' and 'blas'
#: are virtuals — their providers stand in for them in a concrete DAG.
EXTERNAL = [
    "tcl", "tk", "py-scipy", "python", "cmake", "hpdf", "opclient",
    "boost", "zlib", "py-numpy", "bzip2", "lapack", "gsl", "hdf5",
    "gperftools", "papi", "ga", "mpi", "ncurses", "sqlite", "readline",
    "openssl", "blas",
]


def category_of(name, provided_virtuals=()):
    """Figure 13 category for a node of the concretized ARES DAG."""
    if name == "ares":
        return "ares"
    if name in PHYSICS:
        return "physics"
    if name in MATH:
        return "math"
    if name in UTILITY:
        return "utility"
    return "external"


#: extra dependencies of the LLNL packages (beyond what ares pulls in)
_LLNL_DEPS = {
    "silo": ["hdf5"],
    "samrai": ["hdf5", "boost", "mpi"],
    "hypre": ["blas", "lapack", "mpi"],
    "overlink": ["qd"],
    "laser": ["mpi"],
    "teton": ["mpi"],
    "cheetah": ["mpi"],
    "cretin": ["mslib"],
}


def _llnl_package(name, units=10, cost=0.1):
    """Manufacture one LLNL physics/math/utility package class."""
    ns = {}
    ns["homepage"] = "https://lc.llnl.gov/%s" % name
    ns["url"] = "https://mock.llnl.gov/%s/%s-1.0.tar.gz" % (name, name)
    ns["build_units"] = units
    ns["unit_cost"] = cost
    ns["__doc__"] = "LLNL %s package (mock; category %s)." % (name, category_of(name))
    version("1.0", mock_checksum(name, "1.0"))
    version("1.1", mock_checksum(name, "1.1"))
    for dep in _LLNL_DEPS.get(name, ()):
        depends_on(dep)
    return DirectiveMeta(mod_to_class(name), (Package,), ns)


class Ares(Package):
    """ARES: 1/2/3-D radiation hydrodynamics (munitions modeling and
    inertial confinement fusion)."""

    homepage = "https://lc.llnl.gov/ares"
    url = "https://mock.llnl.gov/ares/ares-2015.06.tar.gz"

    version("2015.06", mock_checksum("ares", "2015.06"))   # Current (C)
    version("2014.11", mock_checksum("ares", "2014.11"))   # Previous (P)
    version("develop", mock_checksum("ares", "develop"))   # Development (D)

    variant("lite", default=False, description="Smaller feature/dependency set (L)")

    # -- physics -----------------------------------------------------------
    depends_on("leos")
    depends_on("mslib")
    depends_on("matprop")
    depends_on("tdf")
    depends_on("cheetah")
    depends_on("teton")
    # the full configurations carry the whole physics suite; lite drops these
    depends_on("laser", when="~lite")
    depends_on("cretin", when="~lite")
    depends_on("dsd", when="~lite")
    depends_on("nuclear", when="~lite")
    depends_on("asclaser", when="~lite")

    # -- math/meshing ----------------------------------------------------------
    depends_on("samrai")
    depends_on("hypre")
    depends_on("overlink")  # overlink pulls in qd

    # -- LLNL utilities ----------------------------------------------------------
    depends_on("bdivxml")
    depends_on("sgeos_xml")
    depends_on("scallop")
    depends_on("rng")
    depends_on("perflib")
    depends_on("memusage")
    depends_on("timers")
    depends_on("silo")

    # -- externals ------------------------------------------------------------------
    depends_on("mpi")
    # the embedded scripting stack is imported at run time, never linked
    depends_on("python", type=("build", "run"))  # ARES builds its own Python (§4.4)
    depends_on("python@2.7.9", when="=bgq", type=("build", "run"))  # BG/Q lacks 2.7.9
    depends_on("tcl", type=("build", "run"))
    depends_on("tk", type=("build", "run"))
    depends_on("py-scipy", when="~lite", type=("build", "run"))
    depends_on("py-numpy", type=("build", "run"))
    depends_on("cmake", type="build")  # build orchestration only: spliceable
    depends_on("hpdf", when="~lite")
    depends_on("opclient")
    depends_on("boost")
    depends_on("gsl")
    depends_on("gperftools")
    depends_on("papi")
    depends_on("ga")

    # configuration-specific dependency versions (Table 3's "slightly
    # different set of dependencies and dependency versions")
    depends_on("boost@1.54.0", when="@2014.11")
    depends_on("boost@1.55.0", when="@2015.06")
    depends_on("boost@1.55.0", when="@develop")

    build_units = 80
    unit_cost = 0.3


#: Table 3 configurations: letter -> spec template.
CONFIGS = {
    "C": "ares@2015.06",
    "P": "ares@2014.11",
    "L": "ares@2015.06+lite",
    "D": "ares@develop",
}

#: Table 3 support matrix: (compiler, architecture, mpi, configs).
#: 10 architecture-compiler-MPI combinations; 36 configurations total.
SUPPORT_MATRIX = [
    ("%gcc", "=linux-x86_64", "^mvapich", "CPLD"),
    ("%gcc", "=bgq", "^bgq-mpi", "CPLD"),
    ("%intel@14.0.3", "=linux-x86_64", "^mvapich", "CPLD"),
    ("%intel@15.0.1", "=linux-x86_64", "^mvapich", "CPLD"),
    ("%intel@15.0.1", "=linux-x86_64", "^mvapich2", "D"),
    ("%pgi", "=linux-x86_64", "^mvapich", "CPLD"),
    ("%pgi", "=cray_xe6", "^cray-mpich", "CPLD"),
    ("%clang", "=linux-x86_64", "^mvapich", "CPLD"),
    ("%clang", "=cray_xe6", "^cray-mpich", "CLD"),
    ("%xl", "=bgq", "^bgq-mpi", "CPLD"),
]


def matrix_spec_strings():
    """All 36 concrete ARES build requests from the support matrix."""
    specs = []
    for compiler, arch, mpi, configs in SUPPORT_MATRIX:
        for letter in configs:
            specs.append("%s %s %s %s" % (CONFIGS[letter], compiler, arch, mpi))
    return specs


def register(repo):
    repo.add_class("ares", Ares)
    for name in PHYSICS + MATH + UTILITY:
        repo.add_class(name, _llnl_package(name))
