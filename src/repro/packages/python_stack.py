"""Python and its extension ecosystem (paper §4.2).

Python is ``extendable``: extension packages say ``extends('python')``
and install into their own prefixes, and activation symlinks them into
the interpreter prefix so a baseline stack works with no environment
settings.  Python overrides the activate/deactivate hooks to *merge* the
known-conflicting metadata file (``easy-install.pth``) instead of
failing — the package-specialized activation the paper added for
"many Python packages install their own package manager" conflicts.

The BG/Q patches are verbatim from §3.2.4::

    patch('python-bgq-xlc.patch',   when='=bgq%xl')
    patch('python-bgq-clang.patch', when='=bgq%clang')
"""

import json
import os

from repro.directives import depends_on, extends, patch, variant, version
from repro.fetch.mockweb import mock_checksum
from repro.package.package import Package
from repro.util.filesystem import mkdirp

#: the merge-conflicting metadata file every extension writes
EASY_INSTALL_PTH = os.path.join("lib", "site-packages", "easy-install.pth")


class Python(Package):
    """The CPython interpreter (extendable)."""

    homepage = "https://www.python.org"
    url = "https://www.python.org/ftp/python/2.7.9/python-2.7.9.tar.gz"

    version("2.7.9", mock_checksum("python", "2.7.9"))
    version("2.7.8", mock_checksum("python", "2.7.8"))
    version("3.4.2", mock_checksum("python", "3.4.2"))

    extendable = True

    depends_on("zlib")
    depends_on("openssl")
    depends_on("readline")
    depends_on("sqlite")
    depends_on("ncurses")
    depends_on("bzip2")

    patch("python-bgq-xlc.patch", when="=bgq%xl")
    patch("python-bgq-clang.patch", when="=bgq%clang")

    # Figure 10/11 calibration ("python" bars).
    build_units = 112
    unit_cost = 0.098
    io_ops_per_unit = 11

    def install(self, spec, prefix):
        from repro.build.shell import configure, make

        configure("--prefix=" + str(prefix))
        make()
        make("install")
        mkdirp(os.path.join(prefix, "lib", "site-packages"))

    # -- package-specialized activation (§4.2) ---------------------------
    def activate(self, extension, **kwargs):
        from repro.extensions.activation import default_activate

        ignore = lambda rel: rel == EASY_INSTALL_PTH
        default_activate(self, extension, ignore=ignore, **kwargs)
        self._merge_pth(extension)

    def deactivate(self, extension, **kwargs):
        from repro.extensions.activation import default_deactivate

        ignore = lambda rel: rel == EASY_INSTALL_PTH
        default_deactivate(self, extension, ignore=ignore, **kwargs)
        self._unmerge_pth(extension)

    def _pth_paths(self, extension):
        return (
            os.path.join(extension.prefix, EASY_INSTALL_PTH),
            os.path.join(self.prefix, EASY_INSTALL_PTH),
        )

    def _merge_pth(self, extension):
        ext_pth, own_pth = self._pth_paths(extension)
        if not os.path.isfile(ext_pth):
            return
        existing = []
        if os.path.isfile(own_pth):
            with open(own_pth) as f:
                existing = [line.rstrip("\n") for line in f if line.strip()]
        with open(ext_pth) as f:
            new_lines = [line.rstrip("\n") for line in f if line.strip()]
        merged = existing + [l for l in new_lines if l not in existing]
        mkdirp(os.path.dirname(own_pth))
        with open(own_pth, "w") as f:
            f.write("\n".join(merged) + "\n")

    def _unmerge_pth(self, extension):
        ext_pth, own_pth = self._pth_paths(extension)
        if not (os.path.isfile(ext_pth) and os.path.isfile(own_pth)):
            return
        with open(ext_pth) as f:
            remove = {line.rstrip("\n") for line in f if line.strip()}
        with open(own_pth) as f:
            keep = [l.rstrip("\n") for l in f if l.strip() and l.rstrip("\n") not in remove]
        if keep:
            with open(own_pth, "w") as f:
                f.write("\n".join(keep) + "\n")
        else:
            os.unlink(own_pth)


class PythonExtension(Package):
    """Base for py-* packages: builds normally, then installs a module
    tree plus its own ``easy-install.pth`` into ``lib/site-packages``."""

    extends("python")

    build_units = 6
    unit_cost = 0.05

    @property
    def module_name(self):
        return self.name[3:] if self.name.startswith("py-") else self.name

    def install(self, spec, prefix):
        from repro.build.shell import configure, make

        configure("--prefix=" + str(prefix))
        make()
        make("install")
        site = os.path.join(prefix, "lib", "site-packages", self.module_name)
        mkdirp(site)
        with open(os.path.join(site, "__init__.py"), "w") as f:
            f.write("# %s %s\n" % (self.module_name, spec.version))
        with open(os.path.join(site, "version.json"), "w") as f:
            json.dump({"name": self.module_name, "version": str(spec.version)}, f)
        with open(os.path.join(prefix, EASY_INSTALL_PTH), "w") as f:
            f.write("./%s\n" % self.module_name)


class PyNumpy(PythonExtension):
    """NumPy (the paper's "friendlier interface to compiled libraries")."""

    homepage = "https://www.numpy.org"
    url = "https://pypi.io/packages/source/n/numpy/numpy-1.9.1.tar.gz"

    version("1.9.1", mock_checksum("py-numpy", "1.9.1"))
    version("1.8.2", mock_checksum("py-numpy", "1.8.2"))

    variant("fft", default=False, description="Link a fast FFT backend")

    depends_on("blas")
    depends_on("lapack")
    depends_on("fft@3:", when="+fft")  # needs the FFTW-3 generation API


class PyScipy(PythonExtension):
    """SciPy: scientific algorithms atop NumPy."""

    homepage = "https://www.scipy.org"
    url = "https://pypi.io/packages/source/s/scipy/scipy-0.15.1.tar.gz"

    version("0.15.1", mock_checksum("py-scipy", "0.15.1"))
    version("0.14.0", mock_checksum("py-scipy", "0.14.0"))

    # numpy is imported, not linked: needed to build and to run
    depends_on("py-numpy", type=("build", "run"))
    depends_on("blas")
    depends_on("lapack")


class PyNose(PythonExtension):
    """nose: unit-test discovery for Python."""

    homepage = "https://nose.readthedocs.io"
    url = "https://pypi.io/packages/source/n/nose/nose-1.3.4.tar.gz"

    version("1.3.4", mock_checksum("py-nose", "1.3.4"))


class PySetuptools(PythonExtension):
    """setuptools: the package manager Python extensions ship (§4.2)."""

    homepage = "https://pypi.org/project/setuptools"
    url = "https://pypi.io/packages/source/s/setuptools/setuptools-11.3.tar.gz"

    version("11.3", mock_checksum("py-setuptools", "11.3"))
    version("11.3.1", mock_checksum("py-setuptools", "11.3.1"))


class Tcl(Package):
    """The Tcl scripting language."""

    homepage = "https://www.tcl.tk"
    url = "https://downloads.sourceforge.net/tcl/tcl8.6.3-src.tar.gz"

    version("8.6.3", mock_checksum("tcl", "8.6.3"))

    depends_on("zlib")

    build_units = 18
    unit_cost = 0.08


class Tk(Package):
    """Tk GUI toolkit for Tcl."""

    homepage = "https://www.tcl.tk"
    url = "https://downloads.sourceforge.net/tcl/tk8.6.3-src.tar.gz"

    version("8.6.3", mock_checksum("tk", "8.6.3"))

    depends_on("tcl")

    build_units = 16
    unit_cost = 0.08


def register(repo):
    repo.add_class("python", Python)
    repo.add_class("py-numpy", PyNumpy)
    repo.add_class("py-scipy", PyScipy)
    repo.add_class("py-nose", PyNose)
    repo.add_class("py-setuptools", PySetuptools)
    repo.add_class("tcl", Tcl)
    repo.add_class("tk", Tk)
