"""The embedded package DSL (paper §3.1).

Package files are Python classes; the directives exported here —
``version``, ``depends_on``, ``provides``, ``patch``, ``variant``,
``extends``, ``conflicts`` — are called in the class body and record
metadata onto the class via :class:`DirectiveMeta`.  ``@when`` provides
build specialization: multiple definitions of one method, dispatched on
the package's concretized spec (§3.2.5, Figure 4).
"""

from repro.directives.directives import (
    DependencyConstraint,
    DirectiveError,
    DirectiveMeta,
    Patch,
    ProvidedInterface,
    Variant,
    conflicts,
    depends_on,
    extends,
    patch,
    provides,
    requires_compiler,
    variant,
    version,
)
from repro.directives.multimethod import NoSuchMethodError, SpecMultiMethod, when

__all__ = [
    "DirectiveMeta",
    "DirectiveError",
    "version",
    "depends_on",
    "provides",
    "patch",
    "variant",
    "extends",
    "conflicts",
    "requires_compiler",
    "when",
    "SpecMultiMethod",
    "NoSuchMethodError",
    "Variant",
    "Patch",
    "DependencyConstraint",
    "ProvidedInterface",
]
