"""Directives: functions called inside ``Package`` class bodies (§3.1).

Mechanics: a directive call runs *while the class body executes*, before
the class object exists.  Each call pushes a closure onto a pending list;
:class:`DirectiveMeta` pops and applies them when it constructs the class.
Metadata containers are copied down the inheritance chain, so a site
package that subclasses a built-in one (§4.3.2) starts from its parent's
versions/dependencies and may add or override without mutating the parent.

``when=`` arguments make any directive conditional: the constraint is only
merged into the DAG when the package's current spec satisfies the
predicate (evaluated during normalization, §3.4).
"""

from repro.errors import ReproError
from repro.spec.spec import DEFAULT_DEPTYPES, Spec, canonical_deptype
from repro.version import Version


class DirectiveError(ReproError):
    """A directive was used incorrectly in a package definition."""


class Variant:
    """Declaration of a named boolean build option (``variant`` directive)."""

    __slots__ = ("name", "default", "description")

    def __init__(self, name, default, description):
        self.name = name
        self.default = default
        self.description = description

    def __repr__(self):
        return "Variant(%r, default=%r)" % (self.name, self.default)


class DependencyConstraint:
    """One ``depends_on`` declaration: a dep constraint, a predicate,
    and the dependency types the edge carries (build/link/run)."""

    __slots__ = ("spec", "when", "deptypes")

    def __init__(self, spec, when, deptypes=None):
        self.spec = spec
        self.when = when  # Spec or None (None == unconditional)
        self.deptypes = (
            canonical_deptype(deptypes)
            if deptypes is not None
            else frozenset(DEFAULT_DEPTYPES)
        )

    def __repr__(self):
        return "DependencyConstraint(%r, when=%r, type=%r)" % (
            str(self.spec),
            str(self.when) if self.when else None,
            tuple(sorted(self.deptypes)),
        )


class ProvidedInterface:
    """One ``provides`` declaration: a virtual spec plus a predicate (§3.3)."""

    __slots__ = ("spec", "when")

    def __init__(self, spec, when):
        self.spec = spec
        self.when = when

    def __repr__(self):
        return "ProvidedInterface(%r, when=%r)" % (
            str(self.spec),
            str(self.when) if self.when else None,
        )


class Patch:
    """One ``patch`` declaration.

    In this reproduction a patch is applied by the stage machinery as a
    marker file plus a transformation of the fake source tree, so tests
    can assert *which* patches were applied for a given spec (the paper's
    gperftools and Python/BG|Q use cases, §4.1–4.2).
    """

    __slots__ = ("name", "when", "level")

    def __init__(self, name, when, level):
        self.name = name
        self.when = when
        self.level = level

    def __repr__(self):
        return "Patch(%r, when=%r)" % (self.name, str(self.when) if self.when else None)


def _as_when(when):
    """Normalize a ``when=`` argument to a Spec predicate or None."""
    if when is None:
        return None
    if isinstance(when, Spec):
        return when
    if isinstance(when, str):
        return Spec(when)
    if when is True:
        return None
    if when is False:
        # A never-true predicate: used by packages that disable an
        # inherited directive.  An impossible anonymous constraint.
        never = Spec()
        never.variants["__never__"] = True
        return never
    raise DirectiveError("Invalid when= argument: %r" % (when,))


class DirectiveMeta(type):
    """Metaclass collecting directive calls into class-level metadata.

    Containers created on every class (inherited entries are *copied*):

    - ``versions``: {Version: {'checksum': str|None, 'url': str|None}}
    - ``dependencies``: {dep_name: [DependencyConstraint, ...]}
    - ``provided``: [ProvidedInterface, ...]
    - ``patches``: [Patch, ...]
    - ``variants``: {name: Variant}
    - ``extendees``: {name: (Spec, kwargs)}
    - ``conflict_specs``: [(Spec, when, msg), ...]
    """

    #: closures pending application to the class being defined
    _pending = []

    _CONTAINERS = (
        "versions",
        "dependencies",
        "provided",
        "patches",
        "variants",
        "extendees",
        "conflict_specs",
        "compiler_requirements",
    )

    def __new__(mcls, name, bases, attrs):
        cls = super().__new__(mcls, name, bases, attrs)

        # Merge (copies of) metadata from bases, nearest-first.
        cls.versions = _merged_dicts(bases, "versions")
        cls.dependencies = _merged_dep_maps(bases)
        cls.provided = _merged_lists(bases, "provided")
        cls.patches = _merged_lists(bases, "patches")
        cls.variants = _merged_dicts(bases, "variants")
        cls.extendees = _merged_dicts(bases, "extendees")
        cls.conflict_specs = _merged_lists(bases, "conflict_specs")
        cls.compiler_requirements = _merged_lists(bases, "compiler_requirements")

        pending, DirectiveMeta._pending = DirectiveMeta._pending, []
        for apply_directive in pending:
            apply_directive(cls)
        return cls

    @staticmethod
    def push(closure):
        DirectiveMeta._pending.append(closure)


def _merged_dicts(bases, attr):
    result = {}
    for base in reversed(bases):
        result.update(getattr(base, attr, {}))
    return dict(result)


def _merged_lists(bases, attr):
    result = []
    for base in reversed(bases):
        for item in getattr(base, attr, ()):
            if item not in result:
                result.append(item)
    return result


def _merged_dep_maps(bases):
    result = {}
    for base in reversed(bases):
        for dep_name, constraints in getattr(base, "dependencies", {}).items():
            result.setdefault(dep_name, [])
            for c in constraints:
                if c not in result[dep_name]:
                    result[dep_name].append(c)
    return {k: list(v) for k, v in result.items()}


# --------------------------------------------------------------------------
# The directives themselves.
# --------------------------------------------------------------------------

def version(ver_string, checksum=None, url=None, when=None, sha256=None,
            md5=None):
    """Declare a known version, optionally with a checksum and a
    version-specific download URL (Figure 1, lines 7–8).

    The checksum may be given positionally (legacy MD5 style) or as an
    explicit ``sha256=``/``md5=`` keyword; the fetcher picks the digest
    algorithm from the hex length, so both kinds verify.  New packages
    (and everything ``repro-spack create`` generates) should use
    ``sha256=``.
    """
    v = Version(str(ver_string))
    when_spec = _as_when(when)
    digests = [d for d in (checksum, sha256, md5) if d is not None]
    if len(digests) > 1:
        raise DirectiveError(
            "version(%r): give exactly one of checksum/sha256/md5"
            % str(ver_string)
        )
    digest = digests[0] if digests else None

    def apply_(cls):
        cls.versions = dict(cls.versions)
        cls.versions[v] = {"checksum": digest, "url": url, "when": when_spec}

    DirectiveMeta.push(apply_)


def depends_on(*spec_strings, when=None, type=None):
    """Declare prerequisite packages (Figure 1, lines 10–11).

    Each argument is a spec expression — constraints included, e.g.
    ``depends_on('boost@1.54.0', when='%gcc@:4')`` (§3.2.4).

    ``type=`` names what the edge is *for*: ``"build"`` (needed only to
    produce the prefix — compilers-adjacent tools like cmake), ``"link"``
    (an ABI dependency baked into the binaries), ``"run"`` (needed in the
    environment when the package executes), or any tuple of those.  The
    default is Spack's ``("build", "link")``.  Build-only edges are
    excluded from :meth:`Spec.runtime_hash`, which is what makes cached
    binaries spliceable across build-tool changes.
    """
    when_spec = _as_when(when)
    deptypes = canonical_deptype(type) if type is not None else None

    def apply_(cls):
        cls.dependencies = {k: list(v) for k, v in cls.dependencies.items()}
        for spec_string in spec_strings:
            dep_spec = Spec(spec_string)
            if dep_spec.name is None:
                raise DirectiveError(
                    "depends_on requires a named spec: %r" % spec_string
                )
            cls.dependencies.setdefault(dep_spec.name, []).append(
                DependencyConstraint(dep_spec, when_spec, deptypes)
            )

    DirectiveMeta.push(apply_)


def provides(*spec_strings, when=None):
    """Declare that this package provides a (versioned) virtual interface,
    e.g. ``provides('mpi@:2.2', when='@1.9')`` (§3.3, Figure 5)."""
    when_spec = _as_when(when)

    def apply_(cls):
        cls.provided = list(cls.provided)
        for spec_string in spec_strings:
            vspec = Spec(spec_string)
            if vspec.name is None:
                raise DirectiveError("provides requires a named spec: %r" % spec_string)
            cls.provided.append(ProvidedInterface(vspec, when_spec))

    DirectiveMeta.push(apply_)


def patch(patch_name, when=None, level=1):
    """Declare a patch to apply to the staged source when the predicate
    holds, e.g. ``patch('python-bgq-xlc.patch', when='=bgq%xl')``."""
    when_spec = _as_when(when)

    def apply_(cls):
        cls.patches = list(cls.patches)
        cls.patches.append(Patch(patch_name, when_spec, level))

    DirectiveMeta.push(apply_)


def variant(name, default=False, description=""):
    """Declare a named boolean build option with its default value."""

    def apply_(cls):
        cls.variants = dict(cls.variants)
        cls.variants[name] = Variant(name, bool(default), description)

    DirectiveMeta.push(apply_)


def extends(spec_string, **kwargs):
    """Declare that this package extends another (e.g. Python modules use
    ``extends('python')``, §4.2).  Implies ``depends_on`` and enables
    activate/deactivate into the extendee's prefix."""

    def apply_(cls):
        ext_spec = Spec(spec_string)
        if ext_spec.name is None:
            raise DirectiveError("extends requires a named spec: %r" % spec_string)
        cls.extendees = dict(cls.extendees)
        cls.extendees[ext_spec.name] = (ext_spec, kwargs)
        cls.dependencies = {k: list(v) for k, v in cls.dependencies.items()}
        # An extendee is imported at build time and activated into the
        # runtime environment, but never linked against: ("build", "run").
        cls.dependencies.setdefault(ext_spec.name, []).append(
            DependencyConstraint(ext_spec, None, ("build", "run"))
        )

    DirectiveMeta.push(apply_)


def requires_compiler(feature_spec, when=None):
    """Declare a compiler-feature requirement (§4.5 future work,
    implemented): ``requires_compiler('cxx@11:')``,
    ``requires_compiler('openmp@4:', when='+openmp')``.

    The concretizer only selects compilers whose feature table satisfies
    every active requirement, and rejects explicit ``%compiler`` choices
    that cannot provide them.
    """
    from repro.spec.spec import CompilerSpec

    when_spec = _as_when(when)
    feature = CompilerSpec(feature_spec)

    def apply_(cls):
        cls.compiler_requirements = list(cls.compiler_requirements)
        cls.compiler_requirements.append((feature, when_spec))

    DirectiveMeta.push(apply_)


def conflicts(spec_string, when=None, msg=None):
    """Declare that specs matching ``spec_string`` cannot be built (used
    by corpus packages for known-broken compiler/platform combinations)."""
    when_spec = _as_when(when)

    def apply_(cls):
        cls.conflict_specs = list(cls.conflict_specs)
        cls.conflict_specs.append((Spec(spec_string), when_spec, msg))

    DirectiveMeta.push(apply_)
