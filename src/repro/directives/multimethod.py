"""``@when`` build specialization (paper §3.2.5, Figure 4).

A package may define a method several times, each guarded by a spec
predicate::

    def install(self, spec, prefix):        # default: cmake build
        ...

    @when('@:8.1')                          # <= 8.1 uses autotools
    def install(self, spec, prefix):
        ...

``@when`` captures the previously-defined function (by inspecting the
class body namespace, exactly as the original implementation does) and
replaces the name with a :class:`SpecMultiMethod` — a descriptor that
dispatches on ``self.spec`` at call time.  Conditions are checked in
definition order; the first satisfied predicate wins; the plain (guarded
by nothing) definition is the fallback.  Define the default *before* any
``@when`` variants, or it will shadow them.
"""

import functools
import inspect

from repro.errors import ReproError
from repro.spec.spec import Spec


class NoSuchMethodError(ReproError):
    """No @when condition matched and the class has no default method."""

    def __init__(self, cls, method_name, spec):
        super().__init__(
            "Package class %s has no method %r matching spec %s"
            % (cls.__name__, method_name, spec)
        )


class SpecMultiMethod:
    """Descriptor holding (condition, function) pairs plus a default.

    On attribute access it returns a bound dispatcher that evaluates
    ``self.spec.satisfies(condition)`` against each registered predicate.
    If nothing matches and there is no local default, lookup continues up
    the MRO (so a subclass can add specialized cases atop an inherited
    implementation).
    """

    def __init__(self, default=None):
        self.method_map = []
        self.default = default
        self._name = None
        self._owner = None
        if default is not None:
            functools.update_wrapper(self, default)

    def register(self, condition, method):
        condition_spec = condition if isinstance(condition, Spec) else Spec(condition)
        self.method_map.append((condition_spec, method))
        if self.default is None:
            functools.update_wrapper(self, method)

    def __set_name__(self, owner, name):
        self._name = name
        self._owner = owner

    def _resolve(self, instance):
        spec = getattr(instance, "spec", None)
        if spec is not None:
            for condition, method in self.method_map:
                if spec.satisfies(condition):
                    return method
        if self.default is not None:
            return self.default
        # Fall back to an inherited implementation, skipping this
        # descriptor itself.
        if self._owner is not None:
            for klass in self._owner.__mro__[1:]:
                candidate = klass.__dict__.get(self._name)
                if candidate is None:
                    continue
                if isinstance(candidate, SpecMultiMethod):
                    return candidate._resolve(instance)
                return candidate
        raise NoSuchMethodError(type(instance), self._name or "?", spec)

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        method = self._resolve(instance)
        return method.__get__(instance, owner)


class when:
    """Decorator: guard the following method definition with a predicate.

    ``@when('@:8.1')`` — condition is any spec expression; it is matched
    against the package's (possibly concrete) spec at call time.
    """

    def __init__(self, condition):
        self.condition = condition if isinstance(condition, Spec) else Spec(condition)

    def __call__(self, method):
        # The class body is still executing; its namespace is the caller's
        # frame locals.  Capture any prior definition of this name.
        frame = inspect.currentframe().f_back
        existing = frame.f_locals.get(method.__name__)
        if isinstance(existing, SpecMultiMethod):
            multimethod = existing
        else:
            multimethod = SpecMultiMethod(default=existing if callable(existing) else None)
        multimethod.register(self.condition, method)
        return multimethod
