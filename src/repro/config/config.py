"""Configuration scopes and merged lookups.

The paper's site/user policy mechanism (§3.4.4, §4.3): configuration is a
stack of *scopes* — ``defaults`` (shipped), ``site``, ``user``, and
``command_line`` — each a nested dict.  Later scopes override earlier
ones key-by-key (dicts merge recursively; lists and scalars replace).

Sections used by the rest of the system:

``preferences``
    - ``compiler_order``: list of compiler specs, most preferred first
      (the paper's ``compiler_order = icc,gcc@4.4.7`` example);
    - ``providers``: {virtual name: [provider names in preference order]};
    - ``architecture``: default target;
    - ``packages``: {pkg: {``version``: [preferred...],
      ``variants``: {name: bool}}}.

``packages``
    External installations and buildability:
    {pkg: {``external``: {``spec``: str, ``prefix``: str}, ``buildable``: bool}}.

``views``
    Projection rules for :mod:`repro.views`.

Scopes can be loaded from JSON files, so a site can ship policy in a
plain config directory (§4.3's configuration files).
"""

import json
import os

from repro.errors import ReproError


class ConfigError(ReproError):
    """Bad configuration structure or file."""


#: Scope priority, lowest first.
SCOPE_ORDER = ("defaults", "site", "user", "command_line")


def _deep_merge(base, overlay):
    """Merge ``overlay`` into a copy of ``base``: dicts recurse, other
    values replace."""
    result = dict(base)
    for key, value in overlay.items():
        if key in result and isinstance(result[key], dict) and isinstance(value, dict):
            result[key] = _deep_merge(result[key], value)
        else:
            result[key] = value
    return result


class ConfigScope:
    """One named layer of configuration."""

    def __init__(self, name, data=None, path=None):
        if name not in SCOPE_ORDER:
            raise ConfigError(
                "Unknown scope %r (expected one of %s)" % (name, ", ".join(SCOPE_ORDER))
            )
        self.name = name
        self.path = path
        self.data = dict(data or {})

    @classmethod
    def from_file(cls, name, path):
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, ValueError) as e:
            raise ConfigError("Cannot read config file %s: %s" % (path, e)) from e
        if not isinstance(data, dict):
            raise ConfigError("Config file %s must contain a JSON object" % path)
        return cls(name, data, path=path)

    def __repr__(self):
        return "ConfigScope(%r, path=%r)" % (self.name, self.path)


class Config:
    """The merged stack of configuration scopes."""

    def __init__(self, scopes=()):
        self.scopes = {}
        #: bumped on every scope push/update; cheap change detector used
        #: to invalidate derived digests (see core/conc_cache.py).
        #: Direct mutation of a scope's ``data`` dict bypasses it — go
        #: through update()/push_scope().
        self._mtoken = 0
        for scope in scopes:
            self.push_scope(scope)

    def push_scope(self, scope):
        if not isinstance(scope, ConfigScope):
            raise ConfigError("push_scope requires a ConfigScope")
        self.scopes[scope.name] = scope
        self._mtoken += 1

    def update(self, scope_name, data):
        """Merge ``data`` into a scope (creating it if needed)."""
        existing = self.scopes.get(scope_name)
        if existing is None:
            self.push_scope(ConfigScope(scope_name, data))
        else:
            existing.data = _deep_merge(existing.data, data)
            self._mtoken += 1

    def mutation_token(self):
        """Monotonic token changing on every scope push or update."""
        return self._mtoken

    def merged(self):
        """The fully merged configuration dict."""
        result = {}
        for name in SCOPE_ORDER:
            scope = self.scopes.get(name)
            if scope is not None:
                result = _deep_merge(result, scope.data)
        return result

    def get(self, *path, default=None):
        """Look up a merged value by key path.

        ``config.get('preferences', 'providers', 'mpi', default=[])``.
        A single argument may also be a ``:``-separated path string.
        """
        if len(path) == 1 and isinstance(path[0], str) and ":" in path[0]:
            path = tuple(path[0].split(":"))
        node = self.merged()
        for key in path:
            if not isinstance(node, dict) or key not in node:
                return default
            node = node[key]
        return node

    # -- convenience accessors used by the concretizer ----------------------
    def compiler_order(self):
        return list(self.get("preferences", "compiler_order", default=[]))

    def provider_order(self, virtual_name):
        return list(self.get("preferences", "providers", virtual_name, default=[]))

    def preferred_versions(self, package_name):
        return list(
            self.get("preferences", "packages", package_name, "version", default=[])
        )

    def preferred_variants(self, package_name):
        return dict(
            self.get("preferences", "packages", package_name, "variants", default={})
        )

    def default_architecture(self):
        return self.get("preferences", "architecture")

    def external_for(self, package_name):
        """``(spec_string, prefix)`` for a configured external, or None."""
        ext = self.get("packages", package_name, "external")
        if not ext:
            return None
        return ext.get("spec", package_name), ext.get("prefix")

    def is_buildable(self, package_name):
        value = self.get("packages", package_name, "buildable")
        return True if value is None else bool(value)

    def view_rules(self):
        return dict(self.get("views", default={}))


def load_config_dir(directory):
    """Load ``<scope>.json`` files from a directory into a Config."""
    config = Config()
    for scope_name in SCOPE_ORDER:
        path = os.path.join(directory, "%s.json" % scope_name)
        if os.path.isfile(path):
            config.push_scope(ConfigScope.from_file(scope_name, path))
    return config
