"""Layered site/user configuration and concretization preferences (§4.3)."""

from repro.config.config import Config, ConfigError, ConfigScope

__all__ = ["Config", "ConfigScope", "ConfigError"]
