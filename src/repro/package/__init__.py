"""The ``Package`` base class: what package files subclass (paper §3.1)."""

from repro.package.package import Package, PackageError, InstallError

__all__ = ["Package", "PackageError", "InstallError"]
