"""``Package``: the generic build template every package file extends.

A package class is a *template* for arbitrarily many build configurations
(§3.2): directives declare versions, dependencies, variants, virtuals, and
patches; the ``install(self, spec, prefix)`` method encodes the build
incantation.  The framework guarantees:

* ``spec`` is fully concrete when ``install`` runs;
* ``prefix`` is unique to this configuration (hash-addressed, §3.4.2);
* the build environment has compiler wrappers and dependency paths set up
  (§3.5), so most recipes can configure exactly as they would for a
  system install.
"""

import os

from repro.directives.directives import DirectiveMeta
from repro.errors import ReproError
from repro.spec.spec import Spec
from repro.version import Version
from repro.version.url import substitute_version


class PackageError(ReproError):
    """Something is wrong with a package definition or its use."""


class InstallError(PackageError):
    """A package failed to build or install."""


class Package(metaclass=DirectiveMeta):
    """Base class for all packages.

    Subclasses normally define ``homepage``, ``url``, some ``version(...)``
    directives, ``depends_on(...)`` directives, and an
    ``install(self, spec, prefix)`` method (see Figure 1 of the paper for
    the canonical mpileaks example).

    Instances are created *per concrete spec* by the repository
    (``session.package_for(spec)``); ``self.spec`` is that spec.
    """

    #: Human-readable project URL (metadata only).
    homepage = None

    #: Example download URL; used to extrapolate URLs for other versions.
    url = None

    #: True for packages (like python) that support extension activation.
    extendable = False

    #: Set by the repository when the class is loaded; the authoritative
    #: package name (file name in the repo, which may contain '-').
    name = None

    #: Estimated compile units for the simulated build-cost model
    #: (Figures 10-11); loosely "how big is this package's source tree".
    build_units = 20

    def __init__(self, spec, session=None):
        if not isinstance(spec, Spec):
            raise TypeError("Package requires a Spec, got %r" % (spec,))
        if self.name is None:
            raise PackageError(
                "Package class %s was not loaded through a repository and "
                "has no name" % type(self).__name__
            )
        if spec.name != self.name:
            raise PackageError(
                "Spec %s does not match package %s" % (spec.name, self.name)
            )
        self.spec = spec
        self.session = session
        #: Stage directory assigned by the installer during a build.
        self.stage = None
        #: Names of patches actually applied during the last stage.
        self.applied_patches = []

    # -- identity -----------------------------------------------------------
    @property
    def version(self):
        return self.spec.version

    @property
    def prefix(self):
        """Install prefix for this package's concrete spec."""
        if self.spec.external:
            return self.spec.external
        if self.session is None:
            raise PackageError("Package %s has no session to compute a prefix" % self.name)
        return self.session.store.layout.path_for_spec(self.spec)

    @property
    def compiler(self):
        """The concrete compiler record backing ``%name@version``."""
        if self.session is None:
            raise PackageError("Package %s has no session" % self.name)
        return self.session.compilers.compiler_for(self.spec.compiler)

    def __repr__(self):
        return "<Package %s (%s)>" % (self.name, self.spec)

    # -- versions / URLs -------------------------------------------------------
    @classmethod
    def safe_versions(cls):
        """Versions declared with checksums, newest first."""
        return sorted(
            (v for v, meta in cls.versions.items() if meta.get("checksum")),
            reverse=True,
        )

    @classmethod
    def known_versions(cls):
        """All declared versions, newest first."""
        return sorted(cls.versions, reverse=True)

    def url_for_version(self, version):
        """Download URL for ``version``.

        Uses a per-version ``url=`` override when the ``version`` directive
        supplied one; otherwise extrapolates from the class ``url``
        attribute (§3.2.3 — "Spack can extrapolate URLs from versions").
        """
        version = Version(str(version))
        meta = self.versions.get(version)
        if meta and meta.get("url"):
            return meta["url"]
        if self.url is None:
            raise PackageError("Package %s has no url attribute" % self.name)
        return substitute_version(self.url, version)

    def checksum_for(self, version):
        meta = self.versions.get(Version(str(version)))
        return meta.get("checksum") if meta else None

    # -- virtuals -----------------------------------------------------------------
    @classmethod
    def provided_virtuals(cls, spec):
        """Virtual specs this package provides when built as ``spec``."""
        matched = []
        for interface in cls.provided:
            if interface.when is None or spec.satisfies(interface.when):
                matched.append(interface.spec)
        return matched

    @classmethod
    def provides(cls, virtual_name):
        return any(p.spec.name == virtual_name for p in cls.provided)

    # -- patches --------------------------------------------------------------------
    def patches_for_spec(self):
        """Patches whose ``when`` predicate matches this build's spec."""
        return [
            p for p in self.patches if p.when is None or self.spec.satisfies(p.when)
        ]

    # -- build ----------------------------------------------------------------------
    def install(self, spec, prefix):
        """Default build: the classic autotools incantation.

        Subclasses override this (possibly several times with ``@when``)
        for anything unusual.  The ``configure``/``make`` callables come
        from the active build context (:mod:`repro.build.shell`), which the
        installer arranges before calling this method.
        """
        from repro.build.shell import configure, make

        configure("--prefix=%s" % prefix)
        make()
        make("install")

    def flag_filter(self, argv):
        """Hook: programmatically rewrite compiler command lines (§3.5.2).

        "Because Spack controls the wrappers, package authors can
        programmatically filter the compiler flags used by build
        systems" — override to drop or rewrite flags on every compiler
        invocation of this package's build (e.g. strip ``-Werror`` when
        porting to a new compiler).  Receives and returns a full argv.
        """
        return argv

    def setup_environment(self, build_env, run_env):
        """Hook: extra environment for building dependents / running.

        ``build_env``/``run_env`` are
        :class:`~repro.util.environment.EnvironmentModifications`.
        """

    def setup_dependent_environment(self, env, dependent_spec):
        """Hook: environment this package contributes to dependents' builds."""

    # -- extensions (§4.2) -------------------------------------------------------------
    @property
    def extendee_spec(self):
        """The spec of the package this one extends, or None."""
        if not self.extendees:
            return None
        name = next(iter(self.extendees))
        try:
            return self.spec[name]
        except KeyError:
            ext_spec, _ = self.extendees[name]
            return ext_spec

    @property
    def is_extension(self):
        return bool(self.extendees)

    def activate(self, extension, **kwargs):
        """Hook called on the *extendee* to merge an extension in.

        Default: symlink the extension's files into this package's prefix,
        refusing on conflicts.  Extendable packages (python) override to
        merge known-conflicting metadata files (§4.2).
        """
        from repro.extensions.activation import default_activate

        default_activate(self, extension, **kwargs)

    def deactivate(self, extension, **kwargs):
        """Hook called on the *extendee* to remove an extension."""
        from repro.extensions.activation import default_deactivate

        default_deactivate(self, extension, **kwargs)

    # -- conflicts ------------------------------------------------------------------------
    def validate_conflicts(self):
        """Raise if this package's spec hits a declared ``conflicts``."""
        for conflict_spec, when_spec, msg in self.conflict_specs:
            applies = when_spec is None or self.spec.satisfies(when_spec)
            if applies and self.spec.satisfies(conflict_spec):
                raise PackageError(
                    "Package %s conflicts with %s%s"
                    % (self.name, conflict_spec, ": %s" % msg if msg else "")
                )
