"""Compiler records, the registry, and PATH auto-detection.

A compiler name (``gcc``, ``intel``, ``xl``...) refers to a whole
toolchain: C, C++, Fortran 77 and Fortran 90 compilers (§3.2.3).  The
registry resolves a :class:`~repro.spec.spec.CompilerSpec` (``%gcc@4.7``)
to a concrete :class:`Compiler` record with real executable paths — in
this reproduction, paths into the fake toolchain built by
:mod:`repro.build.toolchain`.

``find_compilers`` mirrors the original's PATH scan: executables named
``<name>-<version>`` (e.g. ``gcc-4.9.2``, ``icc-15.0.1``) are detected
and grouped into toolchains.  Compilers can also be registered manually
through configuration, exactly as the paper describes.
"""

import os
import re

from repro.errors import ReproError
from repro.spec.spec import CompilerSpec
from repro.version import Version


class CompilerError(ReproError):
    """Problem with compiler definitions or resolution."""


class NoSuchCompilerError(CompilerError):
    def __init__(self, cspec):
        super().__init__("No registered compiler matches %s" % cspec)
        self.cspec = cspec


class CompilerFeatureError(CompilerError):
    """A matching compiler exists but lacks a required feature (§4.5)."""

    def __init__(self, cspec, requirements, candidates):
        super().__init__(
            "No compiler matching %s supports required feature(s): %s"
            % (cspec, ", ".join(str(f) for f in requirements)),
            long_message="candidates considered: %s"
            % ", ".join(str(c) for c in candidates),
        )
        self.requirements = list(requirements)


#: toolchain name -> (cc, cxx, f77, fc) basename stems
TOOLCHAIN_BINARIES = {
    "gcc": ("gcc", "g++", "gfortran", "gfortran"),
    "intel": ("icc", "icpc", "ifort", "ifort"),
    "clang": ("clang", "clang++", "gfortran", "gfortran"),
    "pgi": ("pgcc", "pgc++", "pgfortran", "pgfortran"),
    "xl": ("xlc", "xlc++", "xlf", "xlf90"),
}

#: cc basename stem -> toolchain name (for detection)
_CC_TO_TOOLCHAIN = {binaries[0]: name for name, binaries in TOOLCHAIN_BINARIES.items()}

_DETECT_RE = re.compile(
    r"^(%s)-(\d[A-Za-z0-9_.\-]*)$" % "|".join(map(re.escape, _CC_TO_TOOLCHAIN))
)


class Compiler:
    """A concrete toolchain: name, version, per-language executables, and
    versioned feature levels (cxx/openmp/cuda...; §4.5)."""

    def __init__(self, name, version, cc=None, cxx=None, f77=None, fc=None,
                 features=None):
        from repro.compilers.features import features_for

        self.name = name
        self.version = Version(str(version))
        self.cc = cc
        self.cxx = cxx
        self.f77 = f77
        self.fc = fc
        if features is None:
            self.features = features_for(name, self.version)
        else:
            self.features = {k: Version(str(v)) for k, v in features.items()}

    def supports(self, feature_spec):
        """True if this toolchain provides a feature level, e.g.
        ``supports('cxx@11:')`` or ``supports('openmp')``."""
        from repro.spec.spec import CompilerSpec

        want = (
            feature_spec
            if isinstance(feature_spec, CompilerSpec)
            else CompilerSpec(feature_spec)
        )
        level = self.features.get(want.name)
        if level is None:
            return False
        return want.versions.universal or level.satisfies(want.versions)

    @property
    def spec(self):
        return CompilerSpec(self.name, str(self.version))

    def satisfies(self, cspec):
        cspec = CompilerSpec(cspec) if isinstance(cspec, str) else cspec
        if self.name != cspec.name:
            return False
        return cspec.versions.universal or self.version.satisfies(cspec.versions)

    def __str__(self):
        return "%s@%s" % (self.name, self.version)

    def __repr__(self):
        return "Compiler(%s, cc=%r)" % (self, self.cc)

    def __eq__(self, other):
        return (
            isinstance(other, Compiler)
            and (self.name, self.version) == (other.name, other.version)
        )

    def __hash__(self):
        return hash((self.name, self.version))


class CompilerRegistry:
    """All compilers known to a session."""

    def __init__(self, compilers=()):
        self._compilers = []
        for compiler in compilers:
            self.add(compiler)

    def add(self, compiler):
        if compiler not in self._compilers:
            self._compilers.append(compiler)

    def all_compilers(self):
        return sorted(self._compilers, key=lambda c: (c.name, c.version))

    def compilers_for(self, cspec):
        """All registered compilers matching a CompilerSpec, best last."""
        cspec = CompilerSpec(cspec) if isinstance(cspec, str) else cspec
        matches = [
            c
            for c in self._compilers
            if c.name == cspec.name
            and (cspec.versions.universal or c.version.satisfies(cspec.versions))
        ]
        return sorted(matches, key=lambda c: c.version)

    def compiler_for(self, cspec):
        """The single best (highest-version) match; raises if none."""
        matches = self.compilers_for(cspec)
        if not matches:
            raise NoSuchCompilerError(cspec)
        return matches[-1]

    def exists(self, cspec):
        return bool(self.compilers_for(cspec))

    def toolchain_names(self):
        return sorted({c.name for c in self._compilers})

    def __len__(self):
        return len(self._compilers)

    def __iter__(self):
        return iter(self.all_compilers())


def find_compilers(search_path):
    """Auto-detect toolchains on a PATH-like list of directories.

    Looks for C compilers named ``<cc-stem>-<version>`` and assembles the
    full toolchain from sibling binaries with the same version suffix.
    """
    if isinstance(search_path, str):
        search_path = search_path.split(os.pathsep)
    found = []
    seen = set()
    for directory in search_path:
        if not os.path.isdir(directory):
            continue
        for entry in sorted(os.listdir(directory)):
            match = _DETECT_RE.match(entry)
            if not match:
                continue
            cc_stem, version = match.groups()
            toolchain = _CC_TO_TOOLCHAIN[cc_stem]
            if (toolchain, version) in seen:
                continue
            seen.add((toolchain, version))
            stems = TOOLCHAIN_BINARIES[toolchain]
            paths = []
            for stem in stems:
                candidate = os.path.join(directory, "%s-%s" % (stem, version))
                paths.append(candidate if os.path.isfile(candidate) else None)
            found.append(
                Compiler(
                    toolchain,
                    version,
                    cc=paths[0],
                    cxx=paths[1],
                    f77=paths[2],
                    fc=paths[3],
                )
            )
    return found
