"""Compiler toolchains and their registry (paper §3.2.3, "Compilers")."""

from repro.compilers.registry import (
    Compiler,
    CompilerError,
    CompilerRegistry,
    NoSuchCompilerError,
    find_compilers,
)

__all__ = [
    "Compiler",
    "CompilerRegistry",
    "CompilerError",
    "NoSuchCompilerError",
    "find_compilers",
]
