"""Compiler feature knowledge: which toolchain versions support what.

The paper's §4.5: "our codes are relying on advanced compiler
capabilities, like C++11 language features, OpenMP versions, and GPU
compute capabilities.  Ideally, Spack will find suitable compilers..."

This table encodes 2015-era support levels for the toolchains the fake
universe ships.  Features are versioned like everything else in the
system: ``cxx@11``, ``openmp@4.0``, ``cuda@7.0`` — so packages can say
``requires_compiler('cxx@11:')`` and the concretizer can reason about
them with the ordinary version algebra.
"""

from repro.version import Version

#: per-toolchain, ascending version thresholds -> feature levels.
#: A compiler gets the feature set of the highest threshold <= its version.
FEATURE_TABLE = {
    "gcc": [
        ("4.4", {"cxx": "03", "openmp": "3.0"}),
        ("4.7", {"cxx": "11", "openmp": "3.1"}),
        ("4.9", {"cxx": "14", "openmp": "4.0"}),
    ],
    "intel": [
        ("13", {"cxx": "03", "openmp": "3.1"}),
        ("14", {"cxx": "11", "openmp": "4.0"}),
        ("15", {"cxx": "14", "openmp": "4.0"}),
    ],
    "clang": [
        # 2015-era clang: great C++, no OpenMP yet — the classic trap.
        ("3.3", {"cxx": "11"}),
        ("3.4", {"cxx": "14"}),
    ],
    "pgi": [
        ("13", {"cxx": "03", "openmp": "3.1", "cuda": "6.0"}),
        ("14", {"cxx": "03", "openmp": "3.1", "cuda": "7.0"}),
    ],
    "xl": [
        ("12", {"cxx": "03", "openmp": "3.1"}),
    ],
}


def features_for(name, version):
    """Feature levels for a toolchain version: {feature: Version}."""
    table = FEATURE_TABLE.get(name, [])
    version = Version(str(version))
    chosen = {}
    for threshold, features in table:
        if Version(threshold) <= version or version in Version(threshold):
            chosen = features
    return {feature: Version(level) for feature, level in chosen.items()}
